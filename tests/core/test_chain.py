"""Tests for the TRANSFORMATION table chain (Table II behaviour)."""

import random

from repro.core import CuckooGraphConfig
from repro.core.chain import TableChain
from repro.core.counters import Counters
from repro.core.hashing import HashFamily


def make_chain(n=4, R=3, d=4, G=0.9, lam=0.4, drain_source=None, seed=3):
    config = CuckooGraphConfig(
        d=d, R=R, G=G, lam=min(lam, 2.0 * G / 3.0), T=100,
        initial_scht_length=n, seed=seed
    )
    return TableChain(
        config=config,
        hash_family=HashFamily("mult", seed),
        initial_length=n,
        counters=Counters(),
        rng=random.Random(seed),
        drain_source=drain_source,
    )


def fill_chain(chain, count, start=0):
    leftovers = []
    for key in range(start, start + count):
        leftovers.extend(chain.insert(key, key))
    return leftovers


class TestTable2Rule:
    def test_initial_state_single_table_of_length_n(self):
        chain = make_chain(n=4)
        assert chain.table_lengths == [4]
        assert chain.transform_step == 0

    def test_table2_length_sequence(self):
        """Expanding repeatedly must reproduce the Table II length pattern."""
        chain = make_chain(n=4, R=3)
        expected = [
            [4, 2],          # step 1
            [4, 2, 2],       # step 2
            [8, 4],          # step 3: merge to 2n, open n
            [8, 4, 4],       # step 4
            [16, 8],         # step 5
            [16, 8, 8],      # step 6
            [32, 16],        # step 7
        ]
        for lengths in expected:
            chain.expand()
            assert chain.table_lengths == lengths

    def test_expansion_preserves_contents(self):
        chain = make_chain(n=4)
        fill_chain(chain, 30)
        before = dict(chain.items())
        chain.expand()
        chain.expand()
        chain.expand()  # includes a merge
        assert dict(chain.items()) == before

    def test_expansion_triggered_by_loading_rate(self):
        chain = make_chain(n=2, d=4, G=0.5)
        fill_chain(chain, 200)
        assert chain.num_tables >= 2
        assert len(chain) == 200
        assert sorted(chain.keys()) == list(range(200))

    def test_never_more_than_R_tables(self):
        chain = make_chain(n=2, R=3, d=4)
        fill_chain(chain, 500)
        assert chain.num_tables <= 3

    def test_overall_loading_rate_bounded_by_G_after_inserts(self):
        chain = make_chain(n=2, d=8, G=0.9)
        fill_chain(chain, 1000)
        assert chain.overall_loading_rate <= 0.95


class TestLookupAndDelete:
    def test_get_and_contains_across_tables(self):
        chain = make_chain(n=2, d=4)
        leftovers = fill_chain(chain, 300)
        # Pairs the chain could not place are returned to the caller (the
        # graph parks them in the S-DL); everything else must be findable.
        parked = {key for key, _ in leftovers}
        assert set(chain.keys()) | parked == set(range(300))
        resident = next(key for key in range(300) if key not in parked)
        assert resident in chain
        assert chain.get(resident) == resident
        assert chain.get(10_000) is None

    def test_insert_overwrites_across_tables(self):
        chain = make_chain(n=2, d=4)
        leftovers = fill_chain(chain, 300)
        parked = {key for key, _ in leftovers}
        resident = next(key for key in range(300) if key not in parked)
        size_before = len(chain)
        chain.insert(resident, "updated")
        assert chain.get(resident) == "updated"
        assert len(chain) == size_before

    def test_update_returns_false_for_missing(self):
        chain = make_chain()
        fill_chain(chain, 10)
        assert chain.update(3, "x") is True
        assert chain.get(3) == "x"
        assert chain.update(999, "x") is False

    def test_delete_returns_flag(self):
        chain = make_chain()
        fill_chain(chain, 20)
        deleted, _ = chain.delete(7)
        assert deleted is True
        deleted, _ = chain.delete(7)
        assert deleted is False
        assert len(chain) == 19

    def test_reverse_transformation_contracts(self):
        chain = make_chain(n=2, d=4, lam=0.4)
        fill_chain(chain, 400)
        cells_full = chain.total_cells
        for key in range(380):
            chain.delete(key)
        assert chain.total_cells < cells_full
        assert sorted(chain.keys()) == list(range(380, 400))

    def test_contraction_never_loses_items(self):
        chain = make_chain(n=2, d=4, lam=0.5, G=0.9)
        insert_leftovers = fill_chain(chain, 256)
        survivors = set(chain.keys())
        assert survivors | {key for key, _ in insert_leftovers} == set(range(256))
        rng = random.Random(5)
        victims = rng.sample(sorted(survivors), int(len(survivors) * 0.8))
        displaced: set[int] = set()
        for key in victims:
            deleted, leftovers = chain.delete(key)
            if key in displaced:
                # A contraction already handed this key back to the caller
                # (it would live in the S-DL); deleting it there is the
                # graph's job, so the chain correctly reports it missing.
                assert not deleted
                displaced.discard(key)
            else:
                assert deleted
            displaced.update(k for k, _ in leftovers)
            survivors.discard(key)
        # A contraction may hand back the occasional pair (the graph parks it
        # in the S-DL); nothing may simply vanish, and such cases stay rare.
        assert set(chain.keys()) | displaced == survivors
        assert len(displaced) <= max(2, len(victims) // 20)

    def test_contraction_skipped_when_it_would_overfill(self):
        chain = make_chain(n=8, d=4, lam=0.4, G=0.5)
        fill_chain(chain, 40)
        # Delete down to just above half of the *current* capacity so that a
        # halving would exceed G; the chain must keep its size.
        tables_before = chain.table_lengths
        chain.delete(0)
        assert chain.table_lengths == tables_before or len(chain) <= chain.total_cells * 0.5


class TestDenylistDrain:
    def test_drain_source_called_on_expansion(self):
        parked = [(1000, "parked"), (1001, "parked")]
        calls = []

        def drain():
            calls.append(True)
            items, parked[:] = list(parked), []
            return items

        chain = make_chain(n=2, d=4, drain_source=drain)
        fill_chain(chain, 100)
        assert calls, "expansion should have drained the denylist"
        assert chain.get(1000) == "parked"
        assert chain.get(1001) == "parked"

    def test_expand_on_failure_grows_newest_table(self):
        chain = make_chain(n=2, d=4)
        fill_chain(chain, 20)
        length_before = chain.tables[-1].length
        chain.expand_on_failure(factor=1.5)
        assert chain.tables[-1].length > length_before
        assert sorted(chain.keys()) == list(range(20))


class TestMemoryModel:
    def test_modelled_bytes_sums_tables(self):
        chain = make_chain(n=4, d=4)
        chain.expand()
        per_cell = 8
        expected = sum(table.num_cells for table in chain.tables) * per_cell
        assert chain.modelled_bytes(per_cell) == expected
