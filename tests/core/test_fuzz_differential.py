"""Randomized differential fuzzer: every store vs a dict-of-sets oracle.

Seeded random operation streams -- inserts (with duplicates and self-loops),
deletes (including of absent edges), membership queries, successor queries
and re-inserts after delete -- are replayed three ways:

* **per-operation** against every store in the contract matrix
  (``ALL_STORE_FACTORIES``), asserting each individual result against the
  oracle;
* **batched** through the sharded front-end's batch APIs under both the
  serial and the threaded executor;
* **through the GraphService front door**, submitting the whole stream as
  futures and checking every future's result against an oracle replay in
  submission order;
* **persisted and recovered**: the stream runs through a WAL-wrapped
  :class:`~repro.persist.PersistentStore` in random batch chunks, and at
  random points (and at the end, and after a simulated torn-tail crash)
  the on-disk state is recovered into a fresh store and compared to the
  oracle.

Every assertion message carries the reproducing seed (it is also in the
pytest parametrize id); rerun a failure with
``pytest tests/core/test_fuzz_differential.py -k <seed>``.  The number of
seeded runs is controlled by ``--fuzz-runs`` (see ``tests/conftest.py``);
CI uses the small fixed sweep on every push and an extended sweep on main.
"""

from __future__ import annotations

import random

import pytest

from repro import ShardedCuckooGraph, WeightedGraphStore
from repro.persist import PersistentStore, recover, replay_into
from repro.service import GraphService

from ..conftest import ALL_STORE_FACTORIES

#: Small universe so inserts, deletes and queries collide constantly.
NODE_RANGE = 48

#: Operations per fuzz stream (per seed, per store).
STREAM_LENGTH = 400

#: insert-heavy mix, so the graph grows and deletes/queries hit real edges.
OP_MIX = ("insert", "insert", "insert", "delete", "query", "successors")


def generate_ops(seed: int, length: int = STREAM_LENGTH):
    """Seeded random op stream: ``("insert"|"delete"|"query", u, v)`` or
    ``("successors", u, None)``.  Self-loops and duplicates included."""
    rng = random.Random(seed)
    ops = []
    for _ in range(length):
        action = rng.choice(OP_MIX)
        u = rng.randrange(NODE_RANGE)
        if action == "successors":
            ops.append((action, u, None))
        elif rng.random() < 0.05:
            ops.append((action, u, u))  # explicit self-loop traffic
        else:
            ops.append((action, u, rng.randrange(NODE_RANGE)))
    return ops


class Oracle:
    """Trivially correct model: dict of multisets (weighted) or sets.

    ``weighted=True`` mirrors the extended CuckooGraph semantics: duplicate
    inserts increment a weight, ``insert_edge`` reports ``True`` only for a
    new edge, and ``delete_edge`` reports ``True`` only when the weight hits
    zero and the edge is actually removed.
    """

    def __init__(self, weighted: bool = False):
        self.weighted = weighted
        self.counts: dict[tuple[int, int], int] = {}

    def insert(self, u: int, v: int) -> bool:
        count = self.counts.get((u, v), 0)
        self.counts[(u, v)] = (count + 1) if self.weighted else 1
        return count == 0

    def delete(self, u: int, v: int) -> bool:
        count = self.counts.get((u, v), 0)
        if count == 0:
            return False
        if count > 1:
            self.counts[(u, v)] = count - 1
            return False
        del self.counts[(u, v)]
        return True

    def has(self, u: int, v: int) -> bool:
        return (u, v) in self.counts

    def successors(self, u: int) -> set[int]:
        return {v for (src, v) in self.counts if src == u}

    def edges(self) -> list[tuple[int, int]]:
        return sorted(self.counts)

    def apply(self, op) -> object:
        action, u, v = op
        if action == "insert":
            return self.insert(u, v)
        if action == "delete":
            return self.delete(u, v)
        if action == "query":
            return self.has(u, v)
        return self.successors(u)


def apply_to_store(store, op) -> object:
    action, u, v = op
    if action == "insert":
        return store.insert_edge(u, v)
    if action == "delete":
        return store.delete_edge(u, v)
    if action == "query":
        return store.has_edge(u, v)
    return store.successors(u)


def assert_final_state(store, oracle: Oracle, context: str) -> None:
    assert sorted(store.edges()) == oracle.edges(), context
    assert store.num_edges == len(oracle.counts), context
    for u in range(NODE_RANGE):
        assert sorted(store.successors(u)) == sorted(oracle.successors(u)), \
            f"{context}: successors({u}) diverged"


# --------------------------------------------------------------------- #
# 1. Per-operation replay across the whole store matrix
# --------------------------------------------------------------------- #


@pytest.mark.parametrize("store_name", sorted(ALL_STORE_FACTORIES))
def test_fuzz_store_matrix(store_name, fuzz_seed):
    """Every per-op result of every store must match the oracle, op by op."""
    store = ALL_STORE_FACTORIES[store_name]()
    try:
        oracle = Oracle(weighted=isinstance(store, WeightedGraphStore))
        for index, op in enumerate(generate_ops(fuzz_seed)):
            expected = oracle.apply(op)
            actual = apply_to_store(store, op)
            if op[0] == "successors":
                actual = sorted(actual)
                expected = sorted(expected)
            assert actual == expected, (
                f"seed={fuzz_seed} store={store_name} op#{index}={op}: "
                f"got {actual!r}, oracle says {expected!r}"
            )
        assert_final_state(store, oracle,
                           f"seed={fuzz_seed} store={store_name}")
    finally:
        close = getattr(store, "close", None)
        if callable(close):
            close()


# --------------------------------------------------------------------- #
# 2. Batched replay through the sharded front-end, both executors
# --------------------------------------------------------------------- #


@pytest.mark.parametrize("executor", ["serial", "threads", "processes"])
@pytest.mark.parametrize("num_shards", [1, 4])
def test_fuzz_sharded_batched(num_shards, executor, fuzz_seed):
    """Random per-kind batches through the batch APIs agree with the oracle."""
    rng = random.Random(fuzz_seed * 31 + num_shards)
    ops = generate_ops(fuzz_seed)
    oracle = Oracle()
    context = f"seed={fuzz_seed} shards={num_shards} executor={executor}"
    with ShardedCuckooGraph(num_shards=num_shards, executor=executor) as store:
        position = 0
        while position < len(ops):
            chunk = ops[position:position + rng.randrange(20, 90)]
            position += len(chunk)
            inserts = [(u, v) for a, u, v in chunk if a == "insert"]
            deletes = [(u, v) for a, u, v in chunk if a == "delete"]
            queries = [(u, v) for a, u, v in chunk if a == "query"]
            frontier = [u for a, u, _ in chunk if a == "successors"]

            # Replay grouped (inserts, then deletes, then reads) on both
            # sides, comparing aggregate counts and every read answer.
            assert store.insert_edges(inserts) == \
                sum(oracle.insert(u, v) for u, v in inserts), context
            assert store.delete_edges(deletes) == \
                sum(oracle.delete(u, v) for u, v in deletes), context
            assert store.has_edges(queries) == \
                [oracle.has(u, v) for u, v in queries], context
            fanned = store.successors_many(frontier)
            for u in dict.fromkeys(frontier):
                assert sorted(fanned[u]) == sorted(oracle.successors(u)), \
                    f"{context}: successors_many({u}) diverged"
        assert_final_state(store, oracle, context)


# --------------------------------------------------------------------- #
# 3. The whole stream through the GraphService front door
# --------------------------------------------------------------------- #


@pytest.mark.parametrize("executor", ["serial", "threads", "processes"])
def test_fuzz_graph_service(executor, fuzz_seed):
    """Service futures must resolve to exactly the oracle's per-op results.

    The stream is submitted before the dispatcher starts, so the whole run
    flows through coalesced windows (maximum batching pressure), and the
    service's order-preserving run splitting is what keeps the sequential
    oracle valid.
    """
    ops = generate_ops(fuzz_seed)
    oracle = Oracle()
    context = f"seed={fuzz_seed} executor={executor}"
    store = ShardedCuckooGraph(num_shards=3, executor=executor)
    service = GraphService(store, max_batch=64,
                           queue_capacity=len(ops), policy="block")
    futures = []
    for op in ops:
        action, u, v = op
        if action == "insert":
            futures.append(service.insert_edge(u, v))
        elif action == "delete":
            futures.append(service.delete_edge(u, v))
        elif action == "query":
            futures.append(service.has_edge(u, v))
        else:
            futures.append(service.successors(u))
        # the oracle replays the identical stream in submission order
    expected = [oracle.apply(op) for op in ops]

    service.start()
    try:
        for index, (op, future, want) in enumerate(zip(ops, futures, expected)):
            got = future.result(timeout=30)
            if op[0] == "successors":
                got, want = sorted(got), sorted(want)
            assert got == want, (
                f"{context} op#{index}={op}: future resolved to {got!r}, "
                f"oracle says {want!r}"
            )
        assert_final_state(store, oracle, context)
        summary = service.metrics_summary()
        assert summary["resolved"] == len(ops), context
        assert summary["failed"] == 0, context
    finally:
        service.close()
        store.close()


# --------------------------------------------------------------------- #
# 4. Persist-and-recover: the stream through a WAL-wrapped store
# --------------------------------------------------------------------- #


@pytest.mark.parametrize("num_shards", [1, 3])
def test_fuzz_persist_and_recover(num_shards, fuzz_seed, tmp_path):
    """Recovery must reproduce the oracle at every probe point and at the end.

    The op stream is committed through the batch APIs in random chunks;
    after random chunks the WAL (flushed, not yet closed) is recovered into
    a fresh store and compared to the oracle mid-flight.  At the end, the
    closed store is recovered serially and (for the sharded layout) in
    parallel, then a torn tail is simulated on one segment and recovery is
    checked to land on the previous group-commit boundary.
    """
    rng = random.Random(fuzz_seed * 17 + num_shards)
    ops = generate_ops(fuzz_seed)
    oracle = Oracle()
    context = f"seed={fuzz_seed} shards={num_shards} persist"
    base = tmp_path / f"persist-{num_shards}"

    def fresh_inner():
        return ShardedCuckooGraph(num_shards=num_shards)

    store = PersistentStore(base, store=fresh_inner(), own_store=True,
                            sync_on_commit=False, compact_wal_bytes=None)
    position = 0
    while position < len(ops):
        chunk = ops[position:position + rng.randrange(20, 90)]
        position += len(chunk)
        inserts = [(u, v) for a, u, v in chunk if a == "insert"]
        deletes = [(u, v) for a, u, v in chunk if a == "delete"]
        assert store.insert_edges(inserts) == \
            sum(oracle.insert(u, v) for u, v in inserts), context
        assert store.delete_edges(deletes) == \
            sum(oracle.delete(u, v) for u, v in deletes), context
        if rng.random() < 0.25:
            # Mid-flight probe: flush buffered commits, then do a read-only
            # replay into a brand-new store and compare against the oracle.
            # (recover() takes the directory's writer lock, which the live
            # store holds; replay_into is the online-inspection path.)
            store.sync()
            probe = fresh_inner()
            replay_into(base, probe)
            assert_final_state(probe, oracle, f"{context} mid-flight")
            probe.close()

    store.close()
    recovered = recover(base, store=fresh_inner())
    assert_final_state(recovered, oracle, f"{context} final")
    recovered.close()  # releases the directory for the next recovery
    if num_shards > 1:
        recovered = recover(base, store=fresh_inner(), parallel=True)
        assert_final_state(recovered, oracle, f"{context} final parallel")
        recovered.close()

    # Torn-tail crash simulation: chop bytes off the largest segment; the
    # recovered state must equal the oracle minus the torn commit(s) -- a
    # subset of the final state's records, and still a clean replay.
    segments = sorted(base.glob("wal-*.bin"))
    victim = max(segments, key=lambda p: p.stat().st_size)
    data = victim.read_bytes()
    victim.write_bytes(data[:-rng.randrange(1, 24)])
    torn = recover(base, store=fresh_inner())
    replayed = torn.last_recovery["wal_ops"]
    total_ops = sum(1 for a, _, _ in ops if a in ("insert", "delete"))
    assert replayed < total_ops, context
    torn.close()
