"""Tests for CuckooGraphConfig validation and derived quantities."""

import pytest

from repro.core import CuckooGraphConfig, PAPER_CONFIG, tuning_grid
from repro.core.errors import ConfigurationError


class TestDefaults:
    def test_paper_configuration_values(self):
        assert PAPER_CONFIG.d == 8
        assert PAPER_CONFIG.R == 3
        assert PAPER_CONFIG.G == pytest.approx(0.9)
        assert PAPER_CONFIG.T == 250
        assert PAPER_CONFIG.array_ratio == 2
        assert PAPER_CONFIG.use_denylist is True

    def test_lambda_respects_stable_state_assumption(self):
        assert PAPER_CONFIG.lam <= 2 * PAPER_CONFIG.G / 3

    def test_slot_capacities(self):
        assert PAPER_CONFIG.small_slots_per_cell == 2 * PAPER_CONFIG.R
        assert PAPER_CONFIG.weighted_slots_per_cell == PAPER_CONFIG.R


class TestValidation:
    @pytest.mark.parametrize(
        "overrides",
        [
            {"d": 0},
            {"R": 0},
            {"G": 0.0},
            {"G": 1.5},
            {"lam": -0.1},
            {"lam": 0.95},          # violates lam <= 2G/3
            {"T": 0},
            {"initial_scht_length": 0},
            {"initial_lcht_length": 0},
            {"array_ratio": 0},
            {"small_denylist_capacity": -1},
            {"failure_expand_factor": 1.0},
        ],
    )
    def test_invalid_values_rejected(self, overrides):
        with pytest.raises(ConfigurationError):
            CuckooGraphConfig(**overrides)

    def test_valid_custom_configuration(self):
        config = CuckooGraphConfig(d=4, R=2, G=0.8, lam=0.3, T=50)
        assert config.small_slots_per_cell == 4

    def test_with_overrides_returns_new_object(self):
        changed = PAPER_CONFIG.with_overrides(d=4)
        assert changed.d == 4
        assert PAPER_CONFIG.d == 8
        assert changed is not PAPER_CONFIG

    def test_with_overrides_still_validates(self):
        with pytest.raises(ConfigurationError):
            PAPER_CONFIG.with_overrides(G=2.0)

    def test_config_is_frozen(self):
        with pytest.raises(Exception):
            PAPER_CONFIG.d = 16  # type: ignore[misc]


class TestTuningGrid:
    def test_grid_matches_paper_sweeps(self):
        grid = tuning_grid()
        assert grid["d"] == [4, 8, 16, 32]
        assert grid["G"] == [0.8, 0.85, 0.9, 0.95]
        assert grid["T"] == [50, 150, 250, 350]

    def test_every_grid_point_is_a_valid_configuration(self):
        grid = tuning_grid()
        for parameter, values in grid.items():
            for value in values:
                config = PAPER_CONFIG.with_overrides(**{parameter: value})
                assert getattr(config, parameter) == value
