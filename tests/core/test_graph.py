"""Tests for the basic CuckooGraph public API."""

from repro import CuckooGraph, CuckooGraphConfig


class TestInsertQueryDelete:
    def test_insert_new_edge_returns_true(self):
        graph = CuckooGraph()
        assert graph.insert_edge(1, 2) is True
        assert graph.num_edges == 1

    def test_duplicate_insert_returns_false(self):
        graph = CuckooGraph()
        graph.insert_edge(1, 2)
        assert graph.insert_edge(1, 2) is False
        assert graph.num_edges == 1

    def test_has_edge_is_directional(self):
        graph = CuckooGraph()
        graph.insert_edge(1, 2)
        assert graph.has_edge(1, 2)
        assert not graph.has_edge(2, 1)

    def test_query_unknown_node(self):
        graph = CuckooGraph()
        assert not graph.has_edge(42, 43)

    def test_delete_edge(self):
        graph = CuckooGraph()
        graph.insert_edge(1, 2)
        assert graph.delete_edge(1, 2) is True
        assert graph.delete_edge(1, 2) is False
        assert not graph.has_edge(1, 2)
        assert graph.num_edges == 0

    def test_self_loop_supported(self):
        graph = CuckooGraph()
        assert graph.insert_edge(9, 9) is True
        assert graph.has_edge(9, 9)
        assert graph.successors(9) == [9]

    def test_reinsert_after_delete(self):
        graph = CuckooGraph()
        graph.insert_edge(1, 2)
        graph.delete_edge(1, 2)
        assert graph.insert_edge(1, 2) is True
        assert graph.has_edge(1, 2)


class TestNeighbourhoods:
    def test_successors_and_degree(self, small_edge_set, reference):
        graph = CuckooGraph()
        for u, v in small_edge_set:
            graph.insert_edge(u, v)
        adjacency = reference(small_edge_set)
        for u, expected in adjacency.items():
            assert sorted(graph.successors(u)) == sorted(expected)
            assert graph.out_degree(u) == len(expected)

    def test_successors_of_unknown_node_empty(self):
        assert CuckooGraph().successors(123) == []

    def test_edges_iteration_matches_inserted(self, small_edge_set):
        graph = CuckooGraph()
        for u, v in small_edge_set:
            graph.insert_edge(u, v)
        assert sorted(graph.edges()) == sorted(small_edge_set)

    def test_nodes_and_source_nodes(self, small_edge_set):
        graph = CuckooGraph()
        for u, v in small_edge_set:
            graph.insert_edge(u, v)
        sources = {u for u, _ in small_edge_set}
        everything = sources | {v for _, v in small_edge_set}
        assert set(graph.source_nodes()) == sources
        assert set(graph.nodes()) == everything
        assert graph.num_nodes == len(everything)

    def test_has_node(self):
        graph = CuckooGraph()
        graph.insert_edge(1, 2)
        assert graph.has_node(1)
        assert not graph.has_node(2)  # destination-only nodes are not sources

    def test_node_removed_when_last_edge_deleted(self):
        graph = CuckooGraph()
        graph.insert_edge(1, 2)
        graph.insert_edge(1, 3)
        graph.delete_edge(1, 2)
        assert graph.has_node(1)
        graph.delete_edge(1, 3)
        assert not graph.has_node(1)
        assert graph.num_source_nodes == 0


class TestHighDegreeAndScale:
    def test_hub_node_grows_scht_chain(self):
        graph = CuckooGraph()
        for v in range(2000):
            graph.insert_edge(0, v)
        part2 = graph.part2_of(0)
        assert part2 is not None and part2.is_transformed
        assert graph.out_degree(0) == 2000
        assert sorted(graph.successors(0)) == list(range(2000))

    def test_hub_node_shrinks_after_deletions(self):
        graph = CuckooGraph()
        for v in range(2000):
            graph.insert_edge(0, v)
        cells_before = graph.part2_of(0).chain.total_cells
        for v in range(1900):
            graph.delete_edge(0, v)
        assert graph.part2_of(0).chain.total_cells < cells_before
        assert sorted(graph.successors(0)) == list(range(1900, 2000))

    def test_lcht_expands_with_many_sources(self):
        graph = CuckooGraph(CuckooGraphConfig(initial_lcht_length=4))
        for u in range(3000):
            graph.insert_edge(u, u + 1)
        assert graph.num_source_nodes == 3000
        assert graph.lcht.num_tables >= 1
        assert graph.lcht.total_cells >= 3000
        for u in range(0, 3000, 97):
            assert graph.has_edge(u, u + 1)

    def test_interleaved_inserts_and_deletes(self, small_edge_set):
        graph = CuckooGraph()
        alive = set()
        for index, (u, v) in enumerate(small_edge_set):
            graph.insert_edge(u, v)
            alive.add((u, v))
            if index % 3 == 0:
                graph.delete_edge(u, v)
                alive.discard((u, v))
        assert graph.num_edges == len(alive)
        assert sorted(graph.edges()) == sorted(alive)


class TestDenylistBehaviour:
    def tiny_config(self, **overrides):
        return CuckooGraphConfig(
            d=1, R=1, T=2, initial_scht_length=1, initial_lcht_length=1,
            G=0.9, lam=0.4, **overrides
        )

    def test_failures_are_absorbed_by_denylists(self):
        graph = CuckooGraph(self.tiny_config())
        edges = [(u, v) for u in range(40) for v in range(4)]
        for u, v in edges:
            assert graph.insert_edge(u, v)
        for u, v in edges:
            assert graph.has_edge(u, v), (u, v)
        assert graph.num_edges == len(edges)

    def test_denylisted_edges_can_be_deleted(self):
        graph = CuckooGraph(self.tiny_config())
        edges = [(u, v) for u in range(40) for v in range(4)]
        for u, v in edges:
            graph.insert_edge(u, v)
        for u, v in edges:
            assert graph.delete_edge(u, v), (u, v)
        assert graph.num_edges == 0

    def test_denylist_free_mode_still_correct(self):
        graph = CuckooGraph(self.tiny_config(use_denylist=False))
        edges = [(u, v) for u in range(30) for v in range(3)]
        for u, v in edges:
            assert graph.insert_edge(u, v)
        for u, v in edges:
            assert graph.has_edge(u, v)


class TestIntrospection:
    def test_counters_update(self):
        graph = CuckooGraph()
        graph.insert_edge(1, 2)
        graph.has_edge(1, 2)
        graph.delete_edge(1, 2)
        assert graph.counters.edges_inserted == 1
        assert graph.counters.edges_queried == 1
        assert graph.counters.edges_deleted == 1

    def test_accesses_counter_moves_and_resets(self):
        graph = CuckooGraph()
        graph.insert_edge(1, 2)
        assert graph.accesses > 0
        graph.reset_accesses()
        assert graph.accesses == 0
        graph.has_edge(1, 2)
        assert graph.accesses > 0

    def test_memory_bytes_grows_with_edges(self):
        graph = CuckooGraph()
        empty = graph.memory_bytes()
        for u in range(200):
            for v in range(8):
                graph.insert_edge(u, v)
        assert graph.memory_bytes() > empty

    def test_structure_summary_keys(self):
        graph = CuckooGraph()
        graph.insert_edge(1, 2)
        summary = graph.structure_summary()
        for key in ("num_edges", "num_source_nodes", "lcht_tables", "memory_bytes"):
            assert key in summary

    def test_insert_edges_bulk_helper(self, small_edge_set):
        graph = CuckooGraph()
        inserted = graph.insert_edges(small_edge_set)
        assert inserted == len(small_edge_set)
        assert graph.insert_edges(small_edge_set[:10]) == 0
