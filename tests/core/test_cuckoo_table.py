"""Tests for the multi-cell cuckoo hash table."""

import random

import pytest

from repro.core.counters import Counters
from repro.core.cuckoo_table import CuckooHashTable, drain_tables
from repro.core.hashing import HashFamily


def make_table(length=8, d=4, max_kicks=50, seed=1):
    family = HashFamily("mult", seed)
    return CuckooHashTable(
        length=length,
        d=d,
        hash_pair=family.make_pair(),
        max_kicks=max_kicks,
        counters=Counters(),
        rng=random.Random(seed),
    )


class TestBasicOperations:
    def test_insert_and_get(self):
        table = make_table()
        assert table.insert(1, "a") is None
        assert table.get(1) == "a"
        assert 1 in table
        assert len(table) == 1

    def test_get_missing_returns_default(self):
        table = make_table()
        assert table.get(99) is None
        assert table.get(99, "missing") == "missing"

    def test_insert_overwrites_existing_key(self):
        table = make_table()
        table.insert(5, "old")
        table.insert(5, "new")
        assert table.get(5) == "new"
        assert len(table) == 1

    def test_delete(self):
        table = make_table()
        table.insert(3, None)
        assert table.delete(3) is True
        assert table.delete(3) is False
        assert 3 not in table
        assert len(table) == 0

    def test_update_only_touches_existing(self):
        table = make_table()
        table.insert(7, 1)
        assert table.update(7, 2) is True
        assert table.get(7) == 2
        assert table.update(8, 2) is False
        assert 8 not in table

    def test_items_and_keys(self):
        table = make_table()
        for key in range(20):
            table.insert(key, key * 10)
        assert dict(table.items()) == {key: key * 10 for key in range(20)}
        assert sorted(table.keys()) == list(range(20))

    def test_zero_length_rejected(self):
        family = HashFamily("mult", 1)
        with pytest.raises(ValueError):
            CuckooHashTable(0, 4, family.make_pair(), 10)


class TestCapacityAndKicks:
    def test_many_inserts_up_to_reasonable_load(self):
        table = make_table(length=32, d=8, max_kicks=200)
        inserted = 0
        for key in range(int(table.num_cells * 0.85)):
            if table.insert(key, key) is None:
                inserted += 1
        assert inserted >= int(table.num_cells * 0.80)
        assert len(table) == inserted

    def test_failure_returns_evicted_pair(self):
        # A tiny table with a tiny kick budget must eventually report failure.
        table = make_table(length=1, d=1, max_kicks=2)
        leftovers = [table.insert(key, key) for key in range(10)]
        failures = [pair for pair in leftovers if pair is not None]
        assert failures, "expected at least one insertion failure"
        for key, value in failures:
            assert key == value

    def test_size_consistent_after_failures(self):
        table = make_table(length=1, d=2, max_kicks=3)
        failed = 0
        for key in range(20):
            if table.insert(key, key) is not None:
                failed += 1
        assert len(table) == 20 - failed
        assert len(list(table.items())) == len(table)

    def test_counters_track_probes_and_attempts(self):
        counters = Counters()
        family = HashFamily("mult", 3)
        table = CuckooHashTable(8, 4, family.make_pair(), 50, counters=counters,
                                rng=random.Random(1))
        for key in range(30):
            table.insert(key, None)
        assert counters.bucket_probes > 0
        assert counters.insert_attempts >= 30


class TestLoadingRateAndMemory:
    def test_loading_rate(self):
        table = make_table(length=8, d=4)
        assert table.loading_rate == 0.0
        for key in range(12):
            table.insert(key, None)
        assert table.loading_rate == pytest.approx(12 / table.num_cells)

    def test_num_buckets_follows_two_to_one_ratio(self):
        table = make_table(length=8, d=4)
        assert table.num_buckets == 8 + 4
        assert table.num_cells == 12 * 4

    def test_would_exceed_threshold(self):
        table = make_table(length=2, d=2)
        threshold = 0.5
        while not table.would_exceed_threshold(threshold):
            assert table.insert(len(table) + 1000, None) is None
        assert (len(table) + 1) / table.num_cells > threshold

    def test_modelled_bytes(self):
        table = make_table(length=8, d=4)
        assert table.modelled_bytes(16) == table.num_cells * 16
        assert table.modelled_bytes(16, bucket_overhead=8) == (
            table.num_cells * 16 + table.num_buckets * 8
        )

    def test_pop_all_empties_the_table(self):
        table = make_table()
        for key in range(15):
            table.insert(key, key)
        drained = table.pop_all()
        assert sorted(key for key, _ in drained) == list(range(15))
        assert len(table) == 0
        assert list(table.items()) == []

    def test_drain_tables_helper(self):
        tables = [make_table(seed=i) for i in range(3)]
        for index, table in enumerate(tables):
            table.insert(index, index)
        drained = drain_tables(tables)
        assert sorted(key for key, _ in drained) == [0, 1, 2]
        assert all(len(table) == 0 for table in tables)
