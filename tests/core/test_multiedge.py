"""Tests for the multi-edge (Neo4j-flavoured) CuckooGraph variant."""

from repro import MultiEdgeCuckooGraph


class TestMultiEdge:
    def test_add_and_find_edges(self):
        graph = MultiEdgeCuckooGraph()
        graph.add_edge(1, 2, edge_id=100)
        graph.add_edge(1, 2, edge_id=101)
        graph.add_edge(1, 3, edge_id=102)
        assert sorted(graph.find_edges(1, 2)) == [100, 101]
        assert list(graph.find_edges(1, 3)) == [102]
        assert list(graph.find_edges(1, 9)) == []

    def test_edge_multiplicity(self):
        graph = MultiEdgeCuckooGraph()
        for edge_id in range(5):
            graph.add_edge(4, 5, edge_id)
        assert graph.edge_multiplicity(4, 5) == 5
        assert graph.edge_multiplicity(5, 4) == 0

    def test_num_edges_counts_pairs_not_parallel_edges(self):
        graph = MultiEdgeCuckooGraph()
        graph.add_edge(1, 2, 1)
        graph.add_edge(1, 2, 2)
        graph.add_edge(2, 3, 3)
        assert graph.num_edges == 2

    def test_insert_edge_interface(self):
        graph = MultiEdgeCuckooGraph()
        assert graph.insert_edge(1, 2) is True
        assert graph.insert_edge(1, 2) is False  # pair already connected
        assert graph.edge_multiplicity(1, 2) == 2

    def test_remove_specific_edge_id(self):
        graph = MultiEdgeCuckooGraph()
        graph.add_edge(1, 2, 10)
        graph.add_edge(1, 2, 11)
        assert graph.remove_edge_id(1, 2, 10) is True
        assert list(graph.find_edges(1, 2)) == [11]
        assert graph.remove_edge_id(1, 2, 99) is False
        assert graph.remove_edge_id(1, 2, 11) is True
        assert not graph.has_edge(1, 2)

    def test_delete_edge_removes_all_parallel_edges(self):
        graph = MultiEdgeCuckooGraph()
        graph.add_edge(1, 2, 10)
        graph.add_edge(1, 2, 11)
        assert graph.delete_edge(1, 2) is True
        assert graph.edge_multiplicity(1, 2) == 0
        assert graph.delete_edge(1, 2) is False

    def test_add_edges_bulk(self):
        graph = MultiEdgeCuckooGraph()
        graph.add_edges([(1, 2, 1), (1, 2, 2), (3, 4, 3)])
        assert graph.edge_multiplicity(1, 2) == 2
        assert graph.edge_multiplicity(3, 4) == 1

    def test_high_fanout_pair_list(self):
        graph = MultiEdgeCuckooGraph()
        for edge_id in range(300):
            graph.add_edge(7, 8, edge_id)
        assert graph.edge_multiplicity(7, 8) == 300
        assert sorted(graph.find_edges(7, 8)) == list(range(300))

    def test_memory_accounts_for_edge_lists(self):
        sparse = MultiEdgeCuckooGraph()
        sparse.add_edge(1, 2, 1)
        heavy = MultiEdgeCuckooGraph()
        for edge_id in range(100):
            heavy.add_edge(1, 2, edge_id)
        assert heavy.memory_bytes() > sparse.memory_bytes()

    def test_successors_unique_destinations(self):
        graph = MultiEdgeCuckooGraph()
        graph.add_edge(1, 2, 1)
        graph.add_edge(1, 2, 2)
        graph.add_edge(1, 3, 3)
        assert sorted(graph.successors(1)) == [2, 3]
