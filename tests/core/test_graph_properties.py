"""Property-based tests: CuckooGraph versus a reference dict-of-sets model."""

from collections import defaultdict

from hypothesis import given, settings, strategies as st

from repro import CuckooGraph, CuckooGraphConfig, WeightedCuckooGraph

#: A compact node universe keeps collisions (and therefore interesting
#: structural events: kicks, transformations, contractions) frequent.
node_ids = st.integers(min_value=0, max_value=60)

operations = st.lists(
    st.tuples(st.sampled_from(["insert", "delete", "query"]), node_ids, node_ids),
    min_size=1,
    max_size=400,
)

#: Small, stress-heavy configurations alongside the paper configuration.
configs = st.sampled_from(
    [
        CuckooGraphConfig(),
        CuckooGraphConfig(d=2, R=2, T=20, initial_scht_length=1, initial_lcht_length=2),
        CuckooGraphConfig(d=4, R=3, G=0.8, lam=0.3, initial_lcht_length=4),
        CuckooGraphConfig(d=1, R=1, T=4, initial_scht_length=1, initial_lcht_length=1),
        CuckooGraphConfig(collapse_chain_to_slots=True),
        CuckooGraphConfig(use_denylist=False, d=2, T=8, initial_lcht_length=2),
    ]
)


@settings(max_examples=60, deadline=None)
@given(ops=operations, config=configs)
def test_cuckoograph_matches_reference_model(ops, config):
    """Any operation sequence leaves CuckooGraph equal to a dict-of-sets model."""
    graph = CuckooGraph(config)
    model: dict[int, set[int]] = defaultdict(set)
    for action, u, v in ops:
        if action == "insert":
            expected_new = v not in model[u]
            assert graph.insert_edge(u, v) is expected_new
            model[u].add(v)
        elif action == "delete":
            expected_present = v in model[u]
            assert graph.delete_edge(u, v) is expected_present
            model[u].discard(v)
        else:
            assert graph.has_edge(u, v) is (v in model[u])
    expected_edges = sorted((u, v) for u, vs in model.items() for v in vs)
    assert sorted(graph.edges()) == expected_edges
    assert graph.num_edges == len(expected_edges)
    for u, vs in model.items():
        assert sorted(graph.successors(u)) == sorted(vs)


@settings(max_examples=40, deadline=None)
@given(ops=operations)
def test_weighted_cuckoograph_matches_reference_counter(ops):
    """The weighted version tracks per-edge multiplicities exactly."""
    graph = WeightedCuckooGraph()
    model: dict[tuple[int, int], int] = defaultdict(int)
    for action, u, v in ops:
        if action == "insert":
            graph.insert_weighted_edge(u, v)
            model[(u, v)] += 1
        elif action == "delete":
            removed = graph.delete_edge(u, v)
            if model[(u, v)] > 0:
                model[(u, v)] -= 1
                assert removed is (model[(u, v)] == 0)
                if model[(u, v)] == 0:
                    del model[(u, v)]
            else:
                assert removed is False
                model.pop((u, v), None)
        else:
            assert graph.edge_weight(u, v) == model.get((u, v), 0)
    assert graph.num_edges == len(model)
    for (u, v), weight in model.items():
        assert graph.edge_weight(u, v) == weight


@settings(max_examples=30, deadline=None)
@given(
    neighbours=st.lists(st.integers(min_value=0, max_value=5000), min_size=1,
                        max_size=300, unique=True)
)
def test_single_hub_transformation_roundtrip(neighbours):
    """Growing then fully shrinking one node's neighbourhood never loses edges."""
    graph = CuckooGraph(CuckooGraphConfig(initial_scht_length=1, d=4))
    for v in neighbours:
        graph.insert_edge(0, v)
    assert sorted(graph.successors(0)) == sorted(neighbours)
    for v in neighbours:
        assert graph.delete_edge(0, v)
    assert graph.successors(0) == []
    assert graph.num_edges == 0


@settings(max_examples=30, deadline=None)
@given(ops=operations, config=configs)
def test_memory_model_is_positive_and_tracks_structure(ops, config):
    """memory_bytes stays positive and reflects the allocated cells."""
    graph = CuckooGraph(config)
    for action, u, v in ops:
        if action == "insert":
            graph.insert_edge(u, v)
        elif action == "delete":
            graph.delete_edge(u, v)
    footprint = graph.memory_bytes()
    assert footprint > 0
    assert footprint >= graph.lcht.total_cells * 8
