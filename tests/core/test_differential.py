"""Differential property test: CuckooGraph vs sharded vs adjacency oracle.

A random insert / query / delete operation sequence is driven, batch by
batch, through three stores at once:

* :class:`~repro.core.graph.CuckooGraph` -- the paper's structure;
* :class:`~repro.core.sharded.ShardedCuckooGraph` -- the batch-capable
  front-end (exercised through its batch APIs, so grouping/scatter bugs
  cannot hide);
* :class:`~repro.baselines.adjacency.AdjacencyListGraph` -- the trivially
  correct oracle.

After every batch the observable state of the three stores must be
identical: per-operation results, edge sets, edge counts, successor lists
and membership answers.

The second half of the module differentially tests the sharded store's
*executor*: the same randomized batches driven through
``executor="serial"``, ``executor="threads"`` and ``executor="processes"``
must produce identical results, edge state, aggregated counters and
modelled accesses -- the fan-out strategy (in-process, thread pool, or
worker processes speaking the WAL op encoding over pipes) may only change
wall-clock, never observables.
"""

import random

import pytest
from hypothesis import given, settings, strategies as st

from repro import CuckooGraph, ShardedCuckooGraph
from repro.baselines import AdjacencyListGraph

#: Node-id universe; small enough that inserts, deletes and queries collide.
NODE_RANGE = 60


def random_batch(rng: random.Random, size: int) -> list[tuple[str, int, int]]:
    ops = []
    for _ in range(size):
        action = rng.choice(["insert", "insert", "insert", "delete", "query"])
        ops.append((action, rng.randrange(NODE_RANGE), rng.randrange(NODE_RANGE)))
    return ops


def assert_observably_identical(cuckoo, sharded, oracle):
    """The full observable DynamicGraphStore state must agree everywhere."""
    expected = sorted(oracle.edges())
    assert sorted(cuckoo.edges()) == expected
    assert sorted(sharded.edges()) == expected
    assert cuckoo.num_edges == sharded.num_edges == oracle.num_edges
    sources = {u for u, _ in expected}
    fanned = sharded.successors_many(range(NODE_RANGE))
    for u in range(NODE_RANGE):
        reference = sorted(oracle.successors(u))
        assert sorted(cuckoo.successors(u)) == reference
        assert sorted(fanned[u]) == reference
        assert cuckoo.out_degree(u) == sharded.out_degree(u) == len(reference)
        assert cuckoo.has_node(u) == sharded.has_node(u) == (u in sources)


@pytest.mark.parametrize("seed", [1, 7, 20240515])
@pytest.mark.parametrize("num_shards", [1, 3, 8])
def test_random_operation_batches_agree(seed, num_shards):
    """Batched random workloads leave all three stores observably identical."""
    rng = random.Random(seed)
    cuckoo = CuckooGraph()
    sharded = ShardedCuckooGraph(num_shards=num_shards)
    oracle = AdjacencyListGraph()
    for _ in range(12):
        batch = random_batch(rng, rng.randrange(10, 120))
        inserts = [(u, v) for action, u, v in batch if action == "insert"]
        deletes = [(u, v) for action, u, v in batch if action == "delete"]
        queries = [(u, v) for action, u, v in batch if action == "query"]

        # The sharded store consumes whole batches; the single-instance
        # stores replay the same per-operation stream.  Results must agree
        # operation by operation, not just in aggregate.
        assert sharded.insert_edges(inserts) == \
            sum(oracle.insert_edge(u, v) for u, v in inserts)
        for u, v in inserts:
            cuckoo.insert_edge(u, v)
        sharded_deleted = sharded.delete_edges(deletes)
        oracle_deleted = 0
        for u, v in deletes:
            present = oracle.delete_edge(u, v)
            assert cuckoo.delete_edge(u, v) == present
            oracle_deleted += present
        assert sharded_deleted == oracle_deleted
        assert sharded.has_edges(queries) == [oracle.has_edge(u, v) for u, v in queries]
        for u, v in queries:
            assert cuckoo.has_edge(u, v) == oracle.has_edge(u, v)

        assert_observably_identical(cuckoo, sharded, oracle)


@settings(max_examples=30, deadline=None)
@given(
    batches=st.lists(
        st.lists(
            st.tuples(
                st.sampled_from(["insert", "delete", "query"]),
                st.integers(min_value=0, max_value=NODE_RANGE - 1),
                st.integers(min_value=0, max_value=NODE_RANGE - 1),
            ),
            max_size=60,
        ),
        max_size=6,
    ),
    num_shards=st.integers(min_value=1, max_value=6),
)
def test_hypothesis_batches_agree(batches, num_shards):
    """Hypothesis-driven version: adversarial batches, any shard count."""
    cuckoo = CuckooGraph()
    sharded = ShardedCuckooGraph(num_shards=num_shards)
    oracle = AdjacencyListGraph()
    for batch in batches:
        inserts = [(u, v) for action, u, v in batch if action == "insert"]
        deletes = [(u, v) for action, u, v in batch if action == "delete"]
        queries = [(u, v) for action, u, v in batch if action == "query"]
        oracle_inserted = sum(oracle.insert_edge(u, v) for u, v in inserts)
        assert sharded.insert_edges(inserts) == oracle_inserted
        assert sum(cuckoo.insert_edge(u, v) for u, v in inserts) == oracle_inserted
        oracle_deleted = sum(oracle.delete_edge(u, v) for u, v in deletes)
        assert sharded.delete_edges(deletes) == oracle_deleted
        assert sum(cuckoo.delete_edge(u, v) for u, v in deletes) == oracle_deleted
        expected_answers = [oracle.has_edge(u, v) for u, v in queries]
        assert sharded.has_edges(queries) == expected_answers
        assert cuckoo.has_edges(queries) == expected_answers

        expected_edges = sorted(oracle.edges())
        assert sorted(sharded.edges()) == expected_edges
        assert sorted(cuckoo.edges()) == expected_edges
        assert sharded.num_edges == cuckoo.num_edges == len(expected_edges)


# --------------------------------------------------------------------- #
# Serial vs threaded executor
# --------------------------------------------------------------------- #


@pytest.mark.parametrize("seed", [2, 13, 20250729])
@pytest.mark.parametrize("num_shards", [2, 5])
def test_threaded_executor_matches_serial(seed, num_shards):
    """Randomized batches: the executor choice must be observably invisible."""
    rng = random.Random(seed)
    serial = ShardedCuckooGraph(num_shards=num_shards, executor="serial")
    with ShardedCuckooGraph(num_shards=num_shards, executor="threads") as threaded:
        for _ in range(10):
            batch = random_batch(rng, rng.randrange(10, 150))
            inserts = [(u, v) for action, u, v in batch if action == "insert"]
            deletes = [(u, v) for action, u, v in batch if action == "delete"]
            queries = [(u, v) for action, u, v in batch if action == "query"]

            assert serial.insert_edges(inserts) == threaded.insert_edges(inserts)
            assert serial.delete_edges(deletes) == threaded.delete_edges(deletes)
            assert serial.has_edges(queries) == threaded.has_edges(queries)

            frontier = [rng.randrange(NODE_RANGE) for _ in range(25)]
            serial_fanout = serial.successors_many(frontier)
            threaded_fanout = threaded.successors_many(frontier)
            assert serial_fanout == threaded_fanout
            # Same key order, not just the same mapping (batch contract).
            assert list(serial_fanout) == list(threaded_fanout)

            assert sorted(serial.edges()) == sorted(threaded.edges())
            assert serial.num_edges == threaded.num_edges
            assert serial.accesses == threaded.accesses
            assert serial.counters.snapshot() == threaded.counters.snapshot()
            assert [shard.counters.snapshot() for shard in serial.shards] == \
                   [shard.counters.snapshot() for shard in threaded.shards]


def test_threaded_executor_agrees_with_oracle():
    """Threads vs the trivially correct oracle, end to end."""
    rng = random.Random(99)
    threaded = ShardedCuckooGraph(num_shards=4, executor="threads")
    oracle = AdjacencyListGraph()
    for _ in range(8):
        batch = random_batch(rng, rng.randrange(20, 120))
        inserts = [(u, v) for action, u, v in batch if action == "insert"]
        deletes = [(u, v) for action, u, v in batch if action == "delete"]
        queries = [(u, v) for action, u, v in batch if action == "query"]
        assert threaded.insert_edges(inserts) == \
            sum(oracle.insert_edge(u, v) for u, v in inserts)
        assert threaded.delete_edges(deletes) == \
            sum(oracle.delete_edge(u, v) for u, v in deletes)
        assert threaded.has_edges(queries) == \
            [oracle.has_edge(u, v) for u, v in queries]
        fanned = threaded.successors_many(range(NODE_RANGE))
        for u in range(NODE_RANGE):
            assert sorted(fanned[u]) == sorted(oracle.successors(u))
    threaded.close()


# --------------------------------------------------------------------- #
# Serial vs threads vs processes: all three executors, byte-identical
# --------------------------------------------------------------------- #


@pytest.mark.parametrize("seed", [3, 17, 20260807])
@pytest.mark.parametrize("num_shards", [2, 5])
def test_process_executor_matches_serial_and_threads(seed, num_shards):
    """The process-backed executor is observably identical to the others.

    Per-shard state lives in worker processes and every batch crosses the
    WAL-encoded shard RPC, yet results, edge state, shard sizes, aggregated
    counters, modelled accesses and structure summaries must match the
    in-process executors exactly -- crossing a pipe may not change a single
    observable bit.
    """
    rng = random.Random(seed)
    serial = ShardedCuckooGraph(num_shards=num_shards, executor="serial")
    threaded = ShardedCuckooGraph(num_shards=num_shards, executor="threads")
    procs = ShardedCuckooGraph(num_shards=num_shards, executor="processes")
    try:
        for _ in range(8):
            batch = random_batch(rng, rng.randrange(10, 150))
            inserts = [(u, v) for action, u, v in batch if action == "insert"]
            deletes = [(u, v) for action, u, v in batch if action == "delete"]
            queries = [(u, v) for action, u, v in batch if action == "query"]

            inserted = serial.insert_edges(inserts)
            assert threaded.insert_edges(inserts) == inserted
            assert procs.insert_edges(inserts) == inserted
            deleted = serial.delete_edges(deletes)
            assert threaded.delete_edges(deletes) == deleted
            assert procs.delete_edges(deletes) == deleted
            answers = serial.has_edges(queries)
            assert threaded.has_edges(queries) == answers
            assert procs.has_edges(queries) == answers

            frontier = [rng.randrange(NODE_RANGE) for _ in range(25)]
            fanout = serial.successors_many(frontier)
            assert threaded.successors_many(frontier) == fanout
            procs_fanout = procs.successors_many(frontier)
            assert procs_fanout == fanout
            # Same key order, not just the same mapping (batch contract).
            assert list(procs_fanout) == list(fanout)

            assert sorted(procs.edges()) == sorted(serial.edges())
            assert procs.num_edges == serial.num_edges
            assert procs.shard_sizes() == serial.shard_sizes()
            assert procs.accesses == serial.accesses == threaded.accesses
            assert procs.counters.snapshot() == serial.counters.snapshot() \
                == threaded.counters.snapshot()
        assert procs.structure_summary() == serial.structure_summary()
    finally:
        procs.close()
        threaded.close()
