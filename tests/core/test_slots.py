"""Tests for Part 2 of an L-CHT cell (small slots -> S-CHT chain)."""

import random

from repro.core import CuckooGraphConfig
from repro.core.counters import Counters
from repro.core.hashing import HashFamily
from repro.core.slots import AdjacencyPart2, MODE_CHAIN, MODE_SLOTS


def make_part2(config=None, slot_capacity=None, drain_source=None):
    config = config if config is not None else CuckooGraphConfig(initial_scht_length=2)
    return AdjacencyPart2(
        config=config,
        hash_family=HashFamily("mult", 7),
        counters=Counters(),
        rng=random.Random(7),
        slot_capacity=slot_capacity,
        drain_source=drain_source,
    )


class TestSlotMode:
    def test_starts_in_slot_mode_with_2R_capacity(self):
        part2 = make_part2()
        assert part2.mode == MODE_SLOTS
        assert part2.slot_capacity == 6  # 2R with R=3
        assert not part2.is_transformed

    def test_insert_and_lookup_within_capacity(self):
        part2 = make_part2()
        for v in range(6):
            assert part2.insert(v, None) == []
        assert part2.mode == MODE_SLOTS
        assert len(part2) == 6
        assert 3 in part2
        assert 99 not in part2
        assert sorted(part2.neighbours()) == list(range(6))

    def test_weighted_capacity_is_R(self):
        part2 = make_part2(slot_capacity=3)
        for v in range(3):
            part2.insert(v, 1)
        assert part2.mode == MODE_SLOTS
        part2.insert(3, 1)
        assert part2.mode == MODE_CHAIN

    def test_set_updates_payload(self):
        part2 = make_part2()
        part2.insert(1, "old")
        assert part2.set(1, "new") is True
        assert part2.get(1) == "new"
        assert part2.set(9, "x") is False

    def test_delete_in_slot_mode(self):
        part2 = make_part2()
        part2.insert(1, None)
        deleted, leftovers = part2.delete(1)
        assert deleted and leftovers == []
        deleted, _ = part2.delete(1)
        assert not deleted


class TestTransformation:
    def test_exceeding_capacity_transforms_to_chain(self):
        part2 = make_part2()
        for v in range(6):
            part2.insert(v, None)
        assert part2.mode == MODE_SLOTS
        part2.insert(6, None)  # the 2R+1-th neighbour triggers TRANSFORMATION
        assert part2.mode == MODE_CHAIN
        assert part2.is_transformed
        assert part2.chain is not None
        assert sorted(part2.neighbours()) == list(range(7))

    def test_chain_keeps_growing(self):
        part2 = make_part2()
        parked = set()
        for v in range(500):
            parked.update(key for key, _ in part2.insert(v, None))
        # Unplaceable values are handed back for the S-DL; nothing vanishes.
        assert set(part2.neighbours()) | parked == set(range(500))
        assert len(part2) == 500 - len(parked)
        assert part2.chain.num_tables <= 3

    def test_payloads_survive_transformation(self):
        part2 = make_part2()
        for v in range(7):
            part2.insert(v, v * 10)
        assert part2.get(5) == 50
        assert part2.get(6) == 60

    def test_set_after_transformation(self):
        part2 = make_part2()
        for v in range(10):
            part2.insert(v, v)
        assert part2.set(8, "updated") is True
        assert part2.get(8) == "updated"

    def test_delete_after_transformation(self):
        part2 = make_part2()
        for v in range(50):
            part2.insert(v, None)
        for v in range(40):
            deleted, _ = part2.delete(v)
            assert deleted
        assert sorted(part2.neighbours()) == list(range(40, 50))

    def test_collapse_back_to_slots_when_enabled(self):
        config = CuckooGraphConfig(initial_scht_length=2, collapse_chain_to_slots=True)
        part2 = make_part2(config=config)
        for v in range(20):
            part2.insert(v, None)
        assert part2.mode == MODE_CHAIN
        for v in range(18):
            part2.delete(v)
        assert part2.mode == MODE_SLOTS
        assert sorted(part2.neighbours()) == [18, 19]

    def test_no_collapse_by_default(self):
        part2 = make_part2()
        for v in range(20):
            part2.insert(v, None)
        for v in range(19):
            part2.delete(v)
        assert part2.mode == MODE_CHAIN

    def test_force_expand_from_slot_mode_transforms(self):
        part2 = make_part2()
        part2.insert(1, None)
        part2.force_expand()
        assert part2.mode == MODE_CHAIN
        assert 1 in part2

    def test_chain_modelled_bytes_zero_in_slot_mode(self):
        part2 = make_part2()
        part2.insert(1, None)
        assert part2.chain_modelled_bytes(8) == 0
        for v in range(10):
            part2.insert(v + 10, None)
        assert part2.chain_modelled_bytes(8) > 0

    def test_drain_source_used_after_chain_expansion(self):
        parked = [(900, None), (901, None)]

        def drain():
            items, parked[:] = list(parked), []
            return items

        config = CuckooGraphConfig(initial_scht_length=2, d=4)
        part2 = make_part2(config=config, drain_source=drain)
        for v in range(120):
            part2.insert(v, None)
        assert 900 in part2
        assert 901 in part2
