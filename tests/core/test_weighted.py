"""Tests for the extended (streaming / weighted) CuckooGraph."""

import random
from collections import defaultdict

import pytest

from repro import WeightedCuckooGraph
from repro.interfaces import WeightedGraphStore


class TestWeights:
    def test_insert_sets_weight_one(self):
        graph = WeightedCuckooGraph()
        assert graph.insert_weighted_edge(1, 2) == 1
        assert graph.edge_weight(1, 2) == 1

    def test_duplicate_insert_increments(self):
        graph = WeightedCuckooGraph()
        graph.insert_weighted_edge(1, 2)
        assert graph.insert_weighted_edge(1, 2) == 2
        assert graph.insert_weighted_edge(1, 2, delta=5) == 7

    def test_insert_edge_returns_true_only_for_new_pairs(self):
        graph = WeightedCuckooGraph()
        assert graph.insert_edge(1, 2) is True
        assert graph.insert_edge(1, 2) is False
        assert graph.num_edges == 1

    def test_delta_must_be_positive(self):
        graph = WeightedCuckooGraph()
        with pytest.raises(ValueError):
            graph.insert_weighted_edge(1, 2, delta=0)

    def test_weight_of_absent_edge_is_zero(self):
        graph = WeightedCuckooGraph()
        assert graph.edge_weight(5, 6) == 0


class TestDeletion:
    def test_delete_decrements_until_zero(self):
        graph = WeightedCuckooGraph()
        graph.insert_weighted_edge(1, 2, delta=3)
        assert graph.delete_edge(1, 2) is False
        assert graph.edge_weight(1, 2) == 2
        assert graph.delete_edge(1, 2) is False
        assert graph.delete_edge(1, 2) is True
        assert not graph.has_edge(1, 2)
        assert graph.num_edges == 0

    def test_delete_absent_edge(self):
        graph = WeightedCuckooGraph()
        assert graph.delete_edge(1, 2) is False

    def test_remove_edge_completely(self):
        graph = WeightedCuckooGraph()
        graph.insert_weighted_edge(1, 2, delta=10)
        assert graph.remove_edge_completely(1, 2) is True
        assert graph.edge_weight(1, 2) == 0
        assert graph.remove_edge_completely(1, 2) is False


class TestStreamSemantics:
    def test_matches_reference_counter_on_random_stream(self):
        rng = random.Random(99)
        graph = WeightedCuckooGraph()
        reference: dict[tuple[int, int], int] = defaultdict(int)
        for _ in range(20000):
            u, v = rng.randrange(80), rng.randrange(80)
            graph.insert_weighted_edge(u, v)
            reference[(u, v)] += 1
        assert graph.num_edges == len(reference)
        for (u, v), weight in reference.items():
            assert graph.edge_weight(u, v) == weight
        assert graph.total_weight == 20000

    def test_weighted_edges_iteration(self):
        graph = WeightedCuckooGraph()
        graph.insert_weighted_edge(1, 2, delta=2)
        graph.insert_weighted_edge(1, 3)
        assert sorted(graph.weighted_edges()) == [(1, 2, 2), (1, 3, 1)]

    def test_successors_include_weighted_neighbours(self):
        graph = WeightedCuckooGraph()
        for v in range(1, 40):
            graph.insert_weighted_edge(0, v, delta=v)
        assert sorted(graph.successors(0)) == list(range(1, 40))
        assert graph.edge_weight(0, 39) == 39

    def test_high_degree_weighted_node_uses_chain(self):
        graph = WeightedCuckooGraph()
        for v in range(500):
            graph.insert_weighted_edge(7, v, delta=2)
        part2 = graph.part2_of(7)
        assert part2.is_transformed
        assert graph.edge_weight(7, 499) == 2

    def test_is_weighted_graph_store(self):
        assert isinstance(WeightedCuckooGraph(), WeightedGraphStore)

    def test_memory_model_uses_weighted_cells(self):
        weighted = WeightedCuckooGraph()
        basic_layout = weighted._layout
        assert basic_layout.weighted is True
        assert basic_layout.scht_cell_bytes > 8
