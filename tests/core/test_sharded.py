"""Tests for the sharded batch-capable CuckooGraph front-end.

Contract conformance is covered by the cross-store suite in
``tests/baselines/test_store_contract.py`` (the sharded store is registered
in ``ALL_STORE_FACTORIES``); this module checks the sharding-specific
guarantees: routing stability, batch-vs-loop equivalence, aggregation of
counters and memory, and the weighted pass-throughs.
"""

import pytest

from repro import CuckooGraph, ShardedCuckooGraph
from repro.core import CuckooGraphConfig
from repro.core.errors import ConfigurationError, StoreClosedError
from repro.core.sharded import shard_index


class TestRouting:
    def test_same_node_always_lands_on_same_shard(self, rng):
        graph = ShardedCuckooGraph(num_shards=4)
        for _ in range(500):
            u = rng.randrange(10**6)
            assert graph.shard_of(u) == graph.shard_of(u) == shard_index(u, 4)

    def test_routing_is_stable_across_instances(self):
        first = ShardedCuckooGraph(num_shards=8)
        second = ShardedCuckooGraph(num_shards=8)
        assert [first.shard_of(u) for u in range(1000)] == \
               [second.shard_of(u) for u in range(1000)]

    def test_all_out_edges_of_a_node_share_a_shard(self, small_edge_set):
        graph = ShardedCuckooGraph(num_shards=4)
        graph.insert_edges(small_edge_set)
        for shard_id, shard in enumerate(graph.shards):
            for u, _ in shard.edges():
                assert graph.shard_of(u) == shard_id

    def test_shards_spread_load(self, small_edge_set):
        graph = ShardedCuckooGraph(num_shards=4)
        graph.insert_edges(small_edge_set)
        sizes = graph.shard_sizes()
        assert sum(sizes) == len(small_edge_set)
        assert all(size > 0 for size in sizes)

    def test_single_shard_matches_plain_cuckoograph(self, small_edge_set):
        sharded = ShardedCuckooGraph(num_shards=1)
        plain = CuckooGraph()
        for u, v in small_edge_set:
            assert sharded.insert_edge(u, v) == plain.insert_edge(u, v)
        assert sorted(sharded.edges()) == sorted(plain.edges())
        assert sharded.num_edges == plain.num_edges

    def test_invalid_shard_count_rejected(self):
        with pytest.raises(ConfigurationError):
            ShardedCuckooGraph(num_shards=0)

    def test_shards_use_distinct_hash_seeds(self):
        graph = ShardedCuckooGraph(num_shards=4, config=CuckooGraphConfig(seed=7))
        assert sorted(shard.config.seed for shard in graph.shards) == [7, 8, 9, 10]


class TestBatchEquivalence:
    """Each batch API must observably equal its one-at-a-time loop."""

    def test_insert_edges_matches_loop(self, small_edge_set):
        batched = ShardedCuckooGraph(num_shards=4)
        looped = ShardedCuckooGraph(num_shards=4)
        inserted = batched.insert_edges(small_edge_set)
        assert inserted == sum(looped.insert_edge(u, v) for u, v in small_edge_set)
        assert sorted(batched.edges()) == sorted(looped.edges())
        # Re-inserting the same batch finds nothing new.
        assert batched.insert_edges(small_edge_set[:100]) == 0

    def test_delete_edges_matches_loop(self, small_edge_set):
        batched = ShardedCuckooGraph(num_shards=4)
        looped = ShardedCuckooGraph(num_shards=4)
        batched.insert_edges(small_edge_set)
        looped.insert_edges(small_edge_set)
        victims = small_edge_set[:500] + [(10**9, 10**9)]
        assert batched.delete_edges(victims) == \
               sum(looped.delete_edge(u, v) for u, v in victims) == 500
        assert sorted(batched.edges()) == sorted(looped.edges())

    def test_has_edges_preserves_input_order(self, small_edge_set):
        graph = ShardedCuckooGraph(num_shards=4)
        graph.insert_edges(small_edge_set[:600])
        probe = small_edge_set + [(10**9, 1), (10**9, 2)]
        answers = graph.has_edges(probe)
        assert answers == [graph.has_edge(u, v) for u, v in probe]
        assert answers[:600] == [True] * 600
        assert answers[-2:] == [False, False]

    def test_successors_many_matches_per_node_queries(self, small_edge_set, reference):
        graph = ShardedCuckooGraph(num_shards=4)
        graph.insert_edges(small_edge_set)
        adjacency = reference(small_edge_set)
        nodes = list(adjacency) + [10**9]
        fanned = graph.successors_many(nodes)
        assert set(fanned) == set(nodes)
        for u in nodes:
            assert sorted(fanned[u]) == sorted(adjacency.get(u, set()))
        # Duplicate requests collapse to one answer per distinct node.
        assert list(graph.successors_many([1, 1, 1])) == [1]

    def test_batch_costs_no_more_accesses_than_loop(self, small_edge_set):
        batched = ShardedCuckooGraph(num_shards=4)
        looped = ShardedCuckooGraph(num_shards=4)
        batched.insert_edges(small_edge_set)
        looped.insert_edges(small_edge_set)
        batched.reset_accesses()
        looped.reset_accesses()
        batched.has_edges(small_edge_set)
        for u, v in small_edge_set:
            looped.has_edge(u, v)
        assert batched.accesses == looped.accesses


class TestAggregation:
    def test_counters_aggregate_across_shards(self, small_edge_set):
        graph = ShardedCuckooGraph(num_shards=4)
        graph.insert_edges(small_edge_set)
        graph.has_edges(small_edge_set)
        graph.delete_edges(small_edge_set[:100])
        totals = graph.counters
        assert totals.edges_inserted == len(small_edge_set)
        assert totals.edges_queried == len(small_edge_set)
        assert totals.edges_deleted == 100
        per_shard = [shard.counters for shard in graph.shards]
        assert totals.bucket_probes == sum(c.bucket_probes for c in per_shard)
        assert totals.insert_attempts == sum(c.insert_attempts for c in per_shard)

    def test_memory_aggregates_across_shards(self, small_edge_set):
        graph = ShardedCuckooGraph(num_shards=4)
        graph.insert_edges(small_edge_set)
        assert graph.memory_bytes() == \
               sum(shard.memory_bytes() for shard in graph.shards)
        assert graph.memory_bytes() > 0

    def test_accesses_aggregate_and_reset(self, small_edge_set):
        graph = ShardedCuckooGraph(num_shards=4)
        graph.insert_edges(small_edge_set)
        assert graph.accesses == sum(shard.accesses for shard in graph.shards)
        assert graph.accesses > 0
        graph.reset_accesses()
        assert graph.accesses == 0
        assert all(shard.accesses == 0 for shard in graph.shards)

    def test_structure_summary_reports_every_shard(self, small_edge_set):
        graph = ShardedCuckooGraph(num_shards=4)
        graph.insert_edges(small_edge_set)
        summary = graph.structure_summary()
        assert summary["num_shards"] == 4
        assert summary["num_edges"] == len(small_edge_set)
        assert len(summary["shards"]) == 4
        assert summary["shard_edge_counts"] == graph.shard_sizes()

    def test_num_source_nodes_aggregates(self, small_edge_set, reference):
        graph = ShardedCuckooGraph(num_shards=4)
        graph.insert_edges(small_edge_set)
        assert graph.num_source_nodes == len(reference(small_edge_set))


class TestExecutor:
    """The pluggable executor: validation, lifecycle and equivalence."""

    def test_invalid_executor_rejected(self):
        with pytest.raises(ConfigurationError):
            ShardedCuckooGraph(num_shards=2, executor="fibers")

    def test_serial_is_the_default_and_creates_no_pool(self, small_edge_set):
        graph = ShardedCuckooGraph(num_shards=4)
        assert graph.executor == "serial"
        graph.insert_edges(small_edge_set)
        assert graph._pool is None

    def test_pool_is_lazy_and_closeable(self, small_edge_set):
        graph = ShardedCuckooGraph(num_shards=4, executor="threads")
        assert graph._pool is None
        graph.insert_edges(small_edge_set)
        assert graph._pool is not None
        graph.close()
        assert graph._pool is None
        assert graph.closed

    def test_context_manager_closes_pool(self, small_edge_set):
        with ShardedCuckooGraph(num_shards=4, executor="threads") as graph:
            graph.insert_edges(small_edge_set)
            assert graph._pool is not None
        assert graph._pool is None
        assert graph.closed

    def test_threaded_batches_match_serial(self, small_edge_set, reference):
        serial = ShardedCuckooGraph(num_shards=4)
        with ShardedCuckooGraph(num_shards=4, executor="threads") as threaded:
            assert threaded.insert_edges(small_edge_set) == \
                serial.insert_edges(small_edge_set)
            assert threaded.has_edges(small_edge_set) == serial.has_edges(small_edge_set)
            adjacency = reference(small_edge_set)
            fanned = threaded.successors_many(list(adjacency))
            assert fanned == serial.successors_many(list(adjacency))
            assert threaded.delete_edges(small_edge_set[:300]) == \
                serial.delete_edges(small_edge_set[:300]) == 300
            assert sorted(threaded.edges()) == sorted(serial.edges())

    def test_threaded_counters_and_accesses_match_serial(self, small_edge_set):
        serial = ShardedCuckooGraph(num_shards=4)
        with ShardedCuckooGraph(num_shards=4, executor="threads") as threaded:
            serial.insert_edges(small_edge_set)
            threaded.insert_edges(small_edge_set)
            serial.has_edges(small_edge_set)
            threaded.has_edges(small_edge_set)
            assert threaded.counters.snapshot() == serial.counters.snapshot()
            assert threaded.accesses == serial.accesses
            assert threaded.num_edges == serial.num_edges

    def test_max_workers_override(self, small_edge_set):
        with ShardedCuckooGraph(num_shards=8, executor="threads",
                                max_workers=2) as graph:
            assert graph.insert_edges(small_edge_set) == len(small_edge_set)
            assert graph._pool._max_workers == 2


class TestCloseLifecycle:
    """``close`` is idempotent; post-close batch calls fail loudly.

    The latent bug this pins down: ``close`` used to merely drop the thread
    pool, so a second ``close`` raced a concurrent batch lazily resurrecting
    it, and use-after-close silently rebuilt executor state.  Now the store
    transitions to a terminal closed state instead.
    """

    @pytest.mark.parametrize("executor", ["serial", "threads", "processes"])
    def test_close_is_idempotent(self, executor, small_edge_set):
        graph = ShardedCuckooGraph(num_shards=4, executor=executor)
        graph.insert_edges(small_edge_set[:50])
        graph.close()
        graph.close()  # second close must be a no-op, not an error
        assert graph.closed

    @pytest.mark.parametrize("executor", ["serial", "threads", "processes"])
    def test_batch_calls_after_close_raise(self, executor, small_edge_set):
        graph = ShardedCuckooGraph(num_shards=4, executor=executor)
        graph.insert_edges(small_edge_set[:50])
        graph.close()
        with pytest.raises(StoreClosedError):
            graph.insert_edges([(1, 2)])
        with pytest.raises(StoreClosedError):
            graph.delete_edges([(1, 2)])
        with pytest.raises(StoreClosedError):
            graph.has_edges([(1, 2)])
        with pytest.raises(StoreClosedError):
            graph.successors_many([1])

    def test_single_operation_reads_survive_close(self, small_edge_set):
        # threads only: closing merely drops the pool, the in-process shard
        # state is still readable.  The process executor has no such state
        # (see TestProcessExecutor.test_close_is_fully_terminal).
        graph = ShardedCuckooGraph(num_shards=4, executor="threads")
        graph.insert_edges(small_edge_set[:50])
        graph.close()
        u, v = small_edge_set[0]
        assert graph.has_edge(u, v)
        assert v in graph.successors(u)
        assert graph.num_edges == 50

    def test_close_before_any_batch_is_safe(self):
        graph = ShardedCuckooGraph(num_shards=2, executor="threads")
        graph.close()
        assert graph.closed and graph._pool is None


class TestProcessExecutor:
    """Process-backed shards: equivalence, lifecycle and crash handling.

    Unlike ``threads``, the shard state lives in long-lived worker
    processes and every operation -- single ops included -- crosses the
    WAL-op-encoded shard RPC.  These tests pin the executor-specific
    guarantees; byte-identical observables across all three executors are
    enforced by ``tests/core/test_differential.py`` and the fuzz lanes.
    """

    def test_batches_and_single_ops_match_serial(self, small_edge_set, reference):
        serial = ShardedCuckooGraph(num_shards=4)
        with ShardedCuckooGraph(num_shards=4, executor="processes") as procs:
            assert procs.insert_edges(small_edge_set) == \
                serial.insert_edges(small_edge_set)
            assert procs.has_edges(small_edge_set) == \
                serial.has_edges(small_edge_set)
            adjacency = reference(small_edge_set)
            fanned = procs.successors_many(list(adjacency))
            assert fanned == serial.successors_many(list(adjacency))
            for u, v in small_edge_set[:40]:
                assert procs.has_edge(u, v) == serial.has_edge(u, v)
                assert procs.out_degree(u) == serial.out_degree(u)
                assert sorted(procs.successors(u)) == sorted(serial.successors(u))
                assert procs.has_node(u) == serial.has_node(u)
            assert procs.delete_edges(small_edge_set[:300]) == \
                serial.delete_edges(small_edge_set[:300]) == 300
            assert sorted(procs.edges()) == sorted(serial.edges())
            assert sorted(procs.source_nodes()) == sorted(serial.source_nodes())
            assert procs.num_edges == serial.num_edges
            assert procs.num_source_nodes == serial.num_source_nodes
            assert procs.shard_sizes() == serial.shard_sizes()
            assert procs.memory_bytes() > 0

    def test_counters_and_accesses_match_serial(self, small_edge_set):
        serial = ShardedCuckooGraph(num_shards=4)
        with ShardedCuckooGraph(num_shards=4, executor="processes") as procs:
            serial.insert_edges(small_edge_set)
            procs.insert_edges(small_edge_set)
            serial.has_edges(small_edge_set)
            procs.has_edges(small_edge_set)
            assert procs.counters.snapshot() == serial.counters.snapshot()
            assert procs.accesses == serial.accesses
            procs.reset_accesses()
            assert procs.accesses == 0
            summary = procs.structure_summary()
            assert summary["num_shards"] == 4
            assert summary["num_edges"] == serial.num_edges

    def test_spawn_empty_preserves_executor_and_workers(self):
        with ShardedCuckooGraph(num_shards=4, executor="processes",
                                max_workers=2) as graph:
            graph.insert_edge(1, 2)
            fresh = graph.spawn_empty()
            try:
                assert fresh.executor == "processes"
                assert fresh.num_shards == 4
                assert fresh._procs is not None
                assert len(fresh._procs.workers) == 2
                assert fresh.num_edges == 0
                assert fresh.insert_edge(1, 2) is True
                assert graph.num_edges == 1
            finally:
                fresh.close()

    def test_close_is_fully_terminal(self, small_edge_set):
        graph = ShardedCuckooGraph(num_shards=4, executor="processes")
        graph.insert_edges(small_edge_set[:50])
        graph.close()
        graph.close()  # idempotent
        assert graph.closed
        u, v = small_edge_set[0]
        # The shard state died with the workers: even single-op reads must
        # fail loudly instead of answering from nothing.
        with pytest.raises(StoreClosedError):
            graph.has_edge(u, v)
        with pytest.raises(StoreClosedError):
            graph.successors(u)
        with pytest.raises(StoreClosedError):
            graph.insert_edge(9, 9)

    def test_worker_crash_surfaces_as_store_closed(self, small_edge_set):
        graph = ShardedCuckooGraph(num_shards=4, executor="processes",
                                   max_workers=2)
        try:
            graph.insert_edges(small_edge_set[:100])
            victim = graph._procs.workers[0].process
            victim.kill()
            victim.join(timeout=10)
            with pytest.raises(StoreClosedError):
                # Touch every shard so the dead worker is definitely hit.
                graph.has_edges(small_edge_set[:100])
            # The pool is dead for good, not limping on one worker.
            with pytest.raises(StoreClosedError):
                graph.insert_edge(1, 2)
        finally:
            graph.close()

    def test_shard_factory_rejected(self):
        from repro import WeightedCuckooGraph

        with pytest.raises(ConfigurationError):
            ShardedCuckooGraph(num_shards=2, executor="processes",
                               shard_factory=WeightedCuckooGraph)

    def test_weighted_process_shards(self):
        with ShardedCuckooGraph(num_shards=4, weighted=True,
                                executor="processes") as graph:
            assert graph.insert_weighted_edge(1, 2) == 1
            assert graph.insert_weighted_edge(1, 2) == 2
            assert graph.edge_weight(1, 2) == 2
            assert graph.delete_edge(1, 2) is False  # decrements to weight 1
            assert graph.has_edge(1, 2)
            assert graph.delete_edge(1, 2) is True
            assert not graph.has_edge(1, 2)
            for u in range(30):
                graph.insert_weighted_edge(u, u + 1)
                graph.insert_weighted_edge(u, u + 1)
            assert sorted(graph.weighted_edges()) == \
                [(u, u + 1, 2) for u in range(30)]

    def test_fewer_workers_than_shards(self, small_edge_set):
        with ShardedCuckooGraph(num_shards=8, executor="processes",
                                max_workers=3) as graph:
            serial = ShardedCuckooGraph(num_shards=8)
            assert graph.insert_edges(small_edge_set) == \
                serial.insert_edges(small_edge_set)
            assert sorted(graph.edges()) == sorted(serial.edges())
            assert len(graph._procs.workers) == 3


class TestWeightedSharding:
    def test_weighted_shards_count_duplicates(self):
        graph = ShardedCuckooGraph(num_shards=4, weighted=True)
        assert graph.insert_weighted_edge(1, 2) == 1
        assert graph.insert_weighted_edge(1, 2) == 2
        assert graph.edge_weight(1, 2) == 2
        assert graph.delete_edge(1, 2) is False  # decrements to weight 1
        assert graph.has_edge(1, 2)
        assert graph.delete_edge(1, 2) is True
        assert not graph.has_edge(1, 2)

    def test_weighted_edges_iterates_all_shards(self):
        graph = ShardedCuckooGraph(num_shards=4, weighted=True)
        for u in range(50):
            graph.insert_weighted_edge(u, u + 1)
            graph.insert_weighted_edge(u, u + 1)
        triples = sorted(graph.weighted_edges())
        assert triples == [(u, u + 1, 2) for u in range(50)]

    def test_custom_weighted_factory_enables_weighted_operations(self):
        from repro import WeightedCuckooGraph

        graph = ShardedCuckooGraph(num_shards=2, shard_factory=WeightedCuckooGraph)
        assert graph.weighted is True
        assert graph.insert_weighted_edge(1, 2) == 1
        assert graph.insert_weighted_edge(1, 2) == 2

    def test_weighted_operations_rejected_on_basic_shards(self):
        graph = ShardedCuckooGraph(num_shards=2)
        with pytest.raises(TypeError):
            graph.insert_weighted_edge(1, 2)
        with pytest.raises(TypeError):
            graph.edge_weight(1, 2)
        with pytest.raises(TypeError):
            list(graph.weighted_edges())
