"""Tests for the DENYLIST vectors (S-DL and L-DL)."""

import pytest

from repro.core.denylist import LargeDenylist, SmallDenylist
from repro.core.errors import CapacityError


class TestSmallDenylist:
    def test_add_and_contains(self):
        denylist = SmallDenylist(capacity=8)
        denylist.add(1, 2)
        assert denylist.contains(1, 2)
        assert not denylist.contains(2, 1)
        assert len(denylist) == 1

    def test_payloads_round_trip(self):
        denylist = SmallDenylist(capacity=8)
        denylist.add(1, 2, payload=5)
        assert denylist.get(1, 2) == 5
        denylist.set(1, 2, 9)
        assert denylist.get(1, 2) == 9
        assert denylist.get(3, 4, "default") == "default"

    def test_remove(self):
        denylist = SmallDenylist(capacity=8)
        denylist.add(1, 2)
        assert denylist.remove(1, 2) is True
        assert denylist.remove(1, 2) is False
        assert len(denylist) == 0

    def test_capacity_enforced(self):
        denylist = SmallDenylist(capacity=2)
        denylist.add(1, 1)
        denylist.add(1, 2)
        with pytest.raises(CapacityError):
            denylist.add(1, 3)

    def test_re_adding_existing_edge_never_overflows(self):
        denylist = SmallDenylist(capacity=1)
        denylist.add(1, 1, payload="a")
        denylist.add(1, 1, payload="b")  # same edge: update, not overflow
        assert denylist.get(1, 1) == "b"

    def test_drain_for_source_removes_only_matching_entries(self):
        denylist = SmallDenylist(capacity=16)
        denylist.add(1, 10, "a")
        denylist.add(1, 11, "b")
        denylist.add(2, 12, "c")
        drained = dict(denylist.drain_for_source(1))
        assert drained == {10: "a", 11: "b"}
        assert len(denylist) == 1
        assert denylist.contains(2, 12)

    def test_successors_of_does_not_remove(self):
        denylist = SmallDenylist(capacity=16)
        denylist.add(3, 30)
        denylist.add(3, 31)
        assert sorted(v for v, _ in denylist.successors_of(3)) == [30, 31]
        assert len(denylist) == 2

    def test_modelled_bytes(self):
        denylist = SmallDenylist(capacity=16)
        denylist.add(1, 2)
        denylist.add(3, 4)
        assert denylist.modelled_bytes(16) == 32


class TestLargeDenylist:
    def test_add_get_remove(self):
        denylist = LargeDenylist(capacity=4)
        denylist.add(7, "part2-object")
        assert denylist.contains(7)
        assert denylist.get(7) == "part2-object"
        assert denylist.remove(7) is True
        assert denylist.remove(7) is False

    def test_capacity_enforced(self):
        denylist = LargeDenylist(capacity=1)
        denylist.add(1, "a")
        with pytest.raises(CapacityError):
            denylist.add(2, "b")

    def test_drain_removes_everything(self):
        denylist = LargeDenylist(capacity=4)
        denylist.add(1, "a")
        denylist.add(2, "b")
        drained = dict(denylist.drain())
        assert drained == {1: "a", 2: "b"}
        assert len(denylist) == 0

    def test_items_and_keys(self):
        denylist = LargeDenylist(capacity=4)
        denylist.add(5, "x")
        assert list(denylist.items()) == [(5, "x")]
        assert list(denylist.keys()) == [5]

    def test_modelled_bytes(self):
        denylist = LargeDenylist(capacity=4)
        denylist.add(5, "x")
        assert denylist.modelled_bytes(56) == 56
