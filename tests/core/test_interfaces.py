"""Tests for the DynamicGraphStore default implementations."""

import pytest

from repro.interfaces import DynamicGraphStore, WeightedGraphStore
from repro import WeightedCuckooGraph


class MinimalStore(DynamicGraphStore):
    """Smallest possible conforming store, to exercise the ABC defaults."""

    name = "Minimal"

    def __init__(self):
        self._edges: set[tuple[int, int]] = set()

    def insert_edge(self, u: int, v: int) -> bool:
        if (u, v) in self._edges:
            return False
        self._edges.add((u, v))
        return True

    def has_edge(self, u: int, v: int) -> bool:
        return (u, v) in self._edges

    def delete_edge(self, u: int, v: int) -> bool:
        if (u, v) not in self._edges:
            return False
        self._edges.discard((u, v))
        return True

    def successors(self, u: int) -> list[int]:
        return [v for (source, v) in self._edges if source == u]

    def edges(self):
        return iter(sorted(self._edges))

    def memory_bytes(self) -> int:
        return 16 * len(self._edges)

    @property
    def num_edges(self) -> int:
        return len(self._edges)


class TestDefaults:
    def test_abstract_class_cannot_be_instantiated(self):
        with pytest.raises(TypeError):
            DynamicGraphStore()  # type: ignore[abstract]

    def test_default_out_degree_and_has_node(self):
        store = MinimalStore()
        store.insert_edge(1, 2)
        store.insert_edge(1, 3)
        assert store.out_degree(1) == 2
        assert store.has_node(1)
        assert not store.has_node(2)

    def test_default_node_iterators(self):
        store = MinimalStore()
        store.insert_edge(1, 2)
        store.insert_edge(3, 1)
        assert sorted(store.source_nodes()) == [1, 3]
        assert sorted(store.nodes()) == [1, 2, 3]
        assert store.num_nodes == 3

    def test_default_edges_iterator(self):
        store = MinimalStore()
        store.insert_edge(1, 2)
        store.insert_edge(2, 3)
        assert sorted(store.edges()) == [(1, 2), (2, 3)]

    def test_bulk_insert_and_delete_defaults(self):
        store = MinimalStore()
        assert store.insert_edges([(1, 2), (1, 2), (2, 3)]) == 2
        assert store.delete_edges([(1, 2), (9, 9)]) == 1

    def test_default_access_counter_exists(self):
        store = MinimalStore()
        assert store.accesses == 0
        store.reset_accesses()
        assert store.accesses == 0


class TestWeightedContract:
    def test_weighted_store_base_insert_not_implemented(self):
        class Incomplete(MinimalStore, WeightedGraphStore):
            def edge_weight(self, u: int, v: int) -> int:
                return 1 if self.has_edge(u, v) else 0

        with pytest.raises(NotImplementedError):
            Incomplete().insert_weighted_edge(1, 2)

    def test_weighted_cuckoograph_satisfies_contract(self):
        graph = WeightedCuckooGraph()
        assert isinstance(graph, WeightedGraphStore)
        assert graph.insert_weighted_edge(1, 2) == 1
        assert graph.edge_weight(1, 2) == 1
