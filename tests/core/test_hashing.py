"""Tests for the hash-function families used by every cuckoo table."""

import pytest

from repro.core.hashing import BobHash, HashFamily, ModularHash, MultiplyShiftHash


class TestBobHash:
    def test_deterministic_for_same_seed(self):
        first, second = BobHash(seed=7), BobHash(seed=7)
        assert [first(k) for k in range(100)] == [second(k) for k in range(100)]

    def test_different_seeds_differ(self):
        first, second = BobHash(seed=1), BobHash(seed=2)
        values_first = [first(k) for k in range(64)]
        values_second = [second(k) for k in range(64)]
        assert values_first != values_second

    def test_output_is_32_bit(self):
        hasher = BobHash(seed=3)
        for key in [0, 1, 2**31, 2**63 - 1, 2**64 - 1]:
            assert 0 <= hasher(key) < 2**32

    def test_large_keys_use_high_word(self):
        hasher = BobHash(seed=5)
        assert hasher(1) != hasher(1 + (1 << 32))

    def test_spread_over_buckets(self):
        hasher = BobHash(seed=11)
        buckets = [0] * 16
        for key in range(4000):
            buckets[hasher(key) % 16] += 1
        assert min(buckets) > 100  # no bucket starved

    def test_repr_mentions_seed(self):
        assert "seed" in repr(BobHash(seed=1))


class TestMultiplyShiftHash:
    def test_deterministic_for_same_seed(self):
        first, second = MultiplyShiftHash(seed=9), MultiplyShiftHash(seed=9)
        assert [first(k) for k in range(100)] == [second(k) for k in range(100)]

    def test_output_is_32_bit(self):
        hasher = MultiplyShiftHash(seed=9)
        for key in [0, 1, 2**40, 2**64 - 1]:
            assert 0 <= hasher(key) < 2**32

    def test_multiplier_is_odd(self):
        assert MultiplyShiftHash(seed=4).multiplier % 2 == 1

    def test_spread_over_buckets(self):
        hasher = MultiplyShiftHash(seed=21)
        buckets = [0] * 16
        for key in range(4000):
            buckets[hasher(key) % 16] += 1
        assert min(buckets) > 100


class TestModularHash:
    def test_same_key_same_value(self):
        hasher = ModularHash(seed=0)
        assert hasher(42) == hasher(42)

    def test_seed_perturbs_value(self):
        assert ModularHash(seed=1)(42) != ModularHash(seed=2)(42)


class TestHashFamily:
    def test_rejects_unknown_family(self):
        with pytest.raises(ValueError):
            HashFamily("sha", seed=1)

    @pytest.mark.parametrize("family", ["bob", "mult", "modular"])
    def test_make_pair_returns_two_functions(self, family):
        pair = HashFamily(family, seed=1).make_pair()
        assert len(pair) == 2
        assert all(callable(function) for function in pair)

    def test_family_is_reproducible(self):
        first = HashFamily("mult", seed=5)
        second = HashFamily("mult", seed=5)
        h1a, h1b = first.make_pair()
        h2a, h2b = second.make_pair()
        assert [h1a(k) for k in range(50)] == [h2a(k) for k in range(50)]
        assert [h1b(k) for k in range(50)] == [h2b(k) for k in range(50)]

    def test_functions_are_independent(self):
        family = HashFamily("mult", seed=5)
        first, second = family.make_pair()
        same = sum(1 for k in range(1000) if first(k) % 64 == second(k) % 64)
        assert same < 100  # far from identical mappings

    def test_counts_functions_created(self):
        family = HashFamily("bob", seed=1)
        family.make_pair()
        family.make()
        assert family.functions_created == 3
