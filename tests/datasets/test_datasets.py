"""Tests for the synthetic dataset generators, Table IV profiles and streams."""

import random

import pytest
from hypothesis import given, settings, strategies as st

from repro.datasets import (
    DATASET_ORDER,
    TABLE4_PROFILES,
    EdgeStream,
    dataset_profile,
    dense_edge_set,
    duplicate_stream,
    load_all_datasets,
    load_dataset,
    powerlaw_edge_set,
    regular_edge_set,
    uniform_edge_set,
)


class TestGenerators:
    def test_powerlaw_edges_are_distinct_and_sized(self):
        rng = random.Random(1)
        edges = powerlaw_edge_set(200, 1500, rng)
        assert len(edges) == 1500
        assert len(set(edges)) == 1500
        assert all(u != v for u, v in edges)

    def test_powerlaw_degrees_are_skewed(self):
        rng = random.Random(2)
        edges = powerlaw_edge_set(500, 3000, rng, out_exponent=1.1)
        degrees = {}
        for u, _ in edges:
            degrees[u] = degrees.get(u, 0) + 1
        top = max(degrees.values())
        mean = sum(degrees.values()) / len(degrees)
        assert top > 5 * mean

    def test_duplicate_stream_contains_every_distinct_edge(self):
        rng = random.Random(3)
        distinct = powerlaw_edge_set(100, 400, rng)
        stream = duplicate_stream(distinct, 2000, rng)
        assert len(stream) == 2000
        assert set(stream) == set(distinct)

    def test_duplicate_stream_requires_enough_arrivals(self):
        rng = random.Random(3)
        distinct = [(1, 2), (2, 3)]
        with pytest.raises(ValueError):
            duplicate_stream(distinct, 1, rng)

    def test_dense_edge_set_density(self):
        rng = random.Random(4)
        edges = dense_edge_set(50, 0.9, rng)
        possible = 50 * 49
        assert 0.8 * possible <= len(edges) <= possible
        assert len(set(edges)) == len(edges)

    def test_regular_edge_set_constant_out_degree(self):
        rng = random.Random(5)
        edges = regular_edge_set(100, 6, rng)
        degrees = {}
        for u, _ in edges:
            degrees[u] = degrees.get(u, 0) + 1
        assert set(degrees.values()) == {6}
        assert len(degrees) == 100

    def test_regular_edge_set_validates_degree(self):
        with pytest.raises(ValueError):
            regular_edge_set(5, 5, random.Random(1))

    def test_uniform_edge_set(self):
        edges = uniform_edge_set(100, 500, random.Random(6))
        assert len(edges) == 500
        assert len(set(edges)) == 500

    def test_generators_are_deterministic_per_seed(self):
        first = powerlaw_edge_set(100, 500, random.Random(42))
        second = powerlaw_edge_set(100, 500, random.Random(42))
        assert first == second


class TestEdgeStream:
    def test_statistics_and_dedup(self):
        stream = EdgeStream("toy", [(1, 2), (1, 2), (2, 3)])
        stats = stream.statistics()
        assert stats.num_edges == 3
        assert stats.num_edges_dedup == 2
        assert stats.has_duplicates is True
        assert stats.num_nodes == 3
        distinct = stream.deduplicated()
        assert list(distinct) == [(1, 2), (2, 3)]
        assert distinct.statistics().has_duplicates is False

    def test_prefix_sample_shuffle(self):
        stream = EdgeStream("toy", [(i, i + 1) for i in range(100)])
        assert len(stream.prefix(10)) == 10
        assert len(stream.sample(10, seed=1)) == 10
        shuffled = stream.shuffled(seed=1)
        assert sorted(shuffled) == sorted(stream)
        assert list(shuffled) != list(stream)

    def test_indexing_and_slicing(self):
        stream = EdgeStream("toy", [(1, 2), (3, 4), (5, 6)])
        assert stream[0] == (1, 2)
        assert list(stream[1:]) == [(3, 4), (5, 6)]

    def test_statistics_row_keys(self):
        row = EdgeStream("toy", [(1, 2)]).statistics().as_row()
        assert {"nodes", "edges", "edges_dedup", "avg_degree", "max_degree"} <= set(row)


class TestTable4Profiles:
    def test_all_seven_datasets_present(self):
        assert set(DATASET_ORDER) == set(TABLE4_PROFILES)
        assert len(DATASET_ORDER) == 7

    def test_published_rows_match_paper_values(self):
        caida = TABLE4_PROFILES["CAIDA"]
        assert caida.weighted is True
        assert caida.num_edges_dedup == 850_000
        dense = TABLE4_PROFILES["DenseGraph"]
        assert dense.edge_density == pytest.approx(0.90)
        sparse = TABLE4_PROFILES["SparseGraph"]
        assert sparse.avg_degree == pytest.approx(6.0)

    def test_unknown_dataset_raises(self):
        with pytest.raises(KeyError):
            dataset_profile("NoSuchDataset")

    @pytest.mark.parametrize("name", DATASET_ORDER)
    def test_scaled_streams_match_profile_shape(self, name):
        profile = dataset_profile(name)
        stream = load_dataset(name)
        stats = stream.statistics()
        assert stats.has_duplicates == profile.weighted
        assert stats.num_edges_dedup >= 32
        # Average degree of the stand-in is within a factor of 3 of Table IV.
        assert stats.average_degree == pytest.approx(profile.avg_degree, rel=2.0)
        if profile.kind == "dense":
            assert stats.edge_density > 0.5
        else:
            assert stats.edge_density < 0.1

    def test_load_dataset_is_cached(self):
        assert load_dataset("CAIDA") is load_dataset("CAIDA")
        assert load_dataset("CAIDA", seed=2) is not load_dataset("CAIDA")

    def test_load_all_datasets_ordered(self):
        streams = load_all_datasets()
        assert list(streams) == DATASET_ORDER

    def test_custom_scale_shrinks_stream(self):
        default = load_dataset("NotreDame")
        smaller = load_dataset("NotreDame", scale=1000)
        assert len(smaller) < len(default)


@settings(max_examples=20, deadline=None)
@given(
    num_nodes=st.integers(min_value=2, max_value=60),
    num_edges=st.integers(min_value=1, max_value=300),
    seed=st.integers(min_value=0, max_value=1000),
)
def test_powerlaw_generator_properties(num_nodes, num_edges, seed):
    """Property: generated edge sets are distinct, loop-free and in range."""
    edges = powerlaw_edge_set(num_nodes, num_edges, random.Random(seed))
    assert len(edges) == len(set(edges))
    assert len(edges) <= num_nodes * (num_nodes - 1)
    for u, v in edges:
        assert 0 <= u < num_nodes
        assert 0 <= v < num_nodes
        assert u != v
