"""Tests for the memory-layout constants and the operation cost model."""

from repro import CuckooGraph
from repro.memmodel import (
    CuckooLayout,
    ID_BYTES,
    POINTER_BYTES,
    adjacency_entry_bytes,
    adjacency_node_bytes,
    measure_deletions,
    measure_insertions,
    measure_queries,
    memory_curve,
    vector_entry_bytes,
)


class TestLayout:
    def test_identifier_and_pointer_sizes(self):
        assert ID_BYTES == 8
        assert POINTER_BYTES == 8

    def test_cuckoo_layout_basic(self):
        layout = CuckooLayout(R=3, weighted=False)
        assert layout.part2_bytes == 6 * 8
        assert layout.lcht_cell_bytes == 8 + 48
        assert layout.scht_cell_bytes == 8
        assert layout.sdl_entry_bytes == 16
        assert layout.ldl_entry_bytes == layout.lcht_cell_bytes

    def test_cuckoo_layout_weighted(self):
        layout = CuckooLayout(R=3, weighted=True)
        assert layout.scht_cell_bytes == 12
        assert layout.sdl_entry_bytes == 20

    def test_adjacency_costs(self):
        assert adjacency_entry_bytes() == ID_BYTES + POINTER_BYTES
        assert adjacency_node_bytes() > vector_entry_bytes()


class TestCostModel:
    def test_measure_insertions_reports_counts(self, small_edge_set):
        graph = CuckooGraph()
        cost = measure_insertions(graph, small_edge_set)
        assert cost.operations == len(small_edge_set)
        assert cost.seconds > 0
        assert cost.bucket_probes > 0
        # Placement attempts count cuckoo-table placements (one per newly seen
        # source node plus expansion rehashes); low-degree destinations live
        # in the cell's small slots and need no table placement at all.
        assert cost.insert_attempts > 0
        assert cost.throughput_mops > 0
        assert cost.attempts_per_operation > 0.0

    def test_measure_queries_and_deletions(self, small_edge_set):
        graph = CuckooGraph()
        graph.insert_edges(small_edge_set)
        queries = measure_queries(graph, small_edge_set)
        deletions = measure_deletions(graph, small_edge_set)
        assert queries.operations == deletions.operations == len(small_edge_set)
        assert queries.probes_per_operation > 0
        assert graph.num_edges == 0

    def test_memory_curve_is_monotone_overall(self, small_edge_set):
        graph = CuckooGraph()
        samples = memory_curve(graph, small_edge_set, sample_every=200)
        assert samples[-1][0] == len(small_edge_set)
        assert samples[0][1] > 0
        assert samples[-1][1] >= samples[0][1] * 0.5  # footprint tracks content

    def test_empty_operation_cost(self):
        graph = CuckooGraph()
        cost = measure_insertions(graph, [])
        assert cost.operations == 0
        assert cost.probes_per_operation == 0.0
        assert cost.attempts_per_operation == 0.0

    def test_theorem2_amortized_attempts_bounded(self):
        """Theorem 2 check: inserting N edges costs at most 3N placements.

        The theorem's 2.25N expectation assumes modular hashing (where a merge
        only re-inserts a fraction of the items); this implementation rehashes
        every resident on a merge, so the relevant bound is the worst-case 3N.
        """
        graph = CuckooGraph()
        edges = [(u, u * 7 + 1) for u in range(5000)]
        cost = measure_insertions(graph, edges)
        assert cost.attempts_per_operation < 3.0
