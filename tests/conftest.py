"""Shared fixtures for the CuckooGraph reproduction test suite."""

from __future__ import annotations

import random
from collections import defaultdict

import pytest

from repro import CuckooGraph, PersistentStore, ShardedCuckooGraph, WeightedCuckooGraph
from repro.baselines import (
    AdjacencyListGraph,
    CSRGraph,
    LiveGraphStore,
    PCSRGraph,
    SortledtonStore,
    SpruceStore,
    WindBellIndex,
)
from repro.integrations import Neo4jGraphStore, RedisGraphStore
from repro.tiered import TieredStore

#: Every DynamicGraphStore implementation that must honour the common contract.
#: The persistent wrapper runs ephemeral (``path=None``: a temporary directory
#: removed on close/GC) and unsynced, so the matrix exercises its logging path
#: without an fsync per operation; the durability guarantees themselves are
#: covered by ``tests/persist``.
ALL_STORE_FACTORIES = {
    "CuckooGraph": CuckooGraph,
    "WeightedCuckooGraph": WeightedCuckooGraph,
    "ShardedCuckooGraph": lambda: ShardedCuckooGraph(num_shards=4),
    # The process-backed executor: shard state lives in two long-lived
    # worker processes, every operation crosses the shard RPC.  Running the
    # whole contract matrix against it is what keeps the RPC paths (single
    # ops included) observably identical to the in-process executors.
    "ShardedCuckooGraph-procs": lambda: ShardedCuckooGraph(
        num_shards=4, executor="processes", max_workers=2
    ),
    "PersistentStore": lambda: PersistentStore(
        store=CuckooGraph(), sync_on_commit=False, own_store=True
    ),
    "AdjacencyList": AdjacencyListGraph,
    "CSR": lambda: CSRGraph(rebuild_threshold=64),
    "LiveGraph": LiveGraphStore,
    "PCSR": PCSRGraph,
    "Sortledton": SortledtonStore,
    "Spruce": SpruceStore,
    "WBI": lambda: WindBellIndex(matrix_size=16),
    "MiniRedis": RedisGraphStore,
    "MiniNeo4j": Neo4jGraphStore,
    # The hot/cold tiered front-end: half the shards start cold (miniredis),
    # mutations drive promotion/demotion mid-sequence, so the matrix
    # exercises reads and writes against both tiers and across migrations.
    "TieredStore": lambda: TieredStore(num_shards=4, hot_shards=2),
}


#: First seed of the fuzz sweep; every run's seed is derived from it
#: deterministically, so a failure report names a directly reproducible seed.
FUZZ_BASE_SEED = 20240515


def pytest_addoption(parser):
    parser.addoption(
        "--fuzz-runs",
        action="store",
        type=int,
        default=2,
        help="seeded iterations per randomized differential fuzz test "
             "(CI uses the default on every push and a larger sweep on main)",
    )


def pytest_generate_tests(metafunc):
    """Parametrize ``fuzz_seed`` with ``--fuzz-runs`` deterministic seeds.

    The seed appears in the test id, so a red run names the exact
    reproduction: ``pytest "tests/core/test_fuzz_differential.py" -k <seed>``.
    """
    if "fuzz_seed" in metafunc.fixturenames:
        runs = metafunc.config.getoption("--fuzz-runs")
        seeds = [FUZZ_BASE_SEED + 7919 * run for run in range(max(1, runs))]
        metafunc.parametrize("fuzz_seed", seeds)


@pytest.fixture
def rng() -> random.Random:
    """Deterministic random source for tests."""
    return random.Random(20240515)


@pytest.fixture
def small_edge_set(rng) -> list[tuple[int, int]]:
    """~1200 distinct random edges over 300 nodes."""
    edges = set()
    while len(edges) < 1200:
        u, v = rng.randrange(300), rng.randrange(300)
        if u != v:
            edges.add((u, v))
    shuffled = list(edges)
    rng.shuffle(shuffled)
    return shuffled


@pytest.fixture
def skewed_edge_set(rng) -> list[tuple[int, int]]:
    """Edges with one very high-degree hub, to exercise S-CHT chains."""
    edges = [(0, v) for v in range(1, 400)]
    while len(edges) < 900:
        u, v = rng.randrange(50), rng.randrange(400)
        if u != v and (u, v) not in edges:
            edges.append((u, v))
    return edges


def reference_adjacency(edges) -> dict[int, set[int]]:
    """Reference dict-of-sets adjacency for a collection of distinct edges."""
    adjacency: dict[int, set[int]] = defaultdict(set)
    for u, v in edges:
        adjacency[u].add(v)
    return adjacency


@pytest.fixture
def reference():
    """Expose the reference-model helper to tests."""
    return reference_adjacency
