"""Incremental WAL reading, cursor-based probes and the compaction hook.

Satellite coverage for the replication PR's persist-layer groundwork:

* ``read_wal_records(path, from_offset=...)`` returns exactly the records
  past the offset, with absolute end offsets, so a tailer polling a
  growing segment never re-reads history;
* ``replay_into(..., cursor=...)`` is the incremental probe built on it:
  the same store keeps absorbing only the new records, and a compaction
  between probes is *detected* (generation mismatch) instead of silently
  replaying a truncated log over stale state;
* ``CompactionPolicy.subscribe`` delivers the pre-truncation event --
  old/new generation plus per-segment offsets -- for both threshold and
  explicit checkpoints.
"""

import pytest

from repro import CuckooGraph, ShardedCuckooGraph
from repro.core.errors import PersistenceError
from repro.persist import (
    WAL_HEADER_SIZE,
    PersistentStore,
    WalPosition,
    read_wal_records,
    replay_into,
)


def test_from_offset_reads_only_the_new_records(tmp_path):
    store = PersistentStore(tmp_path / "s", scheme="cuckoo", compact_wal_bytes=None)
    store.insert_edges([(1, 2), (1, 3)])
    segment = store.segment_paths[0]

    generation, records, valid = read_wal_records(segment)
    assert generation == 0
    assert len(records) == 1
    first_end = records[0][1]
    assert valid == first_end

    # Nothing new past the cursor yet.
    generation, records, valid = read_wal_records(segment, from_offset=first_end)
    assert records == []
    assert valid == first_end

    # Append two more commits; the incremental read returns exactly them,
    # with absolute offsets that chain into the next poll.
    store.insert_edge(5, 6)
    store.delete_edge(1, 2)
    generation, records, valid = read_wal_records(segment, from_offset=first_end)
    assert [ops for ops, _ in records] == [[("insert", 5, 6)], [("delete", 1, 2)]]
    assert records[0][1] > first_end
    assert valid == records[-1][1] == segment.stat().st_size

    # The full read agrees with header + incremental.
    _, all_records, full_valid = read_wal_records(segment)
    assert [end for _, end in all_records][1:] == [end for _, end in records]
    assert full_valid == valid
    store.close()


def test_from_offset_inside_the_header_is_refused(tmp_path):
    store = PersistentStore(tmp_path / "s", scheme="cuckoo", compact_wal_bytes=None)
    store.insert_edge(1, 2)
    segment = store.segment_paths[0]
    with pytest.raises(PersistenceError, match="header"):
        read_wal_records(segment, from_offset=3)
    store.close()


def test_from_offset_past_the_end_reports_nothing_new(tmp_path):
    store = PersistentStore(tmp_path / "s", scheme="cuckoo", compact_wal_bytes=None)
    store.insert_edge(1, 2)
    segment = store.segment_paths[0]
    size = segment.stat().st_size
    generation, records, valid = read_wal_records(segment, from_offset=size + 100)
    assert generation == 0
    assert records == []
    assert valid == size + 100  # caller's cursor is preserved, not rewound
    store.close()


def test_replay_into_cursor_is_incremental(tmp_path):
    """Repeated probes with the returned position only apply new records."""
    base = tmp_path / "s"
    store = PersistentStore(base, store=ShardedCuckooGraph(num_shards=3),
                            own_store=True, sync_on_commit=False,
                            compact_wal_bytes=None)
    probe = ShardedCuckooGraph(num_shards=3)

    store.insert_edges([(u, u + 1) for u in range(20)])
    store.sync()
    stats = replay_into(base, probe)
    assert stats["wal_ops"] == 20
    assert sorted(probe.edges()) == sorted(store.edges())
    cursor = stats["position"]
    assert isinstance(cursor, WalPosition)

    # Second probe: same store, cursor passed back -- only the delta is read.
    store.insert_edges([(u, u + 2) for u in range(10)])
    store.delete_edge(0, 1)
    store.sync()
    stats = replay_into(base, probe, cursor=cursor)
    assert stats["wal_ops"] == 11  # 10 inserts + 1 delete, nothing re-replayed
    assert stats["snapshot_rows"] == 0
    assert sorted(probe.edges()) == sorted(store.edges())

    # A dry probe applies nothing and returns the same position.
    again = replay_into(base, probe, cursor=stats["position"])
    assert again["wal_ops"] == 0
    assert again["position"] == stats["position"]
    store.close()
    probe.close()


def test_replay_into_cursor_detects_compaction(tmp_path):
    base = tmp_path / "s"
    store = PersistentStore(base, scheme="cuckoo", compact_wal_bytes=None)
    store.insert_edges([(1, 2), (3, 4)])
    probe = CuckooGraph()
    cursor = replay_into(base, probe)["position"]

    store.checkpoint()  # folds the log; the cursor's generation is now stale
    store.insert_edge(5, 6)
    with pytest.raises(PersistenceError, match="compaction"):
        replay_into(base, probe, cursor=cursor)
    store.close()


def test_replay_into_cursor_tolerates_an_interrupted_checkpoint(tmp_path):
    """Regression: a stale pre-snapshot segment must be skipped, not fatal.

    A crash between the snapshot rename and a segment's truncation leaves
    that segment one generation behind.  The full-replay path skips it as
    benign; the incremental cursor path must do the same instead of
    wedging every later probe in a restart loop.
    """
    from repro.persist import write_snapshot

    base = tmp_path / "s"
    store = PersistentStore(base, store=ShardedCuckooGraph(num_shards=2),
                            own_store=True, compact_wal_bytes=None)
    store.insert_edges([(u, u + 1) for u in range(12)])
    # Simulate the crash window: snapshot (generation 1) lands, no segment
    # is truncated.
    write_snapshot(base / "snapshot.bin", store.store, generation=1)

    probe = ShardedCuckooGraph(num_shards=2)
    stats = replay_into(base, probe)
    assert sorted(probe.edges()) == sorted(store.edges())
    assert stats["position"].generation == 1
    # Incremental probes over the same (still stale) segments keep working.
    again = replay_into(base, probe, cursor=stats["position"])
    assert again["wal_ops"] == 0
    assert sorted(probe.edges()) == sorted(store.edges())
    store.close()
    probe.close()


def test_replay_into_fresh_probe_still_requires_empty_store(tmp_path):
    base = tmp_path / "s"
    store = PersistentStore(base, scheme="cuckoo", compact_wal_bytes=None)
    store.insert_edge(1, 2)
    probe = CuckooGraph()
    probe.insert_edge(9, 9)
    with pytest.raises(PersistenceError, match="empty"):
        replay_into(base, probe)
    store.close()


def test_compaction_hook_fires_before_truncation(tmp_path):
    """The event carries the pre-truncation offsets and both generations."""
    events = []
    store = PersistentStore(tmp_path / "s", store=ShardedCuckooGraph(num_shards=2),
                            own_store=True, compact_wal_bytes=None)

    def observer(event):
        # Fired *before* truncation: the segments still hold the records.
        sizes = tuple(p.stat().st_size if p.exists() else 0
                      for p in store.segment_paths)
        events.append((event, sizes))

    store.compaction_policy.subscribe(observer)
    store.insert_edges([(u, u + 1) for u in range(16)])
    offsets_before = tuple(max(p.stat().st_size, WAL_HEADER_SIZE)
                           for p in store.segment_paths)
    store.checkpoint()

    assert len(events) == 1
    event, sizes_at_fire = events[0]
    assert event.generation == 0
    assert event.new_generation == 1
    assert event.path == store.path
    assert event.wal_offsets == offsets_before
    assert sizes_at_fire == offsets_before  # records still on disk at fire time
    # After the checkpoint the segments are back to bare headers.
    assert all(p.stat().st_size == WAL_HEADER_SIZE for p in store.segment_paths)

    store.compaction_policy.unsubscribe(observer)
    store.insert_edge(100, 200)
    store.checkpoint()
    assert len(events) == 1  # unsubscribed: no second event
    store.close()


def test_compaction_hook_fires_on_threshold_compaction(tmp_path):
    events = []
    store = PersistentStore(tmp_path / "s", scheme="cuckoo",
                            compact_wal_bytes=256)
    store.compaction_policy.subscribe(lambda event: events.append(event))
    for u in range(120):
        store.insert_edge(u, u + 1)
    assert store.compactions >= 1
    assert len(events) == store.compactions
    assert [e.new_generation for e in events] == \
        list(range(1, store.compactions + 1))
    store.close()
