"""GraphService durability="batch": group commits, recovery, close alignment."""

import pytest

from repro import GraphClient, GraphService, ShardedCuckooGraph
from repro.core.errors import StoreClosedError
from repro.persist import PersistentStore, recover
from repro.service import ServiceClosedError


def durable_store(path, num_shards=3):
    return PersistentStore(
        path,
        store=ShardedCuckooGraph(num_shards=num_shards),
        sync_on_commit=False,
        compact_wal_bytes=None,
        own_store=True,
    )


class TestBatchDurability:
    def test_requires_a_sync_capable_store(self):
        with pytest.raises(ValueError, match="sync"):
            GraphService(ShardedCuckooGraph(num_shards=2), durability="batch")

    def test_unknown_mode_is_rejected(self):
        with pytest.raises(ValueError, match="durability"):
            GraphService(durability="eventually")

    def test_each_mutation_run_is_one_group_commit(self, tmp_path):
        edges = [(u, u + 1) for u in range(300)]
        store = durable_store(tmp_path / "svc")
        service = GraphService(store, max_batch=1024, queue_capacity=1024,
                               own_store=True, durability="batch")
        # Submit everything before starting: the dispatcher coalesces the
        # stream into few windows, so commits must track runs, not ops.
        futures = [service.insert_edge(u, v) for u, v in edges]
        service.start()
        assert sum(future.result(timeout=30) for future in futures) == len(edges)
        summary = service.metrics_summary()
        assert 1 <= summary["group_commits"] < len(edges)
        # Each commit is one fsync per touched segment, not one per op.
        assert store.persistence_summary()["wal_syncs"] < len(edges)
        service.close()

    def test_resolved_futures_survive_recovery(self, tmp_path):
        edges = [(u, u + 1) for u in range(100)]
        with GraphService(durable_store(tmp_path / "svc"), own_store=True,
                          durability="batch") as service:
            futures = [service.insert_edge(u, v) for u, v in edges]
            for future in futures:
                future.result(timeout=30)
        recovered = recover(tmp_path / "svc",
                            store=ShardedCuckooGraph(num_shards=3))
        assert sorted(recovered.edges()) == sorted(edges)
        recovered.close()

    def test_mixed_traffic_recovers_to_final_state(self, tmp_path):
        with GraphService(durable_store(tmp_path / "svc"), own_store=True,
                          durability="batch") as service:
            inserts = [service.insert_edge(u, v) for u, v in
                       [(1, 2), (1, 3), (2, 3), (4, 5)]]
            deletes = [service.delete_edge(1, 3), service.delete_edge(9, 9)]
            for future in inserts + deletes:
                future.result(timeout=30)
            reads = service.has_edge(1, 2).result(timeout=30)
            assert reads is True
        recovered = recover(tmp_path / "svc",
                            store=ShardedCuckooGraph(num_shards=3))
        assert sorted(recovered.edges()) == [(1, 2), (2, 3), (4, 5)]
        recovered.close()

    def test_durable_client_end_to_end(self, tmp_path):
        client = GraphClient.durable(path=tmp_path / "cli", num_shards=2)
        assert client.insert_edges([(1, 2), (3, 4)]) == 2
        assert client.service.durability == "batch"
        client.close()
        recovered = recover(tmp_path / "cli",
                            store=ShardedCuckooGraph(num_shards=2))
        assert sorted(recovered.edges()) == [(1, 2), (3, 4)]
        recovered.close()

    def test_ephemeral_durable_client_cleans_up(self):
        client = GraphClient.durable(num_shards=2)
        client.insert_edge(1, 2)
        path = client.service.store.path
        assert path.exists()
        client.close()
        assert not path.exists()


class TestCloseAlignment:
    """Post-close behaviour is StoreClosedError across the whole stack."""

    def test_service_closed_error_is_a_store_closed_error(self):
        assert issubclass(ServiceClosedError, StoreClosedError)
        assert issubclass(ServiceClosedError, RuntimeError)  # legacy contract

    def test_service_post_close_submissions(self):
        service = GraphService()
        service.start()
        service.close()
        with pytest.raises(StoreClosedError):
            service.insert_edge(1, 2)
        with pytest.raises(StoreClosedError):
            service.analytics("bfs", 1)

    def test_owning_client_post_close_operations(self):
        client = GraphClient.local(num_shards=2)
        client.insert_edge(1, 2)
        client.close()
        client.close()  # idempotent
        assert client.closed
        for operation in (
            lambda: client.insert_edge(3, 4),
            lambda: client.delete_edge(1, 2),
            lambda: client.has_edge(1, 2),
            lambda: client.successors(1),
            lambda: client.insert_edges([(5, 6)]),
            lambda: client.has_edges([(1, 2)]),
            lambda: client.successors_many([1]),
            lambda: client.bfs(1),
        ):
            with pytest.raises(StoreClosedError):
                operation()
        # Quiesced introspection still reads the underlying store.
        assert client.num_edges == 1
        assert sorted(client.edges()) == [(1, 2)]

    def test_non_owning_client_close_is_also_terminal(self):
        service = GraphService().start()
        client = GraphClient(service)
        client.insert_edge(1, 2)
        client.close()
        with pytest.raises(StoreClosedError):
            client.insert_edge(3, 4)
        # The shared service itself stays up for other clients.
        assert service.running
        other = GraphClient(service)
        assert other.has_edge(1, 2)
        service.close()


class TestDurableClientReopen:
    def test_durable_reopens_an_existing_directory(self, tmp_path):
        """The same GraphClient.durable call works on first run and restart."""
        first = GraphClient.durable(path=tmp_path / "cli", num_shards=2)
        first.insert_edges([(1, 2), (3, 4)])
        first.close()

        second = GraphClient.durable(path=tmp_path / "cli", num_shards=2)
        assert second.has_edge(1, 2) and second.has_edge(3, 4)
        second.insert_edge(5, 6)
        second.close()

        third = GraphClient.durable(path=tmp_path / "cli", num_shards=2)
        assert sorted(third.edges()) == [(1, 2), (3, 4), (5, 6)]
        third.close()

    def test_reopen_with_wrong_shard_count_is_refused(self, tmp_path):
        from repro.core.errors import PersistenceError

        client = GraphClient.durable(path=tmp_path / "cli", num_shards=2)
        client.insert_edge(1, 2)
        client.close()
        with pytest.raises(PersistenceError):
            GraphClient.durable(path=tmp_path / "cli", num_shards=4)


class TestSyncFailureFailStop:
    def test_sync_failure_fails_the_run_and_stops_the_service(self, tmp_path):
        from repro.service import ServiceError

        store = durable_store(tmp_path / "svc")
        boom = OSError("fsync: no space left on device")

        def failing_sync():
            raise boom

        store.sync = failing_sync  # simulate ENOSPC at the durability point
        service = GraphService(store, own_store=True, durability="batch")
        service.start()
        future = service.insert_edge(1, 2)
        with pytest.raises(OSError):
            future.result(timeout=30)
        # Fail-stop: the service refuses further submissions.  The flag is
        # set by the dispatcher just before the future resolves, so it is
        # already visible here.
        assert service.durability_failed is boom
        with pytest.raises(ServiceError, match="fail-stopped"):
            service.insert_edge(3, 4)
        service.close()

    def test_open_or_create_round_trip(self, tmp_path):
        from repro.persist import open_or_create

        store = open_or_create(tmp_path / "s", store=ShardedCuckooGraph(num_shards=2),
                               own_store=True)
        store.insert_edge(1, 2)
        store.close()
        reopened = open_or_create(tmp_path / "s",
                                  store=ShardedCuckooGraph(num_shards=2),
                                  own_store=True)
        assert reopened.has_edge(1, 2)
        reopened.close()
