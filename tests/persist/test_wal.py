"""Write-ahead log: framing, group commits, torn tails, corruption."""

import os

import pytest

from repro.core.errors import PersistenceError, WalCorruptError
from repro.persist import (
    DELETE,
    INSERT,
    INSERT_WEIGHTED,
    WAL_HEADER_SIZE,
    WAL_MAGIC,
    WriteAheadLog,
    decode_ops,
    encode_ops,
    read_wal,
)

BATCHES = [
    [(INSERT, 1, 2), (INSERT, 1, 3)],
    [(DELETE, 1, 2)],
    [(INSERT_WEIGHTED, 4, 5, 7), (INSERT, -9, 2**62)],
]


def write_batches(path, batches, sync_on_commit=True):
    wal = WriteAheadLog(path, sync_on_commit=sync_on_commit)
    for batch in batches:
        wal.append_batch(batch)
    wal.close()
    return path


class TestFraming:
    def test_encode_decode_roundtrip(self):
        for batch in BATCHES:
            assert decode_ops(encode_ops(batch)) == batch

    def test_negative_and_large_node_ids_survive(self):
        ops = [(INSERT, -(2**63), 2**63 - 1)]
        assert decode_ops(encode_ops(ops)) == ops

    def test_unknown_tag_is_rejected_at_encode_time(self):
        with pytest.raises(PersistenceError):
            encode_ops([("upsert", 1, 2)])

    def test_unknown_opcode_is_corruption(self):
        with pytest.raises(WalCorruptError):
            decode_ops(b"\xff" + b"\x00" * 16)

    def test_truncated_op_is_corruption(self):
        payload = encode_ops([(INSERT, 1, 2)])
        with pytest.raises(WalCorruptError):
            decode_ops(payload[:-1])


class TestAppendAndRead:
    def test_roundtrip(self, tmp_path):
        path = write_batches(tmp_path / "wal.bin", BATCHES)
        generation, batches, valid = read_wal(path)
        assert generation == 0
        assert batches == BATCHES
        assert valid == path.stat().st_size

    def test_missing_and_empty_files_read_as_nothing(self, tmp_path):
        assert read_wal(tmp_path / "absent.bin") == (None, [], 0)
        empty = tmp_path / "empty.bin"
        empty.write_bytes(b"")
        assert read_wal(empty) == (None, [], 0)

    def test_header_written_once(self, tmp_path):
        path = write_batches(tmp_path / "wal.bin", BATCHES)
        assert path.read_bytes().startswith(WAL_MAGIC)
        assert path.read_bytes().count(WAL_MAGIC) == 1

    def test_append_resumes_an_existing_log(self, tmp_path):
        path = write_batches(tmp_path / "wal.bin", BATCHES[:2])
        write_batches(path, BATCHES[2:])
        assert read_wal(path)[1] == BATCHES

    def test_empty_batch_is_a_no_op(self, tmp_path):
        wal = WriteAheadLog(tmp_path / "wal.bin")
        assert wal.append_batch([]) == 0
        assert wal.records_appended == 0
        # Lazy open: nothing was ever written, so no file either.
        assert not (tmp_path / "wal.bin").exists()
        wal.close()

    def test_sync_accounting(self, tmp_path):
        wal = WriteAheadLog(tmp_path / "wal.bin", sync_on_commit=True)
        for batch in BATCHES:
            wal.append_batch(batch)
        assert wal.syncs == len(BATCHES)

        deferred = WriteAheadLog(tmp_path / "deferred.bin", sync_on_commit=False)
        for batch in BATCHES:
            deferred.append_batch(batch)
        assert deferred.syncs == 0
        deferred.sync()
        assert deferred.syncs == 1
        wal.close()
        deferred.close()

    def test_closed_wal_refuses_appends(self, tmp_path):
        write_batches(tmp_path / "wal.bin", BATCHES[:1])
        wal = WriteAheadLog(tmp_path / "wal.bin")
        wal.close()
        wal.close()  # idempotent
        with pytest.raises(PersistenceError):
            wal.append_batch(BATCHES[0])
        with pytest.raises(PersistenceError):
            wal.sync()

    def test_truncate_resets_to_header_only(self, tmp_path):
        wal = WriteAheadLog(tmp_path / "wal.bin")
        for batch in BATCHES:
            wal.append_batch(batch)
        wal.truncate(generation=3)
        assert wal.size_bytes == WAL_HEADER_SIZE
        wal.append_batch([(INSERT, 8, 9)])
        wal.close()
        assert read_wal(tmp_path / "wal.bin") == (3, [[(INSERT, 8, 9)]],
                                                  wal.size_bytes)


class TestTornAndCorrupt:
    def test_torn_tail_at_every_byte_offset(self, tmp_path):
        """Cutting the file anywhere keeps exactly the complete records."""
        path = write_batches(tmp_path / "wal.bin", BATCHES)
        data = path.read_bytes()
        _, _, complete = read_wal(path)
        assert complete == len(data)
        for cut in range(len(data) + 1):
            torn = tmp_path / "torn.bin"
            torn.write_bytes(data[:cut])
            generation, batches, valid = read_wal(torn)
            assert generation == (0 if cut >= WAL_HEADER_SIZE else None)
            # Number of records that fit entirely below the cut, and the
            # byte offset where the last of them ends.
            expected, offset = 0, WAL_HEADER_SIZE
            for batch in BATCHES:
                record_len = 8 + len(encode_ops(batch))
                if offset + record_len <= cut:
                    expected += 1
                    offset += record_len
                else:
                    break
            assert batches == BATCHES[:expected], f"cut={cut}"
            assert valid == (offset if cut >= WAL_HEADER_SIZE else 0), f"cut={cut}"

    def test_foreign_magic_is_corruption(self, tmp_path):
        bad = tmp_path / "bad.bin"
        bad.write_bytes(b"NOTAWAL!" + b"\x00" * 32)
        with pytest.raises(WalCorruptError):
            read_wal(bad)

    def test_mid_file_corruption_is_not_tolerated(self, tmp_path):
        path = write_batches(tmp_path / "wal.bin", BATCHES)
        data = bytearray(path.read_bytes())
        # Flip a payload byte of the *first* record: CRC fails before the tail.
        data[WAL_HEADER_SIZE + 8] ^= 0xFF
        path.write_bytes(bytes(data))
        with pytest.raises(WalCorruptError):
            read_wal(path)

    def test_reopen_validates_magic(self, tmp_path):
        bad = tmp_path / "bad.bin"
        bad.write_bytes(b"NOTAWAL!" + b"\x00" * 32)
        wal = WriteAheadLog(bad)
        with pytest.raises(WalCorruptError):
            wal.append_batch([(INSERT, 1, 2)])

    def test_fsync_actually_reaches_the_file(self, tmp_path):
        wal = WriteAheadLog(tmp_path / "wal.bin", sync_on_commit=True)
        wal.append_batch(BATCHES[0])
        # Without closing, the record must be visible to an independent reader.
        assert read_wal(tmp_path / "wal.bin")[1] == BATCHES[:1]
        assert os.path.getsize(tmp_path / "wal.bin") == wal.size_bytes
        wal.close()


class TestSyncSkipsCleanSegments:
    def test_sync_is_a_no_op_with_nothing_buffered(self, tmp_path):
        """Group commit must only pay fsyncs for segments the batch touched."""
        wal = WriteAheadLog(tmp_path / "wal.bin", sync_on_commit=False)
        wal.append_batch(BATCHES[0])
        wal.sync()
        assert wal.syncs == 1
        wal.sync()           # clean: no new fsync
        assert wal.syncs == 1
        wal.append_batch(BATCHES[1])
        wal.sync()
        assert wal.syncs == 2
        wal.close()          # clean again: close adds no fsync
        assert wal.syncs == 2
