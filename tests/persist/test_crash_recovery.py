"""Crash recovery: kill-at-any-WAL-prefix must land on a group-commit boundary.

The durability invariant under test: for any seeded op stream committed in
batches, truncating the WAL at **any byte offset** and recovering yields a
store whose edge set equals the dict-of-sets oracle's state at the last
complete group commit below the cut.  The torn tail is ignored, recovery is
idempotent (recovering twice gives the same state), and a recovered store
appends cleanly where the crash stopped.
"""

import json
import random
import shutil

import pytest

from repro import CuckooGraph, ShardedCuckooGraph
from repro.persist import (
    DELETE,
    INSERT,
    MANIFEST_NAME,
    PersistentStore,
    WAL_HEADER_SIZE,
    encode_ops,
    recover,
)


def seeded_batches(seed: int, batches: int = 8, ops_per_batch: int = 5):
    """Mixed insert/delete batches over a small universe, plus oracle states.

    Returns ``(batches, states)`` where ``states[i]`` is the sorted oracle
    edge set after the first ``i`` batches (``states[0]`` is empty).
    """
    rng = random.Random(seed)
    model: set[tuple[int, int]] = set()
    all_batches, states = [], [sorted(model)]
    for _ in range(batches):
        batch = []
        for _ in range(ops_per_batch):
            u, v = rng.randrange(12), rng.randrange(12)
            if model and rng.random() < 0.3:
                u, v = rng.choice(sorted(model))
                batch.append(("delete", u, v))
                model.discard((u, v))
            else:
                batch.append(("insert", u, v))
                model.add((u, v))
        all_batches.append(batch)
        states.append(sorted(model))
    return all_batches, states


def apply_batch(store: PersistentStore, batch) -> None:
    """One batch -> one group commit each for its insert and delete runs.

    Consecutive same-kind runs are committed separately (mirroring the
    service dispatcher), so the WAL carries several records per batch while
    every record still lands atomically.
    """
    run_kind, run = None, []

    def flush():
        if not run:
            return
        if run_kind == "insert":
            store.insert_edges(run)
        else:
            store.delete_edges(run)

    for kind, u, v in batch:
        if kind != run_kind:
            flush()
            run_kind, run = kind, []
        run.append((u, v))
    flush()


def build_store(path, batches, num_shards=None):
    inner = (ShardedCuckooGraph(num_shards=num_shards)
             if num_shards else CuckooGraph())
    store = PersistentStore(path, store=inner, own_store=True,
                            sync_on_commit=True, compact_wal_bytes=None)
    commit_boundaries = [store.wal_bytes()]
    for batch in batches:
        apply_batch(store, batch)
        commit_boundaries.append(store.wal_bytes())
    store.close()
    return commit_boundaries


def oracle_state_at_cut(cut_bytes, batches):
    """Oracle edge set once the single-segment WAL is cut to ``cut_bytes``.

    Replays the op stream through a shadow oracle, counting the bytes each
    group-commit record occupies, and stops at the last record that fits.
    """
    offset = WAL_HEADER_SIZE
    model: set[tuple[int, int]] = set()
    for batch in batches:
        run_kind, run = None, []
        runs = []
        for kind, u, v in batch:
            if kind != run_kind:
                if run:
                    runs.append((run_kind, run))
                run_kind, run = kind, []
            run.append((u, v))
        if run:
            runs.append((run_kind, run))
        for kind, run in runs:
            tag = INSERT if kind == "insert" else DELETE
            record_len = 8 + len(encode_ops([(tag, u, v) for u, v in run]))
            if offset + record_len > cut_bytes:
                return sorted(model)
            offset += record_len
            for u, v in run:
                if kind == "insert":
                    model.add((u, v))
                else:
                    model.discard((u, v))
    return sorted(model)


def test_truncate_final_record_at_every_byte_offset(tmp_path):
    """Cut the tail anywhere: recovery equals the last complete commit."""
    batches, states = seeded_batches(seed=20260729)
    source = tmp_path / "source"
    boundaries = build_store(source, batches)
    wal = source / "wal-000.bin"
    data = wal.read_bytes()
    assert boundaries[-1] == len(data)
    last_commit_start = boundaries[-2]

    for cut in range(last_commit_start, len(data) + 1):
        workdir = tmp_path / f"cut-{cut}"
        workdir.mkdir()
        shutil.copy(source / MANIFEST_NAME, workdir / MANIFEST_NAME)
        (workdir / "wal-000.bin").write_bytes(data[:cut])
        recovered = recover(workdir, store=CuckooGraph())
        expected = oracle_state_at_cut(cut, batches)
        assert sorted(recovered.edges()) == expected, f"cut={cut}"
        # A full final batch must reproduce the final oracle state.
        if cut == len(data):
            assert expected == states[-1]
        recovered.close()


def test_truncation_at_commit_boundaries_walks_the_oracle_states(tmp_path):
    """Cutting exactly at each batch boundary yields exactly each oracle state."""
    batches, states = seeded_batches(seed=7, batches=6)
    source = tmp_path / "source"
    boundaries = build_store(source, batches)
    data = (source / "wal-000.bin").read_bytes()

    for index, cut in enumerate(boundaries):
        workdir = tmp_path / f"boundary-{index}"
        workdir.mkdir()
        shutil.copy(source / MANIFEST_NAME, workdir / MANIFEST_NAME)
        (workdir / "wal-000.bin").write_bytes(data[:cut])
        recovered = recover(workdir, store=CuckooGraph())
        assert sorted(recovered.edges()) == states[index], f"batch boundary {index}"
        recovered.close()


def test_recovery_is_idempotent_and_appendable(tmp_path):
    """Recover twice -> same state; a recovered store keeps committing."""
    batches, states = seeded_batches(seed=99)
    source = tmp_path / "source"
    build_store(source, batches)
    # Tear the tail mid-record.
    wal = source / "wal-000.bin"
    data = wal.read_bytes()
    wal.write_bytes(data[:-3])

    first = recover(source, store=CuckooGraph())
    first_state = sorted(first.edges())
    first.close()
    second = recover(source, store=CuckooGraph())
    assert sorted(second.edges()) == first_state
    # The torn bytes were truncated away: appending must produce a log that
    # replays cleanly, including the new commit.
    second.insert_edge(100, 200)
    second.close()
    third = recover(source, store=CuckooGraph())
    assert sorted(third.edges()) == sorted(first_state + [(100, 200)])
    third.close()


def test_sharded_recovery_parallel_equals_serial(tmp_path):
    """Per-shard segments replay to the same state under both executions."""
    batches, states = seeded_batches(seed=4242, batches=10, ops_per_batch=8)
    source = tmp_path / "source"
    build_store(source, batches, num_shards=4)

    serial = recover(source, store=ShardedCuckooGraph(num_shards=4))
    serial_edges = sorted(serial.edges())
    serial_ops = serial.last_recovery["wal_ops"]
    serial.close()  # single-writer: release the directory before re-recovering
    parallel = recover(source, store=ShardedCuckooGraph(num_shards=4), parallel=True)
    assert serial_edges == sorted(parallel.edges()) == states[-1]
    assert serial_ops == parallel.last_recovery["wal_ops"]
    assert parallel.last_recovery["parallel"] is True
    parallel.close()


def test_sharded_torn_segment_only_loses_that_segments_tail(tmp_path):
    """A crash tears one shard's segment; other shards' commits survive."""
    source = tmp_path / "source"
    inner = ShardedCuckooGraph(num_shards=2)
    store = PersistentStore(source, store=inner, own_store=True,
                            sync_on_commit=True, compact_wal_bytes=None)
    # Pick two nodes owned by different shards.
    nodes = sorted(range(20), key=inner.shard_of)
    a = next(n for n in nodes if inner.shard_of(n) == 0)
    b = next(n for n in nodes if inner.shard_of(n) == 1)
    store.insert_edge(a, 100)
    store.insert_edge(b, 200)
    store.insert_edge(b, 201)  # the commit that will be torn
    store.close()

    segment = source / "wal-001.bin"
    segment.write_bytes(segment.read_bytes()[:-5])
    recovered = recover(source, store=ShardedCuckooGraph(num_shards=2))
    assert recovered.has_edge(a, 100)
    assert recovered.has_edge(b, 200)
    assert not recovered.has_edge(b, 201)
    recovered.close()


def test_interrupted_checkpoint_does_not_double_apply(tmp_path):
    """Crash between snapshot rename and WAL truncation must not replay twice.

    The generation stamp is what makes compaction crash-atomic: the snapshot
    carries generation G+1, segments not yet truncated still carry G, and
    recovery must skip them -- replaying would double-apply weighted deltas.
    """
    from repro import WeightedCuckooGraph
    from repro.persist import write_snapshot

    source = tmp_path / "source"
    store = PersistentStore(source, scheme="weighted", compact_wal_bytes=None)
    store.insert_weighted_edge(1, 2, 5)
    store.insert_weighted_edge(3, 4, 2)
    store.delete_edge(3, 4)  # weight 1 now
    # Simulate the crash window: the snapshot (generation 1) lands
    # atomically, but the process dies before any segment is truncated.
    write_snapshot(source / "snapshot.bin", store.store, generation=1)
    store.close()

    recovered = recover(source)
    assert recovered.edge_weight(1, 2) == 5, "WAL replayed over its own snapshot"
    assert recovered.edge_weight(3, 4) == 1
    # Recovery healed the stale segment: a second recovery sees a truncated
    # log and the same state.
    assert recovered.last_recovery["wal_ops"] == 0
    recovered.close()
    again = recover(source)
    assert again.edge_weight(1, 2) == 5
    assert again.last_recovery["wal_ops"] == 0
    again.close()


def test_completed_checkpoint_replays_post_snapshot_commits(tmp_path):
    """After a *completed* checkpoint, later commits replay on top of it."""
    source = tmp_path / "source"
    store = PersistentStore(source, scheme="weighted", compact_wal_bytes=None)
    store.insert_weighted_edge(1, 2, 5)
    assert store.checkpoint() == 1
    store.insert_weighted_edge(1, 2, 1)  # post-snapshot commit, weight 6
    store.close()

    recovered = recover(source)
    assert recovered.edge_weight(1, 2) == 6
    assert recovered.last_recovery["snapshot_rows"] == 1
    assert recovered.last_recovery["wal_ops"] == 1
    recovered.close()


def test_checkpoint_right_after_recovery_keeps_later_commits(tmp_path):
    """A post-recovery checkpoint must stamp segments with the new generation.

    Regression: checkpoint() on a recovered store truncates segments that
    were never appended to in this process; the re-stamp must win over the
    stale on-disk header generation, or every commit after the checkpoint
    would be classified stale and silently dropped by the next recovery.
    """
    source = tmp_path / "source"
    store = PersistentStore(source, scheme="cuckoo", compact_wal_bytes=None)
    store.insert_edge(1, 2)
    store.checkpoint()  # generation 1 on disk
    store.close()

    reopened = recover(source)
    reopened.checkpoint()          # generation 2; segment was never appended to
    reopened.insert_edge(5, 6)     # post-checkpoint commit
    reopened.close()

    final = recover(source)
    assert sorted(final.edges()) == [(1, 2), (5, 6)]
    assert final.last_recovery["wal_ops"] == 1
    final.close()


def test_poisoned_final_record_is_dropped_not_fatal(tmp_path):
    """A final record whose apply fails deterministically must not brick recovery.

    Live-store analogue: the record was fsynced, the apply raised, and the
    process was killed before the compensating rewind ran.  recover() drops
    the record and restarts replay into a fresh store.
    """
    from repro.persist import MANIFEST_FORMAT, WriteAheadLog

    class Poison(CuckooGraph):
        def insert_edge(self, u, v):
            if (u, v) == (666, 666):
                raise RuntimeError("synthetic capacity exhaustion")
            return super().insert_edge(u, v)

        def spawn_empty(self):
            return Poison()

    source = tmp_path / "source"
    source.mkdir()
    (source / MANIFEST_NAME).write_text(json.dumps(
        {"format": MANIFEST_FORMAT, "scheme": None, "segments": 1}))
    wal = WriteAheadLog(source / "wal-000.bin")
    wal.append_batch([(INSERT, 1, 2), (INSERT, 3, 4)])
    wal.append_batch([(INSERT, 666, 666)])  # poisoned, uncompensated tail
    wal.close()

    recovered = recover(source, store=Poison())
    assert sorted(recovered.edges()) == [(1, 2), (3, 4)]
    assert recovered.last_recovery["wal_ops"] == 2
    recovered.close()
    # The poisoned record is gone from disk: a plain store recovers too.
    again = recover(source, store=CuckooGraph())
    assert sorted(again.edges()) == [(1, 2), (3, 4)]
    again.close()


def test_poisoned_mid_log_record_is_a_hard_error(tmp_path):
    """Only the *final* record gets the crash benefit of the doubt."""
    from repro.core.errors import PersistenceError
    from repro.persist import MANIFEST_FORMAT, WriteAheadLog

    class Poison(CuckooGraph):
        def insert_edge(self, u, v):
            if (u, v) == (666, 666):
                raise RuntimeError("boom")
            return super().insert_edge(u, v)

        def spawn_empty(self):
            return Poison()

    source = tmp_path / "source"
    source.mkdir()
    (source / MANIFEST_NAME).write_text(json.dumps(
        {"format": MANIFEST_FORMAT, "scheme": None, "segments": 1}))
    wal = WriteAheadLog(source / "wal-000.bin")
    wal.append_batch([(INSERT, 666, 666)])
    wal.append_batch([(INSERT, 1, 2)])  # a commit *after* the poison
    wal.close()

    with pytest.raises(PersistenceError, match="before the tail"):
        recover(source, store=Poison())
