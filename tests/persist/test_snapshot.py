"""Snapshots: logical-edge-set roundtrips, atomicity, corruption, compaction."""

import pytest

from repro import CuckooGraph, MultiEdgeCuckooGraph, ShardedCuckooGraph, WeightedCuckooGraph
from repro.core.errors import SnapshotCorruptError
from repro.persist import (
    CompactionPolicy,
    KIND_PLAIN,
    KIND_WEIGHTED,
    load_snapshot,
    read_snapshot,
    snapshot_rows,
    write_snapshot,
)

EDGES = [(1, 2), (1, 3), (2, 3), (40, 1), (5, 5)]


class TestKinds:
    def test_plain_store_snapshots_pairs(self):
        store = CuckooGraph()
        store.insert_edges(EDGES)
        kind, rows = snapshot_rows(store)
        assert kind == KIND_PLAIN
        assert rows == sorted(EDGES)

    def test_weighted_store_snapshots_triples(self):
        store = WeightedCuckooGraph()
        store.insert_weighted_edge(1, 2, 3)
        store.insert_weighted_edge(7, 8, 1)
        kind, rows = snapshot_rows(store)
        assert kind == KIND_WEIGHTED
        assert rows == [(1, 2, 3), (7, 8, 1)]

    def test_multiedge_store_snapshots_multiplicities(self):
        store = MultiEdgeCuckooGraph()
        store.add_edge(1, 2, edge_id=10)
        store.add_edge(1, 2, edge_id=11)
        store.add_edge(3, 4, edge_id=12)
        kind, rows = snapshot_rows(store)
        assert kind == KIND_WEIGHTED
        assert rows == [(1, 2, 2), (3, 4, 1)]

    def test_unweighted_sharded_store_snapshots_pairs(self):
        store = ShardedCuckooGraph(num_shards=3)
        store.insert_edges(EDGES)
        kind, rows = snapshot_rows(store)
        assert kind == KIND_PLAIN
        assert rows == sorted(EDGES)
        store.close()

    def test_weighted_sharded_store_snapshots_triples(self):
        store = ShardedCuckooGraph(num_shards=3, weighted=True)
        store.insert_weighted_edge(1, 2, 4)
        kind, rows = snapshot_rows(store)
        assert kind == KIND_WEIGHTED
        assert rows == [(1, 2, 4)]
        store.close()


class TestRoundtrip:
    def test_plain_roundtrip(self, tmp_path):
        store = CuckooGraph()
        store.insert_edges(EDGES)
        path = tmp_path / "snapshot.bin"
        assert write_snapshot(path, store, generation=5) == len(EDGES)
        target = CuckooGraph()
        assert load_snapshot(path, target) == (len(EDGES), 5)
        assert sorted(target.edges()) == sorted(EDGES)

    def test_weighted_roundtrip_preserves_weights(self, tmp_path):
        store = WeightedCuckooGraph()
        store.insert_weighted_edge(1, 2, 3)
        store.insert_weighted_edge(4, 5, 9)
        path = tmp_path / "snapshot.bin"
        write_snapshot(path, store)
        target = WeightedCuckooGraph()
        load_snapshot(path, target)
        assert target.edge_weight(1, 2) == 3
        assert target.edge_weight(4, 5) == 9

    def test_multiedge_roundtrip_preserves_multiplicity(self, tmp_path):
        store = MultiEdgeCuckooGraph()
        store.add_edge(1, 2, edge_id=10)
        store.add_edge(1, 2, edge_id=11)
        path = tmp_path / "snapshot.bin"
        write_snapshot(path, store)
        target = MultiEdgeCuckooGraph()
        load_snapshot(path, target)
        assert target.edge_multiplicity(1, 2) == 2

    def test_weighted_rows_collapse_into_a_plain_target(self, tmp_path):
        store = WeightedCuckooGraph()
        store.insert_weighted_edge(1, 2, 5)
        path = tmp_path / "snapshot.bin"
        write_snapshot(path, store)
        target = CuckooGraph()
        load_snapshot(path, target)
        assert sorted(target.edges()) == [(1, 2)]
        assert target.num_edges == 1

    def test_missing_snapshot_loads_nothing(self, tmp_path):
        assert load_snapshot(tmp_path / "absent.bin", CuckooGraph()) == (0, 0)

    def test_atomic_write_leaves_no_temp_file(self, tmp_path):
        store = CuckooGraph()
        store.insert_edges(EDGES)
        write_snapshot(tmp_path / "snapshot.bin", store)
        assert sorted(p.name for p in tmp_path.iterdir()) == ["snapshot.bin"]

    def test_rewrite_replaces_previous_snapshot(self, tmp_path):
        store = CuckooGraph()
        store.insert_edge(1, 2)
        path = tmp_path / "snapshot.bin"
        write_snapshot(path, store)
        store.insert_edge(3, 4)
        write_snapshot(path, store)
        kind, generation, rows = read_snapshot(path)
        assert kind == KIND_PLAIN
        assert generation == 0
        assert rows == [(1, 2), (3, 4)]


class TestCorruption:
    def _valid_snapshot(self, tmp_path):
        store = CuckooGraph()
        store.insert_edges(EDGES)
        path = tmp_path / "snapshot.bin"
        write_snapshot(path, store)
        return path

    def test_foreign_magic(self, tmp_path):
        path = self._valid_snapshot(tmp_path)
        path.write_bytes(b"NOTSNAP!" + path.read_bytes()[8:])
        with pytest.raises(SnapshotCorruptError):
            read_snapshot(path)

    def test_flipped_body_byte(self, tmp_path):
        path = self._valid_snapshot(tmp_path)
        data = bytearray(path.read_bytes())
        data[-1] ^= 0xFF
        path.write_bytes(bytes(data))
        with pytest.raises(SnapshotCorruptError):
            read_snapshot(path)

    def test_truncated_body(self, tmp_path):
        path = self._valid_snapshot(tmp_path)
        data = path.read_bytes()
        path.write_bytes(data[:-4])
        with pytest.raises(SnapshotCorruptError):
            read_snapshot(path)

    def test_truncated_header(self, tmp_path):
        path = self._valid_snapshot(tmp_path)
        path.write_bytes(path.read_bytes()[:10])
        with pytest.raises(SnapshotCorruptError):
            read_snapshot(path)


class TestCompactionPolicy:
    def test_threshold(self):
        policy = CompactionPolicy(max_wal_bytes=100)
        assert not policy.should_compact(100)
        assert policy.should_compact(101)

    def test_disabled(self):
        policy = CompactionPolicy(max_wal_bytes=None)
        assert not policy.should_compact(10**12)
