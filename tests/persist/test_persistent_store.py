"""PersistentStore: contract behaviour, segmentation, compaction, lifecycle."""

import json

import pytest

from repro import CuckooGraph, ShardedCuckooGraph, WeightedCuckooGraph
from repro.core.errors import PersistenceError, StoreClosedError
from repro.persist import (
    MANIFEST_NAME,
    PersistentStore,
    SNAPSHOT_NAME,
    recover,
    register_scheme,
)

EDGES = [(1, 2), (1, 3), (2, 3), (40, 1), (5, 5), (7, 1), (7, 2)]


class TestBasics:
    def test_mutations_apply_and_read_back(self, tmp_path):
        with PersistentStore(tmp_path / "s", scheme="cuckoo") as store:
            assert store.insert_edge(1, 2) is True
            assert store.insert_edge(1, 2) is False
            assert store.has_edge(1, 2)
            assert store.successors(1) == [2]
            assert store.delete_edge(1, 2) is True
            assert store.num_edges == 0

    def test_batch_calls_are_single_group_commits(self, tmp_path):
        with PersistentStore(tmp_path / "s", scheme="cuckoo") as store:
            assert store.insert_edges(EDGES) == len(EDGES)
            assert store.commits == 1
            assert store.delete_edges(EDGES[:2]) == 2
            assert store.commits == 2
            # Reads never commit.
            store.has_edges(EDGES)
            store.successors_many([1, 7])
            assert store.commits == 2

    def test_manifest_records_scheme_and_segments(self, tmp_path):
        with PersistentStore(tmp_path / "s", scheme="sharded"):
            manifest = json.loads((tmp_path / "s" / MANIFEST_NAME).read_text())
        assert manifest["scheme"] == "sharded"
        assert manifest["segments"] == 4

    def test_sharded_store_gets_one_segment_per_shard(self, tmp_path):
        inner = ShardedCuckooGraph(num_shards=3)
        with PersistentStore(tmp_path / "s", store=inner, own_store=True) as store:
            store.insert_edges(EDGES)
            # Every edge's record went to the segment of its source's shard.
            for index in range(3):
                expected = [e for e in EDGES if inner.shard_of(e[0]) == index]
                segment = tmp_path / "s" / f"wal-{index:03d}.bin"
                if expected:
                    assert segment.exists()

    def test_fresh_init_over_existing_store_is_refused(self, tmp_path):
        with PersistentStore(tmp_path / "s", scheme="cuckoo") as store:
            store.insert_edge(1, 2)
        with pytest.raises(PersistenceError):
            PersistentStore(tmp_path / "s", scheme="cuckoo")

    def test_unknown_scheme_name(self, tmp_path):
        with pytest.raises(PersistenceError):
            PersistentStore(tmp_path / "s", scheme="btree")

    def test_register_scheme_extends_recovery(self, tmp_path):
        register_scheme("cuckoo-test", CuckooGraph)
        with PersistentStore(tmp_path / "s", scheme="cuckoo-test") as store:
            store.insert_edge(1, 2)
        recovered = recover(tmp_path / "s")
        assert recovered.has_edge(1, 2)
        recovered.close()

    def test_weighted_operations_are_logged_and_recovered(self, tmp_path):
        with PersistentStore(tmp_path / "s", scheme="weighted") as store:
            assert store.insert_weighted_edge(1, 2, 3) == 3
            assert store.edge_weight(1, 2) == 3
            store.delete_edge(1, 2)  # decrements to 2
        recovered = recover(tmp_path / "s")
        assert recovered.edge_weight(1, 2) == 2
        recovered.close()

    def test_weighted_insert_on_plain_store_is_a_type_error(self, tmp_path):
        with PersistentStore(tmp_path / "s", scheme="cuckoo") as store:
            with pytest.raises(TypeError):
                store.insert_weighted_edge(1, 2)
            # Nothing must have been logged for the refused operation.
            assert store.commits == 0


class TestLifecycle:
    def test_close_is_terminal_and_idempotent(self, tmp_path):
        store = PersistentStore(tmp_path / "s", scheme="cuckoo")
        store.insert_edges(EDGES)
        store.close()
        store.close()
        assert store.closed
        for mutation in (
            lambda: store.insert_edge(9, 9),
            lambda: store.delete_edge(1, 2),
            lambda: store.insert_edges([(9, 9)]),
            lambda: store.delete_edges([(1, 2)]),
            lambda: store.sync(),
            lambda: store.checkpoint(),
        ):
            with pytest.raises(StoreClosedError):
                mutation()
        # Reads still delegate after close.
        assert store.has_edge(1, 2)
        assert sorted(store.edges()) == sorted(EDGES)

    def test_close_closes_an_owned_inner_store(self, tmp_path):
        store = PersistentStore(tmp_path / "s", scheme="sharded")
        inner = store.store
        store.close()
        assert inner.closed

    def test_close_leaves_a_caller_store_open(self, tmp_path):
        inner = ShardedCuckooGraph(num_shards=2)
        store = PersistentStore(tmp_path / "s", store=inner, own_store=False)
        store.close()
        assert not inner.closed
        inner.close()

    def test_ephemeral_store_removes_its_directory(self):
        store = PersistentStore(scheme="cuckoo")
        store.insert_edges(EDGES)
        path = store.path
        assert path.exists()
        store.close()
        assert not path.exists()

    def test_spawn_empty_is_independent_and_same_scheme(self, tmp_path):
        store = PersistentStore(tmp_path / "s", scheme="sharded")
        store.insert_edges(EDGES)
        fresh = store.spawn_empty()
        assert fresh is not store
        assert fresh.num_edges == 0
        assert isinstance(fresh.store, ShardedCuckooGraph)
        assert fresh.store.num_shards == store.store.num_shards
        assert fresh.insert_edge(1, 2) is True
        assert store.num_edges == len(EDGES)
        # Spawned directories stay under the parent store's directory.
        assert str(fresh.path).startswith(str(store.path))
        fresh.close()
        store.close()

    def test_spawned_store_is_itself_recoverable(self, tmp_path):
        store = PersistentStore(tmp_path / "s", scheme="cuckoo")
        fresh = store.spawn_empty()
        fresh.insert_edges(EDGES)
        spawn_path = fresh.path
        fresh.close()
        recovered = recover(spawn_path)
        assert sorted(recovered.edges()) == sorted(EDGES)
        recovered.close()
        store.close()


class TestCompaction:
    def test_threshold_compaction_snapshots_and_truncates(self, tmp_path):
        store = PersistentStore(tmp_path / "s", scheme="cuckoo",
                                compact_wal_bytes=256)
        for index in range(200):
            store.insert_edge(index, index + 1)
        assert store.compactions >= 1
        assert (tmp_path / "s" / SNAPSHOT_NAME).exists()
        # The WAL stays bounded: never much past the threshold plus one batch.
        assert store.wal_bytes() <= 256 + 64
        store.close()
        recovered = recover(tmp_path / "s")
        assert recovered.num_edges == 200
        assert recovered.last_recovery["snapshot_rows"] >= 1
        recovered.close()

    def test_explicit_checkpoint(self, tmp_path):
        store = PersistentStore(tmp_path / "s", scheme="weighted",
                                compact_wal_bytes=None)
        store.insert_weighted_edge(1, 2, 5)
        rows = store.checkpoint()
        assert rows == 1
        store.close()
        recovered = recover(tmp_path / "s")
        assert recovered.last_recovery["wal_ops"] == 0
        assert recovered.edge_weight(1, 2) == 5
        recovered.close()

    def test_summary_shape(self, tmp_path):
        with PersistentStore(tmp_path / "s", scheme="cuckoo") as store:
            store.insert_edges(EDGES)
            summary = store.persistence_summary()
        assert summary["segments"] == 1
        assert summary["commits"] == 1
        assert summary["wal_records"] == 1
        assert summary["wal_bytes"] > 0
        assert summary["scheme"] == "cuckoo"
        structure = store.structure_summary()
        assert "persistence" in structure and "store" in structure


class TestRecoverErrors:
    def test_missing_manifest(self, tmp_path):
        with pytest.raises(PersistenceError):
            recover(tmp_path)

    def test_segment_mismatch(self, tmp_path):
        with PersistentStore(tmp_path / "s", scheme="sharded") as store:
            store.insert_edge(1, 2)
        with pytest.raises(PersistenceError):
            recover(tmp_path / "s", store=ShardedCuckooGraph(num_shards=2))

    def test_nonempty_target_store(self, tmp_path):
        with PersistentStore(tmp_path / "s", scheme="cuckoo") as store:
            store.insert_edge(1, 2)
        dirty = CuckooGraph()
        dirty.insert_edge(9, 9)
        with pytest.raises(PersistenceError):
            recover(tmp_path / "s", store=dirty)

    def test_anonymous_scheme_needs_explicit_store(self, tmp_path):
        inner = WeightedCuckooGraph()
        with PersistentStore(tmp_path / "s", store=inner, own_store=True) as store:
            store.insert_edge(1, 2)
        with pytest.raises(PersistenceError):
            recover(tmp_path / "s")
        recovered = recover(tmp_path / "s", store=WeightedCuckooGraph())
        assert recovered.has_edge(1, 2)
        recovered.close()


class _PoisonStore(CuckooGraph):
    """Inner store whose apply fails on a designated edge (capacity stand-in)."""

    name = "PoisonStore"

    def insert_edge(self, u: int, v: int) -> bool:
        if (u, v) == (666, 666):
            raise RuntimeError("synthetic capacity exhaustion")
        return super().insert_edge(u, v)


class TestFailedApplyCompensation:
    def test_failed_apply_is_rolled_back_out_of_the_wal(self, tmp_path):
        """A mutation the store refused must not survive in the log.

        Without compensation the poisoned record would re-raise inside every
        future recover(), leaving the directory permanently unrecoverable.
        """
        store = PersistentStore(tmp_path / "s", store=_PoisonStore(),
                                own_store=True, compact_wal_bytes=None)
        store.insert_edges([(1, 2), (3, 4)])
        commits_before = store.commits
        with pytest.raises(RuntimeError, match="synthetic"):
            store.insert_edges([(5, 6), (666, 666), (7, 8)])
        assert store.commits == commits_before  # rolled back
        with pytest.raises(RuntimeError, match="synthetic"):
            store.insert_edge(666, 666)
        store.close()
        # The log replays cleanly into an ordinary store: only the accepted
        # commits are there (the partially applied (5, 6) died with memory).
        recovered = recover(tmp_path / "s", store=CuckooGraph())
        assert sorted(recovered.edges()) == [(1, 2), (3, 4)]
        recovered.close()

    def test_rollback_only_drops_the_failed_commit(self, tmp_path):
        store = PersistentStore(tmp_path / "s", store=_PoisonStore(),
                                own_store=True, compact_wal_bytes=None)
        store.insert_edges([(1, 2)])
        with pytest.raises(RuntimeError):
            store.insert_edge(666, 666)
        store.insert_edges([(3, 4)])  # the log keeps accepting commits
        store.close()
        recovered = recover(tmp_path / "s", store=CuckooGraph())
        assert sorted(recovered.edges()) == [(1, 2), (3, 4)]
        recovered.close()


class TestManifestRobustness:
    def test_corrupt_manifest_is_a_persistence_error(self, tmp_path):
        with PersistentStore(tmp_path / "s", scheme="cuckoo") as store:
            store.insert_edge(1, 2)
        (tmp_path / "s" / MANIFEST_NAME).write_text("{ torn")
        with pytest.raises(PersistenceError, match=MANIFEST_NAME):
            recover(tmp_path / "s")

    def test_manifest_write_leaves_no_temp_file(self, tmp_path):
        from repro.persist import LOCK_NAME

        with PersistentStore(tmp_path / "s", scheme="cuckoo"):
            names = sorted(p.name for p in (tmp_path / "s").iterdir())
        assert names == sorted([LOCK_NAME, MANIFEST_NAME])


class TestWriterExclusivity:
    def test_live_directory_refuses_a_second_writer_and_recovery(self, tmp_path):
        """The advisory lock keeps truncating readers away from live writers."""
        store = PersistentStore(tmp_path / "s", scheme="cuckoo")
        store.insert_edge(1, 2)
        with pytest.raises(PersistenceError, match="held by"):
            recover(tmp_path / "s")
        store.close()  # releases the lock
        recovered = recover(tmp_path / "s")
        assert recovered.has_edge(1, 2)
        # ...and the recovered wrapper holds it in turn.
        with pytest.raises(PersistenceError, match="held by"):
            recover(tmp_path / "s")
        recovered.close()

    def test_replay_into_reads_a_live_synced_store(self, tmp_path):
        from repro.persist import replay_into

        store = PersistentStore(tmp_path / "s", scheme="cuckoo",
                                sync_on_commit=False, compact_wal_bytes=None)
        store.insert_edges(EDGES)
        store.sync()
        probe = CuckooGraph()
        stats = replay_into(tmp_path / "s", probe)
        assert sorted(probe.edges()) == sorted(EDGES)
        assert stats["wal_ops"] == len(EDGES)
        # The log was not touched: the live store keeps appending fine.
        store.insert_edge(999, 1000)
        store.close()
        final = recover(tmp_path / "s")
        assert final.num_edges == len(EDGES) + 1
        final.close()


class TestSchemeMismatchSafety:
    def test_weighted_log_into_plain_store_fails_without_data_loss(self, tmp_path):
        """Recovering with the wrong scheme must error out, not destroy records."""
        with PersistentStore(tmp_path / "s", scheme="weighted",
                             compact_wal_bytes=None) as store:
            store.insert_weighted_edge(1, 2, 5)
        wal_bytes_before = (tmp_path / "s" / "wal-000.bin").stat().st_size
        with pytest.raises(PersistenceError, match="not weighted"):
            recover(tmp_path / "s", store=CuckooGraph())
        # Nothing was truncated or set aside by the failed attempt.
        assert (tmp_path / "s" / "wal-000.bin").stat().st_size == wal_bytes_before
        assert not list((tmp_path / "s").glob("*.poisoned"))
        recovered = recover(tmp_path / "s")  # manifest scheme: weighted
        assert recovered.edge_weight(1, 2) == 5
        recovered.close()

    def test_poisoned_record_bytes_are_preserved_in_a_sidecar(self, tmp_path):
        import json

        from repro.persist import MANIFEST_FORMAT, WriteAheadLog
        from repro.persist.wal import INSERT

        class Poison(CuckooGraph):
            def insert_edge(self, u, v):
                if (u, v) == (666, 666):
                    raise RuntimeError("boom")
                return super().insert_edge(u, v)

            def spawn_empty(self):
                return Poison()

        source = tmp_path / "source"
        source.mkdir()
        (source / MANIFEST_NAME).write_text(json.dumps(
            {"format": MANIFEST_FORMAT, "scheme": None, "segments": 1}))
        wal = WriteAheadLog(source / "wal-000.bin")
        wal.append_batch([(INSERT, 1, 2)])
        wal.append_batch([(INSERT, 666, 666)])
        wal.close()
        recovered = recover(source, store=Poison())
        assert sorted(recovered.edges()) == [(1, 2)]
        sidecar = source / "wal-000.bin.poisoned"
        assert sidecar.exists() and sidecar.stat().st_size > 0
        recovered.close()
