"""Analytics kernels cross-checked against networkx reference implementations."""

import random

import networkx as nx
import pytest

from repro import CuckooGraph
from repro.analytics import (
    all_local_clustering_coefficients,
    average_clustering,
    betweenness_centrality,
    bfs,
    bfs_from_top_nodes,
    bfs_levels,
    count_components,
    count_triangles,
    count_triangles_of_node,
    dijkstra,
    extract_subgraph,
    induced_edges,
    pagerank,
    shortest_path,
    sssp_from_sources,
    strongly_connected_components,
    top_degree_nodes,
    top_degree_subgraph,
    top_ranked,
    total_degrees,
    total_directed_triangles,
    weakly_connected_components,
)
from repro.baselines import AdjacencyListGraph


@pytest.fixture(scope="module")
def random_graph():
    """A CuckooGraph, the same graph in networkx, and its edge list."""
    rng = random.Random(7)
    edges = set()
    while len(edges) < 900:
        u, v = rng.randrange(120), rng.randrange(120)
        if u != v:
            edges.add((u, v))
    store = CuckooGraph()
    reference = nx.DiGraph()
    for u, v in edges:
        store.insert_edge(u, v)
        reference.add_edge(u, v)
    return store, reference, sorted(edges)


class TestBFS:
    def test_bfs_visits_reachable_set(self, random_graph):
        store, reference, _ = random_graph
        source = next(iter(reference.nodes))
        expected = {source} | nx.descendants(reference, source)
        assert set(bfs(store, source)) == expected

    def test_bfs_levels_match_networkx(self, random_graph):
        store, reference, _ = random_graph
        source = next(iter(reference.nodes))
        assert bfs_levels(store, source) == nx.single_source_shortest_path_length(
            reference, source
        )

    def test_bfs_order_starts_at_source_and_has_no_duplicates(self, random_graph):
        store, _, _ = random_graph
        order = bfs(store, 0)
        assert order[0] == 0
        assert len(order) == len(set(order))

    def test_bfs_from_top_nodes_returns_counts(self, random_graph):
        store, _, _ = random_graph
        results = bfs_from_top_nodes(store, root_count=3)
        assert len(results) == 3
        for root, count in results:
            assert count == len(bfs(store, root))


class TestSSSP:
    def test_dijkstra_matches_networkx(self, random_graph):
        store, reference, _ = random_graph
        source = next(iter(reference.nodes))
        expected = nx.single_source_shortest_path_length(reference, source)
        assert dijkstra(store, source) == {node: float(dist) for node, dist in expected.items()}

    def test_dijkstra_with_weights(self):
        store = CuckooGraph()
        store.insert_edge(1, 2)
        store.insert_edge(2, 3)
        store.insert_edge(1, 3)
        weights = {(1, 2): 1.0, (2, 3): 1.0, (1, 3): 5.0}
        distances = dijkstra(store, 1, weight=lambda u, v: weights[(u, v)])
        assert distances[3] == 2.0

    def test_shortest_path_endpoints(self, random_graph):
        store, reference, _ = random_graph
        source = next(iter(reference.nodes))
        reachable = sorted(nx.descendants(reference, source))
        if reachable:
            target = reachable[-1]
            path = shortest_path(store, source, target)
            assert path[0] == source and path[-1] == target
            assert len(path) - 1 == nx.shortest_path_length(reference, source, target)

    def test_shortest_path_unreachable_returns_none(self):
        store = CuckooGraph()
        store.insert_edge(1, 2)
        store.insert_edge(3, 4)
        assert shortest_path(store, 1, 4) is None

    def test_sssp_from_sources(self, random_graph):
        store, _, _ = random_graph
        sources = top_degree_nodes(store, 3)
        result = sssp_from_sources(store, sources)
        assert set(result) == set(sources)


class TestTrianglesAndComponents:
    def test_total_directed_triangles_matches_networkx(self, random_graph):
        store, reference, _ = random_graph
        expected = sum(nx.triangles(reference.to_undirected()).values()) // 3
        # total_directed_triangles counts directed 3-cycles; cross-check with a
        # direct reference computation instead of the undirected count.
        direct = 0
        for u, v in reference.edges:
            for w in reference.successors(v):
                if w != u and reference.has_edge(w, u):
                    direct += 1
        assert total_directed_triangles(store) == direct // 3
        assert expected >= 0  # sanity use of the undirected count

    def test_count_triangles_of_node_follows_methodology(self):
        store = CuckooGraph()
        for u, v in [(1, 2), (2, 3), (3, 1), (1, 4)]:
            store.insert_edge(u, v)
        assert count_triangles_of_node(store, 1) == 1
        assert count_triangles_of_node(store, 4) == 0

    def test_count_triangles_top_nodes(self, random_graph):
        store, _, _ = random_graph
        result = count_triangles(store, node_count=5)
        assert len(result) == 5
        assert all(count >= 0 for count in result.values())

    def test_scc_matches_networkx(self, random_graph):
        store, reference, _ = random_graph
        ours = sorted(sorted(component) for component in strongly_connected_components(store))
        expected = sorted(sorted(component) for component in nx.strongly_connected_components(reference))
        assert ours == expected

    def test_wcc_matches_networkx(self, random_graph):
        store, reference, _ = random_graph
        ours = sorted(sorted(component) for component in weakly_connected_components(store))
        expected = sorted(sorted(component) for component in nx.weakly_connected_components(reference))
        assert ours == expected

    def test_count_components(self, random_graph):
        store, reference, _ = random_graph
        assert count_components(store, strongly=True) == nx.number_strongly_connected_components(reference)
        assert count_components(store, strongly=False) == nx.number_weakly_connected_components(reference)


class TestPageRankBetweennessLCC:
    def test_pagerank_close_to_networkx(self, random_graph):
        store, reference, _ = random_graph
        ours = pagerank(store, iterations=100)
        expected = nx.pagerank(reference, alpha=0.85, max_iter=200, tol=1e-10)
        assert set(ours) == set(expected)
        for node, score in expected.items():
            assert ours[node] == pytest.approx(score, abs=5e-3)

    def test_pagerank_scores_sum_to_one(self, random_graph):
        store, _, _ = random_graph
        assert sum(pagerank(store, iterations=50).values()) == pytest.approx(1.0, abs=1e-6)

    def test_top_ranked_ordering(self, random_graph):
        store, _, _ = random_graph
        top = top_ranked(store, count=5, iterations=30)
        scores = [score for _, score in top]
        assert scores == sorted(scores, reverse=True)

    def test_betweenness_close_to_networkx(self, random_graph):
        store, reference, _ = random_graph
        ours = betweenness_centrality(store)
        expected = nx.betweenness_centrality(reference, normalized=True)
        for node, score in expected.items():
            assert ours[node] == pytest.approx(score, abs=1e-6)

    def test_lcc_on_a_known_graph(self):
        store = CuckooGraph()
        # Node 1 points to 2, 3; edge 2->3 closes one of the two ordered pairs.
        for u, v in [(1, 2), (1, 3), (2, 3)]:
            store.insert_edge(u, v)
        coefficients = all_local_clustering_coefficients(store)
        assert coefficients[1] == pytest.approx(0.5)
        assert coefficients[2] == 0.0

    def test_average_clustering_bounds(self, random_graph):
        store, _, _ = random_graph
        assert 0.0 <= average_clustering(store) <= 1.0


class TestSubgraph:
    def test_total_degrees(self, random_graph):
        store, reference, _ = random_graph
        degrees = total_degrees(store)
        for node in reference.nodes:
            assert degrees[node] == reference.in_degree(node) + reference.out_degree(node)

    def test_top_degree_nodes_ordering(self, random_graph):
        store, _, _ = random_graph
        degrees = total_degrees(store)
        top = top_degree_nodes(store, 10)
        ranked = sorted(degrees.values(), reverse=True)
        assert [degrees[node] for node in top] == ranked[:10]

    def test_induced_edges_and_extract(self, random_graph):
        store, reference, _ = random_graph
        nodes = top_degree_nodes(store, 30)
        selected = set(nodes)
        expected = sorted(
            (u, v) for u, v in reference.edges if u in selected and v in selected
        )
        assert sorted(induced_edges(store, nodes)) == expected
        subgraph = extract_subgraph(store, nodes)
        assert isinstance(subgraph, CuckooGraph)
        assert sorted(subgraph.edges()) == expected

    def test_extract_subgraph_with_explicit_class(self, random_graph):
        store, _, _ = random_graph
        nodes = top_degree_nodes(store, 10)
        subgraph = extract_subgraph(store, nodes, store_class=AdjacencyListGraph)
        assert isinstance(subgraph, AdjacencyListGraph)

    def test_top_degree_subgraph_wrapper(self, random_graph):
        store, _, _ = random_graph
        subgraph, nodes = top_degree_subgraph(store, 20)
        assert len(nodes) == 20
        assert subgraph.num_edges == len(induced_edges(store, nodes))
