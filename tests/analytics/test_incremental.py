"""Unit + parity suite for the incremental analytics replica.

The contract under test (see ``repro/analytics/incremental.py``): at any
point where the change feed has been folded in, every delta-maintained
kernel's output is **byte-identical** -- exact ints, bit-exact floats, no
tolerance -- to its canonical reference recomputed from scratch through a
fresh :class:`TraversalEngine` on the same replica store.  Alongside the
parity sweeps, this file pins the cache mechanics the speedup rests on:
one batched refetch per refresh covering exactly the dirty sources, clean
nodes served without any store call, and true (old, new) diffs feeding the
kernels even when shipped ops were no-ops.
"""

import random

import pytest

from repro import CuckooGraph
from repro.analytics import (
    AnalyticsFollower,
    CachedTraversalEngine,
    MaterializationCache,
    TraversalEngine,
    bfs,
    canonical_components,
    canonical_pagerank,
    dijkstra,
    materialize_adjacency,
    top_degree_nodes,
    total_degrees,
    weakly_connected_components,
)
from repro.persist import STORE_SCHEMES, PersistentStore
from repro.replicate import Primary

ITERATIONS = 20  # plenty of sweeps for dirt to propagate, fast enough to fuzz

SCHEMES = ["cuckoo", "sharded"]


def make_pair(scheme, **follower_kwargs):
    store = PersistentStore(None, scheme=scheme, sync_on_commit=False,
                            compact_wal_bytes=None)
    primary = Primary(store)
    follower = AnalyticsFollower(scheme=scheme, iterations=ITERATIONS,
                                 poll_slice_s=0.005, **follower_kwargs)
    primary.attach(follower)
    return store, primary, follower


def assert_kernel_parity(follower, context):
    """Every maintained kernel equals its canonical recompute, bit for bit."""
    replica = follower.store
    assert follower.pagerank() == canonical_pagerank(
        replica, iterations=ITERATIONS, engine=TraversalEngine(replica)
    ), f"{context}: pagerank"
    assert follower.components() == canonical_components(
        replica, engine=TraversalEngine(replica)
    ), f"{context}: components"
    assert follower.total_degrees() == dict(total_degrees(
        replica, engine=TraversalEngine(replica)
    )), f"{context}: degrees"
    assert follower.top_degree_nodes(5) == top_degree_nodes(
        replica, 5, engine=TraversalEngine(replica)
    ), f"{context}: top-k"


class SpyStore(CuckooGraph):
    """Counts the batched successor fetches the cache issues."""

    def __init__(self):
        super().__init__()
        self.successors_many_calls = 0
        self.nodes_fetched = 0

    def successors_many(self, nodes):
        nodes = list(nodes)
        self.successors_many_calls += 1
        self.nodes_fetched += len(nodes)
        return super().successors_many(nodes)


class TestCanonicalKernels:
    def test_canonical_pagerank_is_scheme_independent(self):
        """Same edge set, different stores: bit-identical score vectors."""
        edges = [(1, 2), (2, 3), (3, 1), (1, 4), (5, 1), (6, 7)]
        results = []
        for scheme in SCHEMES:
            store = STORE_SCHEMES[scheme]()
            store.insert_edges(edges)
            results.append(canonical_pagerank(store, iterations=ITERATIONS))
        assert results[0] == results[1]

    def test_canonical_pagerank_total_mass_with_dangling(self):
        store = CuckooGraph()
        store.insert_edges([(1, 2), (2, 3)])  # 3 is dangling
        ranks = canonical_pagerank(store, iterations=50)
        assert set(ranks) == {1, 2, 3}
        assert sum(ranks.values()) == pytest.approx(1.0)

    def test_canonical_components_form_and_content(self):
        store = CuckooGraph()
        store.insert_edges([(4, 2), (2, 9), (7, 5), (11, 7)])
        components = canonical_components(store)
        assert components == [[2, 4, 9], [5, 7, 11]]
        legacy = weakly_connected_components(store)
        assert sorted(sorted(c) for c in legacy) == components

    def test_empty_store(self):
        store = CuckooGraph()
        assert canonical_pagerank(store) == {}
        assert canonical_components(store) == []


class TestMaterializationCache:
    def test_prime_is_one_batch_and_serve_is_zero(self):
        spy = SpyStore()
        spy.insert_edges([(1, 2), (1, 3), (2, 3), (4, 5)])
        cache = MaterializationCache()
        cache.prime(spy, TraversalEngine(spy))
        calls_after_prime = spy.successors_many_calls
        served, fetched = cache.serve(spy, [1, 2, 4, 99])
        assert fetched == 0
        assert spy.successors_many_calls == calls_after_prime
        assert served == {1: [2, 3], 2: [3], 4: [5], 99: []}
        assert cache.hits == 4 and cache.misses == 0

    def test_refresh_fetches_exactly_the_dirty_sources_once(self):
        spy = SpyStore()
        spy.insert_edges([(1, 2), (2, 3), (4, 5)])
        cache = MaterializationCache()
        cache.prime(spy, TraversalEngine(spy))
        spy.insert_edge(1, 7)
        spy.delete_edge(4, 5)
        cache.mark_dirty(1)
        cache.mark_dirty(4)
        before = spy.successors_many_calls
        diffs = cache.refresh(spy, TraversalEngine(spy))
        assert spy.successors_many_calls == before + 1
        assert spy.nodes_fetched >= 2
        assert set(diffs) == {1, 4}
        old, new = diffs[1]
        assert set(old) == {2} and set(new) == {2, 7}
        assert diffs[4] == ([5], [])
        assert cache.dirty_count == 0
        # Source 4 lost its last edge: gone from the adjacency entirely.
        assert 4 not in cache.adjacency()

    def test_noop_dirt_produces_no_diff(self):
        """A duplicate insert dirties the source but must not reach kernels."""
        store = CuckooGraph()
        store.insert_edges([(1, 2)])
        cache = MaterializationCache()
        cache.prime(store, TraversalEngine(store))
        store.insert_edge(1, 2)  # no-op on a distinct-edge store
        cache.mark_dirty(1)
        assert cache.refresh(store, TraversalEngine(store)) == {}

    def test_serve_fetches_dirty_without_healing(self):
        """Mid-epoch reads see fresh data; the (old, new) diff stays intact."""
        store = CuckooGraph()
        store.insert_edges([(1, 2)])
        cache = MaterializationCache()
        cache.prime(store, TraversalEngine(store))
        store.insert_edge(1, 9)
        cache.mark_dirty(1)
        served, fetched = cache.serve(store, [1])
        assert fetched == 1
        assert set(served[1]) == {2, 9}          # truth, not the stale cache
        assert cache.dirty_count == 1            # not healed
        diffs = cache.refresh(store, TraversalEngine(store))
        assert set(diffs[1][0]) == {2}           # old view preserved

    def test_mark_dirty_before_prime_is_ignored(self):
        cache = MaterializationCache()
        cache.mark_dirty(3)
        assert cache.dirty_count == 0
        with pytest.raises(RuntimeError, match="prime"):
            cache.refresh(CuckooGraph(), TraversalEngine(CuckooGraph()))


@pytest.mark.parametrize("scheme", SCHEMES)
class TestKernelParityUnderMutation:
    def test_parity_at_every_probe(self, scheme):
        """Dense random churn: every kernel bit-equal to recompute, each round."""
        store, primary, follower = make_pair(scheme)
        rng = random.Random(99)
        edges = set()
        try:
            for round_no in range(25):
                inserts, deletes = [], []
                for _ in range(rng.randrange(1, 10)):
                    u, v = rng.randrange(20), rng.randrange(20)
                    if u == v:
                        continue
                    if edges and rng.random() < 0.35:
                        u, v = rng.choice(sorted(edges))
                        deletes.append((u, v))
                        edges.discard((u, v))
                    else:
                        inserts.append((u, v))
                        edges.add((u, v))
                if inserts:
                    store.insert_edges(inserts)
                if deletes:
                    store.delete_edges(deletes)
                primary.sync_and_pump()
                follower.wait_for(primary.commit_index)
                assert_kernel_parity(follower, f"{scheme} round={round_no}")
            stats = follower.analytics_stats()
            assert stats["decisions"]["primed"] >= 1
            assert stats["cache"]["refreshes"] >= 1
        finally:
            follower.close()
            primary.close()
            store.close()

    def test_localized_mutations_take_the_incremental_path(self, scheme):
        """Component-confined edits: PageRank repairs incrementally, bit-exact."""
        store, primary, follower = make_pair(scheme)
        try:
            edges = []
            for component in range(6):
                offset = component * 10
                edges += [(offset + i, offset + (i + 1) % 10) for i in range(10)]
            store.insert_edges(edges)
            primary.sync_and_pump()
            follower.wait_for(primary.commit_index)
            follower.refresh_analytics()
            rng = random.Random(5)
            for round_no in range(8):
                offset = rng.randrange(6) * 10
                store.insert_edges([(offset + rng.randrange(10),
                                     offset + rng.randrange(10))
                                    for _ in range(3)])
                primary.sync_and_pump()
                follower.wait_for(primary.commit_index)
                assert_kernel_parity(follower, f"{scheme} local round={round_no}")
            decisions = follower.analytics_stats()["kernels"]["pagerank"]
            assert decisions["incremental"] >= 1
        finally:
            follower.close()
            primary.close()
            store.close()


class TestStructuralEdgeCases:
    def test_delete_splits_a_component(self):
        store, primary, follower = make_pair("cuckoo")
        try:
            # A 20-node chain plus a far-away pair: one deleted edge is well
            # under the recompute fraction, so the split must be handled by
            # the bounded recompute, not a full rebuild.
            store.insert_edges([(i, i + 1) for i in range(1, 20)])
            store.insert_edges([(100, 101)])
            primary.sync_and_pump()
            follower.wait_for(primary.commit_index)
            assert follower.components() == [list(range(1, 21)), [100, 101]]
            store.delete_edges([(10, 11)])
            primary.sync_and_pump()
            follower.wait_for(primary.commit_index)
            assert follower.components() == [
                list(range(1, 11)), list(range(11, 21)), [100, 101]]
            assert_kernel_parity(follower, "split")
            stats = follower.analytics_stats()
            assert stats["components_nodes_recomputed"] == 20  # not 22
        finally:
            follower.close()
            primary.close()
            store.close()

    def test_node_churn_keeps_parity(self):
        """Appearing/vanishing nodes change 1/n everywhere: full PR rebuild."""
        store, primary, follower = make_pair("cuckoo")
        try:
            store.insert_edges([(1, 2), (2, 1)])
            primary.sync_and_pump()
            follower.wait_for(primary.commit_index)
            assert_kernel_parity(follower, "churn/initial")
            store.insert_edges([(3, 1)])  # node 3 appears
            primary.sync_and_pump()
            follower.wait_for(primary.commit_index)
            assert_kernel_parity(follower, "churn/appear")
            store.delete_edges([(3, 1)])  # node 3 vanishes again
            primary.sync_and_pump()
            follower.wait_for(primary.commit_index)
            assert set(follower.pagerank()) == {1, 2}
            assert_kernel_parity(follower, "churn/vanish")
        finally:
            follower.close()
            primary.close()
            store.close()

    def test_dangling_transitions_keep_parity(self):
        """A node gaining/losing its last out-edge moves the dangling mass."""
        store, primary, follower = make_pair("cuckoo")
        try:
            store.insert_edges([(1, 2), (2, 3)])  # 3 dangling
            primary.sync_and_pump()
            follower.wait_for(primary.commit_index)
            assert_kernel_parity(follower, "dangling/initial")
            store.insert_edges([(3, 1)])          # 3 stops dangling
            primary.sync_and_pump()
            follower.wait_for(primary.commit_index)
            assert_kernel_parity(follower, "dangling/closed-cycle")
            store.delete_edges([(3, 1)])          # dangling again
            primary.sync_and_pump()
            follower.wait_for(primary.commit_index)
            assert_kernel_parity(follower, "dangling/reopened")
        finally:
            follower.close()
            primary.close()
            store.close()

    def test_tiny_recompute_fraction_forces_fallback_and_stays_exact(self):
        store, primary, follower = make_pair("cuckoo",
                                             recompute_fraction=0.0001)
        try:
            store.insert_edges([(i, i + 1) for i in range(30)])
            primary.sync_and_pump()
            follower.wait_for(primary.commit_index)
            follower.refresh_analytics()
            store.insert_edges([(5, 20), (7, 25)])
            primary.sync_and_pump()
            follower.wait_for(primary.commit_index)
            assert_kernel_parity(follower, "fallback")
            decisions = follower.analytics_stats()
            assert decisions["decisions"]["recompute"] >= 1 or \
                decisions["kernels"]["pagerank"]["recompute"] >= 2
        finally:
            follower.close()
            primary.close()
            store.close()


class TestCachedTraversalEngine:
    def test_clean_cache_serves_bfs_sssp_without_store_calls(self):
        spy = SpyStore()
        spy.insert_edges([(1, 2), (2, 3), (1, 4), (4, 5), (3, 5)])
        cache = MaterializationCache()
        cache.prime(spy, TraversalEngine(spy))
        fresh_bfs = bfs(spy, 1, engine=TraversalEngine(spy))
        fresh_sssp = dijkstra(spy, 1, engine=TraversalEngine(spy))
        before = spy.successors_many_calls
        cached = CachedTraversalEngine(spy, cache)
        assert bfs(spy, 1, engine=cached) == fresh_bfs
        assert dijkstra(spy, 1, engine=cached) == fresh_sssp
        assert spy.successors_many_calls == before
        assert cached.expand_calls == 0
        assert cached.cache_served > 0

    def test_materialize_adjacency_matches_cache_view(self):
        store = CuckooGraph()
        store.insert_edges([(1, 2), (2, 3), (1, 3)])
        cache = MaterializationCache()
        cache.prime(store, TraversalEngine(store))
        assert cache.adjacency() == materialize_adjacency(store)


class TestFollowerLifecycle:
    def test_kill_and_reattach_invalidates_and_reconverges(self):
        """Backfill bypasses the op hook; re-attach must drop cached state."""
        store = PersistentStore(None, scheme="cuckoo", sync_on_commit=False,
                                compact_wal_bytes=None)
        primary = Primary(store)
        follower = AnalyticsFollower(scheme="cuckoo", iterations=ITERATIONS)
        primary.attach(follower)
        try:
            store.insert_edges([(1, 2), (2, 3)])
            primary.sync_and_pump()
            follower.wait_for(primary.commit_index)
            assert_kernel_parity(follower, "pre-kill")
            follower.close()

            store.insert_edges([(3, 4), (9, 10)])
            follower = AnalyticsFollower(scheme="cuckoo", iterations=ITERATIONS)
            primary.attach(follower)  # backfill writes to the store directly
            follower.wait_for(primary.commit_index)
            assert_kernel_parity(follower, "post-reattach")
            assert set(follower.total_degrees()) == {1, 2, 3, 4, 9, 10}
        finally:
            follower.close()
            primary.close()
            store.close()

    def test_validation(self):
        with pytest.raises(ValueError, match="iterations"):
            AnalyticsFollower(scheme="cuckoo", iterations=0)
        with pytest.raises(ValueError, match="damping"):
            AnalyticsFollower(scheme="cuckoo", damping=1.5)
        with pytest.raises(ValueError, match="recompute_fraction"):
            AnalyticsFollower(scheme="cuckoo", recompute_fraction=0.0)
        with pytest.raises(ValueError, match="poll_slice_s"):
            AnalyticsFollower(scheme="cuckoo", poll_slice_s=0.0)
