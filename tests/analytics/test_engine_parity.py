"""Parity: every kernel through the engine equals the per-node path, everywhere.

The frontier-batch refactor promises that rewriting the analytics kernels on
top of :class:`~repro.analytics.engine.TraversalEngine` changed *nothing*
observable: visitation orders, levels, distances, scores and counts are
byte-identical to the historical one-``successors``-call-per-node
implementations.  This module keeps verbatim copies of those pre-refactor
implementations as references and checks every kernel against them across
the full store-contract matrix (``ALL_STORE_FACTORIES``), so a regression in
any store's ``successors_many`` or in the engine itself cannot hide behind a
single backend.

It also proves the "no per-node loops" claim directly: a spy store records
every direct ``successors`` call, and no kernel may issue any.
"""

from __future__ import annotations

import heapq
import random
from collections import deque

import pytest

from repro.analytics import (
    TraversalEngine,
    all_local_clustering_coefficients,
    betweenness_centrality,
    bfs,
    bfs_from_top_nodes,
    bfs_levels,
    count_triangles_of_node,
    dijkstra,
    ensure_engine,
    induced_edges,
    pagerank,
    shortest_path,
    strongly_connected_components,
    top_degree_nodes,
    total_degrees,
    total_directed_triangles,
    weakly_connected_components,
)
from repro.baselines import AdjacencyListGraph

from ..conftest import ALL_STORE_FACTORIES

#: Deterministic test graph: dense enough for triangles, small enough that
#: the quadratic kernels stay fast across all ten store backends.
NODE_RANGE = 70
EDGE_COUNT = 600


def build_edges() -> list[tuple[int, int]]:
    rng = random.Random(20250729)
    edges = set()
    while len(edges) < EDGE_COUNT:
        u, v = rng.randrange(NODE_RANGE), rng.randrange(NODE_RANGE)
        if u != v:
            edges.add((u, v))
    ordered = sorted(edges)
    rng.shuffle(ordered)
    return ordered


EDGES = build_edges()


@pytest.fixture(params=sorted(ALL_STORE_FACTORIES), ids=sorted(ALL_STORE_FACTORIES))
def store(request):
    built = ALL_STORE_FACTORIES[request.param]()
    for u, v in EDGES:
        built.insert_edge(u, v)
    yield built
    close = getattr(built, "close", None)
    if callable(close):
        close()


# --------------------------------------------------------------------- #
# Pre-refactor reference implementations (verbatim per-node code paths)
# --------------------------------------------------------------------- #


def ref_bfs(store, source):
    order = [source]
    visited = {source}
    queue = deque([source])
    while queue:
        node = queue.popleft()
        for neighbour in store.successors(node):
            if neighbour not in visited:
                visited.add(neighbour)
                order.append(neighbour)
                queue.append(neighbour)
    return order


def ref_bfs_levels(store, source):
    levels = {source: 0}
    queue = deque([source])
    while queue:
        node = queue.popleft()
        depth = levels[node]
        for neighbour in store.successors(node):
            if neighbour not in levels:
                levels[neighbour] = depth + 1
                queue.append(neighbour)
    return levels


def ref_dijkstra(store, source, weight=None):
    weight_of = weight if weight is not None else (lambda u, v: 1.0)
    distances = {source: 0.0}
    settled = set()
    frontier = [(0.0, source)]
    while frontier:
        distance, node = heapq.heappop(frontier)
        if node in settled:
            continue
        settled.add(node)
        for neighbour in store.successors(node):
            candidate = distance + weight_of(node, neighbour)
            if candidate < distances.get(neighbour, float("inf")):
                distances[neighbour] = candidate
                heapq.heappush(frontier, (candidate, neighbour))
    return distances


def ref_shortest_path(store, source, target, weight=None):
    weight_of = weight if weight is not None else (lambda u, v: 1.0)
    distances = {source: 0.0}
    parents = {}
    settled = set()
    frontier = [(0.0, source)]
    while frontier:
        distance, node = heapq.heappop(frontier)
        if node in settled:
            continue
        if node == target:
            break
        settled.add(node)
        for neighbour in store.successors(node):
            candidate = distance + weight_of(node, neighbour)
            if candidate < distances.get(neighbour, float("inf")):
                distances[neighbour] = candidate
                parents[neighbour] = node
                heapq.heappush(frontier, (candidate, neighbour))
    if target not in distances:
        return None
    path = [target]
    while path[-1] != source:
        path.append(parents[path[-1]])
    path.reverse()
    return path


def ref_pagerank(store, iterations=100, damping=0.85):
    nodes = list(store.nodes())
    if not nodes:
        return {}
    successors = {node: store.successors(node) for node in nodes}
    count = len(nodes)
    rank = {node: 1.0 / count for node in nodes}
    for _ in range(iterations):
        next_rank = {node: (1.0 - damping) / count for node in nodes}
        dangling_mass = 0.0
        for node in nodes:
            targets = successors[node]
            if not targets:
                dangling_mass += rank[node]
                continue
            share = damping * rank[node] / len(targets)
            for target in targets:
                next_rank[target] += share
        if dangling_mass:
            redistributed = damping * dangling_mass / count
            for node in nodes:
                next_rank[node] += redistributed
        rank = next_rank
    return rank


def ref_tarjan(store):
    index_of, lowlink = {}, {}
    on_stack, stack, components = set(), [], []
    next_index = 0
    for root in list(store.nodes()):
        if root in index_of:
            continue
        work = [(root, 0)]
        while work:
            node, position = work.pop()
            if position == 0:
                index_of[node] = next_index
                lowlink[node] = next_index
                next_index += 1
                stack.append(node)
                on_stack.add(node)
            successors = store.successors(node)
            advanced = False
            for offset in range(position, len(successors)):
                neighbour = successors[offset]
                if neighbour not in index_of:
                    work.append((node, offset + 1))
                    work.append((neighbour, 0))
                    advanced = True
                    break
                if neighbour in on_stack:
                    lowlink[node] = min(lowlink[node], index_of[neighbour])
            if advanced:
                continue
            if lowlink[node] == index_of[node]:
                component = []
                while True:
                    member = stack.pop()
                    on_stack.discard(member)
                    component.append(member)
                    if member == node:
                        break
                components.append(component)
            if work:
                parent = work[-1][0]
                lowlink[parent] = min(lowlink[parent], lowlink[node])
    return components


def ref_count_triangles_of_node(store, node):
    triangles = 0
    for first_hop in store.successors(node):
        for second_hop in store.successors(first_hop):
            if second_hop == node:
                continue
            if store.has_edge(second_hop, node):
                triangles += 1
    return triangles


def ref_total_directed_triangles(store):
    total = 0
    for u in list(store.source_nodes()):
        for v in store.successors(u):
            for w in store.successors(v):
                if w != u and store.has_edge(w, u):
                    total += 1
    return total // 3


def ref_betweenness(store, normalized=True):
    nodes = list(store.nodes())
    centrality = {node: 0.0 for node in nodes}
    for source in nodes:
        predecessors = {node: [] for node in nodes}
        sigma = {node: 0.0 for node in nodes}
        distance = {node: -1 for node in nodes}
        sigma[source] = 1.0
        distance[source] = 0
        order = []
        queue = deque([source])
        while queue:
            node = queue.popleft()
            order.append(node)
            for neighbour in store.successors(node):
                if neighbour not in distance:
                    continue
                if distance[neighbour] < 0:
                    distance[neighbour] = distance[node] + 1
                    queue.append(neighbour)
                if distance[neighbour] == distance[node] + 1:
                    sigma[neighbour] += sigma[node]
                    predecessors[neighbour].append(node)
        dependency = {node: 0.0 for node in nodes}
        for node in reversed(order):
            for predecessor in predecessors[node]:
                if sigma[node] > 0:
                    share = (sigma[predecessor] / sigma[node]) * (1.0 + dependency[node])
                    dependency[predecessor] += share
            if node != source:
                centrality[node] += dependency[node]
    if normalized:
        count = len(nodes)
        if count > 2:
            scale = 1.0 / ((count - 1) * (count - 2))
            centrality = {node: value * scale for node, value in centrality.items()}
    return centrality


def ref_all_lcc(store):
    selected = list(store.nodes())
    neighbour_map = {node: store.successors(node) for node in selected}
    result = {}
    for node in selected:
        neighbours = neighbour_map[node]
        degree = len(neighbours)
        if degree < 2:
            result[node] = 0.0
            continue
        linked_pairs = 0
        for first in neighbours:
            for second in neighbours:
                if first != second and store.has_edge(first, second):
                    linked_pairs += 1
        result[node] = linked_pairs / (degree * (degree - 1))
    return result


def ref_total_degrees(store):
    from collections import Counter

    degrees = Counter()
    for u, v in store.edges():
        degrees[u] += 1
        degrees[v] += 1
    return dict(degrees)


def ref_top_degree_nodes(store, count):
    degrees = ref_total_degrees(store)
    ranked = sorted(degrees.items(), key=lambda item: (-item[1], item[0]))
    return [node for node, _ in ranked[:count]]


# --------------------------------------------------------------------- #
# Parity across the full store matrix
# --------------------------------------------------------------------- #


class TestTraversalParity:
    def test_bfs_order_identical(self, store):
        for source in (0, 1, 7):
            assert bfs(store, source) == ref_bfs(store, source)

    def test_bfs_levels_identical(self, store):
        for source in (0, 3):
            engine_levels = bfs_levels(store, source)
            reference = ref_bfs_levels(store, source)
            assert engine_levels == reference
            # Same discovery order, not just the same mapping.
            assert list(engine_levels) == list(reference)

    def test_dijkstra_identical(self, store):
        for source in (0, 5):
            engine_distances = dijkstra(store, source)
            reference = ref_dijkstra(store, source)
            assert engine_distances == reference
            assert list(engine_distances) == list(reference)

    def test_dijkstra_weighted_identical(self, store):
        def weight(u, v):
            return 1.0 + ((u * 31 + v) % 7)

        assert dijkstra(store, 2, weight) == ref_dijkstra(store, 2, weight)

    def test_shortest_path_identical(self, store):
        for source, target in ((0, 33), (4, 50), (1, 10**9)):
            assert shortest_path(store, source, target) == \
                ref_shortest_path(store, source, target)

    def test_pagerank_scores_byte_identical(self, store):
        engine_scores = pagerank(store, iterations=25)
        reference = ref_pagerank(store, iterations=25)
        # Exact float equality: same adjacency, same iteration order.
        assert engine_scores == reference

    def test_tarjan_components_identical(self, store):
        assert strongly_connected_components(store) == ref_tarjan(store)

    def test_weak_components_partition_identical(self, store):
        ours = sorted(sorted(group) for group in weakly_connected_components(store))
        reference_graph = AdjacencyListGraph()
        for u, v in EDGES:
            reference_graph.insert_edge(u, v)
        expected = sorted(
            sorted(group) for group in weakly_connected_components(reference_graph)
        )
        assert ours == expected

    def test_triangle_counts_identical(self, store):
        for node in (0, 2, 9):
            assert count_triangles_of_node(store, node) == \
                ref_count_triangles_of_node(store, node)

    def test_total_triangles_identical(self, store):
        assert total_directed_triangles(store) == ref_total_directed_triangles(store)

    def test_betweenness_byte_identical(self, store):
        assert betweenness_centrality(store) == ref_betweenness(store)

    def test_lcc_byte_identical(self, store):
        assert all_local_clustering_coefficients(store) == ref_all_lcc(store)

    def test_total_degrees_identical(self, store):
        assert total_degrees(store) == ref_total_degrees(store)

    def test_top_degree_nodes_identical(self, store):
        assert top_degree_nodes(store, 15) == ref_top_degree_nodes(store, 15)

    def test_bfs_from_top_nodes_identical(self, store):
        expected = [
            (root, len(ref_bfs(store, root)))
            for root in ref_top_degree_nodes(store, 4)
        ]
        assert bfs_from_top_nodes(store, root_count=4) == expected

    def test_induced_edges_same_edge_set(self, store):
        nodes = ref_top_degree_nodes(store, 25)
        selected = set(nodes)
        expected = sorted(
            (u, v) for u, v in store.edges() if u in selected and v in selected
        )
        assert sorted(induced_edges(store, nodes)) == expected


# --------------------------------------------------------------------- #
# The engine really is the only way kernels reach the store
# --------------------------------------------------------------------- #


class SpyStore(AdjacencyListGraph):
    """Counts direct ``successors`` calls; answers batches without them."""

    def __init__(self):
        super().__init__()
        self.direct_successor_calls = 0

    def successors(self, u):
        self.direct_successor_calls += 1
        return super().successors(u)

    def successors_many(self, nodes):
        fetch = super().successors  # bypasses the spy counter on purpose
        return {u: fetch(u) for u in dict.fromkeys(nodes)}


def spy_graph() -> SpyStore:
    spy = SpyStore()
    for u, v in EDGES:
        spy.insert_edge(u, v)
    spy.direct_successor_calls = 0
    return spy


#: kernel name -> callable(store) covering all eight analytics kernels.
KERNEL_DRIVERS = {
    "bfs": lambda s: bfs(s, 0),
    "bfs_levels": lambda s: bfs_levels(s, 0),
    "bfs_from_top_nodes": lambda s: bfs_from_top_nodes(s, root_count=3),
    "dijkstra": lambda s: dijkstra(s, 0),
    "shortest_path": lambda s: shortest_path(s, 0, 40),
    "pagerank": lambda s: pagerank(s, iterations=5),
    "tarjan_scc": strongly_connected_components,
    "weak_cc": weakly_connected_components,
    "triangles": lambda s: count_triangles_of_node(s, 0),
    "total_triangles": total_directed_triangles,
    "betweenness": betweenness_centrality,
    "lcc": all_local_clustering_coefficients,
    "top_degree_nodes": lambda s: top_degree_nodes(s, 10),
    "induced_edges": lambda s: induced_edges(s, list(range(30))),
}


@pytest.mark.parametrize("kernel", sorted(KERNEL_DRIVERS), ids=sorted(KERNEL_DRIVERS))
def test_kernels_never_issue_per_node_successor_calls(kernel):
    """Frontier expansion goes through ``successors_many`` exclusively."""
    spy = spy_graph()
    KERNEL_DRIVERS[kernel](spy)
    assert spy.direct_successor_calls == 0


def test_shared_engine_accumulates_batch_accounting():
    spy = spy_graph()
    engine = TraversalEngine(spy)
    bfs(spy, 0, engine=engine)
    after_bfs = engine.expand_calls
    assert after_bfs >= 1
    pagerank(spy, iterations=3, engine=engine)
    assert engine.expand_calls == after_bfs + 1  # one materialization batch
    snapshot = engine.snapshot()
    assert snapshot["batch_calls"] == engine.expand_calls + engine.probe_calls
    assert snapshot["nodes_expanded"] >= snapshot["expand_calls"]


def test_engine_rejects_mismatched_store():
    first, second = spy_graph(), spy_graph()
    engine = TraversalEngine(first)
    with pytest.raises(ValueError):
        ensure_engine(second, engine)
    assert ensure_engine(first, engine) is engine


def test_count_edges_chunking_matches_streamed_loop():
    spy = spy_graph()
    engine = TraversalEngine(spy)
    probes = [(u, v) for u, v in EDGES[:200]] + [(10**9, 1)] * 5 + EDGES[:50]
    expected = sum(spy.has_edge(u, v) for u, v in probes)
    # Tiny chunks, default chunks and a generator input all agree, and
    # duplicates count per occurrence.
    assert engine.count_edges(probes, chunk_size=7) == expected
    assert engine.count_edges(iter(probes)) == expected
    assert engine.count_edges([]) == 0
    calls_before = engine.probe_calls
    engine.count_edges(probes, chunk_size=100)
    assert engine.probe_calls - calls_before == -(-len(probes) // 100)


def test_expand_contract_on_unknown_and_duplicate_nodes():
    spy = spy_graph()
    engine = TraversalEngine(spy)
    result = engine.expand([0, 0, 10**9, 0])
    assert list(result) == [0, 10**9]
    assert result[10**9] == []
    assert result[0] == spy.successors_many([0])[0]
    assert engine.expand([]) == {} and engine.expand_calls == 1
