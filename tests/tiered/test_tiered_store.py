"""Unit tests for the hot/cold tiered store (promotion, counters, lifecycle).

The cross-cutting guarantees (store contract, engine parity, differential
fuzzing against the reference model) come for free from ``TieredStore``'s
entry in ``ALL_STORE_FACTORIES``; this file pins the tier mechanics those
matrices cannot see: when shards migrate, what the counters say, and how the
lifecycle behaves.
"""

import pytest

from repro.core.errors import ConfigurationError, StoreClosedError
from repro.tiered import TieredStore, TouchLRUPolicy


def node_on_shard(store: TieredStore, shard: int, start: int = 0) -> int:
    """Smallest node id >= start routed to ``shard``."""
    node = start
    while store.shard_of(node) != shard:
        node += 1
    return node


def cold_shard_of(store: TieredStore) -> int:
    return next(s for s in range(store.num_shards) if not store.is_hot(s))


def test_initial_tier_layout():
    store = TieredStore(num_shards=4, hot_shards=2)
    assert [store.is_hot(s) for s in range(4)] == [True, True, False, False]
    stats = store.tier_stats()
    assert stats["hot_set"] == [0, 1]
    assert stats["touches"] == stats["hits"] == stats["misses"] == 0
    store.close()


def test_invalid_construction():
    with pytest.raises(ConfigurationError):
        TieredStore(num_shards=0)
    with pytest.raises(ConfigurationError):
        TieredStore(num_shards=4, hot_shards=5)
    with pytest.raises(ConfigurationError):
        TieredStore(num_shards=4, hot_shards=0)
    with pytest.raises(ConfigurationError):
        TouchLRUPolicy(promote_after=0)
    with pytest.raises(ConfigurationError):
        TieredStore(cold="not-a-backend")


def test_mutating_misses_promote_cold_shard():
    store = TieredStore(num_shards=4, hot_shards=1,
                        policy=TouchLRUPolicy(promote_after=4))
    cold = cold_shard_of(store)
    u = node_on_shard(store, cold)
    for v in range(1, 6):
        store.insert_edge(u, u + 1000 * v)
    # After promote_after mutating touches the cold shard out-touches the
    # never-touched hot shard 0 and swaps in.
    assert store.is_hot(cold)
    assert not store.is_hot(0)
    assert store.promotions == 1
    assert store.demotions == 1
    # The migrated shard kept every edge.
    assert all(store.has_edge(u, u + 1000 * v) for v in range(1, 6))
    assert store.num_edges == 5
    store.close()


def test_reads_never_migrate():
    store = TieredStore(num_shards=4, hot_shards=1,
                        policy=TouchLRUPolicy(promote_after=2))
    cold = cold_shard_of(store)
    u = node_on_shard(store, cold)
    for _ in range(50):
        store.has_edge(u, u + 1)
        store.successors(u)
    assert not store.is_hot(cold)
    assert store.promotions == 0
    assert store.misses == 100
    store.close()


def test_hit_miss_counters_and_window():
    store = TieredStore(num_shards=4, hot_shards=2)
    hot_u = node_on_shard(store, 0)
    cold_u = node_on_shard(store, cold_shard_of(store))
    store.insert_edge(hot_u, hot_u + 1)
    store.has_edge(cold_u, cold_u + 1)
    stats = store.tier_stats()
    assert stats["hits"] == 1
    assert stats["misses"] == 1
    assert stats["touches"] == 2
    assert stats["hit_rate"] == pytest.approx(0.5)
    assert sum(stats["shard_touches"]) == 2
    store.close()


def test_batches_touch_once_per_group():
    store = TieredStore(num_shards=4, hot_shards=4)  # all hot: no migrations
    edges = [(u, u + 1) for u in range(16)]
    store.insert_edges(edges)
    stats = store.tier_stats()
    assert stats["hits"] == len(edges)
    assert stats["misses"] == 0
    assert store.has_edges(edges) == [True] * len(edges)
    store.close()


def test_demoted_shard_must_reearn_promotion():
    store = TieredStore(num_shards=2, hot_shards=1,
                        policy=TouchLRUPolicy(promote_after=3))
    cold = cold_shard_of(store)
    hot = 1 - cold
    u_cold = node_on_shard(store, cold)
    for v in range(1, 5):
        store.insert_edge(u_cold, u_cold + 10 * v)
    assert store.is_hot(cold) and not store.is_hot(hot)
    # One mutating touch on the freshly demoted shard is not enough: its
    # window reset on migration, so no thrash back.
    u_hot = node_on_shard(store, hot)
    store.insert_edge(u_hot, u_hot + 1)
    assert store.is_hot(cold) and not store.is_hot(hot)
    assert store.promotions == 1
    store.close()


def test_migration_preserves_edges_and_accesses_monotonic():
    store = TieredStore(num_shards=4, hot_shards=1,
                        policy=TouchLRUPolicy(promote_after=2))
    edges = [(u, v) for u in range(12) for v in (u + 100, u + 200)]
    store.insert_edges(edges)
    before = store.accesses
    cold = cold_shard_of(store)
    u = node_on_shard(store, cold, start=1000)
    for v in range(1, 8):
        store.insert_edge(u, u + v)
    assert store.promotions >= 1
    assert store.accesses >= before  # carried across the tier rebuild
    expected = set(edges) | {(u, u + v) for v in range(1, 8)}
    assert set(store.edges()) == expected
    assert store.num_edges == len(expected)
    store.close()


def test_accesses_setter_only_resets():
    store = TieredStore(num_shards=2, hot_shards=1)
    store.insert_edge(1, 2)
    assert store.accesses > 0
    with pytest.raises(ConfigurationError):
        store.accesses = 5
    store.accesses = 0
    assert store.accesses == 0
    store.close()


def test_structure_summary_shape():
    store = TieredStore(num_shards=2, hot_shards=1)
    store.insert_edge(1, 2)
    summary = store.structure_summary()
    assert summary["scheme"] == "TieredStore"
    assert summary["edges"] == 1
    assert set(summary["tiers"]) == {"0", "1"}
    tiers = {entry["tier"] for entry in summary["tiers"].values()}
    assert tiers == {"hot", "cold"}
    assert summary["tier_stats"]["touches"] == 1
    store.close()


def test_spawn_empty_reproduces_config():
    store = TieredStore(num_shards=4, hot_shards=3, cold="neo4j")
    store.insert_edge(1, 2)
    child = store.spawn_empty()
    assert child.num_shards == 4
    assert child.hot_shards == 3
    assert child.num_edges == 0
    assert [child.is_hot(s) for s in range(4)] == [True, True, True, False]
    child.close()
    store.close()


def test_close_is_terminal_and_idempotent():
    store = TieredStore(num_shards=2, hot_shards=1)
    store.insert_edge(1, 2)
    store.close()
    store.close()  # idempotent
    assert store.closed
    with pytest.raises(StoreClosedError):
        store.insert_edge(3, 4)
    with pytest.raises(StoreClosedError):
        store.has_edge(1, 2)
