"""Tests for the mini-Redis server and the CuckooGraph module (Section V-F)."""

import pytest

from repro.core.errors import IntegrationError
from repro.integrations import (
    CuckooGraphModule,
    MiniRedisServer,
    RedisGraphStore,
    RedisModule,
)


@pytest.fixture
def server() -> MiniRedisServer:
    instance = MiniRedisServer()
    instance.load_module(CuckooGraphModule())
    return instance


class TestBuiltinCommands:
    def test_ping_set_get(self):
        server = MiniRedisServer()
        assert server.execute("PING") == "PONG"
        assert server.execute("SET answer 42") == "OK"
        assert server.execute("GET answer") == "42"
        assert server.execute("GET missing") is None

    def test_del_and_exists(self):
        server = MiniRedisServer()
        server.execute("SET a 1")
        assert server.execute("EXISTS a b") == 1
        assert server.execute("DEL a b") == 1
        assert server.execute("EXISTS a") == 0

    def test_unknown_command_raises(self):
        with pytest.raises(IntegrationError):
            MiniRedisServer().execute("FLUSHEVERYTHING")

    def test_empty_command_raises(self):
        with pytest.raises(IntegrationError):
            MiniRedisServer().execute("")

    def test_commands_processed_counter(self):
        server = MiniRedisServer()
        server.execute("PING")
        server.execute_many(["PING", "PING"])
        assert server.commands_processed == 3


class TestModuleLoading:
    def test_loadmodule_registers_commands(self, server):
        assert server.loaded_modules() == ["cuckoograph"]
        assert server.execute("GSIZE") == 0

    def test_double_load_rejected(self, server):
        with pytest.raises(IntegrationError):
            server.load_module(CuckooGraphModule())

    def test_conflicting_command_rejected(self):
        class Conflicting(RedisModule):
            name = "conflict"

            def commands(self):
                return {"PING": lambda server, args: "NOPE"}

        with pytest.raises(IntegrationError):
            MiniRedisServer().load_module(Conflicting())


class TestGraphCommands:
    def test_insert_query_neighbors_delete(self, server):
        assert server.execute("GINSERT 1 2") == 1
        assert server.execute("GINSERT 1 2") == 2          # weight bump
        assert server.execute("GINSERT 1 3") == 1
        assert server.execute("GQUERY 1 2") == 2
        assert server.execute("GNEIGHBORS 1") == [2, 3]
        assert server.execute("GSIZE") == 2
        assert server.execute("GDEL 1 3") == 1
        assert server.execute("GQUERY 1 3") == 0

    def test_argument_validation(self, server):
        with pytest.raises(IntegrationError):
            server.execute("GINSERT 1")
        with pytest.raises(IntegrationError):
            server.execute("GINSERT a b")
        with pytest.raises(IntegrationError):
            server.execute("GNEIGHBORS")

    def test_tokenised_command_form(self, server):
        assert server.execute(["GINSERT", 4, 5]) == 1
        assert server.execute(["GQUERY", "4", "5"]) == 1


class TestPersistence:
    def test_rdb_round_trip(self, server):
        server.execute("SET color blue")
        server.execute("GINSERT 1 2")
        server.execute("GINSERT 1 2")
        snapshot = server.save_rdb()

        restored = MiniRedisServer()
        restored.load_module(CuckooGraphModule())
        restored.load_rdb(snapshot)
        assert restored.execute("GET color") == "blue"
        assert restored.execute("GQUERY 1 2") == 2

    def test_rdb_with_unloaded_module_rejected(self, server):
        server.execute("GINSERT 1 2")
        snapshot = server.save_rdb()
        bare = MiniRedisServer()
        with pytest.raises(IntegrationError):
            bare.load_rdb(snapshot)

    def test_aof_log_and_replay(self, server):
        server.execute("GINSERT 1 2")
        server.execute("GDEL 1 2")
        server.execute("SET k v")
        log = server.aof_log()
        assert ["GINSERT", "1", "2"] in log

        replayed = MiniRedisServer()
        replayed.load_module(CuckooGraphModule())
        replayed.replay_aof(log)
        assert replayed.execute("GQUERY 1 2") == 0
        assert replayed.execute("GET k") == "v"

    def test_aof_rewrite_is_minimal(self, server):
        for _ in range(5):
            server.execute("GINSERT 7 8")
        rewritten = server.aof_rewrite()
        graph_commands = [command for command in rewritten if command[0] == "GINSERT"]
        assert len(graph_commands) == 5  # weight 5 reconstructed exactly
        replayed = MiniRedisServer()
        replayed.load_module(CuckooGraphModule())
        replayed.replay_aof(rewritten)
        assert replayed.execute("GQUERY 7 8") == 5


class TestRedisGraphStore:
    """The DynamicGraphStore facade that puts mini-Redis in the store matrix."""

    def test_distinct_edge_semantics_over_the_command_path(self):
        store = RedisGraphStore()
        assert store.insert_edge(1, 2) is True
        assert store.insert_edge(1, 2) is False  # duplicate must not stack weight
        assert store.delete_edge(1, 2) is True
        assert store.delete_edge(1, 2) is False
        assert not store.has_edge(1, 2)

    def test_every_operation_pays_command_dispatch(self):
        store = RedisGraphStore()
        before = store.server.commands_processed
        store.insert_edge(1, 2)     # probe + insert
        store.has_edge(1, 2)        # probe
        store.successors(1)         # neighbors
        store.delete_edge(1, 2)     # probe + delete
        assert store.server.commands_processed - before == 6

    def test_spawn_empty_is_a_fresh_server(self):
        store = RedisGraphStore()
        store.insert_edge(1, 2)
        fresh = store.spawn_empty()
        assert fresh.num_edges == 0
        assert fresh.server is not store.server
        assert fresh.insert_edge(1, 2) is True
        assert store.num_edges == 1

    def test_requires_the_module(self):
        with pytest.raises(IntegrationError):
            RedisGraphStore(MiniRedisServer())

    def test_wraps_a_preloaded_server(self):
        server = MiniRedisServer()
        server.load_module(CuckooGraphModule())
        server.execute("GINSERT 4 5")
        store = RedisGraphStore(server)
        assert store.has_edge(4, 5)
        assert sorted(store.edges()) == [(4, 5)]

    def test_delete_drains_preloaded_weights(self):
        """delete_edge True must mean removed, even over a weighted keyspace."""
        server = MiniRedisServer()
        server.load_module(CuckooGraphModule())
        server.execute("GINSERT 4 5")
        server.execute("GINSERT 4 5")  # weight 2, loaded outside the facade
        store = RedisGraphStore(server)
        assert store.delete_edge(4, 5) is True
        assert not store.has_edge(4, 5)
        assert store.num_edges == 0
