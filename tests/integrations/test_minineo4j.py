"""Tests for the mini-Neo4j property graph and its CuckooGraph index (Section V-G)."""

import pytest

from repro.core.errors import IntegrationError, NotFoundError
from repro.integrations import MiniNeo4j, Neo4jGraphStore


class TestNodesAndRelationships:
    def test_create_and_get_node(self):
        db = MiniNeo4j()
        node_id = db.create_node(labels=("User",), name="ada")
        record = db.get_node(node_id)
        assert record.labels == ("User",)
        assert record.properties["name"] == "ada"
        assert db.node_count == 1

    def test_duplicate_node_id_rejected(self):
        db = MiniNeo4j()
        db.create_node(node_id=5)
        with pytest.raises(IntegrationError):
            db.create_node(node_id=5)

    def test_missing_node_raises(self):
        with pytest.raises(NotFoundError):
            MiniNeo4j().get_node(99)

    def test_create_relationship_creates_missing_endpoints(self):
        db = MiniNeo4j()
        rel_id = db.create_relationship(1, 2, "FOLLOWS", since=2020)
        assert db.has_node(1) and db.has_node(2)
        record = db.get_relationship(rel_id)
        assert (record.start, record.end, record.rel_type) == (1, 2, "FOLLOWS")
        assert record.properties["since"] == 2020

    def test_relationship_count_and_missing_lookup(self):
        db = MiniNeo4j()
        db.create_relationship(1, 2)
        assert db.relationship_count == 1
        with pytest.raises(NotFoundError):
            db.get_relationship(999)

    def test_delete_relationship(self):
        db = MiniNeo4j()
        rel_id = db.create_relationship(1, 2)
        assert db.delete_relationship(rel_id) is True
        assert db.delete_relationship(rel_id) is False
        assert not db.has_relationship(1, 2)


@pytest.mark.parametrize("use_index", [False, True], ids=["plain", "cuckoo-indexed"])
class TestEdgeQueries:
    def test_find_relationships_returns_all_parallel_edges(self, use_index):
        db = MiniNeo4j(use_cuckoo_index=use_index)
        first = db.create_relationship(1, 2, "A")
        second = db.create_relationship(1, 2, "B")
        db.create_relationship(1, 3, "C")
        found = sorted(record.rel_id for record in db.find_relationships(1, 2))
        assert found == sorted([first, second])
        assert db.has_relationship(1, 2)
        assert not db.has_relationship(2, 1)

    def test_find_on_unknown_node_is_empty(self, use_index):
        db = MiniNeo4j(use_cuckoo_index=use_index)
        assert list(db.find_relationships(9, 10)) == []

    def test_neighbours(self, use_index):
        db = MiniNeo4j(use_cuckoo_index=use_index)
        db.create_relationship(1, 2)
        db.create_relationship(1, 3)
        db.create_relationship(2, 1)
        assert sorted(db.neighbours(1)) == [2, 3]
        assert db.neighbours(42) == []

    def test_delete_keeps_index_consistent(self, use_index):
        db = MiniNeo4j(use_cuckoo_index=use_index)
        first = db.create_relationship(1, 2)
        second = db.create_relationship(1, 2)
        db.delete_relationship(first)
        remaining = [record.rel_id for record in db.find_relationships(1, 2)]
        assert remaining == [second]

    def test_load_edge_stream(self, use_index):
        db = MiniNeo4j(use_cuckoo_index=use_index)
        edges = [(1, 2), (1, 2), (2, 3)]
        assert db.load_edge_stream(edges) == 3
        assert db.relationship_count == 3
        assert len(list(db.find_relationships(1, 2))) == 2


class TestIndexEquivalence:
    def test_indexed_and_plain_agree_on_random_workload(self):
        import random

        rng = random.Random(13)
        plain = MiniNeo4j(use_cuckoo_index=False)
        indexed = MiniNeo4j(use_cuckoo_index=True)
        pairs = [(rng.randrange(30), rng.randrange(30)) for _ in range(800)]
        for u, v in pairs:
            plain.create_relationship(u, v)
            indexed.create_relationship(u, v)
        for u in range(30):
            for v in range(30):
                plain_ids = sorted(r.rel_id for r in plain.find_relationships(u, v))
                indexed_ids = sorted(r.rel_id for r in indexed.find_relationships(u, v))
                assert plain_ids == indexed_ids

    def test_index_reduces_scan_work_for_high_degree_nodes(self):
        indexed = MiniNeo4j(use_cuckoo_index=True)
        for v in range(2000):
            indexed.create_relationship(0, v)
        # The iterator is obtained without traversing the whole adjacency list.
        target = list(indexed.find_relationships(0, 1999))
        assert len(target) == 1


class TestNeo4jGraphStore:
    """The DynamicGraphStore facade that puts mini-Neo4j in the store matrix."""

    def test_distinct_edge_semantics_over_relationships(self):
        store = Neo4jGraphStore()
        assert store.insert_edge(1, 2) is True
        assert store.insert_edge(1, 2) is False
        assert store.db.relationship_count == 1
        assert store.delete_edge(1, 2) is True
        assert store.delete_edge(1, 2) is False
        assert store.db.relationship_count == 0

    def test_self_loops(self):
        store = Neo4jGraphStore()
        assert store.insert_edge(3, 3) is True
        assert store.successors(3) == [3]
        assert store.delete_edge(3, 3) is True
        assert store.successors(3) == []

    def test_spawn_empty_preserves_index_configuration(self):
        for use_index in (True, False):
            store = Neo4jGraphStore(use_cuckoo_index=use_index)
            store.insert_edge(1, 2)
            fresh = store.spawn_empty()
            assert fresh.num_edges == 0
            assert fresh.db.use_cuckoo_index is use_index
            assert store.num_edges == 1

    def test_memory_model_is_positive_and_monotone(self):
        store = Neo4jGraphStore()
        store.insert_edge(1, 2)
        small = store.memory_bytes()
        for v in range(3, 40):
            store.insert_edge(1, v)
        assert 0 < small < store.memory_bytes()

    def test_wrapped_parallel_relationships_stay_distinct_edge(self):
        """A pre-populated db with parallel rels must not break the contract."""
        db = MiniNeo4j(use_cuckoo_index=True)
        db.create_relationship(1, 2)
        db.create_relationship(1, 2)  # parallel, created outside the facade
        store = Neo4jGraphStore(db)
        assert store.num_edges == 1
        assert sorted(store.edges()) == [(1, 2)]
        assert store.delete_edge(1, 2) is True
        assert not store.has_edge(1, 2)
        assert store.num_edges == 0
