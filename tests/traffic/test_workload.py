"""Workload-generator properties: determinism, arrival shapes, zipf skew."""

import random

import pytest

from repro.core.errors import ConfigurationError
from repro.tiered import TieredStore
from repro.traffic import (
    FailureSpec,
    ScenarioConfig,
    ZipfRanks,
    build_schedule,
    bursty_arrivals,
    poisson_arrivals,
    preset,
    ranked_keys,
    tenant_keys,
    uniform_arrivals,
)


# --------------------------------------------------------------------- #
# Determinism
# --------------------------------------------------------------------- #

def test_build_schedule_is_deterministic():
    config = ScenarioConfig(seed=99, duration_s=1.0, target_ops_s=500.0,
                            tenants=3, arrival="bursty")
    first = build_schedule(config)
    second = build_schedule(config)
    assert first == second
    assert len(first) > 0
    # A different seed produces a different schedule.
    assert build_schedule(config.with_overrides(seed=100)) != first


def test_tenants_draw_independent_streams():
    config = ScenarioConfig(seed=7, duration_s=1.0, target_ops_s=400.0,
                            tenants=2)
    events = build_schedule(config)
    per_tenant = {t: [e for e in events if e.tenant == t] for t in (0, 1)}
    assert per_tenant[0] and per_tenant[1]
    assert [e.at_s for e in per_tenant[0]] != [e.at_s for e in per_tenant[1]]


def test_schedule_is_time_sorted_and_in_range():
    config = ScenarioConfig(seed=3, duration_s=0.8, target_ops_s=600.0,
                            tenants=2)
    events = build_schedule(config)
    times = [e.at_s for e in events]
    assert times == sorted(times)
    assert all(0 <= t < config.duration_s for t in times)
    assert all(e.rank_u != e.rank_v for e in events)  # no self-loops


# --------------------------------------------------------------------- #
# Arrival processes
# --------------------------------------------------------------------- #

def test_uniform_arrivals_exact():
    times = uniform_arrivals(100.0, 2.0)
    assert len(times) == 200
    assert times[0] == 0.0
    assert all(t < 2.0 for t in times)
    gaps = {round(b - a, 9) for a, b in zip(times, times[1:])}
    assert len(gaps) == 1  # evenly spaced


def test_poisson_arrivals_hit_mean_rate():
    rng = random.Random(42)
    times = poisson_arrivals(rng, rate=1000.0, duration_s=2.0)
    assert 1700 <= len(times) <= 2300  # ~2000 +- a few sigma
    assert all(0 <= t < 2.0 for t in times)


def test_bursty_arrivals_preserve_mean_rate():
    counts = [
        len(bursty_arrivals(random.Random(seed), rate=1000.0, duration_s=1.0,
                            burst_factor=6.0, burst_fraction=0.25))
        for seed in range(10)
    ]
    mean = sum(counts) / len(counts)
    assert 700 <= mean <= 1300
    with pytest.raises(ConfigurationError):
        bursty_arrivals(random.Random(0), 100.0, 1.0,
                        burst_factor=0.5, burst_fraction=0.25)


# --------------------------------------------------------------------- #
# Zipf skew
# --------------------------------------------------------------------- #

def test_zipf_top_fraction_mass_matches_sampling():
    zipf = ZipfRanks(1000, 1.1)
    analytic = zipf.top_fraction_mass(0.01)  # hottest 10 of 1000 ranks
    assert analytic > 0.3  # zipf(1.1) concentrates hard on the head
    rng = random.Random(1234)
    draws = 20_000
    hits = sum(1 for _ in range(draws) if zipf.sample(rng) < 10)
    assert hits / draws == pytest.approx(analytic, abs=0.02)


def test_zipf_mass_is_monotone_in_fraction():
    zipf = ZipfRanks(512, 1.1)
    masses = [zipf.top_fraction_mass(f) for f in (0.01, 0.1, 0.25, 1.0)]
    assert masses == sorted(masses)
    assert masses[-1] == pytest.approx(1.0)
    with pytest.raises(ConfigurationError):
        zipf.top_fraction_mass(0.0)


# --------------------------------------------------------------------- #
# Key layouts
# --------------------------------------------------------------------- #

def test_hashed_layout_is_plain_ranks():
    config = ScenarioConfig(tenants=2, keys_per_tenant=64)
    assert ranked_keys(config) == list(range(128))


def test_shard_major_layout_groups_hot_ranks():
    config = ScenarioConfig(tenants=1, keys_per_tenant=128,
                            key_layout="shard_major", scheme="tiered",
                            num_shards=4, hot_shards=1)
    store = TieredStore(num_shards=4, hot_shards=1)
    try:
        ranked = ranked_keys(config, shard_of=store.shard_of, num_shards=4)
        assert len(ranked) == 128
        assert len(set(ranked)) == 128
        # The hottest quarter of the ranking lives on a single shard.
        head = ranked[:32]
        assert len({store.shard_of(u) for u in head}) == 1
        # Deterministic given the seed.
        assert ranked == ranked_keys(config, shard_of=store.shard_of,
                                     num_shards=4)
    finally:
        store.close()


def test_shard_major_requires_routing():
    config = ScenarioConfig(key_layout="shard_major")
    with pytest.raises(ConfigurationError):
        ranked_keys(config)


def test_tenant_keys_disjoint_vs_shared():
    config = ScenarioConfig(tenants=2, keys_per_tenant=16)
    ranked = ranked_keys(config)
    a = tenant_keys(config, ranked, 0)
    b = tenant_keys(config, ranked, 1)
    assert len(a) == len(b) == 16
    assert not set(a) & set(b)
    shared = config.with_overrides(tenant_layout="shared")
    ranked_shared = ranked_keys(shared)
    assert tenant_keys(shared, ranked_shared, 0) \
        == tenant_keys(shared, ranked_shared, 1)


# --------------------------------------------------------------------- #
# Config validation and round-trip
# --------------------------------------------------------------------- #

def test_config_json_round_trip(tmp_path):
    config = preset("failover")
    path = tmp_path / "scenario.json"
    path.write_text(config.to_json())
    assert ScenarioConfig.from_json(path) == config
    assert ScenarioConfig.from_json(config.to_json()) == config


def test_config_rejects_bad_values():
    with pytest.raises(ConfigurationError):
        ScenarioConfig(arrival="constant")
    with pytest.raises(ConfigurationError):
        ScenarioConfig(mix={"write": 1.0})
    with pytest.raises(ConfigurationError):
        ScenarioConfig(mix={"insert": 0.0})
    with pytest.raises(ConfigurationError):
        ScenarioConfig(failures=(FailureSpec(at_s=0.1, kind="kill_replica"),))
    with pytest.raises(ConfigurationError):
        ScenarioConfig.from_dict({"nonsense_field": 1})
    with pytest.raises(ConfigurationError):
        preset("nope")


def test_presets_are_valid_and_distinct():
    names = ("smoke", "skewed", "failover")
    configs = {name: preset(name) for name in names}
    assert configs["skewed"].scheme == "tiered"
    assert configs["failover"].replicas == 2
    assert configs["failover"].failures[0].kind == "kill_replica"
    assert len({c.name for c in configs.values()}) == 3
