"""End-to-end scenario runs: SLO report schema, tier window, failure log."""

import pytest

from repro.traffic import ScenarioConfig, FailureSpec, run_scenario
from repro.traffic.driver import REPORT_KEYS, validate_slo_report

#: Small bounded scenario: sub-second, a few hundred ops, no failures.
TINY = ScenarioConfig(
    name="tiny", seed=11, duration_s=0.5, target_ops_s=300.0, tenants=2,
    keys_per_tenant=64, warmup_edges=50,
)


@pytest.fixture(scope="module")
def tiny_report():
    return run_scenario(TINY)


def test_slo_report_is_well_formed(tiny_report):
    assert validate_slo_report(tiny_report) is tiny_report
    for key in REPORT_KEYS:
        assert key in tiny_report
    totals = tiny_report["totals"]
    assert totals["completed"] > 0
    assert totals["throughput_ops_s"] > 0
    assert totals["warmup_edges"] == 50
    assert tiny_report["scenario"] == TINY.to_dict()


def test_report_has_p99_per_trafficked_class(tiny_report):
    trafficked = [kind for kind, entry in tiny_report["classes"].items()
                  if entry["submitted"]]
    assert trafficked  # the mix produced traffic
    for kind in trafficked:
        latency = tiny_report["classes"][kind]["latency"]
        assert isinstance(latency["p99_s"], (int, float))
        assert latency["p99_s"] >= 0


def test_validate_rejects_mutilated_reports(tiny_report):
    missing = dict(tiny_report)
    del missing["slo"]
    with pytest.raises(ValueError):
        validate_slo_report(missing)
    empty = dict(tiny_report)
    empty["totals"] = dict(tiny_report["totals"], completed=0)
    with pytest.raises(ValueError):
        validate_slo_report(empty)


def test_tiered_scenario_reports_tier_window():
    config = ScenarioConfig(
        name="tiny-tiered", seed=5, duration_s=0.5, target_ops_s=300.0,
        tenants=2, keys_per_tenant=64, scheme="tiered", num_shards=4,
        hot_shards=2, warmup_edges=50,
        mix={"insert": 0.5, "has": 0.3, "successors": 0.2},
    )
    report = validate_slo_report(run_scenario(config))
    tiered = report["tiered"]
    assert tiered, "tiered scheme must report tier telemetry"
    window = tiered["window"]
    assert window["touches"] > 0
    assert 0.0 <= window["hit_rate"] <= 1.0
    assert tiered["end"]["num_shards"] == 4


def test_failure_injection_is_logged_with_recovery():
    config = ScenarioConfig(
        name="tiny-failover", seed=8, duration_s=0.8, target_ops_s=250.0,
        tenants=2, keys_per_tenant=64, replicas=1, durability="batch",
        warmup_edges=50,
        failures=(FailureSpec(at_s=0.2, kind="kill_replica", target=0,
                              duration_s=0.2),),
    )
    report = validate_slo_report(run_scenario(config))
    assert len(report["failures"]) == 1
    record = report["failures"][0]
    assert record["kind"] == "kill_replica"
    assert record["injected"] is True
    assert record["recovered"] is True
    assert report["replication"], "replicated run must report replication"
