"""Tests for the benchmark harness drivers and reporting helpers."""

import pytest

from repro.bench import (
    ANALYTICS_TASKS,
    OURS,
    SCHEMES,
    build_cuckoograph_for_stream,
    build_store,
    dataset_stream,
    format_table,
    geometric_mean,
    memory_series_table,
    run_basic_tasks,
    run_denylist_ablation,
    run_memory_curve,
    run_parameter_point,
    speedup_versus,
)
from repro.core import CuckooGraphConfig, WeightedCuckooGraph, CuckooGraph
from repro.datasets import EdgeStream


@pytest.fixture(scope="module")
def tiny_stream() -> EdgeStream:
    return dataset_stream("CAIDA").prefix(1500)


class TestStoreFactories:
    def test_every_scheme_buildable(self):
        for scheme in SCHEMES:
            store = build_store(scheme)
            store.insert_edge(1, 2)
            assert store.has_edge(1, 2)

    def test_unknown_scheme_rejected(self):
        with pytest.raises(KeyError):
            build_store("Neo4j")

    def test_config_only_applies_to_ours(self):
        config = CuckooGraphConfig(d=4)
        assert build_store(OURS, config).config.d == 4

    def test_weighted_variant_selected_for_duplicate_streams(self):
        duplicated = EdgeStream("dup", [(1, 2), (1, 2)])
        distinct = EdgeStream("plain", [(1, 2), (2, 3)])
        assert isinstance(build_cuckoograph_for_stream(duplicated), WeightedCuckooGraph)
        assert isinstance(build_cuckoograph_for_stream(distinct), CuckooGraph)


class TestBasicTaskDriver:
    def test_rows_have_both_views(self, tiny_stream):
        results = run_basic_tasks(OURS, "CAIDA", tiny_stream)
        assert set(results) == {"insert", "query", "delete"}
        for result in results.values():
            row = result.as_row()
            assert row["mops"] > 0
            assert row["accesses_per_op"] > 0
            assert result.modelled_mops > 0

    def test_operation_counts_match_stream(self, tiny_stream):
        results = run_basic_tasks("Spruce", "CAIDA", tiny_stream)
        assert results["insert"].operations == len(tiny_stream)
        assert results["query"].operations == len(tiny_stream.deduplicated())

    def test_memory_curve_monotone_sampling(self, tiny_stream):
        points = run_memory_curve("Spruce", "CAIDA", tiny_stream, samples=4)
        inserted = [point.inserted for point in points]
        assert inserted == sorted(inserted)
        assert points[-1].inserted == len(tiny_stream.deduplicated())
        assert all(point.memory_bytes > 0 for point in points)


class TestAnalyticsDrivers:
    @pytest.mark.parametrize("task", sorted(ANALYTICS_TASKS))
    def test_each_task_runs_on_ours(self, task, tiny_stream):
        driver = ANALYTICS_TASKS[task]
        result = driver(OURS, "CAIDA", tiny_stream)
        assert result.task == task
        assert result.seconds >= 0
        assert result.scheme == OURS
        assert result.as_row()["dataset"] == "CAIDA"


class TestParameterAndAblation:
    def test_parameter_point_series(self, tiny_stream):
        outcome = run_parameter_point(CuckooGraphConfig(d=4), tiny_stream, checkpoints=3)
        assert len(outcome["insert_series"]) >= 3
        assert outcome["insert_series"][-1][0] == len(tiny_stream)
        assert outcome["query_mops"] > 0
        assert outcome["final_memory_bytes"] > 0

    def test_denylist_ablation_has_both_arms(self, tiny_stream):
        outcome = run_denylist_ablation(tiny_stream.prefix(800))
        assert set(outcome) == {"DL", "DL-free"}
        assert outcome["DL"]["config"].use_denylist is True
        assert outcome["DL-free"]["config"].use_denylist is False


class TestReporting:
    def test_format_table_alignment_and_title(self):
        rows = [{"scheme": "Ours", "mops": 1.5}, {"scheme": "Spruce", "mops": 0.5}]
        text = format_table(rows, title="Figure X")
        assert text.splitlines()[0] == "Figure X"
        assert "Ours" in text and "Spruce" in text

    def test_format_table_empty(self):
        assert "(no rows)" in format_table([])

    def test_speedup_versus_directions(self):
        throughput = {"Ours": 10.0, "Spruce": 2.0}
        runtime = {"Ours": 1.0, "Spruce": 5.0}
        assert speedup_versus(throughput)["Spruce"] == pytest.approx(5.0)
        assert speedup_versus(runtime, higher_is_better=False)["Spruce"] == pytest.approx(5.0)
        with pytest.raises(KeyError):
            speedup_versus({"Spruce": 1.0})

    def test_geometric_mean(self):
        assert geometric_mean([1.0, 4.0]) == pytest.approx(2.0)
        assert geometric_mean([]) == 0.0

    def test_memory_series_table(self, tiny_stream):
        points = run_memory_curve(OURS, "CAIDA", tiny_stream.prefix(300), samples=2)
        text = memory_series_table(points, title="Figure 9(a)")
        assert "memory_bytes" in text
