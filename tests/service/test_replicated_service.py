"""GraphService(replicas=N): read routing, freshness policies, metrics.

The service keeps mutations on the primary (the PersistentStore it was
given) and serves read runs -- ``has`` / ``successors`` -- and analytics
jobs from the replication group's followers, round-robin.  These tests pin
the routing (spy stores count who served what), the read-your-writes
guarantee under interleaved traffic, the ``"any"`` staleness trade, and
the replication section of ``ServiceMetrics``.
"""

import pytest

from repro import ShardedCuckooGraph
from repro.persist import PersistentStore
from repro.service import GraphClient, GraphService


def durable_store(tmp_path, num_shards=2):
    return PersistentStore(
        tmp_path / "primary",
        store=ShardedCuckooGraph(num_shards=num_shards),
        own_store=True,
        sync_on_commit=False,
        compact_wal_bytes=None,
    )


def test_replicas_require_a_persistent_store():
    store = ShardedCuckooGraph(num_shards=2)
    with pytest.raises(ValueError, match="PersistentStore"):
        GraphService(store, replicas=1)
    store.close()


def test_bad_freshness_is_refused(tmp_path):
    store = durable_store(tmp_path)
    with pytest.raises(ValueError, match="freshness"):
        GraphService(store, replicas=1, freshness="stale-ok")
    store.close()


def test_read_your_writes_interleaved_traffic(tmp_path):
    """Reads submitted after mutations always observe them."""
    store = durable_store(tmp_path)
    with GraphService(store, replicas=2, durability="batch",
                      own_store=True, max_batch=16) as service:
        for u in range(40):
            insert = service.insert_edge(u, u + 1)
            assert insert.result(timeout=30) is True
            # The very next read must see the write (read-your-writes).
            assert service.has_edge(u, u + 1).result(timeout=30) is True
        gone = service.delete_edge(5, 6)
        assert gone.result(timeout=30) is True
        assert service.has_edge(5, 6).result(timeout=30) is False
        assert sorted(service.successors(7).result(timeout=30)) == [8]

        summary = service.metrics_summary()
        replication = summary["replication"]
        # Every read run was served by a replica, spread round-robin.
        assert sum(replication["replica_reads"].values()) > 0
        assert set(replication["replica_reads"]) == {0, 1}
        assert summary["failed"] == 0


def test_reads_are_served_by_followers_not_the_primary(tmp_path):
    """Spy on the stores: read batch calls land on replicas only."""
    calls = {"primary": 0, "replica": 0}

    class SpyShardedPrimary(ShardedCuckooGraph):
        def has_edges(self, edges):
            calls["primary"] += 1
            return super().has_edges(edges)

        def successors_many(self, nodes):
            calls["primary"] += 1
            return super().successors_many(nodes)

        def spawn_empty(self):
            spawned = SpyShardedReplica(num_shards=self.num_shards)
            return spawned

    class SpyShardedReplica(ShardedCuckooGraph):
        def has_edges(self, edges):
            calls["replica"] += 1
            return super().has_edges(edges)

        def successors_many(self, nodes):
            calls["replica"] += 1
            return super().successors_many(nodes)

    store = PersistentStore(
        tmp_path / "primary", store=SpyShardedPrimary(num_shards=2),
        own_store=True, sync_on_commit=False, compact_wal_bytes=None)
    with GraphService(store, replicas=2, durability="batch",
                      own_store=True) as service:
        service.insert_edge(1, 2).result(timeout=30)
        calls["primary"] = calls["replica"] = 0  # discard the mutation probes

        assert service.has_edge(1, 2).result(timeout=30) is True
        assert service.successors(1).result(timeout=30) == [2]

    assert calls["replica"] >= 2, "reads must be served by replicas"
    assert calls["primary"] == 0, "the primary must not serve read runs"


def test_analytics_jobs_run_on_a_replica(tmp_path):
    store = durable_store(tmp_path)
    with GraphService(store, replicas=2, durability="batch",
                      own_store=True) as service:
        for u in range(10):
            service.insert_edge(u, u + 1)
        order = service.analytics("bfs", 0).result(timeout=30)
        assert order == list(range(11))
        ranks = service.analytics("pagerank").result(timeout=30)
        assert ranks and abs(sum(ranks.values()) - 1.0) < 1e-6
        replication = service.metrics_summary()["replication"]
        assert sum(replication["replica_reads"].values()) >= 2


def test_any_freshness_may_lag_but_reports_it(tmp_path):
    """``"any"`` serves durable state only; unsynced commits may be missed."""
    store = durable_store(tmp_path)
    # durability="none" + sync_on_commit=False: mutations stay buffered, so
    # an "any" read legitimately observes an older prefix.
    with GraphService(store, replicas=1, freshness="any",
                      own_store=True) as service:
        for u in range(20):
            service.insert_edge(u, u + 1).result(timeout=30)
        stale = service.has_edge(19, 20).result(timeout=30)
        assert stale in (True, False)  # staleness is allowed by the policy
        replication = service.metrics_summary()["replication"]
        assert replication["lag_samples"] == 1
        if not stale:
            assert replication["lag_max"] > 0

        # After an explicit flush + barrier the replica catches up.
        service.replication.primary.sync_and_pump()
        follower = service.replication.followers[0]
        follower.wait_for(service.replication.primary.commit_index)
        assert follower.store.has_edge(19, 20)


def test_replication_lag_is_measured_under_read_your_writes(tmp_path):
    store = durable_store(tmp_path)
    with GraphService(store, replicas=2, durability="batch",
                      own_store=True, max_batch=64) as service:
        futures = [service.insert_edge(u, u + 1) for u in range(60)]
        for future in futures:
            future.result(timeout=30)
        assert service.has_edge(0, 1).result(timeout=30) is True
        replication = service.metrics_summary()["replication"]
        assert replication["lag_samples"] >= 1
        # The barrier closed a real gap at least once (mutations landed
        # before the read run was dispatched).
        assert replication["lag_max"] >= 0
        assert replication["lag_mean"] >= 0


def test_durable_client_with_replicas_survives_restart(tmp_path):
    """GraphClient.durable(replicas=...) recovers and re-replicates."""
    path = tmp_path / "durable"
    client = GraphClient.durable(path, num_shards=2, replicas=2)
    client.insert_edges([(u, u + 1) for u in range(25)])
    state = sorted(client.edges())
    client.close()

    reopened = GraphClient.durable(path, num_shards=2, replicas=2)
    assert sorted(reopened.edges()) == state
    assert reopened.has_edge(3, 4)
    assert reopened.insert_edge(500, 501)
    replication = reopened.service.metrics_summary()["replication"]
    assert sum(replication["replica_reads"].values()) >= 1
    reopened.close()


def test_close_tears_down_replicas_and_primary(tmp_path):
    store = durable_store(tmp_path)
    service = GraphService(store, replicas=2, own_store=True).start()
    service.insert_edge(1, 2).result(timeout=30)
    group = service.replication
    service.close()
    assert group.closed
    assert group.primary.closed
    assert all(f.closed for f in group.followers)
    assert store.closed


def test_replica_transport_seam_is_honored(tmp_path):
    """The channel factory the service was given is the one followers get."""
    from repro.replicate import InProcessTransport

    class CountingTransport(InProcessTransport):
        connects = 0

        def connect(self):
            CountingTransport.connects += 1
            return super().connect()

    store = durable_store(tmp_path)
    transport = CountingTransport()
    with GraphService(store, replicas=2, own_store=True,
                      replica_transport=transport) as service:
        service.insert_edge(1, 2).result(timeout=30)
        assert service.has_edge(1, 2).result(timeout=30) is True
    assert CountingTransport.connects == 2  # one channel per follower


def test_eviction_of_a_dead_replica_surfaces_in_metrics(tmp_path):
    """A follower whose channel dies is evicted mid-broadcast -- service
    traffic keeps flowing and the metrics summary says it happened."""
    store = durable_store(tmp_path)
    with GraphService(store, replicas=2, durability="batch",
                      own_store=True) as service:
        service.insert_edge(1, 2).result(timeout=30)
        assert service.metrics_summary()["replication"]["evictions"] == 0
        # One replica's transport dies underneath it (no clean detach).
        service.replication.followers[1]._channel.close()
        service.insert_edge(3, 4).result(timeout=30)
        summary = service.metrics_summary()
        assert summary["replication"]["evictions"] == 1
        assert summary["failed"] == 0
        assert service.replication.primary.evictions == 1
        # The surviving follower kept receiving the stream.
        survivor = service.replication.followers[0]
        survivor.wait_for(service.replication.primary.commit_index)
        assert survivor.store.has_edge(3, 4)
