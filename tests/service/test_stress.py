"""Concurrency stress: many client threads hammering one GraphService.

Two traffic shapes:

* **Disjoint keyspaces** -- each thread owns a key range and replays a
  seeded mixed insert/delete/query stream, pipelining futures.  Because the
  service preserves per-thread submission order and the keyspaces never
  interact, each thread's results must match its own sequential oracle, and
  the final store state must equal the union of the per-thread oracles.
* **Overlapping keyspace** -- every thread slams inserts into the same small
  key range.  Interleaving is nondeterministic, but conservation laws are
  not: each distinct edge's "newly inserted" result must be handed out
  exactly once across all threads, and the final edge set must be exactly
  the union of everything submitted.

Both shapes assert the accounting invariant the ISSUE names: no request
future is dropped (every future resolves) and none is double-resolved
(resolved + failed + cancelled == submitted; a double set_result would also
crash the dispatcher with InvalidStateError and surface as unresolved
futures).
"""

from __future__ import annotations

import random
import threading

from repro import ShardedCuckooGraph
from repro.service import GraphService

from ..core.test_fuzz_differential import Oracle

THREADS = 4
OPS_PER_THREAD = 300
WAIT_S = 30


def _mixed_stream(seed: int, low: int, high: int):
    rng = random.Random(seed)
    ops = []
    for _ in range(OPS_PER_THREAD):
        action = rng.choice(("insert", "insert", "insert", "delete", "query"))
        ops.append((action, rng.randrange(low, high), rng.randrange(low, high)))
    return ops


def test_disjoint_keyspaces_match_per_thread_oracles():
    store = ShardedCuckooGraph(num_shards=4)
    service = GraphService(store, max_batch=128, queue_capacity=256,
                           policy="block").start()
    barrier = threading.Barrier(THREADS)
    failures: list[str] = []
    oracles = [Oracle() for _ in range(THREADS)]
    resolved_counts = [0] * THREADS

    def client(index: int):
        low = index * 10_000
        ops = _mixed_stream(seed=1234 + index, low=low, high=low + 40)
        barrier.wait(WAIT_S)
        submitted = []
        for action, u, v in ops:
            if action == "insert":
                submitted.append(service.insert_edge(u, v))
            elif action == "delete":
                submitted.append(service.delete_edge(u, v))
            else:
                submitted.append(service.has_edge(u, v))
        oracle = oracles[index]
        expected = [oracle.apply(op) for op in ops]
        for position, (future, want) in enumerate(zip(submitted, expected)):
            got = future.result(WAIT_S)
            if got != want:
                failures.append(
                    f"thread {index} op#{position} {ops[position]}: "
                    f"got {got!r}, oracle says {want!r}"
                )
            resolved_counts[index] += 1

    threads = [threading.Thread(target=client, args=(index,))
               for index in range(THREADS)]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join(WAIT_S)
    service.close()

    assert failures == []
    assert resolved_counts == [OPS_PER_THREAD] * THREADS

    merged = sorted(edge for oracle in oracles for edge in oracle.edges())
    assert sorted(store.edges()) == merged
    assert store.num_edges == len(merged)

    summary = service.metrics_summary()
    assert summary["submitted_total"] == THREADS * OPS_PER_THREAD
    assert summary["resolved"] == THREADS * OPS_PER_THREAD
    assert summary["failed"] == summary["cancelled"] == summary["rejected"] == 0


def test_overlapping_keyspace_conserves_insert_results():
    store = ShardedCuckooGraph(num_shards=4)
    service = GraphService(store, max_batch=64, queue_capacity=128,
                           policy="block").start()
    barrier = threading.Barrier(THREADS)
    new_counts = [0] * THREADS
    submitted_edges: list[set] = [set() for _ in range(THREADS)]

    def client(index: int):
        rng = random.Random(777 + index)
        barrier.wait(WAIT_S)
        futures = []
        for _ in range(OPS_PER_THREAD):
            u, v = rng.randrange(25), rng.randrange(25)
            submitted_edges[index].add((u, v))
            futures.append(service.insert_edge(u, v))
        new_counts[index] = sum(future.result(WAIT_S) for future in futures)

    threads = [threading.Thread(target=client, args=(index,))
               for index in range(THREADS)]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join(WAIT_S)
    service.close()

    union = set().union(*submitted_edges)
    # Conservation: "newly inserted" is granted exactly once per distinct
    # edge, no matter which thread's request won the race.
    assert sum(new_counts) == len(union)
    assert sorted(store.edges()) == sorted(union)

    summary = service.metrics_summary()
    assert summary["submitted_total"] == THREADS * OPS_PER_THREAD
    assert summary["resolved"] == THREADS * OPS_PER_THREAD
    assert summary["failed"] == summary["cancelled"] == 0


def test_concurrent_clients_with_threaded_store_executor():
    """Full stack: client threads -> service batcher -> threaded shard pool."""
    with ShardedCuckooGraph(num_shards=4, executor="threads") as store:
        service = GraphService(store, max_batch=128).start()
        barrier = threading.Barrier(3)
        totals = [0, 0, 0]

        def client(index: int):
            edges = [(index * 1000 + u, index * 1000 + u + 1) for u in range(200)]
            barrier.wait(WAIT_S)
            futures = [service.insert_edge(u, v) for u, v in edges]
            totals[index] = sum(future.result(WAIT_S) for future in futures)

        threads = [threading.Thread(target=client, args=(index,))
                   for index in range(3)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join(WAIT_S)
        service.close()
        assert totals == [200, 200, 200]
        assert store.num_edges == 600
