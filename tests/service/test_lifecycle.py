"""Lifecycle and backpressure: start/close, queue policies, error routing."""

from __future__ import annotations

import threading
import time

import pytest

from repro import ShardedCuckooGraph
from repro.interfaces import DynamicGraphStore
from repro.service import (
    BoundedRequestQueue,
    GraphService,
    QueueFullError,
    ServiceClosedError,
)

#: Generous timeout for anything that waits on a thread.
WAIT_S = 10


class TestLifecycle:
    def test_context_manager_starts_and_closes(self):
        with GraphService() as service:
            assert service.running
            assert service.insert_edge(1, 2).result(WAIT_S) is True
        assert service.closed
        assert not service.running

    def test_close_is_idempotent(self):
        service = GraphService().start()
        service.close()
        service.close()
        assert service.closed

    def test_submit_after_close_raises(self):
        with GraphService() as service:
            pass
        with pytest.raises(ServiceClosedError):
            service.insert_edge(1, 2)
        with pytest.raises(ServiceClosedError):
            service.submit("has", (1, 2))

    def test_start_after_close_raises(self):
        service = GraphService().start()
        service.close()
        with pytest.raises(ServiceClosedError):
            service.start()

    def test_close_drains_inflight_requests(self):
        """Everything queued before close() must still resolve."""
        service = GraphService(max_batch=16).start()
        futures = [service.insert_edge(u, u + 1) for u in range(300)]
        service.close()  # drains, then joins the dispatcher
        assert sum(future.result(WAIT_S) for future in futures) == 300
        assert service.store.num_edges == 300
        summary = service.metrics_summary()
        assert summary["resolved"] == 300
        assert summary["failed"] == summary["cancelled"] == 0

    def test_close_without_start_cancels_pending(self):
        service = GraphService()
        futures = [service.insert_edge(u, u + 1) for u in range(5)]
        service.close()
        assert all(future.cancelled() for future in futures)
        assert service.metrics_summary()["cancelled"] == 5

    def test_close_closes_owned_store(self):
        service = GraphService().start()  # service built its own sharded store
        store = service.store
        service.close()
        assert isinstance(store, ShardedCuckooGraph) and store.closed

    def test_close_leaves_caller_store_open(self):
        store = ShardedCuckooGraph(num_shards=2)
        with GraphService(store) as service:
            service.insert_edge(1, 2).result(WAIT_S)
        assert not store.closed
        assert store.insert_edges([(2, 3)]) == 1  # still fully usable
        store.close()

    def test_submissions_before_start_are_served_after_start(self):
        service = GraphService()
        future = service.insert_edge(1, 2)
        assert not future.done()
        with service:
            assert future.result(WAIT_S) is True


class TestBackpressure:
    def test_reject_policy_raises_queue_full(self):
        service = GraphService(queue_capacity=8, policy="reject")
        futures = [service.insert_edge(u, u + 1) for u in range(8)]
        with pytest.raises(QueueFullError):
            service.insert_edge(99, 100)
        assert service.metrics_summary()["rejected"] == 1
        with service:  # the 8 accepted requests still complete
            assert sum(f.result(WAIT_S) for f in futures) == 8

    def test_block_policy_waits_for_space(self):
        service = GraphService(queue_capacity=4, policy="block")
        for u in range(4):
            service.insert_edge(u, u + 1)
        unblocked = threading.Event()

        def blocked_submit():
            service.insert_edge(50, 51)  # must block: queue is full
            unblocked.set()

        thread = threading.Thread(target=blocked_submit, daemon=True)
        thread.start()
        assert not unblocked.wait(0.15), "submit should block on a full queue"
        service.start()  # dispatcher drains the queue -> space appears
        assert unblocked.wait(WAIT_S), "submit must unblock once space frees"
        thread.join(WAIT_S)
        service.close()
        assert service.store.num_edges == 5

    def test_blocked_submitter_is_released_by_close(self):
        service = GraphService(queue_capacity=2, policy="block")
        service.insert_edge(1, 2)
        service.insert_edge(2, 3)
        outcome: list = []

        def blocked_submit():
            try:
                service.insert_edge(3, 4)
            except ServiceClosedError as exc:
                outcome.append(exc)

        thread = threading.Thread(target=blocked_submit, daemon=True)
        thread.start()
        time.sleep(0.05)  # let it reach the blocking wait
        service.close()
        thread.join(WAIT_S)
        assert len(outcome) == 1 and isinstance(outcome[0], ServiceClosedError)

    def test_queue_validation(self):
        with pytest.raises(ValueError):
            BoundedRequestQueue(capacity=0)
        with pytest.raises(ValueError):
            BoundedRequestQueue(policy="drop-oldest")
        with pytest.raises(ValueError):
            GraphService(policy="spill")
        with pytest.raises(ValueError):
            GraphService(max_batch=0)
        with pytest.raises(ValueError):
            GraphService(max_delay_s=-1)

    def test_block_policy_with_timeout_queue_level(self):
        queue = BoundedRequestQueue(capacity=1, policy="block")
        queue.put("a")
        with pytest.raises(QueueFullError):
            queue.put("b", timeout=0.05)


class TestTimeWindow:
    def test_delay_window_coalesces_trickled_requests(self):
        """With max_delay_s > 0 the window waits for stragglers."""
        service = GraphService(ShardedCuckooGraph(num_shards=2),
                               max_batch=64, max_delay_s=0.25).start()
        # Trickle requests in from another thread slower than dispatch,
        # faster than the window: they should land in very few batches.
        def trickle():
            for u in range(12):
                service.insert_edge(u, u + 100)
                time.sleep(0.005)

        thread = threading.Thread(target=trickle, daemon=True)
        thread.start()
        thread.join(WAIT_S)
        service.close()
        summary = service.metrics_summary()
        assert summary["resolved"] == 12
        assert summary["batches"] <= 4  # without the window this would be ~12
        assert summary["max_batch_size"] > 1


class FailingStore(DynamicGraphStore):
    """Store whose batch membership probe explodes on a poisoned edge."""

    name = "FailingStore"

    def __init__(self):
        self.inner = ShardedCuckooGraph(num_shards=2)

    def has_edges(self, edges):
        edges = list(edges)
        if (666, 666) in edges:
            raise RuntimeError("poisoned probe")
        return self.inner.has_edges(edges)

    def insert_edges(self, edges):
        return self.inner.insert_edges(edges)

    def delete_edges(self, edges):
        return self.inner.delete_edges(edges)

    def successors_many(self, nodes):
        return self.inner.successors_many(nodes)

    def insert_edge(self, u, v):
        return self.inner.insert_edge(u, v)

    def delete_edge(self, u, v):
        return self.inner.delete_edge(u, v)

    def has_edge(self, u, v):
        return self.inner.has_edge(u, v)

    def successors(self, u):
        return self.inner.successors(u)

    def memory_bytes(self):
        return self.inner.memory_bytes()

    @property
    def num_edges(self):
        return self.inner.num_edges

    def edges(self):
        return self.inner.edges()


class TestExceptionRouting:
    def test_store_failure_reaches_every_future_in_the_run(self):
        service = GraphService(FailingStore(), own_store=False, max_batch=16)
        doomed = [service.has_edge(666, 666), service.has_edge(1, 2)]
        with service:
            for future in doomed:
                with pytest.raises(RuntimeError, match="poisoned probe"):
                    future.result(WAIT_S)
            # The dispatcher survives the failed run and keeps serving.
            assert service.insert_edge(1, 2).result(WAIT_S) is True
            assert service.has_edge(1, 2).result(WAIT_S) is True
        summary = service.metrics_summary()
        assert summary["failed"] == 2
        assert summary["resolved"] == 2

    def test_latency_summary_shape(self):
        with GraphService() as service:
            futures = [service.insert_edge(u, u + 1) for u in range(64)]
            for future in futures:
                future.result(WAIT_S)
            latency = service.metrics_summary()["latency"]
        assert latency["count"] == 64
        assert 0 <= latency["p50_s"] <= latency["p95_s"] <= latency["p99_s"] \
            <= latency["max_s"]
        assert latency["mean_s"] > 0
