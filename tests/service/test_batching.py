"""Micro-batching behaviour: coalescing, ordering, per-request results.

The acceptance-critical test lives here: a spy store proves that requests
reach the store *only* through the batch APIs -- at least one coalesced call
per dispatch window, zero per-operation calls.  Submissions happen before
``start()`` so the window contents are deterministic.
"""

from __future__ import annotations

import pytest

from repro import CuckooGraph, ShardedCuckooGraph
from repro.analytics import bfs, pagerank
from repro.interfaces import DynamicGraphStore
from repro.service import GraphService, Request, split_runs


class SpyStore(DynamicGraphStore):
    """Delegating store that records every call that reaches it."""

    name = "SpyStore"

    def __init__(self, inner: DynamicGraphStore):
        self.inner = inner
        self.batch_calls: list[tuple[str, int]] = []  # (method, batch size)
        self.single_calls: list[str] = []

    # batch API: record and delegate
    def insert_edges(self, edges):
        edges = list(edges)
        self.batch_calls.append(("insert_edges", len(edges)))
        return self.inner.insert_edges(edges)

    def delete_edges(self, edges):
        edges = list(edges)
        self.batch_calls.append(("delete_edges", len(edges)))
        return self.inner.delete_edges(edges)

    def has_edges(self, edges):
        edges = list(edges)
        self.batch_calls.append(("has_edges", len(edges)))
        return self.inner.has_edges(edges)

    def successors_many(self, nodes):
        nodes = list(nodes)
        self.batch_calls.append(("successors_many", len(nodes)))
        return self.inner.successors_many(nodes)

    # single-op API: the service must never use these
    def insert_edge(self, u, v):
        self.single_calls.append("insert_edge")
        return self.inner.insert_edge(u, v)

    def delete_edge(self, u, v):
        self.single_calls.append("delete_edge")
        return self.inner.delete_edge(u, v)

    def has_edge(self, u, v):
        self.single_calls.append("has_edge")
        return self.inner.has_edge(u, v)

    def successors(self, u):
        self.single_calls.append("successors")
        return self.inner.successors(u)

    # passthrough plumbing
    def memory_bytes(self):
        return self.inner.memory_bytes()

    @property
    def num_edges(self):
        return self.inner.num_edges

    def edges(self):
        return self.inner.edges()


def calls_of(spy: SpyStore, method: str) -> list[int]:
    return [size for name, size in spy.batch_calls if name == method]


class TestCoalescing:
    def test_microbatches_reach_batch_api_with_zero_per_op_calls(self):
        """Acceptance check: >= 1 coalesced call per window, no per-op calls."""
        spy = SpyStore(ShardedCuckooGraph(num_shards=2))
        service = GraphService(spy, max_batch=256, own_store=False)
        inserts = [service.insert_edge(u, u + 1) for u in range(40)]
        probes = [service.has_edge(u, u + 1) for u in range(25)]
        fans = [service.successors(u) for u in range(10)]
        # Everything is queued; the first dispatch window coalesces it all.
        with service:
            assert [f.result(10) for f in inserts] == [True] * 40
            assert [f.result(10) for f in probes] == [True] * 25
            assert [f.result(10) for f in fans] == [[u + 1] for u in range(10)]

        # One coalesced insert call (plus its batched result pre-probe), one
        # membership call, one fan-out call -- and zero per-op store calls.
        assert calls_of(spy, "insert_edges") == [40]
        assert calls_of(spy, "has_edges") == [40, 25]  # pre-probe + queries
        assert calls_of(spy, "successors_many") == [10]
        assert spy.single_calls == []

    def test_windows_split_at_max_batch(self):
        spy = SpyStore(ShardedCuckooGraph(num_shards=2))
        service = GraphService(spy, max_batch=64, own_store=False)
        futures = [service.insert_edge(u, 1000 + u) for u in range(133)]
        with service:
            assert sum(f.result(10) for f in futures) == 133
        sizes = calls_of(spy, "insert_edges")
        assert sum(sizes) == 133
        assert all(size <= 64 for size in sizes)
        assert len(sizes) >= 3
        assert spy.single_calls == []

    def test_metrics_report_coalescing(self):
        service = GraphService(ShardedCuckooGraph(num_shards=2), max_batch=128)
        futures = [service.insert_edge(u, u + 1) for u in range(50)]
        with service:
            for future in futures:
                future.result(10)
        summary = service.metrics_summary()
        assert summary["batches"] == 1
        assert summary["max_batch_size"] == 50
        assert summary["resolved"] == 50
        assert summary["latency"]["count"] == 50


class TestOrderingSemantics:
    def test_mixed_kinds_resolve_in_submission_order(self):
        """insert -> has -> delete -> has -> insert on one edge, one window."""
        service = GraphService(ShardedCuckooGraph(num_shards=2), max_batch=16)
        futures = [
            service.insert_edge(1, 2),
            service.has_edge(1, 2),
            service.delete_edge(1, 2),
            service.has_edge(1, 2),
            service.insert_edge(1, 2),
        ]
        with service:
            assert [f.result(10) for f in futures] == [True, True, True, False, True]
        assert sorted(service.store.edges()) == [(1, 2)]

    def test_duplicate_inserts_in_one_window(self):
        service = GraphService(ShardedCuckooGraph(num_shards=2))
        futures = [service.insert_edge(7, 8) for _ in range(4)]
        with service:
            assert [f.result(10) for f in futures] == [True, False, False, False]

    def test_duplicate_deletes_in_one_window(self):
        store = ShardedCuckooGraph(num_shards=2)
        store.insert_edges([(3, 4)])
        service = GraphService(store, own_store=True)
        futures = [service.delete_edge(3, 4) for _ in range(3)]
        with service:
            assert [f.result(10) for f in futures] == [True, False, False]

    def test_split_runs_preserves_order_and_maximality(self):
        window = [Request(kind, None) for kind in
                  ("insert", "insert", "has", "has", "has", "insert", "delete")]
        runs = [(kind, len(run)) for kind, run in split_runs(window)]
        assert runs == [("insert", 2), ("has", 3), ("insert", 1), ("delete", 1)]

    def test_self_loops_round_trip(self):
        service = GraphService(ShardedCuckooGraph(num_shards=2))
        with service:
            assert service.insert_edge(5, 5).result(10) is True
            assert service.has_edge(5, 5).result(10) is True
            assert service.successors(5).result(10) == [5]
            assert service.delete_edge(5, 5).result(10) is True


class TestAnalyticsDispatch:
    @pytest.fixture
    def loaded_service(self):
        store = ShardedCuckooGraph(num_shards=2)
        service = GraphService(store, own_store=True)
        edges = [(u, u + 1) for u in range(1, 30)] + [(1, 10), (10, 20)]
        with service:
            futures = [service.insert_edge(u, v) for u, v in edges]
            for future in futures:
                future.result(10)
            yield service, store

    def test_bfs_matches_direct_kernel(self, loaded_service):
        service, store = loaded_service
        assert service.analytics("bfs", 1).result(10) == bfs(store, 1)

    def test_pagerank_matches_direct_kernel(self, loaded_service):
        service, store = loaded_service
        served = service.analytics("pagerank", iterations=10).result(10)
        assert served == pagerank(store, iterations=10)

    def test_unknown_analytics_task_rejected_at_submit(self, loaded_service):
        service, _ = loaded_service
        with pytest.raises(ValueError, match="unknown analytics task"):
            service.analytics("mincut", 1)

    def test_unknown_kind_rejected_at_submit(self, loaded_service):
        service, _ = loaded_service
        with pytest.raises(ValueError, match="unknown request kind"):
            service.submit("compact", None)

    def test_analytics_exception_routed_to_its_future_only(self, loaded_service):
        service, store = loaded_service
        bad = service.analytics("sssp", 1, weight=lambda u, v: 1 / 0)
        good = service.has_edge(1, 2)
        with pytest.raises(ZeroDivisionError):
            bad.result(10)
        assert good.result(10) is True  # the service keeps serving

    def test_plain_store_works_behind_the_service(self):
        """The front door runs over any DynamicGraphStore, not just sharded."""
        service = GraphService(CuckooGraph(), own_store=True)
        with service:
            assert service.insert_edge(1, 2).result(10) is True
            assert service.successors(1).result(10) == [2]
