"""GraphService(analytics="incremental"): routing, parity, metrics, lifecycle.

Covers the service-layer half of the incremental analytics work:

* analytics runs are served by the delta-maintained
  :class:`~repro.analytics.AnalyticsFollower` behind the configured
  freshness barrier, byte-identical to canonical recomputes on the
  follower's replica at the same commit index;
* ``replicas=0`` works (analytics-only group; plain reads stay on the
  primary) and the constructor validates its inputs;
* ``ServiceMetrics`` grows an "analytics" section with cache hit rate,
  dirty-node counts and incremental-vs-recompute decisions;
* the TraversalEngine counter-lifecycle audit: every analytics run -- in
  both ``"engine"`` and ``"incremental"`` modes -- executes on a *fresh*
  engine whose ``batch_calls`` accounting starts at zero, so no run
  inherits a prior run's counters.
"""

import pytest

from repro.analytics import (
    TraversalEngine,
    canonical_components,
    canonical_pagerank,
    top_degree_nodes,
)
from repro.core.sharded import ShardedCuckooGraph
from repro.persist import PersistentStore
from repro.service import ANALYTICS_HANDLERS, GraphClient, GraphService


def durable_store():
    return PersistentStore(None, scheme="sharded", sync_on_commit=False,
                           compact_wal_bytes=None)


def drain(service):
    """Quiesce the dispatcher (all submitted futures resolved)."""
    service.analytics("top_degree_nodes", 1).result()


class TestIncrementalRouting:
    def test_kernels_match_canonical_recompute_between_mutation_rounds(self):
        store = durable_store()
        with GraphService(store, analytics="incremental", replicas=1) as service:
            client = GraphClient(service)
            client.insert_edges([(1, 2), (2, 3), (3, 1), (4, 5)])
            for round_no in range(3):
                client.insert_edges([(round_no + 6, 1), (3, round_no + 20)])
                client.delete_edge(4, 5)
                client.insert_edge(4, 5)
                pagerank = client.pagerank()
                wcc = client.wcc()
                top = client.top_degree_nodes(4)
                replica = service.analytics_follower.store
                engine = TraversalEngine(replica)
                assert pagerank == canonical_pagerank(replica, engine=engine)
                assert wcc == canonical_components(
                    replica, engine=TraversalEngine(replica))
                assert top == top_degree_nodes(
                    replica, 4, engine=TraversalEngine(replica))
        store.close()

    def test_read_your_writes_visible_immediately(self):
        store = durable_store()
        with GraphService(store, analytics="incremental") as service:
            client = GraphClient(service)
            client.insert_edge(7, 8)
            assert [7, 8] in client.wcc()  # the barrier closed the gap
        store.close()

    def test_analytics_only_group_serves_reads_from_primary(self):
        store = durable_store()
        with GraphService(store, analytics="incremental", replicas=0) as service:
            assert service.replication is not None
            assert service.replication.replicas == 0
            client = GraphClient(service)
            client.insert_edges([(1, 2), (2, 3)])
            assert client.has_edge(1, 2)
            assert client.successors(2) == [3]
            assert client.wcc() == [[1, 2, 3]]
            summary = service.metrics_summary()
            assert summary["replication"]["replica_reads"] == {}
            assert summary["analytics"]["runs"] >= 1
        store.close()

    def test_custom_pagerank_parameters_fall_back_to_canonical_recompute(self):
        store = durable_store()
        with GraphService(store, analytics="incremental") as service:
            client = GraphClient(service)
            client.insert_edges([(1, 2), (2, 3), (3, 1)])
            replica = service.analytics_follower.store
            drain(service)
            assert client.pagerank(iterations=7) == canonical_pagerank(
                replica, 7, engine=TraversalEngine(replica))
            assert client.pagerank(iterations=13, damping=0.5) == \
                canonical_pagerank(replica, 13, 0.5,
                                   engine=TraversalEngine(replica))
        store.close()

    def test_engine_mode_also_serves_wcc(self):
        with GraphService() as service:
            client = GraphClient(service)
            client.insert_edges([(1, 2), (5, 6)])
            assert client.wcc() == [[1, 2], [5, 6]]

    def test_scc_still_served_through_cache_backed_engine(self):
        store = durable_store()
        with GraphService(store, analytics="incremental") as service:
            client = GraphClient(service)
            client.insert_edges([(1, 2), (2, 1), (2, 3)])
            scc = client.components()
            assert sorted(sorted(c) for c in scc) == [[1, 2], [3]]
        store.close()


class TestValidation:
    def test_unknown_mode_rejected(self):
        with pytest.raises(ValueError, match="analytics"):
            GraphService(analytics="magic")

    def test_incremental_requires_persistent_store(self):
        store = ShardedCuckooGraph(num_shards=2)
        try:
            with pytest.raises(ValueError, match="PersistentStore"):
                GraphService(store, analytics="incremental")
        finally:
            store.close()


class TestAnalyticsMetrics:
    def test_summary_reports_cache_and_decisions(self):
        store = durable_store()
        with GraphService(store, analytics="incremental") as service:
            client = GraphClient(service)
            client.insert_edges([(1, 2), (2, 3), (3, 4)])
            client.pagerank()                      # primes
            client.pagerank()                      # clean
            client.insert_edge(4, 5)
            client.top_degree_nodes(3)             # folds the delta
            analytics = service.metrics_summary()["analytics"]
            assert analytics["runs"] >= 3
            assert analytics["decisions"].get("primed", 0) >= 1
            assert analytics["decisions"].get("clean", 0) >= 1
            assert set(analytics["decisions"]) <= {
                "primed", "clean", "incremental", "recompute"}
            assert analytics["dirty_nodes_total"] >= 1
            cache = analytics["cache"]
            assert cache["primes"] >= 1
            assert 0.0 <= cache["hit_rate"] <= 1.0
        store.close()

    def test_engine_mode_analytics_section_stays_empty(self):
        with GraphService() as service:
            client = GraphClient(service)
            client.insert_edge(1, 2)
            client.pagerank()
            analytics = service.metrics_summary()["analytics"]
            assert analytics["runs"] == 0
            assert analytics["decisions"] == {}


class TestEngineCounterLifecycle:
    """Satellite audit: no analytics run inherits a prior run's counters."""

    @staticmethod
    def _install_probe(captured):
        def probe(store, *args, engine=None, **kwargs):
            captured.append((engine, engine.batch_calls,
                             engine.expand_calls, engine.probe_calls))
            # Do real engine work so counters would accumulate if shared.
            engine.materialize()
            return engine.batch_calls

        ANALYTICS_HANDLERS["counter_probe"] = probe
        return probe

    def _assert_fresh_engines(self, captured):
        engines = [entry[0] for entry in captured]
        assert len(set(map(id, engines))) == len(engines), \
            "analytics runs shared a TraversalEngine instance"
        for engine, batch_calls, expand_calls, probe_calls in captured:
            assert batch_calls == 0, "run started with inherited batch_calls"
            assert expand_calls == 0 and probe_calls == 0

    def test_engine_mode_runs_get_fresh_counters(self):
        captured = []
        self._install_probe(captured)
        try:
            with GraphService() as service:
                client = GraphClient(service)
                client.insert_edges([(1, 2), (2, 3)])
                for _ in range(3):
                    service.analytics("counter_probe").result()
            self._assert_fresh_engines(captured)
        finally:
            ANALYTICS_HANDLERS.pop("counter_probe", None)

    def test_incremental_mode_runs_get_fresh_counters(self):
        captured = []
        self._install_probe(captured)
        store = durable_store()
        try:
            with GraphService(store, analytics="incremental") as service:
                client = GraphClient(service)
                client.insert_edges([(1, 2), (2, 3)])
                for _ in range(3):
                    service.analytics("counter_probe").result()
                client.insert_edge(3, 4)
                service.analytics("counter_probe").result()
            self._assert_fresh_engines(captured)
        finally:
            ANALYTICS_HANDLERS.pop("counter_probe", None)
            store.close()
