"""Regression: every service timestamp comes from one monotonic clock.

The bug this pins down: ``Request.enqueued_at`` used to be stamped with
``time.perf_counter`` while the dispatcher measured resolve times and
window deadlines with ``time.monotonic``.  The two clocks tick at the same
rate but have unrelated epochs, so the subtraction ``now - enqueued_at``
was an epoch difference, not a latency -- producing arbitrarily skewed
latency percentiles and window deadlines whenever the epochs diverge
(they do on most platforms).

The fix is a single module-level ``CLOCK = time.monotonic`` in
``repro.service.batcher`` that the request stamp, the window deadline and
every latency sample read.  These tests make the clock-domain mix-up
reproducible by skewing ``time.perf_counter`` far away from
``time.monotonic`` and asserting nothing in the service notices.
"""

from __future__ import annotations

import time

from repro import ShardedCuckooGraph
from repro.service import GraphService
from repro.service import batcher
from repro.service.batcher import CLOCK, Request

#: A skew enormously larger than any sane request latency: if any service
#: timestamp secretly reads perf_counter, a latency sample or deadline
#: computed against monotonic jumps by about this much.
SKEW_S = 1e6


def test_clock_is_monotonic():
    """The service clock is time.monotonic itself, not a lookalike."""
    assert CLOCK is time.monotonic
    assert batcher.CLOCK is time.monotonic


def test_request_stamp_reads_the_service_clock(monkeypatch):
    """``enqueued_at`` must lie between two surrounding CLOCK readings."""
    monkeypatch.setattr(time, "perf_counter", lambda: time.monotonic() + SKEW_S)
    before = time.monotonic()
    stamp = Request(kind="has", payload=(1, 2)).enqueued_at
    after = time.monotonic()
    assert before <= stamp <= after


def test_latencies_are_sane_under_perf_counter_skew(monkeypatch):
    """End to end: a skewed perf_counter must not poison latency metrics.

    Before the fix, requests were stamped with ``perf_counter`` and
    resolved against ``monotonic``; with the epochs pushed ``SKEW_S``
    apart, every latency sample came out around ``±SKEW_S`` seconds.  With
    one clock, the samples stay what they are: small non-negative numbers.
    """
    monkeypatch.setattr(time, "perf_counter", lambda: time.monotonic() + SKEW_S)
    with ShardedCuckooGraph(num_shards=2) as store:
        service = GraphService(store, max_batch=16, max_delay_s=0.005)
        service.start()
        try:
            futures = [service.insert_edge(u, u + 1) for u in range(64)]
            futures += [service.has_edge(u, u + 1) for u in range(64)]
            for future in futures:
                future.result(timeout=30)
            latency = service.metrics_summary()["latency"]
        finally:
            service.close()
    assert latency["count"] == len(futures)
    assert 0 <= latency["p50_s"] <= latency["max_s"]
    # The whole test runs in seconds; a clock-domain mix-up shows up as a
    # sample on the order of the injected mega-second skew.
    assert latency["max_s"] < SKEW_S / 2
    assert latency["p99_s"] < SKEW_S / 2
