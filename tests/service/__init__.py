"""Tests for the request-queue service layer (:mod:`repro.service`)."""
