"""Point-in-time recovery: ``recover(path, upto=...)``.

The invariant (acceptance criterion of the replication PR): for a
single-segment store, ``recover(upto=i)`` reproduces **exactly the first
``i`` group commits**; for any segmentation, ``recover(upto=position)``
reproduces exactly the state a follower reported that
:class:`~repro.persist.WalPosition` for.  The rewind is destructive (it
reuses the torn-tail truncation machinery), so every probe recovers a
fresh copy of the directory.
"""

import shutil

import pytest

from repro import CuckooGraph, ShardedCuckooGraph
from repro.core.errors import PersistenceError
from repro.persist import (
    LOCK_NAME,
    PersistentStore,
    WalPosition,
    recover,
)
from repro.replicate import Follower, Primary


def copy_dir(source, destination):
    shutil.copytree(source, destination)
    lock = destination / LOCK_NAME
    if lock.exists():
        lock.unlink()  # the copy is its own directory; drop the source's lock
    return destination


def build_history(path, commits=8):
    """Single-segment store; returns the oracle state after each commit."""
    store = PersistentStore(path, scheme="cuckoo", compact_wal_bytes=None)
    states = [sorted(store.edges())]
    model = set()
    for index in range(commits):
        if index % 3 == 2 and model:
            edge = sorted(model)[0]
            store.delete_edge(*edge)
            model.discard(edge)
        else:
            batch = [(index, index + k) for k in range(1, 4)]
            store.insert_edges(batch)
            model.update(batch)
        states.append(sorted(model))
    store.close()
    return states


def test_upto_walks_every_commit_state(tmp_path):
    source = tmp_path / "source"
    states = build_history(source)
    for index, expected in enumerate(states):
        workdir = copy_dir(source, tmp_path / f"cut-{index}")
        recovered = recover(workdir, upto=index)
        assert sorted(recovered.edges()) == expected, f"upto={index}"
        assert recovered.last_recovery["wal_ops"] >= 0
        recovered.close()


def test_upto_is_appendable_like_any_recovery(tmp_path):
    source = tmp_path / "source"
    states = build_history(source)
    workdir = copy_dir(source, tmp_path / "cut")
    recovered = recover(workdir, upto=3)
    recovered.insert_edge(4000, 4001)
    recovered.close()
    # The rewound directory replays to its rewound state + the new commit.
    again = recover(workdir)
    assert sorted(again.edges()) == sorted(states[3] + [(4000, 4001)])
    again.close()


def test_upto_past_the_log_is_refused(tmp_path):
    source = tmp_path / "source"
    states = build_history(source, commits=4)
    workdir = copy_dir(source, tmp_path / "cut")
    with pytest.raises(PersistenceError, match="cannot rewind"):
        recover(workdir, upto=len(states) + 10)
    # The refusal happened before any byte was touched: a plain recovery
    # still sees the full history.
    recovered = recover(workdir)
    assert sorted(recovered.edges()) == states[-1]
    recovered.close()


def test_upto_zero_after_checkpoint_is_the_snapshot_state(tmp_path):
    """Indices are relative to the checkpoint baseline: snapshot == commit 0."""
    source = tmp_path / "source"
    store = PersistentStore(source, scheme="cuckoo", compact_wal_bytes=None)
    store.insert_edges([(1, 2), (3, 4)])
    store.checkpoint()
    snapshot_state = sorted(store.edges())
    store.insert_edge(5, 6)
    store.insert_edge(7, 8)
    store.close()

    workdir = copy_dir(source, tmp_path / "cut0")
    recovered = recover(workdir, upto=0)
    assert sorted(recovered.edges()) == snapshot_state
    recovered.close()

    workdir = copy_dir(source, tmp_path / "cut1")
    recovered = recover(workdir, upto=1)
    assert sorted(recovered.edges()) == sorted(snapshot_state + [(5, 6)])
    recovered.close()


def test_position_pitr_reproduces_follower_states_exactly(tmp_path):
    """Sharded PITR: a follower's position rebuilds its state, byte-exact."""
    source = tmp_path / "source"
    store = PersistentStore(source, store=ShardedCuckooGraph(num_shards=3),
                            own_store=True, compact_wal_bytes=None)
    primary = Primary(store)
    follower = Follower(store=ShardedCuckooGraph(num_shards=3))
    primary.attach(follower)

    checkpoints = []
    for round_index in range(5):
        store.insert_edges([(round_index * 10 + k, k) for k in range(6)])
        if round_index == 2:
            store.delete_edges([(0, 0), (1, 1)])
        primary.pump()
        follower.wait_for(primary.commit_index)
        checkpoints.append((follower.position, sorted(follower.store.edges())))
    follower.close()
    primary.close()
    store.close()

    for index, (position, expected) in enumerate(checkpoints):
        workdir = copy_dir(source, tmp_path / f"pitr-{index}")
        recovered = recover(workdir, store=ShardedCuckooGraph(num_shards=3),
                            upto=position)
        assert sorted(recovered.edges()) == expected, f"position #{index}"
        recovered.close()


def test_position_from_before_a_compaction_is_refused(tmp_path):
    source = tmp_path / "source"
    store = PersistentStore(source, scheme="cuckoo", compact_wal_bytes=None)
    primary = Primary(store)
    follower = Follower(store=CuckooGraph())
    primary.attach(follower)
    store.insert_edges([(1, 2), (3, 4)])
    primary.pump()
    follower.wait_for(primary.commit_index)
    stale_position = follower.position
    store.checkpoint()
    follower.close()
    primary.close()
    store.close()

    workdir = copy_dir(source, tmp_path / "cut")
    with pytest.raises(PersistenceError, match="generation"):
        recover(workdir, upto=stale_position)


def test_position_off_a_record_boundary_is_refused(tmp_path):
    source = tmp_path / "source"
    build_history(source, commits=3)
    workdir = copy_dir(source, tmp_path / "cut")
    bogus = WalPosition(generation=0, offsets=(17,))
    with pytest.raises(PersistenceError, match="boundary"):
        recover(workdir, upto=bogus)


def test_position_with_wrong_segmentation_is_refused(tmp_path):
    source = tmp_path / "source"
    build_history(source, commits=3)
    workdir = copy_dir(source, tmp_path / "cut")
    with pytest.raises(PersistenceError, match="segment"):
        recover(workdir, upto=WalPosition(generation=0, offsets=(16, 16)))
