"""Regressions: honest lag accounting and a non-spinning wait_for barrier.

Two bugs pinned here, both exposed by driving replication from the
process-backed service work:

* ``Follower.lag()`` used to measure against the primary's *shipped*
  ``commit_index``, so a primary that committed without pumping reported a
  perfectly fresh replica (lag 0) while the follower was genuinely behind.
  The fix measures against ``Primary.logged_commit_index`` -- committed
  group commits, shipped or still buffered -- which is the same quantity
  ``ServiceMetrics`` already counts as replica staleness.

* ``Follower.wait_for`` used to busy-wait: a tight ``poll()`` loop burning
  a core for the whole barrier.  It now sleeps on a condition variable that
  the channel's send hook and every apply notify, waking promptly when the
  awaited commit arrives -- with the timeout and detached-mid-wait errors
  unchanged.
"""

from __future__ import annotations

import threading
import time

import pytest

from repro import CuckooGraph
from repro.core.errors import ReplicationError
from repro.persist import PersistentStore
from repro.replicate import Follower, Primary


def make_pair(tmp_path):
    store = PersistentStore(
        tmp_path / "primary",
        store=CuckooGraph(),
        own_store=True,
        sync_on_commit=True,
        compact_wal_bytes=None,
    )
    primary = Primary(store)
    follower = Follower(store=CuckooGraph())
    primary.attach(follower)
    return store, primary, follower


class TestLagCountsUnshippedCommits:
    def test_commit_without_pump_shows_nonzero_lag(self, tmp_path):
        """A committed-but-unshipped write is real staleness, not lag 0."""
        store, primary, follower = make_pair(tmp_path)
        try:
            assert follower.lag() == 0
            store.insert_edges([(1, 2), (3, 4)])
            store.insert_edge(5, 6)
            # Two group commits logged, nothing pumped: the replica cannot
            # have them yet, and lag() must say exactly how far behind it is.
            assert primary.commit_index == 0
            assert primary.logged_commit_index == 2
            assert follower.lag() == 2

            primary.pump()
            assert follower.lag() == 2  # shipped but not yet applied
            follower.poll()
            assert follower.lag() == 0
        finally:
            follower.close()
            primary.close()
            store.close()

    def test_lag_zero_when_detached(self, tmp_path):
        store, primary, follower = make_pair(tmp_path)
        try:
            store.insert_edge(1, 2)
            primary.detach(follower)
            assert follower.lag() == 0
        finally:
            follower.close()
            primary.close()
            store.close()


class TestWaitForSleepsInsteadOfSpinning:
    def test_barrier_wakes_when_commit_arrives_from_another_thread(self, tmp_path):
        """wait_for blocked in one thread resolves promptly after a pump."""
        store, primary, follower = make_pair(tmp_path)
        reached: list[int] = []
        try:
            def barrier():
                reached.append(follower.wait_for(1, timeout=30.0))

            waiter = threading.Thread(target=barrier)
            waiter.start()
            time.sleep(0.15)  # the barrier is parked, nothing shipped yet
            assert not reached
            store.insert_edge(1, 2)
            primary.pump()  # send-side notification wakes the waiter
            waiter.join(timeout=10)
            assert not waiter.is_alive()
            assert reached == [1]
            assert follower.store.has_edge(1, 2)
        finally:
            follower.close()
            primary.close()
            store.close()

    def test_barrier_timeout_is_preserved(self, tmp_path):
        store, primary, follower = make_pair(tmp_path)
        try:
            started = time.monotonic()
            with pytest.raises(ReplicationError, match="barrier timed out"):
                follower.wait_for(1, timeout=0.2)
            elapsed = time.monotonic() - started
            assert 0.2 <= elapsed < 5.0
        finally:
            follower.close()
            primary.close()
            store.close()

    def test_detach_mid_wait_fails_fast_not_at_timeout(self, tmp_path):
        """Detaching while a barrier sleeps must error immediately."""
        store, primary, follower = make_pair(tmp_path)
        failures: list[ReplicationError] = []
        try:
            def barrier():
                try:
                    follower.wait_for(1, timeout=30.0)
                except ReplicationError as exc:
                    failures.append(exc)

            waiter = threading.Thread(target=barrier)
            waiter.start()
            time.sleep(0.15)
            primary.detach(follower)  # notifies the sleeping barrier
            waiter.join(timeout=10)
            assert not waiter.is_alive()
            assert len(failures) == 1
            assert "detached" in str(failures[0])
        finally:
            follower.close()
            primary.close()
            store.close()

    def test_non_notifying_channel_still_makes_progress(self, tmp_path):
        """A transport that never calls its listener degrades to polling."""
        store, primary, follower = make_pair(tmp_path)
        try:
            channel = follower._channel
            # Simulate a foreign transport with no send-side notification.
            channel.notifies_on_send = False
            channel.set_listener(lambda: None)

            def late_commit():
                time.sleep(0.2)
                store.insert_edge(7, 8)
                primary.pump()

            committer = threading.Thread(target=late_commit)
            committer.start()
            assert follower.wait_for(1, timeout=30.0) == 1
            committer.join(timeout=10)
        finally:
            follower.close()
            primary.close()
            store.close()


class TestConfigurablePollSlice:
    """The 0.05 s poll-slice fallback is a constructor knob now."""

    def test_default_unchanged(self):
        from repro.replicate import DEFAULT_POLL_SLICE_S

        assert DEFAULT_POLL_SLICE_S == 0.05
        follower = Follower(store=CuckooGraph())
        try:
            assert follower._poll_slice_s == DEFAULT_POLL_SLICE_S
        finally:
            follower.close()

    def test_invalid_slice_rejected(self):
        with pytest.raises(ValueError, match="poll_slice_s"):
            Follower(store=CuckooGraph(), poll_slice_s=0.0)
        with pytest.raises(ValueError, match="poll_slice_s"):
            Follower(store=CuckooGraph(), poll_slice_s=-1.0)

    def test_tight_slice_converges_fast_on_non_notifying_channel(self, tmp_path):
        """A 2 ms slice keeps a polling barrier tight -- the incremental
        fuzz lane's convergence loops must not burn 50 ms per wakeup."""
        store = PersistentStore(
            tmp_path / "primary", store=CuckooGraph(), own_store=True,
            sync_on_commit=True, compact_wal_bytes=None,
        )
        primary = Primary(store)
        follower = Follower(store=CuckooGraph(), poll_slice_s=0.002)
        primary.attach(follower)
        try:
            channel = follower._channel
            channel.notifies_on_send = False
            channel.set_listener(lambda: None)
            store.insert_edge(1, 2)
            primary.pump()  # queued, but no notification reaches the barrier
            started = time.monotonic()
            assert follower.wait_for(1, timeout=5.0) == 1
            # One poll slice (plus slack) -- far under the old 50 ms floor.
            assert time.monotonic() - started < 0.045
        finally:
            follower.close()
            primary.close()
            store.close()
