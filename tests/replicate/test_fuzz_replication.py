"""Differential fuzz: followers killed and restarted mid-stream must converge.

The replication acceptance invariant, driven by the same ``--fuzz-runs``
seeding convention as ``tests/core/test_fuzz_differential.py``: for any
seeded op stream committed through a WAL-wrapped primary,

* a follower -- including one killed at a random point and re-attached
  with a fresh store -- equals the dict-of-sets oracle at every probed
  commit index;
* ``recover(upto=i)`` on a copy of the directory reproduces exactly the
  first ``i`` group commits (single-segment lane), and
  ``recover(upto=position)`` reproduces every probed follower state
  (sharded lane);
* the final follower promotes into a writable store, and the deposed
  primary's stale segments are refused during recovery of the replica
  directory;
* (incremental-analytics lane) an :class:`AnalyticsFollower` riding the
  same stream -- kills and re-attaches included -- produces kernel outputs
  **byte-identical** to canonical recomputes through a fresh
  ``TraversalEngine`` on its replica store at every probed commit index.
"""

import random
import shutil

import pytest

from repro import ShardedCuckooGraph
from repro.analytics import (
    AnalyticsFollower,
    TraversalEngine,
    canonical_components,
    canonical_pagerank,
    top_degree_nodes,
    total_degrees,
)
from repro.persist import LOCK_NAME, PersistentStore, read_wal_records, recover
from repro.replicate import Follower, Primary, RemoteFollower, ReplicationServer

from ..core.test_fuzz_differential import (
    NODE_RANGE,
    Oracle,
    assert_final_state,
    generate_ops,
)


def copy_dir(source, destination):
    shutil.copytree(source, destination)
    lock = destination / LOCK_NAME
    if lock.exists():
        lock.unlink()
    return destination


@pytest.mark.parametrize("transport_lane", ["inprocess", "socket"])
@pytest.mark.parametrize("num_shards", [1, 3])
def test_fuzz_follower_kill_restart_converges(num_shards, transport_lane,
                                              fuzz_seed, tmp_path):
    rng = random.Random(fuzz_seed * 23 + num_shards)
    ops = generate_ops(fuzz_seed)
    oracle = Oracle()
    context = f"seed={fuzz_seed} shards={num_shards} {transport_lane} replicate"
    base = tmp_path / "primary"

    store = PersistentStore(base, store=ShardedCuckooGraph(num_shards=num_shards),
                            own_store=True, sync_on_commit=False,
                            compact_wal_bytes=None)
    primary = Primary(store)
    # The socket lane runs the *same* schedule through TCP: every replica is
    # a RemoteFollower bootstrapped over the wire (snapshot stream +
    # backfill frames), and every shipment crosses a real socket.  The
    # assertions are byte-identical to the in-process lane's.
    server = ReplicationServer(primary) if transport_lane == "socket" else None
    node_ids = iter(range(1, 10_000))

    def spawn_replica():
        if server is not None:
            return RemoteFollower(
                server.address,
                store=ShardedCuckooGraph(num_shards=num_shards),
                node_id=next(node_ids))
        replica = Follower(store=ShardedCuckooGraph(num_shards=num_shards))
        primary.attach(replica)
        return replica

    follower = spawn_replica()

    kills = 0
    index_probes = []     # (commit_index, oracle edges) -- int PITR lane
    position_probes = []  # (WalPosition, oracle edges)  -- sharded PITR lane
    position = 0
    while position < len(ops):
        chunk = ops[position:position + rng.randrange(20, 90)]
        position += len(chunk)
        inserts = [(u, v) for a, u, v in chunk if a == "insert"]
        deletes = [(u, v) for a, u, v in chunk if a == "delete"]
        assert store.insert_edges(inserts) == \
            sum(oracle.insert(u, v) for u, v in inserts), context
        assert store.delete_edges(deletes) == \
            sum(oracle.delete(u, v) for u, v in deletes), context
        primary.sync_and_pump()

        if rng.random() < 0.30:
            # Kill: the replica vanishes with shipped-but-unapplied messages
            # still queued.  A fresh store re-attaches and must converge via
            # backfill alone.
            follower.close()
            kills += 1
            follower = spawn_replica()
        else:
            follower.wait_for(primary.commit_index)

        assert follower.commit_index == primary.commit_index, context
        assert_final_state(follower.store, oracle,
                           f"{context} probe@{follower.commit_index}")
        index_probes.append((primary.commit_index, oracle.edges()))
        position_probes.append((follower.position, oracle.edges()))

    final_edges = oracle.edges()

    # ---- promotion + fencing ----------------------------------------- #
    follower.wait_for(primary.commit_index)
    promoted = follower.promote(tmp_path / "replica")
    assert sorted(promoted.edges()) == final_edges, context
    assert promoted.insert_edge(NODE_RANGE + 5, NODE_RANGE + 6), context
    promoted.checkpoint()
    promoted_state = sorted(promoted.edges())
    promoted.close()
    follower.close()
    if server is not None:
        server.close()
    primary.close()

    # The deposed primary keeps writing, then its segments are smuggled
    # into the replica directory; recovery must refuse them all.
    store.insert_edges([(u, NODE_RANGE + 50) for u in range(4)])
    store.sync()
    store.close()
    for segment in sorted(base.glob("wal-*.bin")):
        generation, records, _ = read_wal_records(segment)
        if not records:
            continue  # an empty stale segment proves nothing
        shutil.copy(segment, tmp_path / "replica" / segment.name)
    fenced = recover(tmp_path / "replica",
                     store=ShardedCuckooGraph(num_shards=num_shards))
    assert sorted(fenced.edges()) == promoted_state, f"{context} fencing"
    assert fenced.last_recovery["wal_ops"] == 0, f"{context} fencing"
    fenced.close()

    # ---- point-in-time recovery probes -------------------------------- #
    sample = rng.sample(range(len(index_probes)), k=min(3, len(index_probes)))
    for probe in sample:
        if num_shards == 1:
            commit_index, expected = index_probes[probe]
            workdir = copy_dir(base, tmp_path / f"pitr-i{probe}")
            rewound = recover(workdir, store=ShardedCuckooGraph(num_shards=1),
                              upto=commit_index)
            assert sorted(rewound.edges()) == expected, \
                f"{context} upto={commit_index}"
            rewound.close()
        wal_position, expected = position_probes[probe]
        workdir = copy_dir(base, tmp_path / f"pitr-p{probe}")
        rewound = recover(workdir,
                          store=ShardedCuckooGraph(num_shards=num_shards),
                          upto=wal_position)
        assert sorted(rewound.edges()) == expected, \
            f"{context} upto={wal_position}"
        rewound.close()


ANALYTICS_ITERATIONS = 15  # enough sweeps for dirt to travel, fast to recompute


def test_fuzz_incremental_analytics_byte_parity(fuzz_seed, tmp_path):
    """Incremental kernels == canonical recompute at every probed commit index.

    The delta-maintained :class:`AnalyticsFollower` consumes the same seeded
    op stream as the convergence lane -- including random kills with
    re-attach, which exercise the full-invalidation path (backfill bypasses
    the change-feed hook).  At every chunk boundary, all four kernels must
    be byte-identical (exact ints, bit-exact floats, no tolerance) to fresh
    ``TraversalEngine`` recomputes on the follower's own replica store, and
    the replica itself must equal the oracle.
    """
    rng = random.Random(fuzz_seed * 31 + 7)
    ops = generate_ops(fuzz_seed)
    oracle = Oracle()
    context = f"seed={fuzz_seed} incremental-analytics"

    def fresh_analytics_replica():
        return AnalyticsFollower(
            store=ShardedCuckooGraph(num_shards=2),
            iterations=ANALYTICS_ITERATIONS,
            poll_slice_s=0.002,
        )

    store = PersistentStore(tmp_path / "primary",
                            store=ShardedCuckooGraph(num_shards=2),
                            own_store=True, sync_on_commit=False,
                            compact_wal_bytes=None)
    primary = Primary(store)
    follower = fresh_analytics_replica()
    primary.attach(follower)

    try:
        position = 0
        while position < len(ops):
            chunk = ops[position:position + rng.randrange(20, 90)]
            position += len(chunk)
            inserts = [(u, v) for a, u, v in chunk if a == "insert"]
            deletes = [(u, v) for a, u, v in chunk if a == "delete"]
            store.insert_edges(inserts)
            store.delete_edges(deletes)
            for u, v in inserts:
                oracle.insert(u, v)
            for u, v in deletes:
                oracle.delete(u, v)
            primary.sync_and_pump()

            if rng.random() < 0.30:
                # Kill: cached adjacency and kernel state die with the
                # follower; the re-attached replica is backfilled directly
                # (no per-op dirty marks) and must still be exact.
                follower.close()
                follower = fresh_analytics_replica()
                primary.attach(follower)
            follower.wait_for(primary.commit_index)

            probe = f"{context} probe@{follower.commit_index}"
            assert_final_state(follower.store, oracle, probe)
            replica = follower.store
            assert follower.pagerank() == canonical_pagerank(
                replica, iterations=ANALYTICS_ITERATIONS,
                engine=TraversalEngine(replica)), f"{probe} pagerank"
            assert follower.components() == canonical_components(
                replica, engine=TraversalEngine(replica)), f"{probe} wcc"
            assert follower.total_degrees() == dict(total_degrees(
                replica, engine=TraversalEngine(replica))), f"{probe} degrees"
            assert follower.top_degree_nodes(8) == top_degree_nodes(
                replica, 8, engine=TraversalEngine(replica)), f"{probe} top-k"

        stats = follower.analytics_stats()
        assert stats["decisions"]["primed"] >= 1, context
        assert stats["cache"]["refreshes"] >= 1, context
    finally:
        follower.close()
        primary.close()
        store.close()
