"""Primary/follower log shipping: ordering, barriers, backfill, compaction."""

import pytest

from repro import CuckooGraph, ShardedCuckooGraph, WeightedCuckooGraph
from repro.core.errors import ReplicationError
from repro.persist import PersistentStore
from repro.replicate import (
    Follower,
    GenerationBump,
    InProcessTransport,
    Primary,
    RecordShipment,
    ReplicationGroup,
)


def make_primary(tmp_path, num_shards=2, sync_on_commit=True, **kwargs):
    store = PersistentStore(
        tmp_path / "primary",
        store=ShardedCuckooGraph(num_shards=num_shards),
        own_store=True,
        sync_on_commit=sync_on_commit,
        compact_wal_bytes=kwargs.pop("compact_wal_bytes", None),
    )
    return store, Primary(store, **kwargs)


def test_shipped_records_converge_the_follower(tmp_path):
    store, primary = make_primary(tmp_path)
    follower = Follower(store=ShardedCuckooGraph(num_shards=2))
    primary.attach(follower)

    store.insert_edges([(u, u + 1) for u in range(30)])
    store.delete_edges([(0, 1), (4, 5)])
    shipped = primary.pump()
    assert shipped == primary.commit_index > 0

    applied = follower.poll()
    assert applied == shipped
    assert follower.commit_index == primary.commit_index
    assert sorted(follower.store.edges()) == sorted(store.edges())
    assert follower.lag() == 0
    follower.close()
    primary.close()
    store.close()


def test_commit_index_is_monotonic_and_pump_is_incremental(tmp_path):
    store, primary = make_primary(tmp_path, num_shards=1)
    follower = Follower(store=CuckooGraph())
    primary.attach(follower)

    indices = []
    for u in range(5):
        store.insert_edge(u, u + 1)
        primary.pump()
        follower.poll()
        indices.append(follower.commit_index)
    assert indices == [1, 2, 3, 4, 5]
    assert primary.pump() == 0  # nothing new: the cursor does not re-ship
    follower.close()
    primary.close()
    store.close()


def test_wait_for_is_a_read_your_writes_barrier(tmp_path):
    store, primary = make_primary(tmp_path, num_shards=2)
    follower = Follower(store=ShardedCuckooGraph(num_shards=2))
    primary.attach(follower)

    store.insert_edges([(u, u + 1) for u in range(12)])
    primary.pump()
    # Nothing applied yet; the barrier drains the channel to the index.
    assert follower.commit_index == 0
    reached = follower.wait_for(primary.commit_index)
    assert reached == primary.commit_index
    assert sorted(follower.store.edges()) == sorted(store.edges())

    with pytest.raises(ReplicationError, match="barrier timed out"):
        follower.wait_for(primary.commit_index + 1, timeout=0.05)
    follower.close()
    primary.close()
    store.close()


def test_unsynced_commits_are_invisible_until_flushed(tmp_path):
    """The tailer ships *committed* records: a buffered append is not one."""
    store, primary = make_primary(tmp_path, num_shards=1, sync_on_commit=False)
    follower = Follower(store=CuckooGraph())
    primary.attach(follower)

    store.insert_edges([(1, 2), (3, 4)])
    lagging = primary.pump()  # buffered: may see none of it
    store.sync()
    flushed = primary.pump()
    assert lagging + flushed == 1  # exactly one group commit ships in total
    follower.wait_for(primary.commit_index)
    assert sorted(follower.store.edges()) == [(1, 2), (3, 4)]
    follower.close()
    primary.close()
    store.close()


def test_attach_backfills_history_and_subscribes(tmp_path):
    store, primary = make_primary(tmp_path)
    store.insert_edges([(u, u + 1) for u in range(20)])
    primary.pump()  # shipped with no followers attached: fan-out of zero

    late = Follower(store=ShardedCuckooGraph(num_shards=2))
    primary.attach(late)
    # Backfill alone made it current, at the primary's commit index.
    assert late.commit_index == primary.commit_index
    assert sorted(late.store.edges()) == sorted(store.edges())
    assert late.position == primary.position

    # And the subscription carries the future.
    store.insert_edge(100, 200)
    primary.pump()
    late.wait_for(primary.commit_index)
    assert late.store.has_edge(100, 200)
    late.close()
    primary.close()
    store.close()


def test_attach_requires_an_empty_follower_store(tmp_path):
    store, primary = make_primary(tmp_path)
    dirty = ShardedCuckooGraph(num_shards=2)
    dirty.insert_edge(1, 2)
    with pytest.raises(ReplicationError, match="empty store"):
        primary.attach(Follower(store=dirty))
    dirty.close()
    primary.close()
    store.close()


def test_follower_of_a_different_scheme_converges(tmp_path):
    """The stream is logical: a plain CuckooGraph can follow a sharded primary."""
    store, primary = make_primary(tmp_path, num_shards=3)
    follower = Follower(store=CuckooGraph())
    primary.attach(follower)
    store.insert_edges([(u, v) for u in range(10) for v in range(3)])
    store.delete_edges([(0, 0), (9, 2)])
    primary.pump()
    follower.wait_for(primary.commit_index)
    assert sorted(follower.store.edges()) == sorted(store.edges())
    follower.close()
    primary.close()
    store.close()


def test_weighted_stream_into_unweighted_follower_is_refused(tmp_path):
    store = PersistentStore(tmp_path / "p", store=WeightedCuckooGraph(),
                            own_store=True, compact_wal_bytes=None)
    primary = Primary(store)
    follower = Follower(store=CuckooGraph())
    primary.attach(follower)
    store.insert_weighted_edge(1, 2, 5)
    primary.pump()
    with pytest.raises(ReplicationError, match="not weighted"):
        follower.poll()
    follower.close()
    primary.close()
    store.close()


def test_compaction_mid_stream_loses_nothing(tmp_path):
    """The pre-truncation hook ships the tail before the checkpoint folds it."""
    store, primary = make_primary(tmp_path, num_shards=2, sync_on_commit=False)
    follower = Follower(store=ShardedCuckooGraph(num_shards=2))
    primary.attach(follower)

    store.insert_edges([(u, u + 1) for u in range(25)])
    # Deliberately do NOT pump: the records are buffered and unshipped when
    # the explicit checkpoint fires.  The hook must flush + ship them first.
    store.checkpoint()
    store.insert_edge(500, 600)  # post-compaction commit, new generation
    store.sync()
    primary.pump()
    follower.wait_for(primary.commit_index)

    assert follower.generation == store.generation == 1
    assert sorted(follower.store.edges()) == sorted(store.edges())
    # The follower's position is relative to the *new* generation's segments.
    assert follower.position.generation == 1
    follower.close()
    primary.close()
    store.close()


def test_threshold_compaction_mid_stream_loses_nothing(tmp_path):
    store, primary = make_primary(tmp_path, num_shards=1,
                                  compact_wal_bytes=512)
    follower = Follower(store=ShardedCuckooGraph(num_shards=1))
    primary.attach(follower)
    for u in range(200):
        store.insert_edge(u, u + 1)
        if u % 17 == 0:
            primary.pump()
            follower.poll()
    assert store.compactions >= 1
    primary.pump()
    follower.wait_for(primary.commit_index)
    assert sorted(follower.store.edges()) == sorted(store.edges())
    assert follower.generation == store.generation
    follower.close()
    primary.close()
    store.close()


def test_pump_survives_variable_size_regrowth_after_compaction(tmp_path):
    """Regression: a segment regrown past a stale cursor must not misparse.

    After a compaction the tailer's cursor points into the *old* log; when
    later, differently-sized commits regrow the segment past that offset,
    a naive seek would land mid-record and misread payload bytes as
    framing (WalCorruptError out of the user's mutation call).  The
    generation guard must turn this into a clean cursor reset instead.
    """
    store = PersistentStore(tmp_path / "p", scheme="cuckoo",
                            compact_wal_bytes=500, sync_on_commit=True)
    primary = Primary(store)
    follower = Follower(store=CuckooGraph())
    primary.attach(follower)

    rng_edges = [[(t * 100 + k, t) for k in range(1 + (t * 7) % 13)]
                 for t in range(60)]
    for batch in rng_edges:  # variable-size records; compaction fires inside
        store.insert_edges(batch)
    assert store.compactions >= 1
    primary.pump()
    follower.wait_for(primary.commit_index)
    assert sorted(follower.store.edges()) == sorted(store.edges())
    follower.close()
    primary.close()
    store.close()


def test_generation_bump_message_resets_position_only(tmp_path):
    store, primary = make_primary(tmp_path, num_shards=1)
    follower = Follower(store=CuckooGraph())
    primary.attach(follower)
    store.insert_edge(1, 2)
    primary.pump()
    follower.poll()
    edges_before = sorted(follower.store.edges())

    store.checkpoint()
    primary.pump()  # observes the new generation, broadcasts the bump
    messages = follower.poll()
    assert messages == 0  # a bump is not a record
    assert follower.generation == 1
    assert sorted(follower.store.edges()) == edges_before
    follower.close()
    primary.close()
    store.close()


def test_detach_stops_the_stream_and_close_is_idempotent(tmp_path):
    store, primary = make_primary(tmp_path)
    follower = Follower(store=ShardedCuckooGraph(num_shards=2))
    primary.attach(follower)
    primary.detach(follower)
    assert not follower.attached
    store.insert_edge(1, 2)
    primary.pump()
    assert follower.poll() == 0
    follower.close()
    follower.close()
    primary.close()
    primary.close()
    store.close()


def test_primary_requires_a_persistent_store():
    plain = ShardedCuckooGraph(num_shards=2)
    with pytest.raises(ReplicationError, match="PersistentStore"):
        Primary(plain)
    plain.close()


def test_transport_seam_sees_the_message_vocabulary(tmp_path):
    """A custom transport observes shipments and bumps -- the socket seam."""
    log = []

    class SpyTransport(InProcessTransport):
        def connect(self):
            channel = super().connect()
            original = channel.send

            def send(message):
                log.append(message)
                original(message)

            channel.send = send
            return channel

    store, primary = make_primary(tmp_path, num_shards=1,
                                  transport=SpyTransport())
    follower = Follower(store=CuckooGraph())
    primary.attach(follower)
    store.insert_edge(1, 2)
    primary.pump()
    store.checkpoint()
    primary.pump()
    follower.poll()

    kinds = [type(message) for message in log]
    assert RecordShipment in kinds and GenerationBump in kinds
    shipment = next(m for m in log if isinstance(m, RecordShipment))
    assert shipment.ops == (("insert", 1, 2),)
    assert shipment.commit_index == 1
    follower.close()
    primary.close()
    store.close()


def test_replication_group_round_robin_and_barrier(tmp_path):
    store = PersistentStore(tmp_path / "p",
                            store=ShardedCuckooGraph(num_shards=2),
                            own_store=True, sync_on_commit=False,
                            compact_wal_bytes=None)
    group = ReplicationGroup(store, replicas=3)
    assert group.replicas == 3

    store.insert_edges([(u, u + 1) for u in range(10)])
    seen = []
    for _ in range(6):
        follower, index = group.next_follower()
        group.refresh(follower, "read_your_writes")
        assert sorted(follower.store.edges()) == sorted(store.edges())
        seen.append(index)
    assert seen == [0, 1, 2, 0, 1, 2]

    group.close()
    group.close()
    store.close()
