"""Socket transport: framing, bootstrap, shipping, heartbeats, teardown.

The wire contract under test: a :class:`RemoteFollower` attached through a
:class:`ReplicationServer` is observably identical to an in-process
follower -- same commit indexes, same ``position``, same store state --
with the bootstrap arriving as a snapshot *file stream* plus backfill
frames (never a shared filesystem), and death surfacing as a closed
channel that wakes any blocked barrier.
"""

from __future__ import annotations

import threading
import time

import pytest

from repro import CuckooGraph, ShardedCuckooGraph
from repro.core.errors import ReplicationError
from repro.persist import PersistentStore
from repro.replicate import (
    Follower,
    GenerationBump,
    Primary,
    RecordShipment,
    RemoteFollower,
    ReplicationServer,
    decode_message,
    encode_message,
)


def make_served_primary(tmp_path, *, num_shards=2, **store_kwargs):
    store_kwargs.setdefault("sync_on_commit", True)
    store_kwargs.setdefault("compact_wal_bytes", None)
    store = PersistentStore(
        tmp_path / "primary",
        store=ShardedCuckooGraph(num_shards=num_shards),
        own_store=True,
        **store_kwargs,
    )
    primary = Primary(store)
    server = ReplicationServer(primary)
    return store, primary, server


class TestMessageCodec:
    def test_record_shipment_roundtrip(self):
        message = RecordShipment(
            commit_index=41, segment=3, generation=7,
            ops=(("insert", 1, 2), ("delete", -5, 9), ("insert_w", 3, 4, 11)),
            end_offset=123456789)
        assert decode_message(encode_message(message)) == message

    def test_generation_bump_roundtrip(self):
        message = GenerationBump(commit_index=99, generation=12)
        assert decode_message(encode_message(message)) == message

    def test_unknown_type_is_refused(self):
        with pytest.raises(ReplicationError, match="unknown"):
            decode_message(bytes([200]))
        with pytest.raises(ReplicationError, match="cannot encode"):
            encode_message(object())


class TestRemoteAttachAndShipping:
    def test_bootstrap_ships_wal_backfill(self, tmp_path):
        """History committed before the attach arrives as backfill frames."""
        store, primary, server = make_served_primary(tmp_path)
        try:
            store.insert_edges([(1, 2), (3, 4), (5, 6)])
            replica = RemoteFollower(server.address,
                                     store=ShardedCuckooGraph(num_shards=2))
            assert sorted(replica.store.edges()) == sorted(store.edges())
            assert replica.commit_index == primary.commit_index
            assert replica.position == primary.position
            replica.close()
        finally:
            server.close()
            primary.close()
            store.close()

    def test_bootstrap_streams_snapshot_file(self, tmp_path):
        """A checkpointed primary bootstraps from the snapshot chunk stream
        (there are no WAL records left to backfill)."""
        store, primary, server = make_served_primary(tmp_path)
        try:
            store.insert_edges([(i, i + 100) for i in range(50)])
            store.checkpoint()  # folds everything into snapshot.bin
            replica = RemoteFollower(server.address,
                                     store=ShardedCuckooGraph(num_shards=2))
            assert sorted(replica.store.edges()) == sorted(store.edges())
            assert replica.generation == store.generation
            replica.close()
        finally:
            server.close()
            primary.close()
            store.close()

    def test_live_shipping_and_barrier(self, tmp_path):
        store, primary, server = make_served_primary(tmp_path)
        replica = RemoteFollower(server.address,
                                 store=ShardedCuckooGraph(num_shards=2))
        try:
            store.insert_edges([(1, 2), (2, 3)])
            store.delete_edge(1, 2)
            primary.sync_and_pump()
            replica.wait_for(primary.commit_index, timeout=10.0)
            assert not replica.store.has_edge(1, 2)
            assert replica.store.has_edge(2, 3)
            assert replica.commit_index == primary.commit_index
            assert replica.position == primary.position
        finally:
            replica.close()
            server.close()
            primary.close()
            store.close()

    def test_generation_bump_crosses_the_wire(self, tmp_path):
        store, primary, server = make_served_primary(tmp_path)
        replica = RemoteFollower(server.address,
                                 store=ShardedCuckooGraph(num_shards=2))
        try:
            store.insert_edges([(1, 2), (3, 4)])
            primary.sync_and_pump()
            store.checkpoint()
            store.insert_edge(5, 6)
            primary.sync_and_pump()
            replica.wait_for(primary.commit_index, timeout=10.0)
            assert replica.generation == store.generation
            assert replica.store.has_edge(5, 6)
            assert replica.position == primary.position
        finally:
            replica.close()
            server.close()
            primary.close()
            store.close()

    def test_matches_inprocess_follower_exactly(self, tmp_path):
        """One stream, both transports: identical indexes and stores."""
        store, primary, server = make_served_primary(tmp_path)
        local = Follower(store=ShardedCuckooGraph(num_shards=2))
        primary.attach(local)
        remote = RemoteFollower(server.address,
                                store=ShardedCuckooGraph(num_shards=2))
        try:
            store.insert_edges([(i, (i * 7) % 23) for i in range(40)])
            store.delete_edges([(i, (i * 7) % 23) for i in range(0, 40, 3)])
            primary.sync_and_pump()
            local.wait_for(primary.commit_index)
            remote.wait_for(primary.commit_index, timeout=10.0)
            assert remote.commit_index == local.commit_index
            assert remote.position == local.position
            assert sorted(remote.store.edges()) == sorted(local.store.edges())
        finally:
            remote.close()
            local.close()
            server.close()
            primary.close()
            store.close()


class TestHeartbeatAndLag:
    def test_ping_reports_logged_commit_index(self, tmp_path):
        store, primary, server = make_served_primary(
            tmp_path, sync_on_commit=False)
        replica = RemoteFollower(server.address,
                                 store=ShardedCuckooGraph(num_shards=2))
        try:
            assert replica.ping(timeout=5.0) == 0
            assert replica.lag() == 0
            # Committed but unshipped: a remote replica only learns how far
            # behind it is from what the primary *advertises* -- the pong.
            store.insert_edges([(1, 2), (3, 4)])
            store.insert_edge(5, 6)
            assert replica.ping(timeout=5.0) == primary.logged_commit_index
            assert replica.lag() == primary.logged_commit_index
            primary.sync_and_pump()
            replica.wait_for(primary.commit_index, timeout=10.0)
            assert replica.lag() == 0
            assert replica.last_contact is not None
        finally:
            replica.close()
            server.close()
            primary.close()
            store.close()

    def test_ping_fails_after_server_death(self, tmp_path):
        store, primary, server = make_served_primary(tmp_path)
        replica = RemoteFollower(server.address,
                                 store=ShardedCuckooGraph(num_shards=2))
        try:
            server.close()
            with pytest.raises(ReplicationError):
                replica.ping(timeout=0.5)
        finally:
            replica.close()
            primary.close()
            store.close()


class TestLifecycle:
    def test_follower_close_detaches_server_side(self, tmp_path):
        store, primary, server = make_served_primary(tmp_path)
        replica = RemoteFollower(server.address,
                                 store=ShardedCuckooGraph(num_shards=2))
        try:
            assert len(primary.followers) == 1
            replica.close()
            deadline = time.monotonic() + 5.0
            while primary.followers and time.monotonic() < deadline:
                time.sleep(0.01)  # the goodbye frame crosses a real socket
            assert not primary.followers
            # The subscriber is gone before the next pump: no eviction path,
            # no error path, just a clean goodbye.
            store.insert_edge(1, 2)
            primary.sync_and_pump()
            assert primary.evictions == 0
        finally:
            server.close()
            primary.close()
            store.close()

    def test_server_death_wakes_blocked_barrier(self, tmp_path):
        """The close-notifies contract across the wire: a barrier blocked on
        a socket channel raises promptly when the server dies."""
        store, primary, server = make_served_primary(tmp_path)
        replica = RemoteFollower(server.address,
                                 store=ShardedCuckooGraph(num_shards=2))
        try:
            outcome = {}

            def blocked_reader():
                started = time.monotonic()
                try:
                    replica.wait_for(10_000, timeout=30.0)
                except ReplicationError as exc:
                    outcome["error"] = str(exc)
                outcome["elapsed"] = time.monotonic() - started

            reader = threading.Thread(target=blocked_reader)
            reader.start()
            time.sleep(0.1)
            server.close()
            reader.join(timeout=5.0)
            assert not reader.is_alive(), "barrier survived the server death"
            assert "detached" in outcome["error"]
            assert outcome["elapsed"] < 3.0, outcome
        finally:
            replica.close()
            primary.close()
            store.close()

    def test_dead_replica_is_evicted_and_rest_keep_shipping(self, tmp_path):
        """Socket flavor of broadcast isolation: hard-close one replica's
        socket, pump, and the survivor still gets every record."""
        store, primary, server = make_served_primary(tmp_path)
        victim = RemoteFollower(server.address,
                                store=ShardedCuckooGraph(num_shards=2))
        survivor = RemoteFollower(server.address,
                                  store=ShardedCuckooGraph(num_shards=2))
        try:
            # Kill the victim's socket without any goodbye (a crash).
            victim._channel._close()
            deadline = time.monotonic() + 10.0
            evicted = False
            while not evicted and time.monotonic() < deadline:
                store.insert_edge(int(time.monotonic() * 1000) % 997,
                                  int(time.monotonic() * 1000) % 991 + 1000)
                primary.sync_and_pump()  # must never raise
                evicted = len(primary.followers) == 1
                time.sleep(0.01)
            assert evicted, "dead socket replica was never evicted"
            survivor.wait_for(primary.commit_index, timeout=10.0)
            assert sorted(survivor.store.edges()) == sorted(store.edges())
        finally:
            victim.close()
            survivor.close()
            server.close()
            primary.close()
            store.close()

    def test_connect_to_nothing_raises(self, tmp_path):
        with pytest.raises(ReplicationError, match="cannot reach"):
            RemoteFollower(("127.0.0.1", 1), store=CuckooGraph(),
                           connect_timeout=0.5)
