"""Tests for the replication subsystem (repro.replicate)."""
