"""Regressions: the three channel-lifecycle bugs a real transport exposes.

All three stayed harmless as long as every follower lived in the primary's
process and channels only closed through ``Follower._disconnect``.  A
socket transport breaks that assumption -- a peer can die without any
orderly teardown -- and each bug becomes a hang, a lie, or a lost record:

* ``ReplicationChannel.close()`` never notified the registered listener,
  so a ``wait_for`` barrier blocked on a *notifying* channel slept out its
  full timeout when the transport dropped underneath it.  ``close()`` now
  wakes the listener in the base class, and ``wait_for`` re-checks
  ``closed`` after every wake.
* ``Primary._broadcast`` evicted a dead-channel follower with a bare
  ``_followers.remove``, leaving the follower a stale ``_primary``
  reference: its ``lag()`` kept measuring against a primary that no longer
  shipped to it, and its ``close()`` later detached from a primary that
  had already forgotten it.  Eviction now goes through the full
  ``detach()``.
* One failing ``channel.send()`` mid-broadcast propagated out of
  ``pump()`` with ``commit_index`` already advanced, aborting shipment to
  every follower later in fan-out order.  Send errors are now isolated
  per follower: the dead one is evicted, the rest keep receiving.
"""

from __future__ import annotations

import threading
import time

import pytest

from repro import CuckooGraph
from repro.core.errors import ReplicationError
from repro.persist import PersistentStore
from repro.replicate import Follower, Primary


def make_primary(tmp_path):
    store = PersistentStore(
        tmp_path / "primary",
        store=CuckooGraph(),
        own_store=True,
        sync_on_commit=True,
        compact_wal_bytes=None,
    )
    return store, Primary(store)


def attach_fresh(primary):
    follower = Follower(store=CuckooGraph())
    primary.attach(follower)
    return follower


class TestCloseNotifiesBlockedBarrier:
    def test_close_from_another_thread_wakes_wait_for_promptly(self, tmp_path):
        """A transport dying under a blocked barrier raises within a wake,
        not after the full barrier timeout."""
        store, primary = make_primary(tmp_path)
        follower = attach_fresh(primary)
        try:
            outcome = {}

            def blocked_reader():
                started = time.monotonic()
                try:
                    # Index 99 never arrives; only the close should end this.
                    follower.wait_for(99, timeout=30.0)
                except ReplicationError as exc:
                    outcome["error"] = str(exc)
                outcome["elapsed"] = time.monotonic() - started

            reader = threading.Thread(target=blocked_reader)
            reader.start()
            time.sleep(0.1)  # let the barrier actually block
            # The transport drops underneath the follower: no _disconnect,
            # no detach -- exactly what a socket reset looks like.
            follower._channel.close()
            reader.join(timeout=5.0)
            assert not reader.is_alive(), "barrier never woke after close()"
            assert "detached" in outcome["error"]
            # Well under the 30 s barrier timeout: the close itself woke it.
            assert outcome["elapsed"] < 2.0, outcome
        finally:
            follower.close()
            primary.close()
            store.close()

    def test_wait_for_rechecks_closed_even_without_notification(self, tmp_path):
        """A non-notifying channel still surfaces the close within one poll
        slice (the closed re-check runs after every wake, timed ones too)."""
        store, primary = make_primary(tmp_path)
        follower = attach_fresh(primary)
        try:
            channel = follower._channel
            channel.notifies_on_send = False
            channel.set_listener(lambda: None)  # silence arrival wake-ups
            channel.close()
            started = time.monotonic()
            with pytest.raises(ReplicationError, match="detached"):
                follower.wait_for(1, timeout=30.0)
            assert time.monotonic() - started < 2.0
        finally:
            follower.close()
            primary.close()
            store.close()


class TestDeadChannelEvictionFullyDisconnects:
    def test_evicted_follower_is_disconnected_not_orphaned(self, tmp_path):
        store, primary = make_primary(tmp_path)
        victim = attach_fresh(primary)
        survivor = attach_fresh(primary)
        try:
            # The victim's transport dies without any orderly teardown.
            victim._channel.close()
            store.insert_edge(1, 2)
            primary.sync_and_pump()

            assert victim not in primary.followers
            assert primary.evictions == 1
            # Full disconnect: no stale _primary reference, so lag() is the
            # honest detached 0 instead of measuring against a primary that
            # no longer ships here, and close() does not detach from a
            # primary that already forgot this follower.
            assert victim._primary is None
            assert victim._channel is None
            assert victim.lag() == 0
            victim.close()
            victim.close()  # idempotent even after the eviction

            # The survivor got the record the eviction interrupted nothing of.
            survivor.wait_for(primary.commit_index)
            assert survivor.store.has_edge(1, 2)
        finally:
            survivor.close()
            primary.close()
            store.close()


class TestBroadcastIsolatesSendErrors:
    def test_middle_follower_send_failure_does_not_abort_fanout(self, tmp_path):
        store, primary = make_primary(tmp_path)
        first = attach_fresh(primary)
        middle = attach_fresh(primary)
        last = attach_fresh(primary)
        try:
            # The middle channel fails on send (not closed -- closed is the
            # other eviction path): a socket whose peer reset mid-write.
            def dying_send(message):
                raise ReplicationError("connection reset by peer")

            middle._channel.send = dying_send
            store.insert_edge(3, 4)
            shipped = primary.sync_and_pump()  # must not raise
            assert shipped == 1
            assert primary.commit_index == 1

            # The dead replica was evicted (fully), the other two delivered.
            assert middle not in primary.followers
            assert middle._primary is None
            assert primary.evictions == 1
            first.wait_for(primary.commit_index)
            last.wait_for(primary.commit_index)
            assert first.store.has_edge(3, 4)
            assert last.store.has_edge(3, 4)
            assert first.commit_index == last.commit_index == 1
        finally:
            middle.close()
            first.close()
            last.close()
            primary.close()
            store.close()
