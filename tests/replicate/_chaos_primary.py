"""Subprocess driver for the chaos lane: a killable replication primary.

Run as ``python -m tests.replicate._chaos_primary <dir> <portfile> <seed>
<num_shards>`` (with ``src`` on ``PYTHONPATH`` and the repo root as cwd).
Serves a :class:`ReplicationServer` for a seeded op stream and paces
itself off stdin so the parent test controls exactly when it dies:

* ``CHUNK``  -- apply the next planned chunk, sync + pump, answer
  ``DONE <chunk> <commit_index>`` (a clean boundary the parent can probe
  byte-identically against its oracle);
* ``SPIN``   -- answer ``SPINNING`` and then commit continuously, never
  reading stdin again: the parent's ``kill -9`` lands mid-commit, which
  is the whole point;
* ``EXIT``   -- clean shutdown (used by the non-chaos control path).

The chunk plan is a module function so the parent replays the *same*
seeded schedule against its dict-of-sets oracle without any state passing
between the processes beyond the two integers on each ``DONE`` line.
"""

from __future__ import annotations

import os
import random
import sys

from repro import ShardedCuckooGraph
from repro.persist import PersistentStore
from repro.replicate import Primary, ReplicationServer

from tests.core.test_fuzz_differential import generate_ops


def plan_chunks(seed: int):
    """Deterministic chunking of the seeded op stream (shared with the test)."""
    ops = generate_ops(seed)
    rng = random.Random(seed * 104729 + 17)
    chunks = []
    position = 0
    while position < len(ops):
        size = rng.randrange(20, 90)
        chunks.append(ops[position:position + size])
        position += size
    return chunks


def apply_chunk(store, chunk) -> None:
    store.insert_edges([(u, v) for a, u, v in chunk if a == "insert"])
    store.delete_edges([(u, v) for a, u, v in chunk if a == "delete"])


def main(argv) -> int:
    base, portfile, seed, num_shards = \
        argv[0], argv[1], int(argv[2]), int(argv[3])
    store = PersistentStore(
        base, store=ShardedCuckooGraph(num_shards=num_shards),
        own_store=True, sync_on_commit=False, compact_wal_bytes=None)
    primary = Primary(store)
    server = ReplicationServer(primary)
    # Atomic publish: the parent polls for this file, so it must never see
    # a half-written address.
    host, port = server.address
    with open(portfile + ".tmp", "w") as handle:
        handle.write(f"{host} {port}\n")
    os.replace(portfile + ".tmp", portfile)

    chunks = plan_chunks(seed)
    applied = 0
    for line in sys.stdin:
        command = line.strip()
        if command == "CHUNK":
            if applied >= len(chunks):
                print(f"END {primary.commit_index}", flush=True)
                break
            apply_chunk(store, chunks[applied])
            applied += 1
            primary.sync_and_pump()
            print(f"DONE {applied - 1} {primary.commit_index}", flush=True)
        elif command == "SPIN":
            print("SPINNING", flush=True)
            while True:  # committing flat out until kill -9 lands
                if applied >= len(chunks):
                    applied = 0  # recycle the plan; only the WAL bytes matter
                apply_chunk(store, chunks[applied])
                applied += 1
                primary.sync_and_pump()
        elif command == "EXIT":
            break
    server.close()
    primary.close()
    store.close()
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
