"""Follower promotion and generation fencing.

The failover invariant: ``promote()`` turns a caught-up replica into a
standalone writable :class:`PersistentStore` whose first checkpoint is
stamped one generation past everything the old primary ever wrote.  The
byte-level fencing checks mirror ``tests/persist/test_crash_recovery.py``:
drop the deposed primary's WAL segments into the replica's directory and
prove recovery *rejects* (skips and truncates) them instead of replaying a
dead leader's history over the new timeline.
"""

import shutil

import pytest

from repro import CuckooGraph, ShardedCuckooGraph
from repro.core.errors import ReplicationError
from repro.persist import (
    WAL_HEADER_SIZE,
    PersistentStore,
    read_wal_records,
    recover,
)
from repro.replicate import Follower, Primary


def build_pair(tmp_path, num_shards=2):
    store = PersistentStore(
        tmp_path / "primary",
        store=ShardedCuckooGraph(num_shards=num_shards),
        own_store=True,
        compact_wal_bytes=None,
    )
    primary = Primary(store)
    follower = Follower(store=ShardedCuckooGraph(num_shards=num_shards))
    primary.attach(follower)
    return store, primary, follower


def test_promoted_follower_is_a_standalone_writable_store(tmp_path):
    store, primary, follower = build_pair(tmp_path)
    store.insert_edges([(u, u + 1) for u in range(15)])
    primary.pump()
    follower.wait_for(primary.commit_index)
    state = sorted(store.edges())

    promoted = follower.promote(tmp_path / "replica")
    assert promoted.generation == store.generation + 1
    assert sorted(promoted.edges()) == state
    # Writable, logging, recoverable.
    assert promoted.insert_edge(900, 901)
    promoted.close()
    reopened = recover(tmp_path / "replica",
                       store=ShardedCuckooGraph(num_shards=2))
    assert sorted(reopened.edges()) == sorted(state + [(900, 901)])
    reopened.close()
    primary.close()
    store.close()


def test_promotion_detaches_and_is_terminal(tmp_path):
    store, primary, follower = build_pair(tmp_path)
    store.insert_edge(1, 2)
    primary.pump()
    follower.wait_for(primary.commit_index)
    promoted = follower.promote(tmp_path / "replica")

    assert follower.promoted
    assert follower not in primary.followers
    with pytest.raises(ReplicationError, match="promoted"):
        follower.poll()
    with pytest.raises(ReplicationError, match="promoted"):
        follower.wait_for(1)
    # close() after promotion must not close the store out from under the
    # promoted wrapper.
    follower.close()
    assert promoted.has_edge(1, 2)
    promoted.close()
    primary.close()
    store.close()


def test_stale_primary_segments_are_fenced_out_of_the_replica_dir(tmp_path):
    """Byte-level fencing: a deposed primary's WAL is provably rejected."""
    store, primary, follower = build_pair(tmp_path)
    store.insert_edges([(u, u + 1) for u in range(10)])
    primary.pump()
    follower.wait_for(primary.commit_index)

    promoted = follower.promote(tmp_path / "replica")
    promoted.insert_edge(700, 701)  # the new timeline
    promoted.checkpoint()  # fold it: the segments the attack overwrites are empty
    promoted_state = sorted(promoted.edges())
    promoted.close()

    # The deposed primary keeps accepting writes (split brain) ...
    store.insert_edges([(u, 999) for u in range(5)])
    store.close()
    primary.close()

    # ... and its segments are smuggled into the replica's directory, as a
    # misconfigured restart script might.  Their header generation (the old
    # primary never checkpointed: generation 0) is below the promoted
    # snapshot's (1), so recovery must skip AND truncate them.
    for index in range(2):
        name = f"wal-{index:03d}.bin"
        generation, records, _ = read_wal_records(tmp_path / "primary" / name)
        assert generation == 0 and records, "stale segment should carry records"
        shutil.copy(tmp_path / "primary" / name, tmp_path / "replica" / name)

    recovered = recover(tmp_path / "replica",
                        store=ShardedCuckooGraph(num_shards=2))
    # Not one of the stale records was replayed: no (u, 999) edges, no
    # re-raised history -- and the new-timeline write survived.
    assert sorted(recovered.edges()) == promoted_state
    assert recovered.last_recovery["wal_ops"] == 0
    assert not any(v == 999 for _, v in recovered.edges())
    recovered.close()

    # Byte-level: the stale segments were truncated to nothing (the next
    # append re-stamps them with the promoted generation).
    for index in range(2):
        assert (tmp_path / "replica" / f"wal-{index:03d}.bin").stat().st_size == 0


def test_fencing_holds_after_the_old_primary_compacts_too(tmp_path):
    """Even a checkpointing old primary stays behind the promoted generation.

    Promotion bumps to (observed generation + 1); the deposed primary's
    *next* checkpoint reaches the same number, so only segments written
    before the promotion race are provably stale.  This pins the guarantee
    actually made: every record the old primary wrote *before* the replica
    was promoted is fenced out.
    """
    store, primary, follower = build_pair(tmp_path, num_shards=1)
    store.insert_edge(1, 2)
    store.checkpoint()        # old primary at generation 1
    store.insert_edge(3, 4)   # post-checkpoint record, generation-1 segment
    primary.pump()
    follower.wait_for(primary.commit_index)
    assert follower.generation == 1

    promoted = follower.promote(tmp_path / "replica")
    assert promoted.generation == 2
    promoted_state = sorted(promoted.edges())
    promoted.close()
    primary.close()

    # Smuggle the old primary's generation-1 segment in: still stale.
    store.insert_edge(5, 6)
    store.close()
    shutil.copy(tmp_path / "primary" / "wal-000.bin",
                tmp_path / "replica" / "wal-000.bin")
    recovered = recover(tmp_path / "replica", store=CuckooGraph())
    assert sorted(recovered.edges()) == promoted_state
    assert not recovered.has_edge(5, 6)
    recovered.close()


def test_promote_with_a_queued_generation_bump_still_fences(tmp_path):
    """Regression: promote() must drain the channel before picking its fence.

    A checkpoint queues a GenerationBump the follower has not applied yet;
    promoting at that instant must still stamp a generation *past* the
    deposed primary's current one, or a stale segment of the same
    generation would pass recovery's fence and replay the dead leader's
    writes over the new timeline.
    """
    store, primary, follower = build_pair(tmp_path, num_shards=1)
    store.insert_edge(1, 2)
    primary.pump()
    follower.wait_for(primary.commit_index)
    store.checkpoint()   # primary at generation 1 now
    primary.pump()       # the bump is queued on the follower's channel ...
    promoted = follower.promote(tmp_path / "replica")  # ... not yet applied
    assert promoted.generation == store.generation + 1 == 2
    promoted.checkpoint()
    promoted_state = sorted(promoted.edges())
    promoted.close()

    # The deposed primary writes at its live generation (1); its segment
    # must still be provably stale in the replica directory.
    store.insert_edge(7, 8)
    primary.close()
    store.close()
    shutil.copy(tmp_path / "primary" / "wal-000.bin",
                tmp_path / "replica" / "wal-000.bin")
    recovered = recover(tmp_path / "replica", store=CuckooGraph())
    assert sorted(recovered.edges()) == promoted_state
    assert not recovered.has_edge(7, 8), "same-generation stale segment leaked"
    recovered.close()


def test_promoted_ephemeral_follower(tmp_path):
    store, primary, follower = build_pair(tmp_path)
    store.insert_edge(1, 2)
    primary.pump()
    follower.wait_for(primary.commit_index)
    promoted = follower.promote()  # path=None: ephemeral directory
    assert promoted.has_edge(1, 2)
    assert promoted.insert_edge(2, 3)
    assert promoted.segment_paths[0].exists()
    promoted.close()
    assert not promoted.path.exists()  # temp dir removed on close
    primary.close()
    store.close()


def test_promoted_segments_are_stamped_with_the_bumped_generation(tmp_path):
    store, primary, follower = build_pair(tmp_path, num_shards=1)
    store.insert_edge(1, 2)
    primary.pump()
    follower.wait_for(primary.commit_index)
    promoted = follower.promote(tmp_path / "replica")
    promoted.insert_edge(10, 11)
    promoted.close()

    generation, records, _ = read_wal_records(tmp_path / "replica" / "wal-000.bin")
    assert generation == 1  # bumped past the primary's 0
    assert [ops for ops, _ in records] == [[("insert", 10, 11)]]
    # And the fresh segment starts right after its header: history lives in
    # the promotion snapshot, not in replayed records.
    assert records[0][1] > WAL_HEADER_SIZE
    primary.close()
    store.close()
