"""Multi-process chaos lane: ``kill -9`` the primary, elect, verify, fence.

The strongest claim the replication stack makes is that none of it depends
on a clean shutdown.  This lane earns that claim with a real process
boundary: the primary runs in a subprocess (``_chaos_primary``), serves
two :class:`RemoteFollower` replicas over TCP, is murdered with SIGKILL
*while committing*, and then

* every clean chunk boundary before the murder was probed byte-identical
  against the dict-of-sets oracle on both replicas;
* the lease expires, the lowest-id follower wins the election, and the
  promoted store equals ``recover(copy_of_dead_primary_dir,
  upto=winner_position)`` **exactly** -- the promoted state is a true
  point on the dead primary's timeline, torn tail and all;
* the new primary serves over TCP and a late rejoiner converges onto the
  promoted timeline;
* the dead primary's WAL segments, smuggled into the promoted directory,
  are fenced: recovery replays zero of their operations.
"""

from __future__ import annotations

import os
import shutil
import signal
import subprocess
import sys
import time
from pathlib import Path

from repro import ShardedCuckooGraph
from repro.persist import read_wal_records, recover
from repro.replicate import FailoverManager, RemoteFollower

from ..core.test_fuzz_differential import Oracle, assert_final_state
from ._chaos_primary import plan_chunks
from .test_fuzz_replication import copy_dir

REPO_ROOT = Path(__file__).resolve().parents[2]
NUM_SHARDS = 3

#: Clean chunk boundaries probed against the oracle before the murder.
DRIVEN_CHUNKS = 6


def spawn_primary(tmp_path, seed):
    """Start the driver subprocess; return ``(proc, server_address)``."""
    portfile = tmp_path / "port"
    env = dict(os.environ)
    env["PYTHONPATH"] = os.pathsep.join(
        [str(REPO_ROOT / "src"), str(REPO_ROOT)]
        + ([env["PYTHONPATH"]] if env.get("PYTHONPATH") else []))
    proc = subprocess.Popen(
        [sys.executable, "-m", "tests.replicate._chaos_primary",
         str(tmp_path / "primary"), str(portfile), str(seed),
         str(NUM_SHARDS)],
        stdin=subprocess.PIPE, stdout=subprocess.PIPE, text=True, bufsize=1,
        cwd=REPO_ROOT, env=env)
    deadline = time.monotonic() + 30.0
    while not portfile.exists():
        assert proc.poll() is None, "primary subprocess died during startup"
        assert time.monotonic() < deadline, "primary never published its port"
        time.sleep(0.02)
    host, port = portfile.read_text().split()
    return proc, (host, int(port))


def test_chaos_kill9_failover_serves_byte_identical_state(fuzz_seed, tmp_path):
    chunks = plan_chunks(fuzz_seed)
    context = f"seed={fuzz_seed} chaos"
    proc, address = spawn_primary(tmp_path, fuzz_seed)
    followers = {
        node_id: RemoteFollower(
            address, store=ShardedCuckooGraph(num_shards=NUM_SHARDS),
            node_id=node_id)
        for node_id in (1, 2)
    }
    manager = FailoverManager(lease_s=0.5)
    for node_id, follower in followers.items():
        manager.register(node_id, follower)
    oracle = Oracle()
    result = None
    try:
        # ---- clean boundaries: both replicas == oracle ---------------- #
        for index in range(min(DRIVEN_CHUNKS, len(chunks))):
            proc.stdin.write("CHUNK\n")
            proc.stdin.flush()
            reply = proc.stdout.readline().split()
            assert reply and reply[0] == "DONE" and int(reply[1]) == index, \
                f"{context}: unexpected driver reply {reply}"
            commit_index = int(reply[2])
            # Mirror the driver's apply order: inserts, then deletes.
            for action, u, v in chunks[index]:
                if action == "insert":
                    oracle.insert(u, v)
            for action, u, v in chunks[index]:
                if action == "delete":
                    oracle.delete(u, v)
            for node_id, follower in followers.items():
                follower.wait_for(commit_index, timeout=30.0)
                assert follower.commit_index == commit_index, context
                assert_final_state(
                    follower.store, oracle,
                    f"{context} chunk={index} node={node_id}")
        assert all(manager.heartbeat().values()), context

        # ---- kill -9 mid-commit --------------------------------------- #
        proc.stdin.write("SPIN\n")
        proc.stdin.flush()
        assert proc.stdout.readline().strip() == "SPINNING", context
        time.sleep(0.25)  # let it pile up commits; the kill lands mid-stream
        os.kill(proc.pid, signal.SIGKILL)
        proc.wait(timeout=10.0)

        # ---- lease expiry -> election --------------------------------- #
        deadline = time.monotonic() + 30.0
        while result is None and time.monotonic() < deadline:
            result = manager.maybe_failover(
                path=tmp_path / "promoted", rewire=False,
                listen=("127.0.0.1", 0))
            time.sleep(0.05)
        assert result is not None, f"{context}: election never fired"
        assert result.node_id == 1, context  # lowest live id wins
        assert manager.failovers == 1

        # ---- byte identity vs the dead primary's own timeline --------- #
        # The winner's position is an exact per-segment cut; rewinding a
        # copy of the murdered directory to it must reproduce the promoted
        # store edge-for-edge (the SIGKILL's torn tail lies beyond the cut).
        workdir = copy_dir(tmp_path / "primary", tmp_path / "pitr")
        rewound = recover(workdir,
                          store=ShardedCuckooGraph(num_shards=NUM_SHARDS),
                          upto=result.position)
        assert sorted(rewound.edges()) == sorted(result.store.edges()), \
            f"{context} upto={result.position}"
        rewound.close()

        # ---- the new primary serves; a rejoiner converges ------------- #
        result.store.insert_edge(500_000, 500_001)
        result.primary.sync_and_pump()
        rejoined = RemoteFollower(
            result.server.address,
            store=ShardedCuckooGraph(num_shards=NUM_SHARDS), node_id=3)
        assert sorted(rejoined.store.edges()) == \
            sorted(result.store.edges()), context
        rejoined.close()

        # ---- the dead primary is fenced on rejoin --------------------- #
        result.store.checkpoint()  # promoted timeline folded; segments empty
        promoted_state = sorted(result.store.edges())
        result.server.close()
        result.primary.close()
        result.store.close()
        smuggled = 0
        for segment in sorted((tmp_path / "primary").glob("wal-*.bin")):
            _, records, _ = read_wal_records(segment)
            if records:
                shutil.copy(segment, tmp_path / "promoted" / segment.name)
                smuggled += 1
        assert smuggled > 0, f"{context}: nothing to fence"
        fenced = recover(tmp_path / "promoted",
                         store=ShardedCuckooGraph(num_shards=NUM_SHARDS))
        assert sorted(fenced.edges()) == promoted_state, f"{context} fencing"
        assert fenced.last_recovery["wal_ops"] == 0, f"{context} fencing"
        fenced.close()
    finally:
        if proc.poll() is None:
            proc.kill()
            proc.wait(timeout=10.0)
        for follower in followers.values():
            if not follower.closed and not follower.promoted:
                follower.close()
        if result is not None and result.server is not None \
                and not result.server.closed:
            result.server.close()
