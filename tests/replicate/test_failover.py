"""Failover policy: heartbeats feed a lease, the lease gates an election.

The promotion *mechanism* (generation fencing) is pinned by the PR 5
byte-level fence tests and the replication fuzz lanes; these tests pin the
*policy* around it: one reachable member vetoes an election, total
unreachability for a full lease triggers one, the lowest live id wins,
losers rewire onto the new primary, and the deposed primary's directory is
still fenced out afterwards.
"""

from __future__ import annotations

import shutil
import time

import pytest

from repro import CuckooGraph, ShardedCuckooGraph
from repro.core.errors import ReplicationError
from repro.persist import PersistentStore, read_wal_records, recover
from repro.replicate import (
    FailoverManager,
    Follower,
    Primary,
    RemoteFollower,
    ReplicationServer,
)


class FakeClock:
    """Injectable monotonic clock: tests expire leases without sleeping."""

    def __init__(self):
        self.now = 1000.0

    def __call__(self) -> float:
        return self.now

    def advance(self, seconds: float) -> None:
        self.now += seconds


def make_cluster(tmp_path, *, followers=2, clock=None, lease_s=1.0):
    store = PersistentStore(tmp_path / "primary", store=CuckooGraph(),
                            own_store=True, sync_on_commit=True,
                            compact_wal_bytes=None)
    primary = Primary(store)
    manager = FailoverManager(lease_s=lease_s, clock=clock or time.monotonic)
    pool = []
    for node_id in range(1, followers + 1):
        follower = Follower(store=CuckooGraph())
        primary.attach(follower)
        manager.register(node_id, follower)
        pool.append(follower)
    return store, primary, manager, pool


class TestLease:
    def test_healthy_heartbeats_hold_the_lease(self, tmp_path):
        clock = FakeClock()
        store, primary, manager, _ = make_cluster(tmp_path, clock=clock)
        try:
            assert manager.heartbeat() == {1: True, 2: True}
            clock.advance(10.0)  # way past the lease without a heartbeat...
            manager.heartbeat()  # ...but the primary is still reachable
            assert not manager.lease_expired
            assert manager.maybe_failover() is None
            assert manager.failovers == 0
        finally:
            primary.close()
            store.close()

    def test_one_reachable_member_vetoes_the_election(self, tmp_path):
        clock = FakeClock()
        store, primary, manager, pool = make_cluster(tmp_path, clock=clock)
        try:
            primary.detach(pool[0])  # node 1 lost its primary...
            clock.advance(2.0)
            results = manager.heartbeat()
            assert results == {1: False, 2: True}  # ...but node 2 still sees it
            assert not manager.lease_expired
            assert manager.maybe_failover() is None
        finally:
            primary.close()
            store.close()

    def test_total_unreachability_expires_the_lease(self, tmp_path):
        clock = FakeClock()
        store, primary, manager, _ = make_cluster(tmp_path, clock=clock)
        try:
            store.insert_edge(1, 2)
            primary.sync_and_pump()
            primary.close()  # the primary dies; every probe now fails
            clock.advance(1.5)
            assert manager.heartbeat() == {1: False, 2: False}
            assert manager.lease_expired
            assert manager.unreachable_for() > manager.lease_s
        finally:
            store.close()


class TestElection:
    def test_lowest_live_id_wins(self, tmp_path):
        clock = FakeClock()
        store, primary, manager, pool = make_cluster(
            tmp_path, followers=3, clock=clock)
        try:
            store.insert_edges([(1, 2), (3, 4)])
            primary.sync_and_pump()
            for follower in pool:
                follower.wait_for(primary.commit_index)
            pool[0].close()  # node 1 is dead: it cannot win
            primary.close()
            clock.advance(2.0)
            result = manager.maybe_failover(path=tmp_path / "promoted",
                                            rewire=False)
            assert result is not None
            assert result.node_id == 2
            assert manager.failovers == 1
            assert sorted(result.store.edges()) == [(1, 2), (3, 4)]
            # The loser (node 3) was closed out of the old topology.
            assert pool[2].closed
            result.store.close()
        finally:
            store.close()

    def test_no_live_follower_refuses(self, tmp_path):
        clock = FakeClock()
        store, primary, manager, pool = make_cluster(tmp_path, clock=clock)
        try:
            for follower in pool:
                follower.close()
            primary.close()
            clock.advance(2.0)
            with pytest.raises(ReplicationError, match="no live follower"):
                manager.failover()
        finally:
            store.close()

    def test_winner_drains_its_queue_before_promoting(self, tmp_path):
        """Everything shipped before the crash is in the promoted store,
        even if the winner had not polled it yet.

        The crash is simulated with a dead-switch probe (heartbeats fail,
        nothing else happens): a real crash never runs ``Primary.close``,
        and the shipped-but-unpolled messages must survive it.
        """
        clock = FakeClock()
        store = PersistentStore(tmp_path / "primary", store=CuckooGraph(),
                                own_store=True, sync_on_commit=True,
                                compact_wal_bytes=None)
        primary = Primary(store)
        manager = FailoverManager(lease_s=1.0, clock=clock)
        primary_dead = []

        def probe():
            if primary_dead:
                raise ReplicationError("unreachable")

        for node_id in (1, 2):
            follower = Follower(store=CuckooGraph())
            primary.attach(follower)
            manager.register(node_id, follower, probe=probe)
        try:
            store.insert_edges([(1, 2), (3, 4), (5, 6)])
            primary.sync_and_pump()  # shipped into the queues, never polled
            primary_dead.append(True)
            clock.advance(2.0)
            result = manager.maybe_failover(rewire=False)
            assert result is not None
            assert sorted(result.store.edges()) == [(1, 2), (3, 4), (5, 6)]
            assert result.position.offsets[0] > 0
            result.store.close()
        finally:
            primary.close()
            store.close()


class TestRewireAndFencing:
    def test_rewire_respawns_losers_on_the_new_primary(self, tmp_path):
        clock = FakeClock()
        store = PersistentStore(tmp_path / "primary", store=CuckooGraph(),
                                own_store=True, sync_on_commit=True,
                                compact_wal_bytes=None)
        primary = Primary(store)
        manager = FailoverManager(lease_s=1.0, clock=clock)

        def respawn(new_primary, server):
            fresh = Follower(store=CuckooGraph())
            new_primary.attach(fresh)
            return fresh

        pool = []
        for node_id in (1, 2):
            follower = Follower(store=CuckooGraph())
            primary.attach(follower)
            manager.register(node_id, follower, respawn=respawn)
            pool.append(follower)
        try:
            store.insert_edge(1, 2)
            primary.sync_and_pump()
            for follower in pool:
                follower.wait_for(primary.commit_index)
            primary.close()
            clock.advance(2.0)
            result = manager.maybe_failover(path=tmp_path / "promoted")
            assert result is not None and result.node_id == 1
            assert result.primary is not None
            assert set(result.followers) == {2}
            assert manager.members == (2,)

            # The rewired topology replicates writes to the new primary.
            result.store.insert_edge(7, 8)
            result.primary.sync_and_pump()
            replacement = result.followers[2]
            replacement.wait_for(result.primary.commit_index)
            assert replacement.store.has_edge(7, 8)
            assert replacement.store.has_edge(1, 2)
            # And the manager's fresh lease holds against the new primary.
            assert manager.heartbeat() == {2: True}
            assert not manager.lease_expired

            replacement.close()
            result.primary.close()
            result.store.close()
        finally:
            store.close()

    def test_deposed_primary_is_fenced_after_failover(self, tmp_path):
        clock = FakeClock()
        store, primary, manager, pool = make_cluster(tmp_path, clock=clock)
        try:
            store.insert_edges([(1, 2), (3, 4)])
            primary.sync_and_pump()
            primary.close()
            clock.advance(2.0)
            result = manager.failover(path=tmp_path / "promoted", rewire=False)
            result.store.insert_edge(9, 10)
            result.store.checkpoint()
            promoted_state = sorted(result.store.edges())
            result.store.close()

            # The deposed primary limps back and keeps writing its own WAL,
            # then its segments are smuggled into the promoted directory:
            # recovery must replay none of them (the generation fence).
            store.insert_edges([(100, 101), (102, 103)])
            store.sync()
            store.close()
            for segment in sorted((tmp_path / "primary").glob("wal-*.bin")):
                _, records, _ = read_wal_records(segment)
                if records:
                    shutil.copy(segment,
                                tmp_path / "promoted" / segment.name)
            fenced = recover(tmp_path / "promoted", store=CuckooGraph())
            assert sorted(fenced.edges()) == promoted_state
            assert fenced.last_recovery["wal_ops"] == 0
            assert not fenced.has_edge(100, 101)
            fenced.close()
        finally:
            if not store.closed:
                store.close()


class TestNetworkedFailover:
    def test_remote_cluster_elects_and_serves_over_tcp(self, tmp_path):
        """The whole loop over real sockets: heartbeats through the
        replication connections, election on silence, the winner serving a
        new TCP endpoint, and a fresh follower attaching to it."""
        store = PersistentStore(tmp_path / "primary",
                                store=ShardedCuckooGraph(num_shards=2),
                                own_store=True, sync_on_commit=True,
                                compact_wal_bytes=None)
        primary = Primary(store)
        server = ReplicationServer(primary)
        manager = FailoverManager(lease_s=0.4)
        followers = {
            node_id: RemoteFollower(server.address,
                                    store=ShardedCuckooGraph(num_shards=2),
                                    node_id=node_id)
            for node_id in (1, 2)
        }
        for node_id, follower in followers.items():
            manager.register(node_id, follower)
        try:
            store.insert_edges([(1, 2), (3, 4)])
            primary.sync_and_pump()
            for follower in followers.values():
                follower.wait_for(primary.commit_index, timeout=10.0)
            assert all(manager.heartbeat().values())

            # The primary's whole process "dies": server, tailer, store.
            server.close()
            primary.close()
            store.close()

            result = None
            deadline = time.monotonic() + 10.0
            while result is None and time.monotonic() < deadline:
                result = manager.maybe_failover(
                    path=tmp_path / "promoted", rewire=False,
                    listen=("127.0.0.1", 0))
                time.sleep(0.05)
            assert result is not None, "election never fired"
            assert result.node_id == 1
            assert result.server is not None
            assert sorted(result.store.edges()) == [(1, 2), (3, 4)]

            # The new primary serves: writes replicate to a fresh attach.
            result.store.insert_edge(5, 6)
            result.primary.sync_and_pump()
            rejoined = RemoteFollower(result.server.address,
                                      store=ShardedCuckooGraph(num_shards=2),
                                      node_id=9)
            assert sorted(rejoined.store.edges()) == [(1, 2), (3, 4), (5, 6)]
            rejoined.close()
            followers[2].close()
            result.server.close()
            result.primary.close()
            result.store.close()
        finally:
            for follower in followers.values():
                if not follower.closed and not follower.promoted:
                    follower.close()
