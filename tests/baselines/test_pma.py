"""Tests for the Packed Memory Array substrate."""

import random

import pytest
from hypothesis import given, settings, strategies as st

from repro.baselines import PackedMemoryArray


class TestBasics:
    def test_insert_keeps_sorted_order(self):
        pma = PackedMemoryArray()
        for value in [5, 1, 9, 3, 7]:
            assert pma.insert(value) is True
        assert pma.items() == [1, 3, 5, 7, 9]

    def test_duplicate_insert_rejected(self):
        pma = PackedMemoryArray()
        pma.insert(4)
        assert pma.insert(4) is False
        assert len(pma) == 1

    def test_contains_and_delete(self):
        pma = PackedMemoryArray()
        pma.insert(10)
        assert 10 in pma
        assert pma.delete(10) is True
        assert 10 not in pma
        assert pma.delete(10) is False

    def test_range_query(self):
        pma = PackedMemoryArray()
        for value in range(0, 100, 5):
            pma.insert(value)
        assert list(pma.range(10, 31)) == [10, 15, 20, 25, 30]

    def test_invalid_segment_capacity(self):
        with pytest.raises(ValueError):
            PackedMemoryArray(segment_capacity=3)

    def test_modelled_bytes_counts_gaps(self):
        pma = PackedMemoryArray(segment_capacity=8)
        pma.insert(1)
        assert pma.modelled_bytes(8) == pma.capacity * 8
        assert pma.capacity >= 8


class TestGrowthAndDensity:
    def test_capacity_grows_with_inserts(self):
        pma = PackedMemoryArray(segment_capacity=8)
        for value in range(200):
            pma.insert(value)
        assert pma.capacity >= 200
        assert pma.items() == list(range(200))

    def test_density_stays_in_root_bounds_after_bulk_insert(self):
        pma = PackedMemoryArray()
        rng = random.Random(3)
        values = rng.sample(range(100000), 1000)
        for value in values:
            pma.insert(value)
        assert pma.items() == sorted(values)
        assert pma.density <= 0.95

    def test_deletions_then_reinsertions(self):
        pma = PackedMemoryArray()
        values = list(range(300))
        for value in values:
            pma.insert(value)
        for value in values[:250]:
            assert pma.delete(value)
        assert pma.items() == values[250:]
        for value in values[:50]:
            assert pma.insert(value)
        assert pma.items() == sorted(values[:50] + values[250:])


@settings(max_examples=30, deadline=None)
@given(st.lists(st.integers(min_value=0, max_value=10_000), max_size=300))
def test_pma_behaves_like_sorted_set(values):
    """Property: the PMA is observationally a sorted set."""
    pma = PackedMemoryArray()
    reference: set[int] = set()
    for value in values:
        assert pma.insert(value) is (value not in reference)
        reference.add(value)
    assert pma.items() == sorted(reference)
    for value in list(reference)[::2]:
        assert pma.delete(value)
        reference.discard(value)
    assert pma.items() == sorted(reference)
