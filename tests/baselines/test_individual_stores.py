"""Scheme-specific behaviour of the baseline stores.

The cross-scheme contract is covered by ``test_store_contract``; these tests
pin down the structural behaviours that make each baseline *that* baseline --
CSR rebuilds, LiveGraph's append-only log and compaction, Sortledton's block
splits, WBI's shortest-list insertion and row sweeps, Spruce's vEB index, and
the access-model accounting the throughput figures rely on.
"""

import pytest

from repro.baselines import (
    AdjacencyListGraph,
    CSRGraph,
    LiveGraphStore,
    PCSRGraph,
    SortledtonStore,
    SpruceStore,
    WindBellIndex,
)


class TestCSR:
    def test_from_edges_builds_static_csr(self):
        graph = CSRGraph.from_edges([(1, 2), (1, 3), (2, 3)])
        assert sorted(graph.successors(1)) == [2, 3]
        assert graph.num_edges == 3

    def test_updates_trigger_rebuilds(self):
        graph = CSRGraph(rebuild_threshold=1)
        graph.insert_edge(1, 2)
        graph.insert_edge(1, 3)
        assert graph.rebuild_count >= 2
        assert sorted(graph.successors(1)) == [2, 3]

    def test_batched_rebuilds(self):
        graph = CSRGraph(rebuild_threshold=100)
        for v in range(50):
            graph.insert_edge(0, v)
        assert graph.rebuild_count == 0          # still buffered in the delta
        assert sorted(graph.successors(0)) == list(range(50))
        for v in range(50, 150):
            graph.insert_edge(0, v)
        assert graph.rebuild_count >= 1

    def test_delete_of_buffered_and_rebuilt_edges(self):
        graph = CSRGraph(rebuild_threshold=4)
        for v in range(8):
            graph.insert_edge(0, v)
        assert graph.delete_edge(0, 0)
        assert graph.delete_edge(0, 7)
        assert sorted(graph.successors(0)) == [1, 2, 3, 4, 5, 6]

    def test_invalid_threshold(self):
        with pytest.raises(ValueError):
            CSRGraph(rebuild_threshold=0)


class TestPCSR:
    def test_successors_are_a_pma_range_scan(self):
        graph = PCSRGraph()
        for v in (5, 1, 9):
            graph.insert_edge(3, v)
        graph.insert_edge(4, 2)
        assert graph.successors(3) == [1, 5, 9]   # sorted by the PMA
        assert graph.successors(4) == [2]

    def test_degree_tracking(self):
        graph = PCSRGraph()
        for v in range(10):
            graph.insert_edge(1, v)
        assert graph.out_degree(1) == 10
        graph.delete_edge(1, 0)
        assert graph.out_degree(1) == 9

    def test_memory_includes_pma_gaps(self):
        graph = PCSRGraph()
        for v in range(20):
            graph.insert_edge(1, v)
        assert graph.memory_bytes() >= graph.pma.capacity * 16


class TestLiveGraph:
    def test_delete_is_a_log_append(self):
        graph = LiveGraphStore()
        graph.insert_edge(1, 2)
        graph.delete_edge(1, 2)
        assert not graph.has_edge(1, 2)
        # Re-inserting after a logged delete works (newest entry wins).
        graph.insert_edge(1, 2)
        assert graph.has_edge(1, 2)

    def test_compaction_drops_dead_entries(self):
        graph = LiveGraphStore()
        for v in range(6):
            graph.insert_edge(0, v)
            graph.delete_edge(0, v)
        graph.insert_edge(0, 99)
        graph.compact_all()
        assert graph.successors(0) == [99]
        assert graph.num_edges == 1

    def test_memory_grows_with_block_capacity(self):
        small, large = LiveGraphStore(), LiveGraphStore()
        small.insert_edge(0, 1)
        for v in range(200):
            large.insert_edge(0, v)
        assert large.memory_bytes() > small.memory_bytes()


class TestSortledton:
    def test_blocks_split_beyond_capacity(self):
        graph = SortledtonStore()
        for v in range(200):
            graph.insert_edge(0, v)
        adjacency = graph._index[0]
        assert len(adjacency.blocks) > 1
        assert graph.successors(0) == list(range(200))  # stays globally sorted

    def test_successors_sorted(self):
        graph = SortledtonStore()
        for v in (9, 1, 5, 3):
            graph.insert_edge(0, v)
        assert graph.successors(0) == [1, 3, 5, 9]


class TestWBI:
    def test_shortest_list_insertion_balances_buckets(self):
        graph = WindBellIndex(matrix_size=4, num_hashes=2)
        for u in range(40):
            for v in range(5):
                graph.insert_edge(u, v)
        profile = graph.bucket_load_profile()
        assert profile["max"] <= 200
        assert profile["occupied_buckets"] > 1

    def test_invalid_parameters(self):
        with pytest.raises(ValueError):
            WindBellIndex(matrix_size=0)
        with pytest.raises(ValueError):
            WindBellIndex(num_hashes=0)

    def test_successor_sweep_touches_many_buckets(self):
        graph = WindBellIndex(matrix_size=8)
        for v in range(10):
            graph.insert_edge(1, v)
        graph.accesses = 0
        graph.successors(1)
        assert graph.accesses >= graph.matrix_size  # a whole row per hash


class TestSpruce:
    def test_identifier_split_indexes_large_ids(self):
        graph = SpruceStore()
        wide_id = (7 << 32) | (3 << 16) | 5
        graph.insert_edge(wide_id, 1)
        assert graph.has_edge(wide_id, 1)
        assert list(graph.source_nodes()) == [wide_id]

    def test_index_blocks_cleaned_up_on_delete(self):
        graph = SpruceStore()
        graph.insert_edge(1, 2)
        graph.delete_edge(1, 2)
        assert graph.memory_bytes() == 0
        assert not graph.has_node(1)

    def test_sorted_neighbour_vector(self):
        graph = SpruceStore()
        for v in (9, 2, 7):
            graph.insert_edge(0, v)
        assert graph.successors(0) == [2, 7, 9]


class TestAccessModel:
    """The modelled memory-access counters behind Figures 6-8."""

    @pytest.mark.parametrize(
        "factory",
        [AdjacencyListGraph, LiveGraphStore, SortledtonStore, SpruceStore,
         lambda: WindBellIndex(matrix_size=8)],
    )
    def test_operations_increment_accesses(self, factory):
        store = factory()
        store.insert_edge(1, 2)
        after_insert = store.accesses
        store.has_edge(1, 2)
        after_query = store.accesses
        store.delete_edge(1, 2)
        assert 0 < after_insert < after_query < store.accesses

    def test_adjacency_query_cost_grows_with_degree(self):
        store = AdjacencyListGraph()
        for v in range(200):
            store.insert_edge(0, v)
        store.accesses = 0
        store.has_edge(0, 199)
        high_degree_cost = store.accesses
        store.accesses = 0
        store.has_edge(0, 0)
        assert high_degree_cost > store.accesses

    def test_reset_accesses(self):
        store = SpruceStore()
        store.insert_edge(1, 2)
        store.reset_accesses()
        assert store.accesses == 0
