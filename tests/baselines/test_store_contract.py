"""Contract tests: every store implementation against the reference model.

These are the cross-scheme guarantees the benchmark harness relies on: all
stores agree on the semantics of insert / query / delete / successors, which
is what makes the paper's scheme-versus-scheme comparisons meaningful.
"""

import random
from collections import defaultdict

import pytest
from hypothesis import given, settings, strategies as st

from repro.interfaces import DynamicGraphStore

from ..conftest import ALL_STORE_FACTORIES


@pytest.fixture(params=sorted(ALL_STORE_FACTORIES), ids=sorted(ALL_STORE_FACTORIES))
def store(request) -> DynamicGraphStore:
    built = ALL_STORE_FACTORIES[request.param]()
    yield built
    close = getattr(built, "close", None)
    if callable(close):
        close()


class TestContract:
    def test_empty_store(self, store):
        assert store.num_edges == 0
        assert not store.has_edge(1, 2)
        assert store.successors(1) == []
        assert list(store.edges()) == []

    def test_insert_query_roundtrip(self, store, small_edge_set):
        for u, v in small_edge_set:
            assert store.insert_edge(u, v) is True
        assert store.num_edges == len(small_edge_set)
        for u, v in small_edge_set:
            assert store.has_edge(u, v)
        assert not store.has_edge(10**9, 1)

    def test_duplicate_inserts_do_not_double_count(self, store, small_edge_set):
        for u, v in small_edge_set:
            store.insert_edge(u, v)
        for u, v in small_edge_set[:100]:
            assert store.insert_edge(u, v) is False
        assert store.num_edges == len(small_edge_set)

    def test_spawn_empty_yields_a_fresh_store_of_the_same_scheme(self, store):
        store.insert_edge(1, 2)
        fresh = store.spawn_empty()
        assert fresh is not store
        assert fresh.num_edges == 0
        assert not fresh.has_edge(1, 2)
        assert fresh.insert_edge(1, 2) is True  # usable, independent state
        assert store.num_edges == 1

    def test_successors_match_reference(self, store, small_edge_set, reference):
        for u, v in small_edge_set:
            store.insert_edge(u, v)
        adjacency = reference(small_edge_set)
        for u, expected in adjacency.items():
            assert sorted(store.successors(u)) == sorted(expected)
            assert store.out_degree(u) == len(expected)

    def test_edges_iteration(self, store, small_edge_set):
        for u, v in small_edge_set:
            store.insert_edge(u, v)
        assert sorted(store.edges()) == sorted(small_edge_set)

    def test_deletions(self, store, small_edge_set):
        for u, v in small_edge_set:
            store.insert_edge(u, v)
        victims = small_edge_set[: len(small_edge_set) // 2]
        for u, v in victims:
            assert store.delete_edge(u, v) is True
        for u, v in victims[:50]:
            assert not store.has_edge(u, v)
            assert store.delete_edge(u, v) is False
        for u, v in small_edge_set[len(small_edge_set) // 2:][:50]:
            assert store.has_edge(u, v)
        assert store.num_edges == len(small_edge_set) - len(victims)

    def test_memory_bytes_positive_and_monotone_with_content(self, store, small_edge_set):
        for u, v in small_edge_set[:10]:
            store.insert_edge(u, v)
        small_footprint = store.memory_bytes()
        for u, v in small_edge_set[10:]:
            store.insert_edge(u, v)
        assert small_footprint > 0
        assert store.memory_bytes() >= small_footprint

    def test_skewed_degrees(self, store, skewed_edge_set, reference):
        for u, v in skewed_edge_set:
            store.insert_edge(u, v)
        adjacency = reference(skewed_edge_set)
        assert sorted(store.successors(0)) == sorted(adjacency[0])
        assert store.out_degree(0) == len(adjacency[0])

    def test_bulk_helpers(self, store, small_edge_set):
        assert store.insert_edges(small_edge_set) == len(small_edge_set)
        assert store.delete_edges(small_edge_set[:20]) == 20


# The weighted CuckooGraph deliberately has different deletion semantics
# (delete decrements the weight and only removes the edge at zero), so the
# mixed-operation dedup property below applies to every *distinct-edge* store.
_DEDUP_SEMANTICS_STORES = sorted(set(ALL_STORE_FACTORIES) - {"WeightedCuckooGraph"})


@settings(max_examples=25, deadline=None)
@given(
    ops=st.lists(
        st.tuples(
            st.sampled_from(["insert", "delete", "query"]),
            st.integers(min_value=0, max_value=40),
            st.integers(min_value=0, max_value=40),
        ),
        max_size=200,
    ),
    name=st.sampled_from(_DEDUP_SEMANTICS_STORES),
)
def test_any_store_matches_reference_model(ops, name):
    """Property: every store implements identical dedup edge-set semantics."""
    store = ALL_STORE_FACTORIES[name]()
    try:
        model: dict[int, set[int]] = defaultdict(set)
        for action, u, v in ops:
            if action == "insert":
                assert store.insert_edge(u, v) is (v not in model[u])
                model[u].add(v)
            elif action == "delete":
                assert store.delete_edge(u, v) is (v in model[u])
                model[u].discard(v)
            else:
                assert store.has_edge(u, v) is (v in model[u])
        expected = sorted((u, v) for u, vs in model.items() for v in vs)
        assert sorted(store.edges()) == expected
        assert store.num_edges == len(expected)
    finally:
        close = getattr(store, "close", None)
        if callable(close):
            close()


def test_deletion_order_independence(small_edge_set):
    """Deleting in a different order than insertion leaves every store empty."""
    rng = random.Random(11)
    for name, factory in ALL_STORE_FACTORIES.items():
        store = factory()
        try:
            for u, v in small_edge_set:
                store.insert_edge(u, v)
            order = list(small_edge_set)
            rng.shuffle(order)
            for u, v in order:
                assert store.delete_edge(u, v), name
            assert store.num_edges == 0, name
            assert list(store.edges()) == [], name
        finally:
            close = getattr(store, "close", None)
            if callable(close):
                close()
