#!/usr/bin/env python3
"""Accelerating property-graph edge lookups with CuckooGraph (Section V-G).

Loads the same relationship stream into two mini-Neo4j instances -- one plain
(edge lookups traverse per-node adjacency lists) and one with the multi-edge
CuckooGraph index -- and compares the time to answer the paper's query
workload: find the relationships between every distinct node pair.

Run with::

    python examples/database_acceleration.py
"""

import time

from repro.datasets import load_dataset
from repro.integrations import MiniNeo4j


def build(use_index: bool, edges) -> tuple[MiniNeo4j, float]:
    database = MiniNeo4j(use_cuckoo_index=use_index)
    start = time.perf_counter()
    database.load_edge_stream(edges, rel_type="CONNECTS")
    return database, time.perf_counter() - start


def query_all(database: MiniNeo4j, pairs) -> tuple[int, float]:
    start = time.perf_counter()
    found = sum(len(list(database.find_relationships(u, v))) for u, v in pairs)
    return found, time.perf_counter() - start


def main() -> None:
    stream = load_dataset("CAIDA").prefix(20000)
    pairs = list(stream.deduplicated())
    print(f"loading {len(stream)} relationships over {len(pairs)} distinct pairs\n")

    results = {}
    for label, use_index in (("plain Neo4j", False), ("Neo4j + CuckooGraph", True)):
        database, insert_seconds = build(use_index, stream)
        found, query_seconds = query_all(database, pairs)
        results[label] = (insert_seconds, query_seconds)
        print(f"{label:<22s} insert {insert_seconds:7.3f} s   "
              f"query {query_seconds:7.3f} s   ({found} relationships found)")

    plain_query = results["plain Neo4j"][1]
    indexed_query = results["Neo4j + CuckooGraph"][1]
    print(f"\nedge-query speedup with the CuckooGraph index: "
          f"{plain_query / indexed_query:.2f}x")
    print("(insertion pays only the small overhead of maintaining the index, "
          "matching Figure 18)")


if __name__ == "__main__":
    main()
