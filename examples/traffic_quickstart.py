"""Traffic quickstart: a skewed multi-tenant scenario with a replica kill.

The production-traffic harness (``repro.traffic``) end to end, in one
five-second scenario that exercises both new subsystems at once:

1. declare the whole experiment as one seeded :class:`ScenarioConfig` —
   four tenants sharing a zipf(1.1) keyspace laid out shard-major over a
   **tiered** store (8 shards, 2 hot), replicated to one follower with
   group-commit durability,
2. schedule a ``kill_replica`` fault mid-run: the injector severs the
   follower's channel, holds the fault, then re-attaches a fresh follower
   and lets backfill catch it up,
3. replay the seeded schedule open-loop (one driver thread per tenant,
   arrivals fire on the clock whether or not the service keeps up),
4. print the SLO report: per-class p50/p99, throughput against target, the
   hot-tier hit rate the admission policy earned, and the failure log.

Run with ``PYTHONPATH=src python examples/traffic_quickstart.py``.
"""

import sys
from pathlib import Path

REPO_SRC = Path(__file__).resolve().parents[1] / "src"
if str(REPO_SRC) not in sys.path:
    sys.path.insert(0, str(REPO_SRC))

from repro.traffic import (                               # noqa: E402
    FailureSpec,
    ScenarioConfig,
    run_scenario,
    validate_slo_report,
)

SCENARIO = ScenarioConfig(
    name="quickstart",
    seed=20240515,
    duration_s=5.0,
    target_ops_s=400.0,
    tenants=4,
    tenant_layout="shared",         # all tenants contend for one keyspace
    keys_per_tenant=1024,
    zipf_exponent=1.1,              # heavy head: few keys take most traffic
    key_layout="shard_major",       # popular keys cluster on few shards
    scheme="tiered",                # CuckooGraph hot tier over database spill
    num_shards=8,
    hot_shards=2,                   # hot tier = 25% of shards
    replicas=1,
    durability="batch",
    mix={"insert": 0.5, "delete": 0.1, "has": 0.25, "successors": 0.15},
    warmup_edges=600,
    failures=(
        FailureSpec(at_s=2.5, kind="kill_replica", target=0, duration_s=0.5),
    ),
)


def main() -> None:
    print(f"running scenario {SCENARIO.name!r}: {SCENARIO.duration_s:.0f}s of "
          f"zipf({SCENARIO.zipf_exponent}) traffic from {SCENARIO.tenants} "
          f"tenants at {SCENARIO.target_ops_s:.0f} ops/s "
          f"(scheme={SCENARIO.scheme}, replicas={SCENARIO.replicas}, "
          f"replica kill at t={SCENARIO.failures[0].at_s}s)...")
    report = validate_slo_report(run_scenario(SCENARIO))

    totals = report["totals"]
    print(f"\ncompleted {totals['completed']}/{totals['submitted']} requests "
          f"at {totals['throughput_ops_s']:.1f} ops/s "
          f"(target {totals['target_ops_s']:.0f}; "
          f"errors {totals['errors']}, rejected {totals['rejected']})")

    print("\nper-class latency:")
    for kind, entry in sorted(report["classes"].items()):
        latency = entry["latency"]
        if not latency["count"]:
            continue
        print(f"  {kind:<11} n={latency['count']:<6} "
              f"p50={latency['p50_s'] * 1000:7.2f}ms "
              f"p99={latency['p99_s'] * 1000:7.2f}ms "
              f"errors={entry['errors']}")
    slo = report["slo"]
    print(f"slo: p99 bound {slo['p99_bound_s'] * 1000:.0f}ms -> "
          f"{'MET' if slo['met'] else 'MISSED'}")

    window = report["tiered"]["window"]
    end = report["tiered"]["end"]
    print(f"\ntiered: hot-tier hit rate {window['hit_rate']:.1%} over the "
          f"measured window (hits {window['hits']}/{window['touches']}, "
          f"promotions {window['promotions']}, "
          f"final hot set {end['hot_set']})")
    assert window["hit_rate"] > 0.5, "policy should have found the hot shards"

    for record in report["failures"]:
        print(f"failure: t={record['at_s']}s {record['kind']} "
              f"injected={record['injected']} recovered={record['recovered']}"
              f"\n         {record['detail']}")
        assert record["injected"] and record["recovered"]

    replication = report["replication"]
    if replication:
        print(f"replication: {replication}")
    print("\nscenario complete; the same config serialises with "
          "ScenarioConfig.to_json() and replays bit-identically "
          "(same seed, same schedule).")


if __name__ == "__main__":
    main()
