#!/usr/bin/env python3
"""Quickstart for the sharded, batch-capable CuckooGraph front-end.

``ShardedCuckooGraph`` hash-partitions source nodes across N independent
CuckooGraph shards: every node's out-edges live on exactly one shard, the
shard choice is a deterministic hash (stable across instances and
processes), and a batch of operations is grouped per shard before being
drained -- the layout a multi-core or multi-machine deployment scales on.

Run with::

    python examples/sharded_quickstart.py
"""

import random
import time

from repro import CuckooGraph, ShardedCuckooGraph


def make_edges(count: int = 20000, nodes: int = 4000) -> list[tuple[int, int]]:
    rng = random.Random(7)
    edges = set()
    while len(edges) < count:
        u, v = rng.randrange(nodes), rng.randrange(nodes)
        if u != v:
            edges.add((u, v))
    return list(edges)


def batch_basics() -> None:
    """The batch APIs: whole edge lists in, aggregate or per-item results out."""
    graph = ShardedCuckooGraph(num_shards=4)
    edges = [(1, 2), (1, 3), (2, 3), (3, 1)]

    print("newly inserted:", graph.insert_edges(edges))          # -> 4
    print("membership:", graph.has_edges([(1, 2), (2, 1)]))      # -> [True, False]
    print("fan-out:", graph.successors_many([1, 2, 99]))
    print("deleted:", graph.delete_edges([(1, 2), (9, 9)]))      # -> 1

    # Routing is deterministic: node 1's out-edges always live on one shard.
    print("node 1 lives on shard", graph.shard_of(1), "of", graph.num_shards)


def shard_balance() -> None:
    """Shards stay balanced, and all accounting aggregates across them."""
    graph = ShardedCuckooGraph(num_shards=8)
    graph.insert_edges(make_edges())
    print("\nedges per shard:", graph.shard_sizes())
    print("total edges:", graph.num_edges)
    print("aggregated memory:", graph.memory_bytes(), "bytes")
    print("aggregated bucket probes:", graph.counters.bucket_probes)


def batched_versus_single() -> None:
    """Batching amortizes routing; correctness is identical to one instance."""
    edges = make_edges()
    single = CuckooGraph()
    sharded = ShardedCuckooGraph(num_shards=4)

    start = time.perf_counter()
    for u, v in edges:
        single.insert_edge(u, v)
    single_seconds = time.perf_counter() - start

    start = time.perf_counter()
    sharded.insert_edges(edges)
    sharded_seconds = time.perf_counter() - start

    assert sorted(single.edges()) == sorted(sharded.edges())
    print(f"\nsingle-instance loop: {single_seconds:.3f}s")
    print(f"sharded batch insert: {sharded_seconds:.3f}s (same edge set)")


def threaded_executor() -> None:
    """Fan per-shard groups out over a thread pool; observables are identical."""
    edges = make_edges()
    serial = ShardedCuckooGraph(num_shards=4)
    serial.insert_edges(edges)

    # executor="threads" drains independent shards concurrently.  Under
    # CPython's GIL the pure-Python shards gain no wall-clock, but results,
    # counters and accesses match the serial executor exactly -- the pool is
    # the cut point where C-backed or subprocess shards would scale.
    with ShardedCuckooGraph(num_shards=4, executor="threads") as threaded:
        threaded.insert_edges(edges)
        assert sorted(threaded.edges()) == sorted(serial.edges())
        assert threaded.counters.snapshot() == serial.counters.snapshot()
        frontier = [u for u, _ in edges[:1000]]
        assert threaded.successors_many(frontier) == serial.successors_many(frontier)
        print("\nthreaded executor: identical state across",
              threaded.num_edges, "edges")


def process_executor() -> None:
    """True multicore: per-shard state owned by long-lived worker processes.

    ``executor="processes"`` is the one that actually buys wall-clock on a
    multi-core box: shard ``i`` lives in worker ``i % workers`` and every
    batch crosses a pipe RPC whose payload encoding is the WAL op codec.
    Observables stay byte-identical to the serial executor on any core
    count; only the clock moves (see benchmarks/test_fig06f_multicore.py).
    """
    edges = make_edges()
    serial = ShardedCuckooGraph(num_shards=4)
    serial.insert_edges(edges)

    with ShardedCuckooGraph(num_shards=4, executor="processes") as multicore:
        multicore.insert_edges(edges)
        assert sorted(multicore.edges()) == sorted(serial.edges())
        assert multicore.counters.snapshot() == serial.counters.snapshot()
        assert multicore.accesses == serial.accesses
        frontier = [u for u, _ in edges[:1000]]
        assert multicore.successors_many(frontier) == serial.successors_many(frontier)
        print("\nprocess executor: identical state across",
              multicore.num_edges, "edges in",
              len(multicore._procs.workers), "worker processes")
    # close() is terminal for the process executor: the shard state lived in
    # the workers, so a closed store refuses reads instead of lying.


def analytics_through_the_engine() -> None:
    """The analytics kernels drive any store through batched frontiers."""
    from repro.analytics import TraversalEngine, bfs, top_degree_nodes

    graph = ShardedCuckooGraph(num_shards=4)
    graph.insert_edges(make_edges())
    engine = TraversalEngine(graph)
    roots = top_degree_nodes(graph, 3, engine=engine)
    visited = sum(len(bfs(graph, root, engine=engine)) for root in roots)
    print(f"\nBFS from {len(roots)} roots visited {visited} nodes using "
          f"{engine.batch_calls} batched store calls "
          f"({engine.nodes_expanded} nodes expanded)")


if __name__ == "__main__":
    batch_basics()
    shard_balance()
    batched_versus_single()
    threaded_executor()
    process_executor()
    analytics_through_the_engine()
