#!/usr/bin/env python3
"""Network monitoring: a CAIDA-like IP-flow stream through CuckooGraph.

The paper's CAIDA workload is a stream of (source IP, destination IP) flows
with heavy duplication.  This example feeds the scaled stand-in through the
weighted (streaming) CuckooGraph, reports the heavy hitters, then exposes the
same graph as a mini-Redis module and exercises the command interface and
persistence hooks (Section V-F).

Run with::

    python examples/network_monitoring_stream.py
"""

import time

from repro import WeightedCuckooGraph
from repro.datasets import load_dataset
from repro.integrations import CuckooGraphModule, MiniRedisServer


def heavy_hitters(graph: WeightedCuckooGraph, count: int = 5):
    """The flows (edges) with the highest repeat counts."""
    return sorted(graph.weighted_edges(), key=lambda edge: -edge[2])[:count]


def main() -> None:
    stream = load_dataset("CAIDA")
    print(f"replaying {len(stream)} flow records "
          f"({len(stream.deduplicated())} distinct flows)")

    graph = WeightedCuckooGraph()
    start = time.perf_counter()
    for source_ip, destination_ip in stream:
        graph.insert_weighted_edge(source_ip, destination_ip)
    elapsed = time.perf_counter() - start
    print(f"ingested at {len(stream) / elapsed / 1e6:.3f} Mops; "
          f"{graph.num_edges} distinct flows, "
          f"{graph.memory_bytes() / 1024:.1f} KiB modelled memory")

    print("\nheaviest flows (u, v, packets):")
    for u, v, weight in heavy_hitters(graph):
        print(f"  {u:>8d} -> {v:<8d}  x{weight}")

    talkative = max(graph.source_nodes(), key=graph.out_degree)
    print(f"\nmost talkative source {talkative} contacts "
          f"{graph.out_degree(talkative)} destinations")

    # ---- the same structure as a Redis module (Section V-F) -------------
    server = MiniRedisServer()
    server.load_module(CuckooGraphModule(graph))
    print("\nmini-Redis module loaded:", server.loaded_modules())
    print("GSIZE ->", server.execute("GSIZE"))
    u, v, weight = heavy_hitters(graph, 1)[0]
    print(f"GQUERY {u} {v} ->", server.execute(f"GQUERY {u} {v}"))
    print(f"GNEIGHBORS {talkative} -> "
          f"{len(server.execute(f'GNEIGHBORS {talkative}'))} destinations")

    snapshot = server.save_rdb()
    print(f"RDB snapshot serialised ({len(snapshot)} bytes)")
    restored = MiniRedisServer()
    restored.load_module(CuckooGraphModule())
    restored.load_rdb(snapshot)
    print("restored GSIZE ->", restored.execute("GSIZE"))


if __name__ == "__main__":
    main()
