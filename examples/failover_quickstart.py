"""Failover quickstart: kill -9 a networked primary, elect, serve, fence.

The networked half of ``repro.replicate`` with a **real process boundary**:

1. spawn the primary in a child process (this script re-execs itself with
   ``--primary``): a WAL-backed store, a ``Primary`` tailer and a
   ``ReplicationServer`` committing traffic flat out,
2. attach two ``RemoteFollower`` replicas over TCP and heartbeat the
   primary through the live replication connections,
3. ``kill -9`` the child mid-commit — no clean shutdown of any kind,
4. let the lease expire and the ``FailoverManager`` elect the lowest-id
   follower, whose promoted store is byte-identical to a point-in-time
   recovery of the murdered directory at the winner's position,
5. serve from the new primary's TCP endpoint and show the dead primary's
   WAL segments fenced out of the promoted timeline on rejoin.

Run with ``PYTHONPATH=src python examples/failover_quickstart.py``.
"""

import os
import shutil
import signal
import subprocess
import sys
import tempfile
import time
from pathlib import Path

REPO_SRC = Path(__file__).resolve().parents[1] / "src"
if str(REPO_SRC) not in sys.path:
    sys.path.insert(0, str(REPO_SRC))

from repro import ShardedCuckooGraph                      # noqa: E402
from repro.persist import (                               # noqa: E402
    LOCK_NAME,
    PersistentStore,
    read_wal_records,
    recover,
)
from repro.replicate import (                             # noqa: E402
    FailoverManager,
    Primary,
    RemoteFollower,
    ReplicationServer,
)

NUM_SHARDS = 4

#: Group commits the parent watches land on both replicas before the kill.
WARMUP_COMMITS = 12


def run_primary(base: str, portfile: str) -> int:
    """Child mode: serve a replication endpoint and commit until killed."""
    store = PersistentStore(
        base, store=ShardedCuckooGraph(num_shards=NUM_SHARDS),
        own_store=True, sync_on_commit=False, compact_wal_bytes=None)
    primary = Primary(store)
    server = ReplicationServer(primary)
    host, port = server.address
    # Atomic publish: the parent polls for this file.
    with open(portfile + ".tmp", "w") as handle:
        handle.write(f"{host} {port}\n")
    os.replace(portfile + ".tmp", portfile)
    source = 0
    while True:  # committing flat out until SIGKILL lands mid-commit
        store.insert_edges([(source, source + offset) for offset in (1, 2, 3)])
        source += 10
        primary.sync_and_pump()


def copy_directory(source: Path, destination: Path) -> Path:
    shutil.copytree(source, destination)
    lock = destination / LOCK_NAME
    if lock.exists():
        lock.unlink()  # the murdered process never released its lock
    return destination


def main() -> None:
    workspace = Path(tempfile.mkdtemp(prefix="repro-failover-demo-"))
    base = workspace / "primary"
    portfile = workspace / "port"

    # -- 1. the primary lives in another process -------------------------- #
    child = subprocess.Popen(
        [sys.executable, __file__, "--primary", str(base), str(portfile)])
    deadline = time.monotonic() + 30.0
    while not portfile.exists():
        assert child.poll() is None, "primary child died during startup"
        assert time.monotonic() < deadline, "primary never published its port"
        time.sleep(0.02)
    host, port = portfile.read_text().split()
    address = (host, int(port))
    print(f"primary serving at {address} (pid {child.pid})")

    # -- 2. two TCP replicas + heartbeats --------------------------------- #
    followers = {
        node_id: RemoteFollower(
            address, store=ShardedCuckooGraph(num_shards=NUM_SHARDS),
            node_id=node_id)
        for node_id in (1, 2)
    }
    manager = FailoverManager(lease_s=0.5)
    for node_id, follower in followers.items():
        manager.register(node_id, follower)
    for follower in followers.values():
        follower.wait_for(WARMUP_COMMITS, timeout=30.0)
    print(f"replicas converged past commit {WARMUP_COMMITS}; "
          f"heartbeats {manager.heartbeat()}")

    # -- 3. kill -9, mid-commit ------------------------------------------- #
    os.kill(child.pid, signal.SIGKILL)
    child.wait(timeout=10.0)
    print(f"primary murdered with SIGKILL (lease {manager.lease_s}s)")

    # -- 4. lease expiry -> election -------------------------------------- #
    result = None
    deadline = time.monotonic() + 30.0
    while result is None and time.monotonic() < deadline:
        result = manager.maybe_failover(path=workspace / "promoted",
                                        rewire=False,
                                        listen=("127.0.0.1", 0))
        time.sleep(0.05)
    assert result is not None, "election never fired"
    print(f"node {result.node_id} won the election after the lease expired; "
          f"promoted store has {result.store.num_edges} edges at generation "
          f"{result.store.generation}")

    # The promoted state is a true point on the dead primary's timeline:
    # rewinding a copy of the murdered directory to the winner's position
    # reproduces it edge-for-edge (the torn tail lies beyond the cut).
    pitr_dir = copy_directory(base, workspace / "pitr")
    rewound = recover(pitr_dir, store=ShardedCuckooGraph(num_shards=NUM_SHARDS),
                      upto=result.position)
    assert sorted(rewound.edges()) == sorted(result.store.edges())
    print(f"byte-identity check: recover(copy, upto=<winner position>) "
          f"== promoted store ({rewound.num_edges} edges)")
    rewound.close()

    # -- 5. the new primary serves; the old one is fenced ------------------ #
    result.store.insert_edge(500_000, 500_001)
    result.primary.sync_and_pump()
    rejoined = RemoteFollower(
        result.server.address,
        store=ShardedCuckooGraph(num_shards=NUM_SHARDS), node_id=3)
    assert rejoined.store.has_edge(500_000, 500_001)
    print(f"new primary serves at {result.server.address}; "
          f"a late rejoiner converged onto {rejoined.store.num_edges} edges")
    rejoined.close()

    result.store.checkpoint()  # fold the promoted timeline; segments empty
    promoted_state = sorted(result.store.edges())
    result.server.close()
    result.primary.close()
    result.store.close()
    smuggled = 0
    for segment in sorted(base.glob("wal-*.bin")):
        _, records, _ = read_wal_records(segment)
        if records:
            shutil.copy(segment, workspace / "promoted" / segment.name)
            smuggled += 1
    fenced = recover(workspace / "promoted",
                     store=ShardedCuckooGraph(num_shards=NUM_SHARDS))
    assert sorted(fenced.edges()) == promoted_state
    assert fenced.last_recovery["wal_ops"] == 0
    print(f"fencing: {smuggled} smuggled segments from the dead primary "
          f"replayed {fenced.last_recovery['wal_ops']} ops into the promoted "
          f"timeline")
    fenced.close()


if __name__ == "__main__":
    if len(sys.argv) == 4 and sys.argv[1] == "--primary":
        sys.exit(run_primary(sys.argv[2], sys.argv[3]))
    main()
