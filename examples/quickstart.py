#!/usr/bin/env python3
"""Quickstart: build, query, mutate and inspect a CuckooGraph.

Run with::

    python examples/quickstart.py
"""

from repro import CuckooGraph, CuckooGraphConfig, WeightedCuckooGraph


def basic_usage() -> None:
    """The basic (distinct-edge) version: insert, query, delete, traverse."""
    graph = CuckooGraph()

    # Insert a handful of directed edges; True means the edge was new.
    follows = [(1, 2), (1, 3), (2, 3), (3, 1), (3, 4)]
    for u, v in follows:
        assert graph.insert_edge(u, v)
    assert not graph.insert_edge(1, 2)  # duplicates are ignored

    print("edges stored:", graph.num_edges)
    print("successors of 1:", sorted(graph.successors(1)))
    print("1 -> 3 exists?", graph.has_edge(1, 3))
    print("3 -> 2 exists?", graph.has_edge(3, 2))

    # Deleting the last edge of a node removes the node from the structure.
    graph.delete_edge(3, 4)
    print("after deletion, successors of 3:", sorted(graph.successors(3)))

    # The structure summary shows the TRANSFORMATION state and memory model.
    print("structure:", graph.structure_summary())


def weighted_usage() -> None:
    """The extended (streaming) version counts duplicate edges with weights."""
    stream = [(1, 2), (1, 2), (2, 3), (1, 2), (2, 3)]
    graph = WeightedCuckooGraph()
    for u, v in stream:
        graph.insert_weighted_edge(u, v)
    print("\nweighted edges:", sorted(graph.weighted_edges()))
    print("weight of (1, 2):", graph.edge_weight(1, 2))
    graph.delete_edge(1, 2)           # decrements the weight
    print("after one deletion:", graph.edge_weight(1, 2))


def tuned_configuration() -> None:
    """Every paper parameter (d, R, G, Λ, T, ...) is exposed on the config."""
    config = CuckooGraphConfig(d=4, R=3, G=0.85, lam=0.4, T=150)
    graph = CuckooGraph(config)
    for v in range(100):
        graph.insert_edge(0, v)
    part2 = graph.part2_of(0)
    print("\nwith d=4: node 0 uses an S-CHT chain of lengths",
          part2.chain.table_lengths)
    print("modelled memory:", graph.memory_bytes(), "bytes")


if __name__ == "__main__":
    basic_usage()
    weighted_usage()
    tuned_configuration()
