"""Replication quickstart: primary, two followers, barriers, PITR, failover.

Walks the full lifecycle of the replication subsystem (``repro.replicate``):

1. build a WAL-backed primary and attach two read replicas,
2. commit traffic and read it back through a read-your-writes barrier,
3. point-in-time recover a *copy* of the directory to an earlier commit,
4. promote a follower: the old primary's segments are fenced out,
5. serve the whole thing through a replicated ``GraphService``.

Run with ``PYTHONPATH=src python examples/replication_quickstart.py``.
"""

import shutil
import tempfile
from pathlib import Path

from repro import GraphService, ShardedCuckooGraph
from repro.persist import LOCK_NAME, PersistentStore, recover
from repro.replicate import Follower, Primary

NUM_SHARDS = 4


def copy_directory(source: Path, destination: Path) -> Path:
    shutil.copytree(source, destination)
    lock = destination / LOCK_NAME
    if lock.exists():
        lock.unlink()  # the copy is its own store; drop the source's lock
    return destination


def main() -> None:
    workspace = Path(tempfile.mkdtemp(prefix="repro-replicate-demo-"))
    base = workspace / "primary"

    # -- 1. a primary and two followers ---------------------------------- #
    store = PersistentStore(
        base,
        store=ShardedCuckooGraph(num_shards=NUM_SHARDS),
        own_store=True,
        sync_on_commit=False,     # group commits are flushed when shipped
        compact_wal_bytes=None,   # keep the whole history for the PITR demo
    )
    primary = Primary(store)
    replica_a = Follower(store=ShardedCuckooGraph(num_shards=NUM_SHARDS))
    replica_b = Follower(store=ShardedCuckooGraph(num_shards=NUM_SHARDS))
    primary.attach(replica_a)
    primary.attach(replica_b)

    # -- 2. commit, ship, read your writes ------------------------------- #
    store.insert_edges([(u, u + 1) for u in range(60)])    # one group commit
    store.delete_edges([(0, 1), (2, 3)])                   # another
    primary.sync_and_pump()
    replica_a.wait_for(primary.commit_index)
    early_position = replica_a.position  # before the next burst, for PITR
    early_index = replica_a.commit_index

    store.insert_edges([(u, u + 2) for u in range(0, 60, 2)])
    primary.sync_and_pump()
    replica_a.wait_for(primary.commit_index)   # read-your-writes barrier
    replica_b.wait_for(primary.commit_index)
    print(f"primary shipped {primary.commit_index} commits; "
          f"replica A has {replica_a.store.num_edges} edges "
          f"(lag {replica_a.lag()}), replica B {replica_b.store.num_edges}")
    assert sorted(replica_a.store.edges()) == sorted(store.edges())

    # -- 3. point-in-time recovery to the earlier commit ------------------ #
    # The rewind is destructive, so PITR operates on a copy.
    pitr_dir = copy_directory(base, workspace / "pitr")
    rewound = recover(pitr_dir, store=ShardedCuckooGraph(num_shards=NUM_SHARDS),
                      upto=early_position)
    print(f"PITR to commit {early_index}: {rewound.num_edges} edges "
          f"(live store has {store.num_edges})")
    assert rewound.num_edges < store.num_edges
    rewound.close()

    # -- 4. failover: promote replica B, fence the old primary ------------ #
    promoted = replica_b.promote(workspace / "new-primary")
    promoted.insert_edge(10_000, 10_001)       # the new timeline is writable
    promoted.checkpoint()
    print(f"promoted replica B at generation {promoted.generation}; "
          f"{promoted.num_edges} edges")
    promoted.close()
    # The deposed primary's stale segments carry an older generation, so
    # recovery of the new primary's directory provably rejects them.
    store.insert_edge(666, 667)                # split-brain write, doomed
    store.sync()
    replica_a.close()
    primary.close()
    store.close()
    for segment in sorted(base.glob("wal-*.bin")):
        shutil.copy(segment, workspace / "new-primary" / segment.name)
    fenced = recover(workspace / "new-primary",
                     store=ShardedCuckooGraph(num_shards=NUM_SHARDS))
    assert not fenced.has_edge(666, 667), "stale primary write must be fenced"
    assert fenced.has_edge(10_000, 10_001)
    print(f"fencing: recovery skipped the deposed primary's segments "
          f"(replayed {fenced.last_recovery['wal_ops']} stale ops)")
    fenced.close()

    # -- 5. the replicated service front door ----------------------------- #
    service_store = PersistentStore(
        workspace / "served",
        store=ShardedCuckooGraph(num_shards=NUM_SHARDS),
        own_store=True, sync_on_commit=False, compact_wal_bytes=None,
    )
    with GraphService(service_store, own_store=True, durability="batch",
                      replicas=2, freshness="read_your_writes",
                      max_batch=256) as service:
        futures = [service.insert_edge(u, 9_999) for u in range(300)]
        inserted = sum(future.result() for future in futures)
        assert service.has_edge(5, 9_999).result() is True
        order = service.analytics("bfs", 5).result()
        summary = service.metrics_summary()
    replication = summary["replication"]
    print(f"served {inserted} durable inserts; reads fanned out over "
          f"{len(replication['replica_reads'])} replicas "
          f"(counts {replication['replica_reads']}, "
          f"max lag {replication['lag_max']} commits); BFS from 5 -> {order}")


if __name__ == "__main__":
    main()
