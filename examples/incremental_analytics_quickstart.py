"""Incremental analytics quickstart: a live dashboard over a mutating graph.

The ordinary way to put PageRank on a dashboard is to recompute it from
scratch every refresh -- O(graph) work for a delta of a handful of edges.
This example runs the alternative shipped in ``repro.analytics.incremental``:
a durable ``GraphService`` with ``analytics="incremental"`` keeps an
:class:`~repro.analytics.AnalyticsFollower` attached to the replication
change feed, and every analytics request folds only the *shipped delta* into
maintained kernels (PageRank, weakly connected components, degree top-k)
behind the usual read-your-writes barrier.

The loop below plays five dashboard ticks: mutate a little, query the
dashboard, print what the maintenance layer actually did (cache hit rate,
dirty nodes, incremental-vs-recompute decisions).  Every refresh is also
byte-compared against a from-scratch canonical recompute -- the speed is
never bought with drift.

Run with ``PYTHONPATH=src python examples/incremental_analytics_quickstart.py``.
"""

import random
import tempfile
from pathlib import Path

from repro.analytics import TraversalEngine, canonical_pagerank
from repro.service import GraphClient

COMMUNITIES = 12
COMMUNITY_SIZE = 30
EDGES_PER_TICK = 8
TICKS = 5
TOP_K = 5


def seed_edges(rng: random.Random) -> list[tuple[int, int]]:
    """A clustered graph: dense communities, a sparse ring between them."""
    edges = []
    for community in range(COMMUNITIES):
        offset = community * COMMUNITY_SIZE
        edges.extend(
            (offset + i, offset + (i + 1) % COMMUNITY_SIZE)
            for i in range(COMMUNITY_SIZE)
        )
        edges.extend(
            (offset + rng.randrange(COMMUNITY_SIZE),
             offset + rng.randrange(COMMUNITY_SIZE))
            for _ in range(COMMUNITY_SIZE)
        )
    return [(u, v) for u, v in edges if u != v]


def tick_mutations(rng: random.Random) -> list[tuple[int, int]]:
    """A small burst of intra-community churn -- one dashboard tick."""
    offset = rng.randrange(COMMUNITIES) * COMMUNITY_SIZE
    return [
        (offset + rng.randrange(COMMUNITY_SIZE),
         offset + rng.randrange(COMMUNITY_SIZE))
        for _ in range(EDGES_PER_TICK)
    ]


def main() -> None:
    rng = random.Random(7)
    workspace = Path(tempfile.mkdtemp(prefix="repro-incremental-demo-"))

    with GraphClient.durable(workspace / "dashboard",
                             analytics="incremental") as client:
        client.insert_edges(seed_edges(rng))
        follower = client.service.analytics_follower

        for tick in range(1, TICKS + 1):
            # Live traffic lands on the primary through the normal write path.
            mutations = tick_mutations(rng)
            client.insert_edges(mutations)

            # Dashboard refresh: barrier + delta fold + maintained kernels.
            ranks = client.pagerank()
            communities = client.wcc()
            top = client.top_degree_nodes(TOP_K)
            # Traversals ride the same replica through the adjacency cache:
            # only sources the tick dirtied are refetched from the store.
            reach = client.bfs(top[0])

            # Trust but verify: canonical recompute on the replica is
            # byte-identical to what the maintained kernels just served.
            replica = follower.store
            assert ranks == canonical_pagerank(
                replica, engine=TraversalEngine(replica))

            leaders = ", ".join(
                f"{node}:{ranks[node]:.5f}" for node in top)
            print(f"tick {tick}: +{len(mutations)} edges -> "
                  f"{len(communities)} components, top-{TOP_K} [{leaders}], "
                  f"{len(reach)} nodes reachable from {top[0]}")

        analytics = client.service.metrics_summary()["analytics"]
        cache = analytics["cache"]
        print(f"\nmaintenance: {analytics['runs']} refreshes, decisions "
              f"{analytics['decisions']}, dirty nodes mean "
              f"{analytics['dirty_nodes_mean']:.1f} / max "
              f"{analytics['dirty_nodes_max']}")
        print(f"adjacency cache: hit rate {cache['hit_rate']:.3f} "
              f"({cache['hits']} hits, {cache['refetched']} refetched "
              f"across {cache['refreshes']} refreshes)")
        stats = follower.analytics_stats()
        print(f"kernels: pagerank decisions {stats['kernels']['pagerank']}, "
              f"pagerank nodes re-evaluated "
              f"{stats['pagerank_nodes_recomputed']}, component nodes "
              f"recomputed {stats['components_nodes_recomputed']}")


if __name__ == "__main__":
    main()
