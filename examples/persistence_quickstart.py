"""Durability quickstart: write -> crash -> recover.

Walks the full lifecycle of the durability subsystem (``repro.persist``):

1. build a WAL-backed sharded store and commit traffic through it,
2. compact (snapshot + truncate) part of the history,
3. simulate a crash by tearing bytes off the tail of a WAL segment,
4. recover: snapshot + every complete group commit, torn tail dropped,
5. serve the recovered store through a group-committing GraphService.

Run with ``PYTHONPATH=src python examples/persistence_quickstart.py``.
"""

import tempfile
from pathlib import Path

from repro import GraphService, ShardedCuckooGraph
from repro.persist import PersistentStore, recover

NUM_SHARDS = 4


def main() -> None:
    base = Path(tempfile.mkdtemp(prefix="repro-persist-demo-")) / "graph"

    # -- 1. write-ahead-logged traffic ---------------------------------- #
    store = PersistentStore(
        base,
        store=ShardedCuckooGraph(num_shards=NUM_SHARDS),
        own_store=True,
        sync_on_commit=True,     # every commit fsynced on its own
        compact_wal_bytes=None,  # keep the whole history for the demo
    )
    store.insert_edges([(u, u + 1) for u in range(50)])       # one group commit
    store.insert_edges([(u, u + 2) for u in range(0, 50, 2)])  # another
    store.delete_edges([(0, 1), (2, 3)])
    print("live store:", store.num_edges, "edges;",
          store.persistence_summary()["wal_records"], "WAL records in",
          store.persistence_summary()["segments"], "segments")

    # -- 2. compaction: fold the log into a snapshot --------------------- #
    rows = store.checkpoint()
    store.insert_edge(1000, 1001)  # one commit after the snapshot
    print(f"checkpoint wrote {rows} rows; WAL is now "
          f"{store.wal_bytes()} bytes across segments")
    expected = sorted(store.edges())
    store.close()

    # -- 3. crash: tear the tail of one WAL segment ---------------------- #
    segment = max(base.glob("wal-*.bin"), key=lambda p: p.stat().st_size)
    data = segment.read_bytes()
    segment.write_bytes(data[:-7])  # mid-record: this commit never completed
    print(f"simulated crash: tore 7 bytes off {segment.name}")

    # -- 4. recover ------------------------------------------------------ #
    # sync_on_commit=False: the reopened store buffers appends so the
    # durability point can move to the service's per-batch group commit.
    recovered = recover(base, store=ShardedCuckooGraph(num_shards=NUM_SHARDS),
                        parallel=True, sync_on_commit=False)
    stats = recovered.last_recovery
    print("recovered:", recovered.num_edges, "edges "
          f"(snapshot_rows={stats['snapshot_rows']}, wal_ops={stats['wal_ops']}, "
          f"parallel={stats['parallel']})")
    # The torn record held the post-snapshot insert; everything else is back.
    survivors = [edge for edge in expected if edge != (1000, 1001)]
    assert sorted(recovered.edges()) == survivors

    # -- 5. serve it durably --------------------------------------------- #
    # Group commit: the service makes each dispatched micro-batch durable
    # with one fsync, *before* the batch's futures resolve.
    with GraphService(recovered, own_store=True, durability="batch",
                      max_batch=256) as service:
        futures = [service.insert_edge(u, 9999) for u in range(200)]
        inserted = sum(future.result() for future in futures)
        summary = service.metrics_summary()
    print(f"served {inserted} durable inserts in "
          f"{summary['group_commits']} group commits "
          f"(mean batch {summary['mean_batch_size']:.1f})")


if __name__ == "__main__":
    main()
