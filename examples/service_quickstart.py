"""Serving traffic: the GraphService request-queue front door.

Walks the service layer end to end:

1. a GraphService over a 4-shard ShardedCuckooGraph, with several client
   threads submitting single operations concurrently;
2. the micro-batcher coalescing that traffic into batch store calls;
3. per-request latency percentiles and batching metrics;
4. backpressure with the reject policy;
5. the synchronous GraphClient facade, including analytics jobs.

Run with: PYTHONPATH=src python examples/service_quickstart.py
"""

import threading

from repro.core import ShardedCuckooGraph
from repro.service import GraphClient, GraphService, QueueFullError

CLIENTS = 4
EDGES_PER_CLIENT = 400


def main() -> None:
    # ------------------------------------------------------------------ #
    # 1-3. Concurrent traffic through one service
    # ------------------------------------------------------------------ #
    store = ShardedCuckooGraph(num_shards=4)
    with GraphService(store, max_batch=256, max_delay_s=0.0,
                      queue_capacity=2048, policy="block") as service:
        def client(index: int) -> None:
            base = index * 10_000
            futures = [service.insert_edge(base + u, base + u + 1)
                       for u in range(EDGES_PER_CLIENT)]
            inserted = sum(future.result() for future in futures)
            assert inserted == EDGES_PER_CLIENT

        threads = [threading.Thread(target=client, args=(index,))
                   for index in range(CLIENTS)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()

        summary = service.metrics_summary()
        latency = summary["latency"]
        print(f"served {summary['resolved']} requests from {CLIENTS} clients")
        print(f"  dispatch windows: {summary['batches']} "
              f"(mean batch {summary['mean_batch_size']:.1f}, "
              f"max {summary['max_batch_size']})")
        print(f"  store batch calls: {summary['store_batch_calls']} "
              f"(zero per-op calls)")
        print(f"  latency p50/p95/p99: {latency['p50_s'] * 1e6:.0f} / "
              f"{latency['p95_s'] * 1e6:.0f} / {latency['p99_s'] * 1e6:.0f} us")
        assert store.num_edges == CLIENTS * EDGES_PER_CLIENT

    # ------------------------------------------------------------------ #
    # 4. Backpressure: a tiny queue with the reject policy sheds load
    # ------------------------------------------------------------------ #
    shed = GraphService(queue_capacity=4, policy="reject")
    accepted, rejected = 0, 0
    for u in range(10):  # not started yet, so the queue just fills up
        try:
            shed.insert_edge(u, u + 1)
            accepted += 1
        except QueueFullError:
            rejected += 1
    print(f"reject policy: {accepted} accepted, {rejected} shed at capacity 4")
    shed.start()
    shed.close()  # drains the 4 accepted requests before shutting down
    assert shed.store.num_edges == accepted

    # ------------------------------------------------------------------ #
    # 5. GraphClient: the service as a plain DynamicGraphStore
    # ------------------------------------------------------------------ #
    with GraphClient.local(num_shards=2, max_batch=128) as client:
        client.insert_edges([(1, 2), (1, 3), (2, 3), (3, 4)])
        print("client sees successors(1) =", sorted(client.successors(1)))
        print("client BFS from 1 =", client.bfs(1))
        ranks = client.pagerank(iterations=20)
        print(f"client PageRank over {len(ranks)} nodes, "
              f"top node {max(ranks, key=ranks.get)}")
    print("service quickstart OK")


if __name__ == "__main__":
    main()
