#!/usr/bin/env python3
"""Social-network analytics on a dynamic graph (the paper's motivating case).

Builds the scaled StackOverflow-like interaction stream, loads it into a
CuckooGraph, and runs the analytics kernels of Section V-E -- BFS, SSSP,
triangle counting, connected components, PageRank, betweenness centrality and
local clustering -- on the subgraph induced by the most active users.

Run with::

    python examples/social_network_analytics.py
"""

import time

from repro import WeightedCuckooGraph
from repro.analytics import (
    all_local_clustering_coefficients,
    betweenness_centrality,
    bfs,
    count_triangles_of_node,
    dijkstra,
    pagerank,
    strongly_connected_components,
    top_degree_nodes,
    top_degree_subgraph,
)
from repro.datasets import load_dataset


def timed(label: str, function, *args, **kwargs):
    start = time.perf_counter()
    result = function(*args, **kwargs)
    print(f"  {label:<28s} {time.perf_counter() - start:8.4f} s")
    return result


def main() -> None:
    stream = load_dataset("StackOverflow")
    print(f"loaded {len(stream)} interactions "
          f"({len(stream.deduplicated())} distinct user pairs)")

    # The stream has duplicate interactions, so the weighted version applies.
    graph = WeightedCuckooGraph()
    start = time.perf_counter()
    for u, v in stream:
        graph.insert_weighted_edge(u, v)
    elapsed = time.perf_counter() - start
    print(f"inserted at {len(stream) / elapsed / 1e6:.3f} Mops "
          f"({graph.num_edges} distinct edges, "
          f"{graph.memory_bytes() / 1024:.1f} KiB modelled)")

    hubs = top_degree_nodes(graph, 10)
    print(f"\nmost active users: {hubs[:5]} ...")

    print("\nanalytics on the full graph:")
    reach = timed("BFS from the top user", bfs, graph, hubs[0])
    print(f"    -> reaches {len(reach)} users")
    triangles = timed("triangles around top user", count_triangles_of_node, graph, hubs[0])
    print(f"    -> {triangles} triangles")

    subgraph, nodes = top_degree_subgraph(graph, 150)
    print(f"\nanalytics on the {len(nodes)}-user core "
          f"({subgraph.num_edges} edges):")
    distances = timed("SSSP (Dijkstra)", dijkstra, subgraph, hubs[0])
    print(f"    -> {len(distances)} reachable users")
    components = timed("connected components", strongly_connected_components, subgraph)
    print(f"    -> {len(components)} strongly connected components")
    ranks = timed("PageRank (100 iterations)", pagerank, subgraph)
    best = max(ranks.items(), key=lambda item: item[1])
    print(f"    -> highest ranked user {best[0]} (score {best[1]:.4f})")
    centrality = timed("betweenness centrality", betweenness_centrality, subgraph)
    broker = max(centrality.items(), key=lambda item: item[1])
    print(f"    -> top broker {broker[0]} (centrality {broker[1]:.4f})")
    clustering = timed("local clustering", all_local_clustering_coefficients, subgraph)
    mean_lcc = sum(clustering.values()) / len(clustering)
    print(f"    -> mean clustering coefficient {mean_lcc:.4f}")


if __name__ == "__main__":
    main()
