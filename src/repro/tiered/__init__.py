"""Tiered hot/cold storage over the shard layout (see :mod:`.store`)."""

from .store import COLD_BACKENDS, TieredStore, TouchLRUPolicy

__all__ = ["COLD_BACKENDS", "TieredStore", "TouchLRUPolicy"]
