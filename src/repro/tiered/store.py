"""Tiered hot/cold storage: CuckooGraph shards in front, database spill behind.

The paper evaluates CuckooGraph as an in-memory structure; a deployment
serving graphs bigger than its memory budget keeps only the *hot* partitions
resident and spills the rest to a slower backing store.  :class:`TieredStore`
implements that split over the same source-node partitioning as
:class:`~repro.core.sharded.ShardedCuckooGraph`:

* **Routing.**  Every edge ``⟨u, v⟩`` lives on the shard owned by ``u``,
  chosen by the same multiply-shift hash (:func:`~repro.core.sharded.shard_index`),
  so a node's residency tier is a pure function of the shard layout, never of
  the access history.

* **Tiers.**  A hot shard is a complete :class:`~repro.core.graph.CuckooGraph`;
  a cold shard lives in one of the database integrations
  (:class:`~repro.integrations.RedisGraphStore` by default, or any factory the
  caller supplies).  Both speak the full :class:`~repro.interfaces.DynamicGraphStore`
  contract, so every operation delegates unchanged -- only latency and the
  modelled access counts differ between tiers.

* **Admission/eviction policy.**  A pluggable policy (default
  :class:`TouchLRUPolicy`: touch-count admission, least-recently-touched
  eviction) decides when a cold shard earned promotion into the hot tier and
  which hot shard pays for it with demotion.  Migrating a shard replays its
  distinct edges into a fresh store of the target tier.

* **Read stability.**  Policy decisions are applied only on *mutating*
  operations; reads bump the touch/hit counters but never migrate a shard.
  This keeps successor and edge iteration order frozen across read-only
  analytics sweeps, which is exactly what the engine-parity suites
  (byte-identical PageRank, order-identical BFS) require of every store in
  ``ALL_STORE_FACTORIES``.

* **Observability.**  ``hits`` / ``misses`` / ``promotions`` / ``demotions``
  plus per-shard touch counts surface through :meth:`tier_stats`, which the
  service layer folds into :class:`~repro.service.metrics.ServiceMetrics`
  (summary section ``"tiered"``) and the traffic harness samples for its SLO
  reports.
"""

from __future__ import annotations

from typing import Callable, Dict, Iterable, Iterator, List, Optional, Tuple

from ..core.config import CuckooGraphConfig, PAPER_CONFIG
from ..core.errors import ConfigurationError, StoreClosedError
from ..core.graph import CuckooGraph
from ..core.sharded import shard_index
from ..interfaces import DynamicGraphStore

#: Names accepted for the built-in cold-tier backends.
COLD_BACKENDS = ("redis", "neo4j")


def _cold_factory_for(backend: str) -> Callable[[], DynamicGraphStore]:
    # Imported lazily: repro.integrations pulls in the mini database engines,
    # which nothing else in the core import path needs.
    if backend == "redis":
        from ..integrations import RedisGraphStore

        return RedisGraphStore
    if backend == "neo4j":
        from ..integrations import Neo4jGraphStore

        return Neo4jGraphStore
    raise ConfigurationError(
        f"cold backend must be one of {COLD_BACKENDS}, got {backend!r}"
    )


class TouchLRUPolicy:
    """Touch-count admission with least-recently-touched eviction.

    A cold shard becomes a promotion candidate once it has accumulated
    ``promote_after`` touches since the last migration that involved it; it
    is admitted when its windowed touch count exceeds the windowed count of
    the least-recently-touched hot shard (the LRU victim, which is demoted
    in its place).  Both windows reset on migration, so a freshly demoted
    shard must re-earn its way back instead of thrashing.

    The policy is consulted only from mutating operations (see the module
    docstring); it is deterministic, so a replayed operation sequence always
    yields the same tier layout.
    """

    def __init__(self, promote_after: int = 4):
        if promote_after < 1:
            raise ConfigurationError(
                f"promote_after must be >= 1, got {promote_after}"
            )
        self.promote_after = promote_after

    def pick_swap(self, store: "TieredStore", shard: int) -> Optional[int]:
        """Victim hot shard to demote for promoting ``shard``, or ``None``."""
        if store._window_touches[shard] < self.promote_after:
            return None
        hot = [index for index in range(store.num_shards) if store._hot[index]]
        if not hot:
            return None
        victim = min(hot, key=lambda index: store._last_touch[index])
        if store._window_touches[shard] <= store._window_touches[victim]:
            return None
        return victim


class TieredStore(DynamicGraphStore):
    """Hot/cold tiered store speaking the full ``DynamicGraphStore`` contract.

    Args:
        num_shards: Number of hash partitions (``>= 1``).
        hot_shards: Partitions resident in the CuckooGraph tier (``1 ..
            num_shards``).  The first ``hot_shards`` shard indices start hot;
            the policy reshapes the set as traffic arrives.
        config: Base CuckooGraph configuration for hot shards; each shard
            derives its own hash seeds (``seed + shard index``), matching the
            sharded front-end.
        cold: Either a backend name from :data:`COLD_BACKENDS` or a factory
            returning an empty cold-tier store per shard.
        policy: Admission/eviction policy; defaults to
            :class:`TouchLRUPolicy`.
    """

    name = "TieredStore"

    def __init__(
        self,
        num_shards: int = 8,
        hot_shards: int = 2,
        *,
        config: Optional[CuckooGraphConfig] = None,
        cold: "str | Callable[[], DynamicGraphStore]" = "redis",
        policy: Optional[TouchLRUPolicy] = None,
    ):
        if num_shards < 1:
            raise ConfigurationError(f"num_shards must be >= 1, got {num_shards}")
        if not 1 <= hot_shards <= num_shards:
            raise ConfigurationError(
                f"hot_shards must be in 1..{num_shards}, got {hot_shards}"
            )
        self.num_shards = num_shards
        self.hot_shards = hot_shards
        self.config = config if config is not None else PAPER_CONFIG
        self._cold_spec = cold
        self._cold_factory = (
            _cold_factory_for(cold) if isinstance(cold, str) else cold
        )
        self.policy = policy if policy is not None else TouchLRUPolicy()
        self._hot: List[bool] = [index < hot_shards for index in range(num_shards)]
        self._stores: List[DynamicGraphStore] = [
            self._new_hot_store(index) if self._hot[index] else self._cold_factory()
            for index in range(num_shards)
        ]
        self._closed = False
        # -- tier telemetry ------------------------------------------------ #
        self.hits = 0          # touches served by the hot tier
        self.misses = 0        # touches served by the cold tier
        self.promotions = 0    # cold -> hot migrations
        self.demotions = 0     # hot -> cold migrations
        self._touches: List[int] = [0] * num_shards          # cumulative
        self._window_touches: List[int] = [0] * num_shards   # since migration
        self._last_touch: List[int] = [0] * num_shards       # recency clock
        self._clock = 0
        # Accesses of stores discarded by migration, so the store-wide
        # counter stays monotonic across tier rebuilds.
        self._carried_accesses = 0

    # ------------------------------------------------------------------ #
    # Tier plumbing
    # ------------------------------------------------------------------ #

    def _new_hot_store(self, shard: int) -> CuckooGraph:
        return CuckooGraph(self.config.with_overrides(seed=self.config.seed + shard))

    def shard_of(self, u: int) -> int:
        """Shard index owning node ``u`` (same hash as the sharded store)."""
        return shard_index(u, self.num_shards)

    def is_hot(self, shard: int) -> bool:
        """Whether ``shard`` currently resides in the CuckooGraph tier."""
        return self._hot[shard]

    def _ensure_open(self) -> None:
        if self._closed:
            raise StoreClosedError("store is closed")

    def _touch(self, shard: int, count: int, mutating: bool) -> None:
        """Record ``count`` operations landing on ``shard``; maybe migrate.

        Reads only update the counters; only a mutating touch may trigger a
        promotion/demotion swap (read stability, see the module docstring).
        """
        self._clock += 1
        self._touches[shard] += count
        self._window_touches[shard] += count
        self._last_touch[shard] = self._clock
        if self._hot[shard]:
            self.hits += count
        else:
            self.misses += count
            if mutating:
                victim = self.policy.pick_swap(self, shard)
                if victim is not None:
                    self._swap(promote=shard, demote=victim)

    def _swap(self, promote: int, demote: int) -> None:
        """Promote one cold shard, demote one hot shard, reset their windows."""
        self._migrate(promote, self._new_hot_store(promote))
        self._migrate(demote, self._cold_factory())
        self._hot[promote] = True
        self._hot[demote] = False
        self.promotions += 1
        self.demotions += 1
        self._window_touches[promote] = 0
        self._window_touches[demote] = 0

    def _migrate(self, shard: int, target: DynamicGraphStore) -> None:
        source = self._stores[shard]
        target.insert_edges(list(source.edges()))
        self._carried_accesses += getattr(source, "accesses", 0)
        close = getattr(source, "close", None)
        if callable(close):
            close()
        self._stores[shard] = target

    # ------------------------------------------------------------------ #
    # DynamicGraphStore contract
    # ------------------------------------------------------------------ #

    def insert_edge(self, u: int, v: int) -> bool:
        self._ensure_open()
        shard = self.shard_of(u)
        self._touch(shard, 1, mutating=True)
        return self._stores[shard].insert_edge(u, v)

    def delete_edge(self, u: int, v: int) -> bool:
        self._ensure_open()
        shard = self.shard_of(u)
        self._touch(shard, 1, mutating=True)
        return self._stores[shard].delete_edge(u, v)

    def has_edge(self, u: int, v: int) -> bool:
        self._ensure_open()
        shard = self.shard_of(u)
        self._touch(shard, 1, mutating=False)
        return self._stores[shard].has_edge(u, v)

    def successors(self, u: int) -> list[int]:
        self._ensure_open()
        shard = self.shard_of(u)
        self._touch(shard, 1, mutating=False)
        return self._stores[shard].successors(u)

    def _group(self, positions: Iterable[Tuple[int, object]]):
        """Group ``(shard, item)`` pairs per shard, preserving input order."""
        groups: Dict[int, list] = {}
        for shard, item in positions:
            groups.setdefault(shard, []).append(item)
        return groups

    def insert_edges(self, edges: Iterable[tuple[int, int]]) -> int:
        self._ensure_open()
        groups = self._group((self.shard_of(u), (u, v)) for u, v in edges)
        inserted = 0
        for shard, group in groups.items():
            # Touch (and maybe migrate) before the batch executes, so the
            # whole group lands in the shard's post-migration tier.
            self._touch(shard, len(group), mutating=True)
            inserted += self._stores[shard].insert_edges(group)
        return inserted

    def delete_edges(self, edges: Iterable[tuple[int, int]]) -> int:
        self._ensure_open()
        groups = self._group((self.shard_of(u), (u, v)) for u, v in edges)
        deleted = 0
        for shard, group in groups.items():
            self._touch(shard, len(group), mutating=True)
            deleted += self._stores[shard].delete_edges(group)
        return deleted

    def has_edges(self, edges: Iterable[tuple[int, int]]) -> list[bool]:
        self._ensure_open()
        pairs = list(edges)
        groups = self._group(
            (self.shard_of(u), (position, (u, v)))
            for position, (u, v) in enumerate(pairs)
        )
        results: list[bool] = [False] * len(pairs)
        for shard, group in groups.items():
            self._touch(shard, len(group), mutating=False)
            answers = self._stores[shard].has_edges([edge for _, edge in group])
            for (position, _), answer in zip(group, answers):
                results[position] = answer
        return results

    def successors_many(self, nodes: Iterable[int]) -> dict[int, list[int]]:
        self._ensure_open()
        distinct = list(dict.fromkeys(nodes))
        groups = self._group((self.shard_of(u), u) for u in distinct)
        fanned: Dict[int, list[int]] = {}
        for shard, group in groups.items():
            self._touch(shard, len(group), mutating=False)
            fanned.update(self._stores[shard].successors_many(group))
        # Re-key in first-occurrence order of the input (the batch contract).
        return {u: fanned[u] for u in distinct}

    def memory_bytes(self) -> int:
        return sum(store.memory_bytes() for store in self._stores)

    @property
    def num_edges(self) -> int:
        return sum(store.num_edges for store in self._stores)

    def edges(self) -> Iterator[tuple[int, int]]:
        for store in self._stores:
            yield from store.edges()

    def spawn_empty(self) -> "TieredStore":
        return TieredStore(
            num_shards=self.num_shards,
            hot_shards=self.hot_shards,
            config=self.config,
            cold=self._cold_spec,
            policy=self.policy,
        )

    # ------------------------------------------------------------------ #
    # Telemetry and lifecycle
    # ------------------------------------------------------------------ #

    @property
    def accesses(self) -> int:
        return self._carried_accesses + sum(
            getattr(store, "accesses", 0) for store in self._stores
        )

    @accesses.setter
    def accesses(self, value: int) -> None:
        if value != 0:
            raise ConfigurationError("accesses can only be reset to 0")
        self.reset_accesses()

    def reset_accesses(self) -> None:
        self._carried_accesses = 0
        for store in self._stores:
            reset = getattr(store, "reset_accesses", None)
            if callable(reset):
                reset()

    def tier_stats(self) -> Dict[str, object]:
        """Snapshot of the tier telemetry (all counters are cumulative)."""
        touches = self.hits + self.misses
        return {
            "num_shards": self.num_shards,
            "hot_shards": sum(self._hot),
            "hot_set": [index for index in range(self.num_shards) if self._hot[index]],
            "touches": touches,
            "hits": self.hits,
            "misses": self.misses,
            "hit_rate": (self.hits / touches) if touches else 0.0,
            "promotions": self.promotions,
            "demotions": self.demotions,
            "shard_touches": list(self._touches),
        }

    def structure_summary(self) -> Dict[str, object]:
        """Per-tier shape plus the tier telemetry (for reports/debugging)."""
        return {
            "scheme": self.name,
            "edges": self.num_edges,
            "memory_bytes": self.memory_bytes(),
            "tiers": {
                str(index): {
                    "tier": "hot" if self._hot[index] else "cold",
                    "backend": self._stores[index].name,
                    "edges": self._stores[index].num_edges,
                }
                for index in range(self.num_shards)
            },
            **{"tier_stats": self.tier_stats()},
        }

    @property
    def closed(self) -> bool:
        return self._closed

    def close(self) -> None:
        """Close every tier store.  Terminal and idempotent."""
        if self._closed:
            return
        self._closed = True
        for store in self._stores:
            close = getattr(store, "close", None)
            if callable(close):
                close()

    def __repr__(self) -> str:
        hot = sum(self._hot)
        return (
            f"TieredStore(shards={self.num_shards}, hot={hot}, "
            f"edges={self.num_edges}, hit_rate={self.tier_stats()['hit_rate']:.3f})"
        )
