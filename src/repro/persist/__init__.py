"""Durability subsystem: write-ahead log, snapshots and crash recovery.

Any :class:`~repro.interfaces.DynamicGraphStore` becomes restartable by
wrapping it in a :class:`PersistentStore`: mutations are appended to a
checksummed binary write-ahead log *before* they are applied (one record
per batch call per touched segment -- which is what makes group commit
cheap), a
snapshot-plus-truncate compaction bounds log growth, and :func:`recover`
replays snapshot and log into a fresh store of any registered scheme.
Sharded stores log one WAL segment per shard, so recovery can replay them
in parallel.

Quickstart::

    from repro.persist import PersistentStore, recover

    with PersistentStore("/tmp/graph", scheme="sharded") as store:
        store.insert_edges([(1, 2), (1, 3)])

    # ... process crashes and restarts ...
    store = recover("/tmp/graph")
    assert store.has_edge(1, 2)
"""

from .snapshot import (
    CompactionEvent,
    CompactionPolicy,
    KIND_PLAIN,
    KIND_WEIGHTED,
    SNAPSHOT_MAGIC,
    fsync_directory,
    load_snapshot,
    read_snapshot,
    snapshot_generation,
    snapshot_rows,
    write_snapshot,
)
from .store import (
    LOCK_NAME,
    MANIFEST_FORMAT,
    MANIFEST_NAME,
    PersistentStore,
    SNAPSHOT_NAME,
    STORE_SCHEMES,
    apply_op,
    open_or_create,
    recover,
    register_scheme,
    replay_into,
)
from .wal import (
    DELETE,
    FRAME_HEADER,
    INSERT,
    INSERT_WEIGHTED,
    WAL_HEADER_SIZE,
    WAL_MAGIC,
    WalPosition,
    WriteAheadLog,
    decode_edges,
    decode_nodes,
    decode_ops,
    encode_edges,
    encode_frame,
    encode_nodes,
    encode_ops,
    read_wal,
    read_wal_records,
)

__all__ = [
    "CompactionEvent",
    "CompactionPolicy",
    "DELETE",
    "FRAME_HEADER",
    "INSERT",
    "INSERT_WEIGHTED",
    "KIND_PLAIN",
    "KIND_WEIGHTED",
    "LOCK_NAME",
    "MANIFEST_FORMAT",
    "MANIFEST_NAME",
    "PersistentStore",
    "SNAPSHOT_MAGIC",
    "SNAPSHOT_NAME",
    "STORE_SCHEMES",
    "WAL_HEADER_SIZE",
    "WAL_MAGIC",
    "WalPosition",
    "WriteAheadLog",
    "apply_op",
    "decode_edges",
    "decode_nodes",
    "decode_ops",
    "encode_edges",
    "encode_frame",
    "encode_nodes",
    "encode_ops",
    "fsync_directory",
    "load_snapshot",
    "open_or_create",
    "read_snapshot",
    "read_wal",
    "read_wal_records",
    "recover",
    "register_scheme",
    "replay_into",
    "snapshot_generation",
    "snapshot_rows",
    "write_snapshot",
]
