"""Checksummed binary snapshots of a store's logical edge set.

A snapshot captures what the WAL would rebuild -- the *logical* content of a
:class:`~repro.interfaces.DynamicGraphStore`, not its physical layout -- so
recovery can load it into a fresh store of **any** registered scheme and
then replay only the WAL records appended since.  Three store families are
recognised:

* **weighted** stores (anything exposing ``weighted_edges``) snapshot
  ``(u, v, w)`` triples, so duplicate-edge counts survive a restart;
* **multi-edge** stores (anything exposing ``edge_multiplicity``) snapshot
  the pair multiplicities the same way -- parallel-edge identifiers are
  regenerated on load, multiplicity is preserved;
* everything else snapshots plain ``(u, v)`` pairs.

Format: an 8-byte magic header, a fixed header (``kind`` byte, 8-byte row
count, 8-byte checkpoint generation, CRC32 of the body), then the packed
rows.  The file is written to a
temporary sibling and atomically renamed into place, so a crash during
snapshotting leaves the previous snapshot untouched; a file that fails
validation therefore raises
:class:`~repro.core.errors.SnapshotCorruptError` instead of being
tolerated the way a torn WAL tail is.

:class:`CompactionPolicy` is the size trigger that ties the two halves of
the subsystem together: once the WAL grows past a threshold, the store
snapshots itself and truncates the log, bounding both recovery time and
disk usage.
"""

from __future__ import annotations

import os
import struct
import zlib
from dataclasses import dataclass, field
from pathlib import Path
from typing import Callable, List, Optional, Tuple

from ..core.errors import SnapshotCorruptError
from ..interfaces import DynamicGraphStore
from .wal import fsync_directory

#: Magic header identifying a CuckooGraph snapshot (8 bytes, versioned).
SNAPSHOT_MAGIC = b"CKGRSNP1"

#: Snapshot kinds: plain distinct edges vs weight/multiplicity triples.
KIND_PLAIN = 0
KIND_WEIGHTED = 1

_HEADER = struct.Struct("<BQQI")  # kind, row count, generation, CRC32 of the body
_PLAIN_ROW = struct.Struct("<qq")
_WEIGHTED_ROW = struct.Struct("<qqq")


def snapshot_rows(store: DynamicGraphStore) -> Tuple[int, List[tuple]]:
    """The ``(kind, rows)`` a snapshot of ``store`` should contain."""
    weighted_edges = getattr(store, "weighted_edges", None)
    if callable(weighted_edges) and getattr(store, "weighted", True):
        return KIND_WEIGHTED, sorted(weighted_edges())
    multiplicity = getattr(store, "edge_multiplicity", None)
    if callable(multiplicity):
        return KIND_WEIGHTED, sorted((u, v, multiplicity(u, v)) for u, v in store.edges())
    return KIND_PLAIN, sorted(store.edges())


def write_snapshot(path: os.PathLike | str, store: DynamicGraphStore,
                   generation: int = 0) -> int:
    """Serialise ``store``'s logical edge set to ``path``; return the row count.

    The write is atomic (temporary file + ``os.replace``), so ``path`` only
    ever holds a complete snapshot.  ``generation`` is the checkpoint
    counter that makes compaction crash-atomic: the rename is the commit
    point, and WAL segments stamped with an *older* generation are known to
    be folded into this snapshot already (see :mod:`repro.persist.wal`).
    """
    path = Path(path)
    kind, rows = snapshot_rows(store)
    packer = _WEIGHTED_ROW if kind == KIND_WEIGHTED else _PLAIN_ROW
    body = b"".join(packer.pack(*row) for row in rows)
    header = SNAPSHOT_MAGIC + _HEADER.pack(kind, len(rows), generation, zlib.crc32(body))
    temp = path.with_name(path.name + ".tmp")
    with open(temp, "wb") as file:
        file.write(header)
        file.write(body)
        file.flush()
        os.fsync(file.fileno())
    os.replace(temp, path)
    fsync_directory(path.parent)
    return len(rows)


def read_snapshot(path: os.PathLike | str) -> Tuple[int, int, List[tuple]]:
    """Read and validate a snapshot; return ``(kind, generation, rows)``.

    Raises :class:`SnapshotCorruptError` when the magic header, row count or
    body checksum does not hold -- snapshots are atomically replaced, so
    this is never the signature of a crash.
    """
    path = Path(path)
    data = path.read_bytes()
    prefix = len(SNAPSHOT_MAGIC)
    if data[:prefix] != SNAPSHOT_MAGIC:
        raise SnapshotCorruptError(f"{path} does not start with a snapshot magic header")
    if len(data) < prefix + _HEADER.size:
        raise SnapshotCorruptError(f"{path} is shorter than a snapshot header")
    kind, count, generation, crc = _HEADER.unpack_from(data, prefix)
    if kind not in (KIND_PLAIN, KIND_WEIGHTED):
        raise SnapshotCorruptError(f"{path} declares unknown snapshot kind {kind}")
    packer = _WEIGHTED_ROW if kind == KIND_WEIGHTED else _PLAIN_ROW
    body = data[prefix + _HEADER.size:]
    if len(body) != count * packer.size:
        raise SnapshotCorruptError(
            f"{path} declares {count} rows but carries {len(body)} body bytes"
        )
    if zlib.crc32(body) != crc:
        raise SnapshotCorruptError(f"{path} failed its body checksum")
    rows = [packer.unpack_from(body, index * packer.size) for index in range(count)]
    return kind, generation, rows


def snapshot_generation(path: os.PathLike | str) -> int:
    """The checkpoint generation stamped in a snapshot's header (0 if absent).

    Reads only the fixed header -- the body checksum is left to
    :func:`read_snapshot` -- so cursor/position validation against the
    current checkpoint baseline stays cheap on large snapshots.
    """
    path = Path(path)
    if not path.exists():
        return 0
    with open(path, "rb") as file:
        head = file.read(len(SNAPSHOT_MAGIC) + _HEADER.size)
    if head[: len(SNAPSHOT_MAGIC)] != SNAPSHOT_MAGIC:
        raise SnapshotCorruptError(f"{path} does not start with a snapshot magic header")
    if len(head) < len(SNAPSHOT_MAGIC) + _HEADER.size:
        raise SnapshotCorruptError(f"{path} is shorter than a snapshot header")
    return _HEADER.unpack_from(head, len(SNAPSHOT_MAGIC))[2]


def load_snapshot(path: os.PathLike | str, store: DynamicGraphStore) -> Tuple[int, int]:
    """Load a snapshot into a fresh ``store``; return ``(rows, generation)``.

    A missing file loads zero rows at generation 0 (a store that never
    compacted has no snapshot, only WAL).  Weighted rows are applied
    through ``insert_weighted_edge`` when the target supports it; a
    multi-edge target gets one ``insert_edge`` per unit of multiplicity; a
    plain target collapses each triple to a single distinct edge.
    """
    path = Path(path)
    if not path.exists():
        return 0, 0
    kind, generation, rows = read_snapshot(path)
    if kind == KIND_PLAIN:
        store.insert_edges((u, v) for u, v in rows)
        return len(rows), generation
    insert_weighted = getattr(store, "insert_weighted_edge", None)
    multi_edge = callable(getattr(store, "edge_multiplicity", None))
    for u, v, weight in rows:
        if callable(insert_weighted):
            insert_weighted(u, v, weight)
        elif multi_edge:
            for _ in range(weight):
                store.insert_edge(u, v)
        else:
            store.insert_edge(u, v)
    return len(rows), generation


@dataclass(frozen=True)
class CompactionEvent:
    """What a checkpoint is about to fold away, reported *before* truncation.

    A WAL tailer (a replication primary, an incremental
    :func:`~repro.persist.store.replay_into` probe) keeps a byte position
    into each segment; truncation moves the segments out from under that
    position.  This event closes the window: it fires after the store state
    is final for the checkpoint but before the snapshot rename and the
    segment truncations, carrying the generation the segments still hold
    (``generation``), the generation the checkpoint will commit
    (``new_generation``), and the pre-truncation end offset of every
    segment (``wal_offsets``, buffered-but-unsynced appends included) -- so
    a subscriber can ship or fold everything up to those offsets and then
    treat the generation bump as a clean cursor reset instead of silently
    losing its position mid-stream.
    """

    path: Path
    generation: int
    new_generation: int
    wal_offsets: Tuple[int, ...]


@dataclass(frozen=True)
class CompactionPolicy:
    """When to fold the WAL into a snapshot and truncate it.

    ``max_wal_bytes=None`` disables compaction (the log grows forever,
    which the crash-recovery tests rely on to keep every commit visible).

    Subscribers registered with :meth:`subscribe` are called with a
    :class:`CompactionEvent` every time a checkpoint is about to truncate
    the WAL -- threshold-triggered *and* explicit
    :meth:`~repro.persist.store.PersistentStore.checkpoint` calls both --
    which is how a log tailer keeps its cursor valid across compactions.
    """

    max_wal_bytes: Optional[int] = 1 << 20
    subscribers: List[Callable[[CompactionEvent], None]] = field(
        default_factory=list, compare=False, repr=False
    )

    def should_compact(self, wal_bytes: int) -> bool:
        """Whether a log of ``wal_bytes`` total bytes warrants compaction."""
        return self.max_wal_bytes is not None and wal_bytes > self.max_wal_bytes

    def subscribe(self, callback: Callable[[CompactionEvent], None]) -> None:
        """Register ``callback`` to run before every WAL truncation."""
        self.subscribers.append(callback)

    def unsubscribe(self, callback: Callable[[CompactionEvent], None]) -> None:
        """Remove a subscriber registered with :meth:`subscribe` (idempotent)."""
        if callback in self.subscribers:
            self.subscribers.remove(callback)

    def notify(self, event: CompactionEvent) -> None:
        """Deliver ``event`` to every subscriber, in registration order."""
        for callback in list(self.subscribers):
            callback(event)
