"""Binary write-ahead log with checksummed, length-framed group commits.

The durability idiom is the one the repo already models for LiveGraph's
Transactional Edge Log and Redis' AOF, promoted to a real subsystem: every
mutation is encoded into a compact binary record and appended to a log
*before* it is applied to the in-memory structure, so a crash can lose at
most the commits that never reached the disk.

Framing.  A log file starts with a 16-byte header -- an 8-byte magic plus
the 8-byte **generation** the segment was created or last truncated at
(see below) -- and then holds a sequence of records::

    +----------+----------+------------------+
    | length   | crc32    | payload          |
    | 4B <I    | 4B <I    | ``length`` bytes |
    +----------+----------+------------------+

One record is one **group commit**: the payload concatenates every
operation of one batched mutation call (``insert_edges`` of 500 edges is a
single record, a single ``fsync``).  Each operation is an opcode byte plus
8-byte little-endian signed node identifiers (the paper uses 8-byte ids):
``insert``/``delete`` carry ``(u, v)``, ``insert_w`` carries
``(u, v, delta)`` for weighted stores.

Torn tails.  A crash mid-append leaves a final record whose header, payload
or checksum is incomplete.  :func:`read_wal` treats the first structurally
incomplete record as the end of the log -- the standard WAL reading rule:
it returns every complete record before that point plus the byte offset up
to which the file is valid, and :func:`~repro.persist.store.recover`
truncates the file there before appending resumes.  Damage the reader *can*
prove a crashed append never produces -- a foreign magic header, a checksum
mismatch on a record with more data after it, an undecodable opcode inside
a checksum-valid record -- raises
:class:`~repro.core.errors.WalCorruptError` instead of being skipped.  (A
corrupted *length* field that claims past end-of-file is structurally
indistinguishable from a torn tail and is treated as one.)

Generations.  Compaction must be crash-atomic: the snapshot is written (and
atomically renamed) first, then every segment is truncated.  A crash in
between would leave records on disk that the snapshot already contains --
replaying them would double-apply weighted deltas.  The generation stamp
closes that window: a checkpoint writes generation ``G`` into the snapshot
(the rename is the commit point) and then truncates each segment to a
header stamped ``G``; recovery skips -- and re-truncates -- any segment
whose generation is older than the snapshot's, because its content is by
construction already folded in.
"""

from __future__ import annotations

import os
import struct
import zlib
from dataclasses import dataclass
from pathlib import Path
from typing import Iterable, List, Tuple

from ..core.errors import PersistenceError, WalCorruptError

#: Magic identifying a CuckooGraph WAL segment (8 bytes, versioned).
WAL_MAGIC = b"CKGRWAL1"

#: Generation stamp following the magic (see module docstring).
_GENERATION = struct.Struct("<Q")

#: Total file-header size: magic + generation.
WAL_HEADER_SIZE = len(WAL_MAGIC) + _GENERATION.size

#: Record header: payload length + CRC32 of the payload.
_RECORD_HEADER = struct.Struct("<II")

#: The record framing, public: the replication socket transport reuses it
#: as its wire frame (length-prefixed, CRC-checked), so a network message
#: is framed exactly like a WAL record.
FRAME_HEADER = _RECORD_HEADER


def encode_frame(payload: bytes) -> bytes:
    """Frame ``payload`` the way a WAL record is framed on disk."""
    return FRAME_HEADER.pack(len(payload), zlib.crc32(payload)) + payload

#: Opcode byte values used in record payloads.
OP_INSERT = 1
OP_DELETE = 2
OP_INSERT_WEIGHTED = 3

#: Logical operation tags as they appear in op tuples.
INSERT = "insert"
DELETE = "delete"
INSERT_WEIGHTED = "insert_w"

_EDGE_OP = struct.Struct("<Bqq")
_WEIGHTED_OP = struct.Struct("<Bqqq")

#: ``op tag -> (opcode, struct)`` for the encoder.
_ENCODERS = {
    INSERT: (OP_INSERT, _EDGE_OP),
    DELETE: (OP_DELETE, _EDGE_OP),
    INSERT_WEIGHTED: (OP_INSERT_WEIGHTED, _WEIGHTED_OP),
}

#: ``opcode -> (tag, struct)`` for the decoder.
_DECODERS = {
    OP_INSERT: (INSERT, _EDGE_OP),
    OP_DELETE: (DELETE, _EDGE_OP),
    OP_INSERT_WEIGHTED: (INSERT_WEIGHTED, _WEIGHTED_OP),
}

#: An op tuple: ``("insert"|"delete", u, v)`` or ``("insert_w", u, v, delta)``.
Op = tuple

#: Flat codecs for the query side of the shard RPC (see below): one edge and
#: one node, little-endian signed 8-byte ids, matching the WAL op structs.
_EDGE_PAIR = struct.Struct("<qq")
_NODE_ID = struct.Struct("<q")


@dataclass(frozen=True)
class WalPosition:
    """An exact group-commit cut through a store directory's WAL segments.

    ``offsets[i]`` is the absolute byte offset just past the last included
    record of segment ``i`` (``WAL_HEADER_SIZE`` for "nothing included");
    ``generation`` is the checkpoint generation the offsets are relative to
    -- a position taken before a compaction is meaningless afterwards, and
    consumers (:func:`~repro.persist.store.recover` with ``upto=``) refuse
    it.  Because every operation on a source node lands in that node's own
    segment, any per-segment prefix set is a consistent state: replaying the
    segments up to these offsets, in any order, reproduces exactly the state
    a follower had when it reported the position.
    """

    generation: int
    offsets: Tuple[int, ...]

    @property
    def segments(self) -> int:
        return len(self.offsets)


def fsync_directory(directory: os.PathLike | str) -> None:
    """Make a file creation or rename in ``directory`` itself durable.

    ``open(..., "ab")`` and ``os.replace`` update a directory entry; on
    common filesystems that entry is not on disk until the *directory* is
    fsynced.  Segment creation, snapshots and manifests all go through
    this, so a power loss cannot lose a file whose contents were already
    fsynced, nor resurrect a pre-rename file after later fsynced writes
    survived.
    """
    fd = os.open(directory, os.O_RDONLY)
    try:
        os.fsync(fd)
    finally:
        os.close(fd)


def encode_ops(ops: Iterable[Op]) -> bytes:
    """Serialise a group commit's operations into one record payload."""
    parts: list[bytes] = []
    for op in ops:
        tag = op[0]
        try:
            opcode, packer = _ENCODERS[tag]
        except KeyError:
            raise PersistenceError(f"unknown WAL operation tag {tag!r}") from None
        parts.append(packer.pack(opcode, *op[1:]))
    return b"".join(parts)


def decode_ops(payload: bytes) -> List[Op]:
    """Parse one record payload back into its operation tuples.

    Raises :class:`WalCorruptError` on an unknown opcode or a truncated
    operation; the payload has already passed its CRC, so either means the
    record was written by something other than :func:`encode_ops`.
    """
    ops: List[Op] = []
    offset = 0
    length = len(payload)
    while offset < length:
        opcode = payload[offset]
        entry = _DECODERS.get(opcode)
        if entry is None:
            raise WalCorruptError(f"unknown WAL opcode {opcode} at payload offset {offset}")
        tag, packer = entry
        end = offset + packer.size
        if end > length:
            raise WalCorruptError(f"truncated WAL operation at payload offset {offset}")
        fields = packer.unpack_from(payload, offset)
        ops.append((tag, *fields[1:]))
        offset = end
    return ops


def encode_edges(edges: Iterable[Tuple[int, int]]) -> bytes:
    """Serialise ``(u, v)`` pairs into a flat little-endian payload.

    Together with :func:`encode_ops`/:func:`decode_ops` (the mutation side)
    these four codecs are the complete serialization of the shard RPC used
    by ``ShardedCuckooGraph(executor="processes")``: membership probes and
    successor fan-outs cross the process boundary as the same 8-byte signed
    node ids the WAL records use, so nothing bespoke crosses the pickle
    boundary.
    """
    pack = _EDGE_PAIR.pack
    return b"".join(pack(u, v) for u, v in edges)


def decode_edges(payload: bytes) -> List[Tuple[int, int]]:
    """Parse an :func:`encode_edges` payload back into ``(u, v)`` pairs."""
    size = _EDGE_PAIR.size
    if len(payload) % size:
        raise PersistenceError(
            f"edge payload length {len(payload)} is not a multiple of {size}"
        )
    unpack = _EDGE_PAIR.unpack_from
    return [unpack(payload, offset) for offset in range(0, len(payload), size)]


def encode_nodes(nodes: Iterable[int]) -> bytes:
    """Serialise node ids into a flat little-endian payload (see
    :func:`encode_edges`)."""
    pack = _NODE_ID.pack
    return b"".join(pack(u) for u in nodes)


def decode_nodes(payload: bytes) -> List[int]:
    """Parse an :func:`encode_nodes` payload back into node ids."""
    size = _NODE_ID.size
    if len(payload) % size:
        raise PersistenceError(
            f"node payload length {len(payload)} is not a multiple of {size}"
        )
    unpack = _NODE_ID.unpack_from
    return [unpack(payload, offset)[0]
            for offset in range(0, len(payload), size)]


def read_wal_records(
    path: os.PathLike | str,
    from_offset: int | None = None,
    expected_generation: int | None = None,
) -> Tuple[int | None, List[Tuple[List[Op], int]], int]:
    """Read a WAL segment, tolerating a torn final record.

    Returns ``(generation, records, valid_length)``: the generation stamped
    in the segment header (``None`` if no complete header exists), one
    ``(ops, end_offset)`` pair per complete group-commit record in append
    order (``end_offset`` is the byte offset just past the record), and the
    byte offset up to which the file holds complete records.
    ``valid_length`` is what recovery truncates the file to before
    appending resumes.  A missing or empty file yields ``(None, [], 0)``; a
    partially written header (torn initial create) also yields
    ``(None, [], 0)``.  A *wrong* magic raises :class:`WalCorruptError`.

    ``from_offset`` makes the read incremental: only the bytes past that
    (absolute, record-boundary) offset are read from disk -- the header is
    still consulted for the generation, but a tailer polling a growing
    segment pays for the *new* records, not the whole file on every probe.
    Record end offsets and ``valid_length`` stay absolute, so the returned
    ``valid_length`` is the natural ``from_offset`` of the next poll.  An
    offset past the current end of file returns no records and
    ``valid_length == from_offset`` (nothing new yet).

    A cursor offset is only meaningful at the generation it was taken:
    compaction truncates the segment, and later appends can regrow it past
    the old offset, where parsing would start mid-record.  Always pass the
    cursor's generation as ``expected_generation`` alongside
    ``from_offset``; when the header disagrees the call returns
    ``(generation, [], from_offset)`` without touching record data, and
    the caller resets its cursor for the new generation.
    """
    path = Path(path)
    if not path.exists():
        return None, [], 0
    with open(path, "rb") as file:
        head = file.read(WAL_HEADER_SIZE)
        if len(head) < len(WAL_MAGIC):
            if WAL_MAGIC.startswith(head):
                return None, [], 0  # torn header write: no commit ever completed
            raise WalCorruptError(f"{path} does not start with a WAL magic header")
        if head[: len(WAL_MAGIC)] != WAL_MAGIC:
            raise WalCorruptError(f"{path} has a foreign magic header")
        if len(head) < WAL_HEADER_SIZE:
            return None, [], 0  # generation stamp torn mid-create
        generation = _GENERATION.unpack_from(head, len(WAL_MAGIC))[0]
        start = WAL_HEADER_SIZE
        if from_offset is not None:
            if from_offset < WAL_HEADER_SIZE:
                raise PersistenceError(
                    f"from_offset {from_offset} is inside the {path} header"
                )
            if expected_generation is not None and \
                    generation != expected_generation:
                # The cursor belongs to another generation: a compaction
                # truncated the segment, and later appends may have regrown
                # it past the old offset -- where parsing would start
                # mid-record and misread payload bytes as framing.  Return
                # the header verdict untouched; the caller resets.
                return generation, [], from_offset
            size = path.stat().st_size
            if from_offset > size:
                # The segment shrank (compaction truncated it); report
                # "nothing new" -- the caller sees the generation and resets.
                return generation, [], from_offset
            file.seek(from_offset)
            start = from_offset
        data = file.read()

    records: List[Tuple[List[Op], int]] = []
    offset = 0
    total = len(data)
    while True:
        header_end = offset + _RECORD_HEADER.size
        if header_end > total:
            break  # torn record header
        length, crc = _RECORD_HEADER.unpack_from(data, offset)
        payload_end = header_end + length
        if payload_end > total:
            break  # torn payload
        payload = data[header_end:payload_end]
        if zlib.crc32(payload) != crc:
            if payload_end == total:
                break  # torn final record: checksum never completed
            raise WalCorruptError(
                f"{path}: checksum mismatch in a non-final record at "
                f"offset {start + offset}"
            )
        records.append((decode_ops(payload), start + payload_end))
        offset = payload_end
    return generation, records, start + offset


def read_wal(path: os.PathLike | str) -> Tuple[int | None, List[List[Op]], int]:
    """Like :func:`read_wal_records`, returning just the op batches."""
    generation, records, valid_length = read_wal_records(path)
    return generation, [ops for ops, _ in records], valid_length


class WriteAheadLog:
    """Append-only log of group-commit records for one WAL segment.

    Args:
        path: Segment file; created (with its header) on first append.
        sync_on_commit: ``True`` fsyncs after every appended record, making
            each commit individually durable; ``False`` buffers appends and
            leaves the fsync to an explicit :meth:`sync` (the group-commit
            deferral the service layer exploits).
        generation: Stamp written into the header of a *fresh* segment; an
            existing segment keeps the generation already on disk.

    The file handle is opened lazily, so a log constructed purely to *read*
    (recovery) never takes a second writer on the segment.
    """

    def __init__(self, path: os.PathLike | str, sync_on_commit: bool = True,
                 generation: int = 0):
        self.path = Path(path)
        self.sync_on_commit = sync_on_commit
        self.generation = generation
        self._file = None
        self._closed = False
        self._dirty = False  # buffered records not yet fsynced
        self._size = self.path.stat().st_size if self.path.exists() else 0
        #: Group-commit records appended through this handle.
        self.records_appended = 0
        #: fsync calls issued (per-commit or explicit).
        self.syncs = 0

    # ------------------------------------------------------------------ #
    # Lifecycle
    # ------------------------------------------------------------------ #

    @property
    def size_bytes(self) -> int:
        """Current segment size in bytes (header included)."""
        return self._size

    @property
    def closed(self) -> bool:
        return self._closed

    def _ensure_open(self):
        if self._closed:
            raise PersistenceError(f"WAL segment {self.path} is closed")
        if self._file is None:
            self.path.parent.mkdir(parents=True, exist_ok=True)
            if self._size >= WAL_HEADER_SIZE:
                with open(self.path, "rb") as existing:
                    header = existing.read(WAL_HEADER_SIZE)
                if header[: len(WAL_MAGIC)] != WAL_MAGIC:
                    raise WalCorruptError(f"{self.path} has a foreign magic header")
                self.generation = _GENERATION.unpack_from(header, len(WAL_MAGIC))[0]
            created = not self.path.exists()
            self._file = open(self.path, "ab")
            if created:
                # The new directory entry must be durable before any record
                # in the file is: otherwise a power loss could drop the
                # whole segment while recovery still finds the manifest and
                # silently reports the (fsynced!) commits as never made.
                fsync_directory(self.path.parent)
            if self._size < WAL_HEADER_SIZE:
                # Fresh (or torn-at-create) segment: (re)write the header.
                self._file.truncate(0)
                self._file.write(WAL_MAGIC + _GENERATION.pack(self.generation))
                self._file.flush()
                self._size = WAL_HEADER_SIZE
        return self._file

    def close(self) -> None:
        """Flush, fsync unsynced records and release the segment.

        Idempotent and terminal.
        """
        if self._closed:
            return
        if self._file is not None:
            self._file.flush()
            if self._dirty:
                os.fsync(self._file.fileno())
                self.syncs += 1
                self._dirty = False
            self._file.close()
            self._file = None
        self._closed = True

    # ------------------------------------------------------------------ #
    # Appending
    # ------------------------------------------------------------------ #

    def append_batch(self, ops: Iterable[Op]) -> int:
        """Append one group-commit record; return the bytes written.

        An empty operation list is a no-op (nothing to make durable), so
        callers can pass mutation batches through without special-casing.
        """
        payload = encode_ops(ops)
        if not payload:
            return 0
        file = self._ensure_open()
        record = _RECORD_HEADER.pack(len(payload), zlib.crc32(payload)) + payload
        file.write(record)
        self._size += len(record)
        self.records_appended += 1
        if self.sync_on_commit:
            file.flush()
            os.fsync(file.fileno())
            self.syncs += 1
        else:
            self._dirty = True
        return len(record)

    def sync(self) -> None:
        """Flush buffered records to the disk (one fsync for all of them).

        A no-op on a segment with nothing unsynced, so a multi-segment
        store's group commit costs one fsync per segment the batch actually
        *touched*, not one per shard.
        """
        if self._closed:
            raise PersistenceError(f"WAL segment {self.path} is closed")
        if self._file is not None and self._dirty:
            self._file.flush()
            os.fsync(self._file.fileno())
            self.syncs += 1
            self._dirty = False

    def rewind_to(self, size: int) -> None:
        """Drop everything appended past byte offset ``size``.

        Compensation hook for a write-ahead caller whose *apply* step failed
        after the record was already logged: truncating the freshly appended
        tail keeps the log a faithful record of what the store accepted.
        (``records_appended``/``syncs`` count attempts and are not rewound.)
        """
        if self._closed:
            raise PersistenceError(f"WAL segment {self.path} is closed")
        if self._file is None or size >= self._size:
            return
        self._file.flush()
        self._file.truncate(size)
        os.fsync(self._file.fileno())
        self.syncs += 1
        self._dirty = False
        self._size = size

    def truncate(self, generation: int | None = None) -> None:
        """Drop every record, leaving an empty (header-only) segment.

        Called after a snapshot has captured the store state the records
        rebuilt; ``generation`` (when given) re-stamps the header with the
        snapshot's generation, which is what lets recovery prove a
        not-yet-truncated sibling segment is stale (see module docstring).
        """
        # Open first: _ensure_open adopts the generation of an existing
        # on-disk header, and the explicit re-stamp must win over that (a
        # lazily-unopened segment would otherwise be truncated under its
        # *old* generation and every later commit dropped as stale).
        file = self._ensure_open()
        if generation is not None:
            self.generation = generation
        file.truncate(0)
        file.write(WAL_MAGIC + _GENERATION.pack(self.generation))
        file.flush()
        os.fsync(file.fileno())
        self.syncs += 1
        self._dirty = False
        self._size = WAL_HEADER_SIZE
