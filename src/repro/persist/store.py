"""`PersistentStore`: durability wrapper for any :class:`DynamicGraphStore`.

The wrapper is write-ahead in the strict sense: every mutation (single-op
or batch) is encoded into **one** WAL group-commit record and appended
*before* it is applied to the wrapped store, so the on-disk log is always a
superset of the in-memory state and a crash can lose at most the commits
whose records never completed.  Reads delegate straight through -- the
wrapped structure keeps its access characteristics, counters and memory
model untouched.

Layout of a store directory::

    manifest.json     scheme name + WAL segmentation (written once)
    snapshot.bin      logical edge set at the last compaction (optional)
    wal-000.bin ...   one segment, or one per shard of a sharded store

Sharded stores get **one WAL segment per shard**, routed by the same
``shard_of`` hash that routes the operations themselves.  Because every
operation on a source node lands in that node's segment, the segments are
totally ordered per shard and mutually independent -- recovery can replay
them in parallel (``recover(..., parallel=True)``) exactly the way the
sharded executor fans batches out.

Recovery is :func:`recover`: load the snapshot (if any) into a fresh store
of the recorded (or caller-supplied) scheme, replay every complete WAL
record, truncate any torn tail, and hand back a ``PersistentStore`` that
appends where the crashed one stopped.  The invariant the crash-recovery
suite enforces: for any prefix of the WAL, recovery reproduces exactly the
state at the last complete group commit.
"""

from __future__ import annotations

import json
import os
import tempfile
import time
from concurrent.futures import ThreadPoolExecutor
from pathlib import Path
from typing import Callable, Dict, Iterable, Iterator, List, Optional, TypeVar, Union

from ..core.errors import PersistenceError, StoreClosedError
from ..core.graph import CuckooGraph
from ..core.sharded import ShardedCuckooGraph
from ..core.weighted import WeightedCuckooGraph
from ..interfaces import DynamicGraphStore
from .snapshot import (
    CompactionEvent,
    CompactionPolicy,
    fsync_directory,
    load_snapshot,
    snapshot_generation,
    write_snapshot,
)
from .wal import (
    DELETE,
    INSERT,
    INSERT_WEIGHTED,
    Op,
    WAL_HEADER_SIZE,
    WalPosition,
    WriteAheadLog,
    read_wal_records,
)

try:
    import fcntl
except ImportError:  # non-POSIX platform: the advisory lock degrades to a no-op
    fcntl = None

#: File names inside a store directory.
MANIFEST_NAME = "manifest.json"
SNAPSHOT_NAME = "snapshot.bin"
LOCK_NAME = "lock"

#: On-disk manifest format version.
MANIFEST_FORMAT = 1

_A = TypeVar("_A")


class _DirectoryLock:
    """Advisory exclusive lock on a store directory (``flock`` on ``lock``).

    Exactly one writer -- a live :class:`PersistentStore` or an in-progress
    :func:`recover` (which truncates torn tails) -- may hold a directory at
    a time.  Without this, a recovery probe racing a live unsynced writer
    could truncate a half-flushed record and stitch the writer's next flush
    onto the wrong offset, corrupting the log for good.  ``flock`` conflicts
    across open file descriptions, so a second store in the *same* process
    is refused too.  For read-only online inspection use
    :func:`replay_into`, which neither locks nor truncates.
    """

    def __init__(self, directory: Path):
        self.path = directory / LOCK_NAME
        self._fd: Optional[int] = None

    def acquire(self) -> None:
        if fcntl is None:
            return
        fd = os.open(self.path, os.O_RDWR | os.O_CREAT, 0o644)
        try:
            fcntl.flock(fd, fcntl.LOCK_EX | fcntl.LOCK_NB)
        except OSError:
            os.close(fd)
            raise PersistenceError(
                f"{self.path.parent} is held by another live store or an "
                f"in-progress recovery"
            ) from None
        self._fd = fd

    def release(self) -> None:
        if self._fd is not None:
            fcntl.flock(self._fd, fcntl.LOCK_UN)
            os.close(self._fd)
            self._fd = None

#: Scheme registry used by :func:`recover` to rebuild a store by name.
#: ``register_scheme`` extends it (the bench layer registers nothing here;
#: these are the schemes whose constructors the persist layer owns).
STORE_SCHEMES: Dict[str, Callable[[], DynamicGraphStore]] = {
    "cuckoo": CuckooGraph,
    "weighted": WeightedCuckooGraph,
    "sharded": lambda: ShardedCuckooGraph(num_shards=4),
    "sharded-weighted": lambda: ShardedCuckooGraph(num_shards=4, weighted=True),
}


def register_scheme(name: str, factory: Callable[[], DynamicGraphStore]) -> None:
    """Register a zero-argument store factory under ``name`` for recovery."""
    STORE_SCHEMES[name] = factory


def _segment_name(index: int) -> str:
    return f"wal-{index:03d}.bin"


def _resolve_factory(scheme: Union[str, Callable[[], DynamicGraphStore]]):
    if callable(scheme):
        return scheme
    try:
        return STORE_SCHEMES[scheme]
    except KeyError:
        raise PersistenceError(
            f"unknown persistence scheme {scheme!r}; expected one of "
            f"{sorted(STORE_SCHEMES)} or a factory callable"
        ) from None


def _segmentation_of(store: DynamicGraphStore) -> int:
    """WAL segments a store needs: one per shard, else a single segment."""
    if callable(getattr(store, "shard_of", None)):
        return int(getattr(store, "num_shards", 1))
    return 1


def _read_manifest(path: Path) -> dict:
    """Parse a store directory's manifest, surfacing damage as PersistenceError."""
    try:
        manifest = json.loads((path / MANIFEST_NAME).read_text())
        manifest["segments"] = int(manifest["segments"])
    except (json.JSONDecodeError, OSError, UnicodeDecodeError, KeyError,
            TypeError, ValueError) as error:
        raise PersistenceError(f"{path}: unreadable {MANIFEST_NAME} ({error})") from error
    return manifest


def _write_manifest(path: Path, manifest: dict) -> None:
    """Atomically (temp file + fsync + rename) write the manifest.

    The manifest is written once per store lifetime, but it is the file
    recovery reads first -- a torn manifest would strand perfectly good,
    fsynced WAL data, so it gets the same crash discipline as snapshots.
    """
    target = path / MANIFEST_NAME
    temp = path / (MANIFEST_NAME + ".tmp")
    with open(temp, "w") as file:
        file.write(json.dumps(manifest, indent=2) + "\n")
        file.flush()
        os.fsync(file.fileno())
    os.replace(temp, target)
    fsync_directory(path)


class PersistentStore(DynamicGraphStore):
    """Write-ahead-logged wrapper implementing the full store contract.

    Args:
        path: Store directory.  ``None`` creates an ephemeral temporary
            directory that is removed on :meth:`close` (what the benchmark
            scheme registry uses, so figure runs leave nothing behind).
        store: The structure to wrap.  When omitted, ``scheme`` builds it.
        scheme: Registered scheme name (or factory) used when ``store`` is
            not given; a *name* is recorded in the manifest so
            :func:`recover` can rebuild the store without being told.
        sync_on_commit: ``True`` makes every commit individually durable
            (one fsync per mutation call); ``False`` buffers appends until
            :meth:`sync` -- the deferral :class:`~repro.service.GraphService`
            turns into per-micro-batch group commits.
        compact_wal_bytes: WAL size threshold (summed over segments) past
            which the store snapshots itself and truncates the log;
            ``None`` disables compaction.

    ``close`` is terminal and idempotent, matching
    :class:`~repro.core.sharded.ShardedCuckooGraph`: post-close mutations
    raise :class:`~repro.core.errors.StoreClosedError`, reads keep
    delegating to the wrapped store.
    """

    name = "PersistentStore"

    def __init__(
        self,
        path: Optional[Union[str, Path]] = None,
        store: Optional[DynamicGraphStore] = None,
        scheme: Union[str, Callable[[], DynamicGraphStore]] = "sharded",
        *,
        sync_on_commit: bool = True,
        compact_wal_bytes: Optional[int] = 1 << 20,
        own_store: Optional[bool] = None,
        _scheme_name: Optional[str] = None,
        _recovered: bool = False,
        _generation: int = 0,
        _lock: Optional[_DirectoryLock] = None,
    ):
        self._tmpdir: Optional[tempfile.TemporaryDirectory] = None
        if path is None:
            self._tmpdir = tempfile.TemporaryDirectory(prefix="repro-persist-")
            path = self._tmpdir.name
        self._path = Path(path)
        self._path.mkdir(parents=True, exist_ok=True)
        if _lock is not None:
            self._lock = _lock  # recovery already holds the directory
        else:
            self._lock = _DirectoryLock(self._path)
            self._lock.acquire()
        try:
            self._initialise(store, scheme, sync_on_commit, compact_wal_bytes,
                             own_store, _scheme_name, _recovered, _generation)
        except BaseException:
            self._lock.release()
            raise

    def _initialise(self, store, scheme, sync_on_commit, compact_wal_bytes,
                    own_store, _scheme_name, _recovered, _generation) -> None:
        if store is None:
            self._store = _resolve_factory(scheme)()
            self._scheme_name = scheme if isinstance(scheme, str) else None
        else:
            self._store = store
            self._scheme_name = _scheme_name
        self._own_store = (store is None) if own_store is None else own_store

        self._sync_on_commit = sync_on_commit
        self._policy = CompactionPolicy(max_wal_bytes=compact_wal_bytes)
        self._closed = False
        self._spawn_counter = 0
        #: Checkpoint counter; bumped by every snapshot-and-truncate cycle
        #: and stamped into both the snapshot and the WAL segment headers
        #: so recovery can prove which of the two a record belongs to.
        self._generation = _generation

        #: Group commits logged (one per mutation call, however large).
        self.commits = 0
        #: Snapshot-and-truncate cycles performed.
        self.compactions = 0
        #: Filled in by :func:`recover` on a recovered instance.
        self.last_recovery: Optional[Dict[str, object]] = None

        manifest_path = self._path / MANIFEST_NAME
        if manifest_path.exists():
            if not _recovered:
                raise PersistenceError(
                    f"{self._path} already holds a persistent store; "
                    f"use repro.persist.recover() to reopen it"
                )
            segments = int(_read_manifest(self._path)["segments"])
        else:
            segments = _segmentation_of(self._store)
            _write_manifest(self._path, {
                "format": MANIFEST_FORMAT,
                "scheme": self._scheme_name,
                "segments": segments,
            })
        if segments != _segmentation_of(self._store):
            raise PersistenceError(
                f"{self._path} is segmented for {segments} shard(s) but the "
                f"store routes over {_segmentation_of(self._store)}"
            )
        self._segments = segments
        self._wals = [
            WriteAheadLog(self._path / _segment_name(index),
                          sync_on_commit=sync_on_commit,
                          generation=self._generation)
            for index in range(segments)
        ]

    # ------------------------------------------------------------------ #
    # Lifecycle
    # ------------------------------------------------------------------ #

    @property
    def path(self) -> Path:
        """The store directory (ephemeral when constructed with ``path=None``)."""
        return self._path

    @property
    def store(self) -> DynamicGraphStore:
        """The wrapped in-memory structure."""
        return self._store

    @property
    def generation(self) -> int:
        """The current checkpoint generation (bumped by every compaction)."""
        return self._generation

    @property
    def segments(self) -> int:
        """Number of WAL segments (one per shard of a sharded store)."""
        return self._segments

    @property
    def segment_paths(self) -> List[Path]:
        """The WAL segment files, in segment order."""
        return [self._path / _segment_name(index) for index in range(self._segments)]

    @property
    def compaction_policy(self) -> CompactionPolicy:
        """The store's compaction policy -- subscribe here to observe truncations."""
        return self._policy

    @property
    def scheme_name(self) -> Optional[str]:
        """Registered scheme name recorded in the manifest (``None`` if untracked)."""
        return self._scheme_name

    @property
    def closed(self) -> bool:
        """Whether :meth:`close` has been called."""
        return self._closed

    def close(self) -> None:
        """Flush and release the log, then the wrapped store.  Idempotent.

        Terminal in the same sense as the sharded front-end's ``close``:
        further mutations raise :class:`StoreClosedError` instead of
        silently writing to a released log.  An ephemeral (``path=None``)
        store also removes its temporary directory here.
        """
        if self._closed:
            return
        self._closed = True
        for wal in self._wals:
            wal.close()
        if self._own_store:
            close = getattr(self._store, "close", None)
            if callable(close):
                close()
        self._lock.release()
        if self._tmpdir is not None:
            self._tmpdir.cleanup()
            self._tmpdir = None

    def __enter__(self) -> "PersistentStore":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    # ------------------------------------------------------------------ #
    # Logging
    # ------------------------------------------------------------------ #

    def _ensure_writable(self) -> None:
        if self._closed:
            raise StoreClosedError(f"{self.name} is closed; mutations are no longer accepted")

    def _commit(self, ops: List[Op]) -> list:
        """Append one group-commit record (per touched segment) for ``ops``.

        Returns the ``(segment, size before append)`` pairs :meth:`_rollback`
        needs to compensate if the subsequent store apply fails.
        """
        if not ops:
            return []
        touched: list = []
        if self._segments == 1:
            wal = self._wals[0]
            touched.append((wal, wal.size_bytes))
            wal.append_batch(ops)
        else:
            shard_of = self._store.shard_of
            groups: Dict[int, List[Op]] = {}
            for op in ops:
                groups.setdefault(shard_of(op[1]), []).append(op)
            for index, group in groups.items():
                wal = self._wals[index]
                touched.append((wal, wal.size_bytes))
                wal.append_batch(group)
        self.commits += 1
        return touched

    def _rollback(self, touched: list) -> None:
        """Drop the records of a commit whose apply raised.

        Leaves the log a faithful record of what the store *accepted*: a
        failed mutation (say, a :class:`~repro.core.errors.CapacityError`
        mid-batch) must not survive in the WAL, or every future recovery
        would replay it into the same exception and the directory would be
        unrecoverable.  The in-memory store may retain a partially applied
        batch (the same caveat batch exceptions already carry); after a
        restart the whole failed commit is simply absent.
        """
        for wal, size in touched:
            wal.rewind_to(size)
        self.commits -= 1

    def sync(self) -> None:
        """Fsync every segment's buffered records (one group commit).

        With ``sync_on_commit=False`` this is the durability point: the
        service layer calls it once per dispatched micro-batch, *before*
        resolving the batch's futures.
        """
        self._ensure_writable()
        for wal in self._wals:
            wal.sync()

    def wal_bytes(self) -> int:
        """Total WAL size across segments (header bytes included)."""
        return sum(wal.size_bytes for wal in self._wals)

    def wal_segment_sizes(self) -> List[int]:
        """Per-segment log end offsets, buffered (unflushed) appends included.

        A tailer compares these with its cursor to decide whether it has
        truly consumed the log or is merely waiting on an unflushed tail.
        """
        return [wal.size_bytes for wal in self._wals]

    def checkpoint(self) -> int:
        """Snapshot the wrapped store and truncate the WAL; return rows written.

        Crash-atomic via the generation stamp: the snapshot (written and
        atomically renamed with generation ``G+1``) is the commit point, and
        each segment is then truncated to a header stamped ``G+1``.  A crash
        in between leaves some segments at generation ``G``; recovery skips
        them because their records are provably folded into the snapshot.
        """
        self._ensure_writable()
        generation = self._generation + 1
        # Pre-truncation event: tailers (replication primaries, incremental
        # probes) must flush their cursors up to these offsets before the
        # segments are cut out from under them.  ``size_bytes`` counts
        # buffered-but-unsynced appends too, which is exactly what the
        # snapshot below will fold in.
        self._policy.notify(CompactionEvent(
            path=self._path,
            generation=self._generation,
            new_generation=generation,
            wal_offsets=tuple(wal.size_bytes for wal in self._wals),
        ))
        rows = write_snapshot(self._path / SNAPSHOT_NAME, self._store,
                              generation=generation)
        for wal in self._wals:
            wal.truncate(generation=generation)
        self._generation = generation
        self.compactions += 1
        return rows

    def _maybe_compact(self) -> None:
        if self._policy.should_compact(self.wal_bytes()):
            self.checkpoint()

    def persistence_summary(self) -> Dict[str, object]:
        """Snapshot of the durability-side accounting."""
        return {
            "path": str(self._path),
            "segments": self._segments,
            "scheme": self._scheme_name,
            "generation": self._generation,
            "commits": self.commits,
            "compactions": self.compactions,
            "wal_bytes": self.wal_bytes(),
            "wal_records": sum(wal.records_appended for wal in self._wals),
            "wal_syncs": sum(wal.syncs for wal in self._wals),
            "snapshot_exists": (self._path / SNAPSHOT_NAME).exists(),
            "last_recovery": self.last_recovery,
        }

    # ------------------------------------------------------------------ #
    # Mutations: log first, then apply
    # ------------------------------------------------------------------ #

    def _logged_apply(self, ops: List[Op], apply: Callable[[], _A]) -> _A:
        """Write-ahead core: log ``ops``, run ``apply``, compensate on failure."""
        touched = self._commit(ops)
        try:
            result = apply()
        except Exception:
            self._rollback(touched)
            raise
        self._maybe_compact()
        return result

    def insert_edge(self, u: int, v: int) -> bool:
        self._ensure_writable()
        return self._logged_apply([(INSERT, u, v)],
                                  lambda: self._store.insert_edge(u, v))

    def delete_edge(self, u: int, v: int) -> bool:
        self._ensure_writable()
        return self._logged_apply([(DELETE, u, v)],
                                  lambda: self._store.delete_edge(u, v))

    def insert_edges(self, edges: Iterable[tuple[int, int]]) -> int:
        """One group commit for the whole batch, then one batch apply."""
        self._ensure_writable()
        edges = list(edges)
        return self._logged_apply([(INSERT, u, v) for u, v in edges],
                                  lambda: self._store.insert_edges(edges))

    def delete_edges(self, edges: Iterable[tuple[int, int]]) -> int:
        """One group commit for the whole batch, then one batch apply."""
        self._ensure_writable()
        edges = list(edges)
        return self._logged_apply([(DELETE, u, v) for u, v in edges],
                                  lambda: self._store.delete_edges(edges))

    def insert_weighted_edge(self, u: int, v: int, delta: int = 1) -> int:
        """Weighted insert, logged with its delta (wrapped store must support it)."""
        self._ensure_writable()
        insert_weighted = getattr(self._store, "insert_weighted_edge", None)
        if not callable(insert_weighted):
            raise TypeError(f"wrapped store {self._store.name!r} is not weighted")
        return self._logged_apply([(INSERT_WEIGHTED, u, v, delta)],
                                  lambda: insert_weighted(u, v, delta))

    # ------------------------------------------------------------------ #
    # Reads: straight delegation
    # ------------------------------------------------------------------ #

    def has_edge(self, u: int, v: int) -> bool:
        return self._store.has_edge(u, v)

    def successors(self, u: int) -> list[int]:
        return self._store.successors(u)

    def out_degree(self, u: int) -> int:
        return self._store.out_degree(u)

    def has_node(self, u: int) -> bool:
        return self._store.has_node(u)

    def has_edges(self, edges: Iterable[tuple[int, int]]) -> list[bool]:
        return self._store.has_edges(edges)

    def successors_many(self, nodes: Iterable[int]) -> dict[int, list[int]]:
        return self._store.successors_many(nodes)

    def edges(self) -> Iterator[tuple[int, int]]:
        return self._store.edges()

    def source_nodes(self) -> Iterator[int]:
        return self._store.source_nodes()

    @property
    def num_edges(self) -> int:
        return self._store.num_edges

    def edge_weight(self, u: int, v: int) -> int:
        return self._store.edge_weight(u, v)

    def memory_bytes(self) -> int:
        """Memory model of the wrapped structure (the log lives on disk)."""
        return self._store.memory_bytes()

    @property
    def accesses(self) -> int:
        return getattr(self._store, "accesses", 0)

    def reset_accesses(self) -> None:
        self._store.reset_accesses()

    @property
    def counters(self):
        return getattr(self._store, "counters", None)

    def structure_summary(self) -> dict[str, object]:
        summary = getattr(self._store, "structure_summary", None)
        inner = summary() if callable(summary) else {"num_edges": self.num_edges}
        return {"persistence": self.persistence_summary(), "store": inner}

    def spawn_empty(self) -> "PersistentStore":
        """Fresh empty persistent store of the same configuration.

        An ephemeral store spawns another ephemeral one; a store rooted at a
        real path spawns into a ``spawn-N`` subdirectory, so everything a
        test writes stays under the directory (and pytest ``tmp_path``) it
        was given.
        """
        if self._tmpdir is None:
            while True:
                spawn_path = self._path / f"spawn-{self._spawn_counter}"
                self._spawn_counter += 1
                if not spawn_path.exists():
                    break
        else:
            spawn_path = None
        return PersistentStore(
            path=spawn_path,
            store=self._store.spawn_empty(),
            sync_on_commit=self._sync_on_commit,
            compact_wal_bytes=self._policy.max_wal_bytes,
            # The spawned wrapper is the sole holder of the inner store it
            # just created, so it owns (and closes) it.
            own_store=True,
            _scheme_name=self._scheme_name,
        )


class _PoisonedTail(Exception):
    """Internal: a segment's *final* record failed to apply during replay.

    The matching live-store scenario is an apply that raised after its
    record was fsynced and the process died before the compensating
    :meth:`WriteAheadLog.rewind_to` could run.  The record has been
    truncated away by the time this is raised; :func:`recover` restarts
    replay into a fresh store.
    """


def apply_op(store: DynamicGraphStore, op: Op) -> None:
    """Apply one decoded WAL operation tuple to ``store``."""
    tag = op[0]
    if tag == INSERT:
        store.insert_edge(op[1], op[2])
    elif tag == DELETE:
        store.delete_edge(op[1], op[2])
    else:
        store.insert_weighted_edge(op[1], op[2], op[3])


def _check_replay_compatible(path: Path, store: DynamicGraphStore,
                             records) -> None:
    """Refuse up front to replay weighted records into an unweighted store.

    Applying them would raise mid-replay, which the poisoned-tail handling
    could then misread as a crash artefact and set good records aside; a
    scheme mismatch is operator error and must fail loudly and losslessly.
    """
    if callable(getattr(store, "insert_weighted_edge", None)):
        return
    if any(op[0] == INSERT_WEIGHTED for ops, _ in records for op in ops):
        raise PersistenceError(
            f"{path} holds weighted records but the recovery store "
            f"({store.name!r}) is not weighted"
        )


def _set_aside_poisoned(path: Path, start: int) -> None:
    """Move a poisoned record's bytes to a ``.poisoned`` sidecar, then truncate.

    Dropped records are unacknowledged by construction, but they are still
    the only copy of *something* -- preserve the bytes for forensics (and
    for the case where the real problem was recovering into a
    mis-configured store) instead of destroying them.
    """
    data = path.read_bytes()
    sidecar = path.with_name(path.name + ".poisoned")
    with open(sidecar, "ab") as file:
        file.write(data[start:])
        file.flush()
        os.fsync(file.fileno())
    with open(path, "rb+") as file:
        file.truncate(start)


def _replay_segment(path: Path, store: DynamicGraphStore,
                    snapshot_generation: int) -> Dict[str, int]:
    """Replay one segment into ``store``; truncate its torn tail, if any.

    A segment stamped with a generation *older* than the snapshot's is the
    signature of a checkpoint that crashed between the snapshot rename and
    this segment's truncation: its records are already folded into the
    snapshot, so replaying them would double-apply weighted deltas.  Such a
    segment is skipped and truncated to nothing (a fresh header at the
    current generation is written on the next append).
    """
    generation, records, valid_length = read_wal_records(path)
    stale = generation is not None and generation < snapshot_generation
    if stale:
        valid_length = 0
    if path.exists() and path.stat().st_size > valid_length:
        # The bytes past the last complete record (or the whole stale
        # segment) are a crash artefact; drop them so appending resumes on
        # a clean record boundary.
        with open(path, "rb+") as file:
            file.truncate(valid_length)
    if stale:
        return {"batches": 0, "ops": 0}
    _check_replay_compatible(path, store, records)
    ops = 0
    start = WAL_HEADER_SIZE
    for index, (batch, end) in enumerate(records):
        try:
            for op in batch:
                apply_op(store, op)
        except Exception as error:
            if index == len(records) - 1:
                # The final commit's apply fails deterministically -- the
                # signature of a process that logged the record, hit this
                # same exception applying it, and was killed before the
                # compensating rewind ran.  Set the record aside (it is by
                # construction unacknowledged: its mutation call never
                # returned) so the directory stays recoverable.
                _set_aside_poisoned(path, start)
                raise _PoisonedTail(str(error)) from error
            raise PersistenceError(
                f"{path}: replay failed {len(records) - index - 1} record(s) "
                f"before the tail -- not a crash artefact"
            ) from error
        ops += len(batch)
        start = end
    return {"batches": len(records), "ops": ops}


def _rewind_to(path: Path, segment_paths: List[Path],
               upto: Union[int, WalPosition]) -> None:
    """Point-in-time rewind: truncate the WAL to an exact group-commit cut.

    ``upto`` is either a global group-commit **index** -- records are
    counted in canonical segment-major order (all of segment 0's records,
    then segment 1's, ...), which for a single-segment store is exactly
    append order -- or a :class:`~repro.persist.wal.WalPosition` carrying
    one byte offset per segment (exact for sharded stores too: segments
    route disjoint source nodes, so any per-segment prefix set is a
    consistent state).  Everything past the cut is truncated away, reusing
    the torn-tail machinery: the subsequent replay simply never sees the
    dropped records.  Indices are relative to the current checkpoint
    baseline (the snapshot is commit 0); a position taken before a
    compaction, a cut past the end of the log, or an offset that is not a
    record boundary is refused before any byte is touched.
    """
    baseline = snapshot_generation(path / SNAPSHOT_NAME)
    cuts: List[Optional[int]] = []
    if isinstance(upto, WalPosition):
        if len(upto.offsets) != len(segment_paths):
            raise PersistenceError(
                f"position covers {len(upto.offsets)} segment(s) but {path} "
                f"holds {len(segment_paths)}"
            )
        if upto.generation != baseline:
            raise PersistenceError(
                f"{path}: position was taken at generation {upto.generation} "
                f"but the snapshot baseline is {baseline}; a compaction has "
                f"folded the records it points into"
            )
        for segment, offset in zip(segment_paths, upto.offsets):
            generation, records, _ = read_wal_records(segment)
            if generation is not None and generation != baseline:
                raise PersistenceError(
                    f"{segment} is stamped generation {generation}, not the "
                    f"snapshot baseline {baseline}; recover() it plainly first"
                )
            boundaries = {WAL_HEADER_SIZE} | {end for _, end in records}
            if offset not in boundaries:
                raise PersistenceError(
                    f"{segment}: offset {offset} is not a group-commit "
                    f"boundary of the on-disk log"
                )
            cuts.append(offset if segment.exists() else None)
    else:
        if upto < 0:
            raise PersistenceError(f"upto must be >= 0, got {upto}")
        remaining = int(upto)
        for segment in segment_paths:
            generation, records, _ = read_wal_records(segment)
            if generation is not None and generation != baseline:
                raise PersistenceError(
                    f"{segment} is stamped generation {generation}, not the "
                    f"snapshot baseline {baseline}; recover() it plainly first"
                )
            take = min(remaining, len(records))
            remaining -= take
            cut = records[take - 1][1] if take else WAL_HEADER_SIZE
            cuts.append(cut if segment.exists() else None)
        if remaining > 0:
            raise PersistenceError(
                f"{path} holds only {upto - remaining} group commit(s) past "
                f"the snapshot; cannot rewind to index {upto}"
            )
    for segment, cut in zip(segment_paths, cuts):
        if cut is None or segment.stat().st_size <= cut:
            continue
        with open(segment, "rb+") as file:
            file.truncate(cut)


def recover(
    path: Union[str, Path],
    scheme: Optional[Union[str, Callable[[], DynamicGraphStore]]] = None,
    store: Optional[DynamicGraphStore] = None,
    *,
    sync_on_commit: bool = True,
    compact_wal_bytes: Optional[int] = 1 << 20,
    parallel: bool = False,
    own_store: Optional[bool] = None,
    upto: Optional[Union[int, WalPosition]] = None,
) -> PersistentStore:
    """Rebuild a :class:`PersistentStore` from its directory.

    Loads the snapshot (if one exists) into a fresh store, replays every
    complete WAL record on top, truncates any torn tail, and returns a
    wrapper that appends where the previous process stopped.  The fresh
    store comes from ``store`` (an empty instance), else ``scheme`` (a
    registered name or factory), else the scheme name recorded in the
    directory's manifest.

    ``parallel=True`` replays the per-shard segments of a sharded store
    concurrently -- legal because each segment only ever routes to its own
    shard, the same independence the executor exploits for batches.
    ``own_store`` forces (or forbids) the returned wrapper closing the
    store on ``close``; by default the wrapper owns the store exactly when
    this function built it.

    ``upto`` is point-in-time recovery: rewind the directory to an exact
    group-commit cut -- an integer index (the snapshot is commit 0; exact
    append order for single-segment stores, canonical segment-major order
    otherwise) or a :class:`~repro.persist.wal.WalPosition` (exact for any
    segmentation) -- before replaying.  The rewind is **destructive**, the
    same way torn-tail truncation is: the records past the cut are gone,
    and the returned store appends from the recovered point.  Recover a
    *copy* of the directory to keep the full history.
    """
    path = Path(path)
    if not (path / MANIFEST_NAME).exists():
        raise PersistenceError(f"{path} has no {MANIFEST_NAME}; nothing to recover")
    manifest = _read_manifest(path)
    segments = int(manifest["segments"])
    scheme_name = manifest.get("scheme")

    built_here = store is None
    if store is None:
        chosen = scheme if scheme is not None else scheme_name
        if chosen is None:
            raise PersistenceError(
                f"{path} records no scheme name; pass recover(..., scheme=...) "
                f"or recover(..., store=...)"
            )
        store = _resolve_factory(chosen)()
    if store.num_edges != 0:
        raise PersistenceError("recovery target store must be empty")
    if segments != _segmentation_of(store):
        raise PersistenceError(
            f"{path} holds {segments} WAL segment(s) but the recovery store "
            f"routes over {_segmentation_of(store)}; shard counts must match"
        )

    # Exclusive hold for the whole replay (recovery truncates torn tails; a
    # live writer must not be appending meanwhile) and then handed to the
    # returned store, so the directory is continuously protected.
    lock = _DirectoryLock(path)
    lock.acquire()
    try:
        started = time.perf_counter()
        segment_paths = [path / _segment_name(index) for index in range(segments)]
        if upto is not None:
            _rewind_to(path, segment_paths, upto)
        retries = 0
        while True:
            try:
                snapshot_rows, generation = load_snapshot(path / SNAPSHOT_NAME, store)
                if parallel and segments > 1:
                    with ThreadPoolExecutor(max_workers=segments) as pool:
                        stats = list(pool.map(
                            lambda seg: _replay_segment(seg, store, generation),
                            segment_paths))
                else:
                    stats = [_replay_segment(seg, store, generation)
                             for seg in segment_paths]
                break
            except _PoisonedTail:
                # A poisoned final record was set aside; replay the now
                # clean log into a fresh store (the current one holds a
                # partial application of the dropped record).  At most one
                # retry per segment can ever be needed.
                retries += 1
                if retries > segments:
                    raise PersistenceError(
                        f"{path}: replay kept failing after setting aside "
                        f"{retries - 1} poisoned tail record(s)"
                    ) from None
                store = store.spawn_empty()
        seconds = time.perf_counter() - started

        recovered = PersistentStore(
            path=path,
            store=store,
            sync_on_commit=sync_on_commit,
            compact_wal_bytes=compact_wal_bytes,
            # A store recover() built -- from a scheme or by respawning after
            # a poisoned tail -- has no other holder, so the wrapper owns it.
            own_store=True if (built_here or retries) and own_store is None else own_store,
            _scheme_name=scheme_name,
            _recovered=True,
            _generation=generation,
            _lock=lock,
        )
    except BaseException:
        lock.release()  # idempotent: a failed constructor released it already
        raise
    recovered.last_recovery = {
        "snapshot_rows": snapshot_rows,
        "wal_batches": sum(stat["batches"] for stat in stats),
        "wal_ops": sum(stat["ops"] for stat in stats),
        "seconds": seconds,
        "parallel": parallel and segments > 1,
    }
    return recovered


def open_or_create(
    path: Union[str, Path],
    store: Optional[DynamicGraphStore] = None,
    scheme: Union[str, Callable[[], DynamicGraphStore]] = "sharded",
    **kwargs,
) -> PersistentStore:
    """Open ``path`` as a persistent store, recovering it if it already is one.

    The restart-friendly entry point: a directory that already holds a
    manifest is :func:`recover`-ed (``store``/``scheme`` must match its
    segmentation), anything else becomes a fresh :class:`PersistentStore`.
    Keyword arguments (``sync_on_commit``, ``compact_wal_bytes``,
    ``own_store``, and ``parallel`` for the recovery path) pass through.
    """
    path = Path(path)
    if (path / MANIFEST_NAME).exists():
        return recover(path, scheme=None if store is not None else scheme,
                       store=store, **kwargs)
    kwargs.pop("parallel", None)  # creation has nothing to replay
    return PersistentStore(path, store=store, scheme=scheme, **kwargs)


def replay_into(
    path: Union[str, Path],
    store: DynamicGraphStore,
    *,
    cursor: Optional[WalPosition] = None,
) -> Dict[str, object]:
    """Read-only replay of a store directory into ``store``.

    The online-inspection counterpart of :func:`recover`: it takes no lock,
    never truncates, and never opens a segment for append, so it is safe to
    run against a **live, synced** writer (call the live store's ``sync()``
    first; unsynced buffered records are simply not visible yet).  Torn
    tails are skipped, stale (pre-snapshot-generation) segments are ignored,
    and the stats dict mirrors ``last_recovery`` plus a ``"position"`` key:
    the :class:`~repro.persist.wal.WalPosition` the replay ended at.

    Passing that position back as ``cursor`` makes the next probe
    **incremental**: ``store`` is then the *same* (already populated) store
    the previous call filled, the snapshot is not reloaded, and each
    segment is read from its cursor offset instead of byte 0 -- a polling
    probe pays for the new records only.  A compaction between probes moves
    the log out from under the cursor; that is detected via the generation
    stamp and raises :class:`~repro.core.errors.PersistenceError` (restart
    with a fresh store -- or subscribe to the live store's
    ``compaction_policy`` to drain the log just before it is truncated).
    """
    path = Path(path)
    if not (path / MANIFEST_NAME).exists():
        raise PersistenceError(f"{path} has no {MANIFEST_NAME}; nothing to replay")
    segments = _read_manifest(path)["segments"]
    if cursor is None and store.num_edges != 0:
        raise PersistenceError("replay target store must be empty")
    if segments != _segmentation_of(store):
        raise PersistenceError(
            f"{path} holds {segments} WAL segment(s) but the replay store "
            f"routes over {_segmentation_of(store)}; shard counts must match"
        )
    if cursor is not None and len(cursor.offsets) != segments:
        raise PersistenceError(
            f"cursor covers {len(cursor.offsets)} segment(s) but {path} "
            f"holds {segments}"
        )
    if cursor is None:
        snapshot_rows, generation = load_snapshot(path / SNAPSHOT_NAME, store)
    else:
        snapshot_rows, generation = 0, cursor.generation
        baseline = snapshot_generation(path / SNAPSHOT_NAME)
        if baseline != cursor.generation:
            raise PersistenceError(
                f"{path}: cursor is at generation {cursor.generation} but the "
                f"snapshot baseline is {baseline}; a compaction folded the "
                f"records past the cursor (restart the probe from scratch)"
            )
    batches = ops = 0
    offsets: List[int] = []
    for index in range(segments):
        segment = path / _segment_name(index)
        from_offset = None
        if cursor is not None:
            from_offset = max(cursor.offsets[index], WAL_HEADER_SIZE)
            if not segment.exists():
                offsets.append(WAL_HEADER_SIZE)
                continue
        seg_generation, records, valid_length = read_wal_records(
            segment, from_offset=from_offset,
            expected_generation=None if cursor is None else generation)
        if seg_generation is None:
            # Segment missing or torn at create: no complete header yet, so
            # no records either; the cursor stays at the header boundary.
            offsets.append(WAL_HEADER_SIZE)
            continue
        if seg_generation < generation:
            # Folded into the snapshot by an interrupted checkpoint (the
            # next append heals the stamp): benign for a fresh probe and
            # for an incremental one alike -- skip, don't wedge.
            offsets.append(WAL_HEADER_SIZE)
            continue
        if cursor is not None and seg_generation > generation:
            raise PersistenceError(
                f"{segment} is stamped generation {seg_generation}, past the "
                f"cursor's {generation}; a compaction moved the log under "
                f"the probe (restart it from scratch)"
            )
        offsets.append(max(valid_length, WAL_HEADER_SIZE))
        _check_replay_compatible(segment, store, records)
        for record_ops, _ in records:
            for op in record_ops:
                apply_op(store, op)
            ops += len(record_ops)
            batches += 1
    return {
        "snapshot_rows": snapshot_rows,
        "wal_batches": batches,
        "wal_ops": ops,
        "position": WalPosition(generation=generation, offsets=tuple(offsets)),
    }
