"""Store-agnostic interface implemented by every dynamic-graph structure.

The paper's evaluation compares CuckooGraph against LiveGraph, Spruce,
Sortledton and the Wind-Bell Index by driving each one through the same basic
operations (insert / query / delete an edge, enumerate successors) and the
same analytics kernels.  :class:`DynamicGraphStore` captures exactly that
contract so the benchmark harness and the analytics package never special-case
a particular scheme.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from typing import Iterable, Iterator


class DynamicGraphStore(ABC):
    """Minimal contract for a dynamic directed-graph storage scheme.

    Nodes are integers (the paper uses 8-byte identifiers).  Edges are
    directed ``⟨u, v⟩`` pairs; the basic contract stores each distinct edge at
    most once.  Implementations additionally expose a modelled memory
    footprint so the memory-usage experiments can compare layouts without
    relying on interpreter-level measurements.

    **Batch contract.**  Alongside the per-edge operations, every store
    answers batched forms (``insert_edges`` / ``delete_edges`` /
    ``has_edges`` / ``successors_many``) with loop-based defaults, and
    batch-capable callers -- the analytics traversal engine, the benchmark
    harness, the sharded front-end -- are written exclusively against them.
    ``successors_many`` is the load-bearing member of that family: frontier
    expansion for every analytics kernel goes through it, so overriding it is
    how a store (or a front-end such as
    :class:`~repro.core.sharded.ShardedCuckooGraph`, which groups the batch
    per shard and can fan the groups out across an executor) accelerates the
    whole analytics layer at once.  Overrides must preserve the default's
    observable semantics, spelled out in :meth:`successors_many`.
    """

    #: Human-readable scheme name used in benchmark reports.
    name: str = "abstract"

    #: Modelled memory accesses performed so far, at roughly cache-line
    #: granularity: one unit per bucket/block/list-node/index-level touched.
    #: The paper's throughput analysis is an argument about the *number of
    #: memory accesses* each structure needs per operation ("the upper limit
    #: on the number of memory accesses is fixed and small"), and pure-Python
    #: wall-clock time does not preserve that quantity, so every store keeps
    #: this counter and the throughput benchmarks report accesses/operation
    #: alongside wall-clock Mops.
    accesses: int = 0

    def reset_accesses(self) -> None:
        """Zero the modelled memory-access counter."""
        self.accesses = 0

    # ------------------------------------------------------------------ #
    # Required operations
    # ------------------------------------------------------------------ #

    @abstractmethod
    def insert_edge(self, u: int, v: int) -> bool:
        """Insert the directed edge ``⟨u, v⟩``; return ``True`` if it was new."""

    @abstractmethod
    def has_edge(self, u: int, v: int) -> bool:
        """Whether the directed edge ``⟨u, v⟩`` is currently stored."""

    @abstractmethod
    def delete_edge(self, u: int, v: int) -> bool:
        """Delete ``⟨u, v⟩``; return ``True`` if it was present."""

    @abstractmethod
    def successors(self, u: int) -> list[int]:
        """Return the out-neighbours of ``u`` (empty list if unknown)."""

    @abstractmethod
    def memory_bytes(self) -> int:
        """Modelled memory footprint, in bytes, of the current structure."""

    # ------------------------------------------------------------------ #
    # Derived operations with default implementations
    # ------------------------------------------------------------------ #

    @property
    @abstractmethod
    def num_edges(self) -> int:
        """Number of distinct directed edges currently stored."""

    def out_degree(self, u: int) -> int:
        """Out-degree of ``u``."""
        return len(self.successors(u))

    def has_node(self, u: int) -> bool:
        """Whether ``u`` appears as the source of at least one stored edge."""
        return self.out_degree(u) > 0

    @abstractmethod
    def edges(self) -> Iterator[tuple[int, int]]:
        """Iterate over every stored directed edge."""

    def source_nodes(self) -> Iterator[int]:
        """Iterate over nodes that have at least one outgoing edge."""
        seen: set[int] = set()
        for u, _ in self.edges():
            if u not in seen:
                seen.add(u)
                yield u

    def nodes(self) -> Iterator[int]:
        """Iterate over every node incident to a stored edge."""
        seen: set[int] = set()
        for u, v in self.edges():
            if u not in seen:
                seen.add(u)
                yield u
            if v not in seen:
                seen.add(v)
                yield v

    @property
    def num_nodes(self) -> int:
        """Number of distinct nodes incident to stored edges."""
        return sum(1 for _ in self.nodes())

    def spawn_empty(self) -> "DynamicGraphStore":
        """A fresh empty store of the same scheme.

        Subgraph extraction (the paper's "insert the subgraphs into each
        scheme" step) builds its target with this hook, so stores whose
        constructors take arguments -- the sharded front-end, the service
        client -- can reproduce their own configuration instead of relying
        on a zero-argument ``type(self)()``.
        """
        return type(self)()

    # ------------------------------------------------------------------ #
    # Batch operations shared by examples, benchmarks and front-ends
    # ------------------------------------------------------------------ #
    #
    # Every store gets a loop-based batch API for free, so batch-aware
    # callers (the benchmark harness, the sharded front-end, the database
    # integrations) can be written once against ``DynamicGraphStore``.
    # Implementations that can do better -- for example
    # :class:`repro.core.sharded.ShardedCuckooGraph`, which groups a batch
    # per shard to amortize routing -- override these with the same
    # signatures and semantics.

    def insert_edges(self, edges: Iterable[tuple[int, int]]) -> int:
        """Insert a batch of edges; return the number that were new."""
        inserted = 0
        for u, v in edges:
            if self.insert_edge(u, v):
                inserted += 1
        return inserted

    def delete_edges(self, edges: Iterable[tuple[int, int]]) -> int:
        """Delete a batch of edges; return the number that were present."""
        deleted = 0
        for u, v in edges:
            if self.delete_edge(u, v):
                deleted += 1
        return deleted

    def has_edges(self, edges: Iterable[tuple[int, int]]) -> list[bool]:
        """Membership of a batch of edges, in input order."""
        return [self.has_edge(u, v) for u, v in edges]

    def successors_many(self, nodes: Iterable[int]) -> dict[int, list[int]]:
        """Successor lists for a batch of source nodes.

        Contract (binding on every override):

        * the result maps each *distinct* requested node to its successor
          list, keyed in first-occurrence order of the input;
        * unknown nodes map to an empty list, never a missing key;
        * each list has exactly the contents and order ``successors`` would
          return for that node at the same point in time.

        Callers fan a whole frontier out in one call instead of one
        ``successors`` round-trip per node; the analytics engine
        (:class:`repro.analytics.engine.TraversalEngine`) relies on these
        guarantees to keep kernel outputs identical to per-node traversal.
        """
        successors = self.successors
        return {u: successors(u) for u in dict.fromkeys(nodes)}


class WeightedGraphStore(DynamicGraphStore):
    """Contract extension for stores that keep per-edge weights.

    The extended CuckooGraph of Section III-B increments a weight when a
    duplicate edge arrives; deleting decrements the weight and removes the
    edge once it reaches zero.
    """

    @abstractmethod
    def edge_weight(self, u: int, v: int) -> int:
        """Current weight of ``⟨u, v⟩`` (0 if the edge is absent)."""

    def insert_weighted_edge(self, u: int, v: int, delta: int = 1) -> int:
        """Insert ``⟨u, v⟩`` or bump its weight by ``delta``; return the new weight."""
        raise NotImplementedError
