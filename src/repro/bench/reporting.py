"""Formatting helpers for benchmark reports.

Each benchmark prints the rows/series the corresponding figure or table in
the paper reports, in a plain-text form that is easy to diff between runs and
to paste into EXPERIMENTS.md.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Mapping, Optional, Sequence, Union


def format_table(rows: Sequence[Mapping[str, object]],
                 columns: Optional[Sequence[str]] = None,
                 title: Optional[str] = None) -> str:
    """Render a list of row dictionaries as an aligned plain-text table."""
    if not rows:
        return f"{title}\n(no rows)" if title else "(no rows)"
    if columns is None:
        columns = list(rows[0].keys())
    rendered_rows = [
        {column: _render(row.get(column, "")) for column in columns} for row in rows
    ]
    widths = {
        column: max(len(column), *(len(row[column]) for row in rendered_rows))
        for column in columns
    }
    lines = []
    if title:
        lines.append(title)
    header = " | ".join(column.ljust(widths[column]) for column in columns)
    separator = "-+-".join("-" * widths[column] for column in columns)
    lines.append(header)
    lines.append(separator)
    for row in rendered_rows:
        lines.append(" | ".join(row[column].ljust(widths[column]) for column in columns))
    return "\n".join(lines)


def _render(value: object) -> str:
    if isinstance(value, float):
        if value == 0:
            return "0"
        if abs(value) >= 1000 or abs(value) < 0.001:
            return f"{value:.3e}"
        return f"{value:.4f}"
    return str(value)


def speedup_versus(
    results: Mapping[str, float], ours: str = "Ours", higher_is_better: bool = True
) -> dict[str, float]:
    """How many times better "Ours" is than each competitor.

    Args:
        results: Scheme name -> metric value (throughput or running time).
        ours: Key of the CuckooGraph entry.
        higher_is_better: ``True`` for throughput (Mops), ``False`` for
            running time (seconds).

    Returns:
        Scheme name -> factor by which CuckooGraph is better (values above 1
        mean CuckooGraph wins, matching how the paper quotes its factors).
    """
    if ours not in results:
        raise KeyError(f"{ours!r} missing from results {sorted(results)}")
    ours_value = results[ours]
    factors: dict[str, float] = {}
    for scheme, value in results.items():
        if scheme == ours:
            continue
        if higher_is_better:
            factors[scheme] = float("inf") if value == 0 else ours_value / value
        else:
            factors[scheme] = float("inf") if ours_value == 0 else value / ours_value
    return factors


def geometric_mean(values: Sequence[float]) -> float:
    """Geometric mean of positive values (0 if the sequence is empty)."""
    finite = [value for value in values if value > 0 and value != float("inf")]
    if not finite:
        return 0.0
    product = 1.0
    for value in finite:
        product *= value
    return product ** (1.0 / len(finite))


def memory_series_table(points, title: Optional[str] = None) -> str:
    """Render Figure-9-style memory points grouped by scheme."""
    rows = [point.as_row() for point in points]
    return format_table(rows, columns=["scheme", "dataset", "inserted", "memory_bytes"],
                        title=title)


def write_bench_json(name: str, payload: Mapping[str, object],
                     directory: Union[str, Path]) -> Path:
    """Write a machine-readable benchmark result next to the text report.

    The plain-text tables are for human diffing; CI and trend tooling want
    the same numbers without parsing aligned columns.  The payload lands in
    ``<directory>/BENCH_<name>.json`` -- sorted keys, trailing newline --
    so reruns on identical numbers produce byte-identical files.  Returns
    the written path.
    """
    directory = Path(directory)
    directory.mkdir(parents=True, exist_ok=True)
    path = directory / f"BENCH_{name}.json"
    path.write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n",
                    encoding="utf-8")
    return path
