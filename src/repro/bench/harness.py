"""Shared drivers behind every benchmark (one per table / figure).

The paper's evaluation repeats a small number of experimental templates over
datasets and schemes: insert-all / query-all / delete-all throughput
(Figures 6-8), memory-versus-insertions curves (Figure 9), analytics running
time on top-degree subgraphs (Figures 10-16), parameter sweeps (Figures 2-4),
the denylist ablation (Figure 5) and the two database integrations
(Figures 17-18).  This module implements those templates once, so each file
under ``benchmarks/`` is a thin parameterisation that regenerates one figure.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Callable, Optional, Sequence

from ..analytics import (
    TraversalEngine,
    all_local_clustering_coefficients,
    betweenness_centrality,
    bfs,
    count_triangles_of_node,
    dijkstra,
    pagerank,
    strongly_connected_components,
    top_degree_nodes,
    top_degree_subgraph,
)
from ..baselines import COMPETITORS
from ..core import CuckooGraph, CuckooGraphConfig, ShardedCuckooGraph, WeightedCuckooGraph
from ..datasets import EdgeStream, load_dataset
from ..interfaces import DynamicGraphStore
from ..persist import PersistentStore
from ..service import GraphClient
from ..tiered import TieredStore

#: Name the paper uses for CuckooGraph in every figure legend.
OURS = "Ours"

#: The sharded scale-out front-end (this reproduction's extension, not a
#: scheme from the paper); four shards is the default deployment unit.
SHARDED = "Ours-Sharded"

#: The request-queue service layer over the sharded front-end: every
#: operation travels through the GraphService micro-batcher, so this scheme
#: measures the full front-door path (queue + coalescing + batch dispatch),
#: not the bare structure.
SERVICE = "Ours-Service"

#: The durable scheme: the sharded front-end wrapped in the write-ahead-log
#: :class:`~repro.persist.PersistentStore` (one WAL segment per shard), so
#: this scheme measures the in-memory structure *plus* the logging path.
#: Built by name it runs ephemeral (temporary directory, removed on close)
#: and unsynced -- buffered appends, no fsync per operation -- which is the
#: logging-overhead-only configuration; ``benchmarks/test_fig06d_durability``
#: measures the fsync/group-commit axis explicitly.
DURABLE = "Ours-Durable"

#: The replicated scheme: the durable service with read replicas.  Every
#: mutation travels client -> service -> WAL-wrapped sharded store (one
#: group commit per dispatched micro-batch), the primary's log is shipped
#: to two followers, and read/analytics runs are served round-robin by the
#: replicas under the read-your-writes barrier -- the full log-shipping
#: path, end to end.  ``benchmarks/test_fig06e_replication`` measures the
#: lag / fan-out / PITR axes explicitly.
REPLICATED = "Ours-Replicated"

#: The multicore scheme: the sharded front-end with ``executor="processes"``
#: -- per-shard CuckooGraph state owned by long-lived worker processes, the
#: WAL op encoding as the shard RPC.  Observably byte-identical to
#: :data:`SHARDED` (the differential suite enforces it); the only axis it
#: moves is wall-clock, which is exactly what
#: ``benchmarks/test_fig06f_multicore`` measures on multi-core hosts.
MULTICORE = "Ours-Multicore"

#: The tiered scheme: the hot/cold front-end with a quarter of the shards
#: resident in the CuckooGraph tier and the rest spilled to the miniredis
#: integration behind the touch-count LRU policy -- the configuration the
#: traffic-SLO benchmark (``benchmarks/test_fig06h_traffic_slo``) gates its
#: hit-rate criterion on.
TIERED = "Ours-Tiered"

#: Default shard count used when the sharded scheme is built by name.
DEFAULT_SHARDS = 4

#: Default replica count for the replicated scheme.
DEFAULT_REPLICAS = 2

#: Tiered-scheme defaults: 25% of the shards hot (the fig06h gate's sizing).
DEFAULT_TIERED_SHARDS = 8
DEFAULT_HOT_SHARDS = 2

#: Schemes that *are* CuckooGraph (single-instance, sharded, served, made
#: durable or replicated).  The "CuckooGraph beats each competitor" shape
#: checks iterate the complement of this set, so registering another of our
#: own variants never turns it into a competitor.
OURS_FAMILY = frozenset({OURS, SHARDED, MULTICORE, SERVICE, DURABLE, REPLICATED,
                         TIERED})


def _durable_store(config: Optional[CuckooGraphConfig] = None) -> PersistentStore:
    """Ephemeral durable scheme: WAL-wrapped sharded store, buffered appends.

    Compaction is disabled so the cells measure pure logging overhead at any
    dataset scale; the snapshot/truncate axis is what
    ``benchmarks/test_fig06d_durability.py`` measures explicitly.
    """
    return PersistentStore(
        store=ShardedCuckooGraph(num_shards=DEFAULT_SHARDS, config=config),
        sync_on_commit=False,
        compact_wal_bytes=None,
        own_store=True,
    )


def _replicated_client(config: Optional[CuckooGraphConfig] = None) -> GraphClient:
    """Ephemeral replicated scheme: durable service + read replicas.

    Group-commit durability (one fsync per dispatched micro-batch) with
    compaction left at its default; reads are served by
    :data:`DEFAULT_REPLICAS` followers under read-your-writes, so every
    figure cell measures the complete replicated read path.
    """
    return GraphClient.durable(
        num_shards=DEFAULT_SHARDS,
        config=config,
        replicas=DEFAULT_REPLICAS,
    )

#: Scheme name -> store factory, in the order the figures list them.
#: WBI's bucket matrix is sized so that its edges-per-bucket load on the
#: scaled datasets is in the same regime as the paper's full-size runs
#: (many edges hang off every bucket); a matrix sized for the scaled edge
#: counts would hide exactly the redundancy the paper measures.
SCHEMES: dict[str, Callable[[], DynamicGraphStore]] = {
    "LiveGraph": COMPETITORS["LiveGraph"],
    "Spruce": COMPETITORS["Spruce"],
    "Sortledton": COMPETITORS["Sortledton"],
    OURS: CuckooGraph,
    SHARDED: lambda: ShardedCuckooGraph(num_shards=DEFAULT_SHARDS),
    MULTICORE: lambda: ShardedCuckooGraph(num_shards=DEFAULT_SHARDS,
                                          executor="processes"),
    SERVICE: lambda: GraphClient.local(num_shards=DEFAULT_SHARDS),
    DURABLE: _durable_store,
    REPLICATED: _replicated_client,
    TIERED: lambda: TieredStore(num_shards=DEFAULT_TIERED_SHARDS,
                                hot_shards=DEFAULT_HOT_SHARDS),
    "WBI": lambda: COMPETITORS["WBI"](matrix_size=16),
}


def build_store(scheme: str, config: Optional[CuckooGraphConfig] = None) -> DynamicGraphStore:
    """Instantiate a scheme by figure-legend name.

    ``config`` only applies to the CuckooGraph family (the parameter-sweep
    figures); the sharded front-end passes it down to every shard.
    """
    if scheme not in SCHEMES:
        raise KeyError(f"unknown scheme {scheme!r}; expected one of {list(SCHEMES)}")
    if config is not None:
        if scheme == OURS:
            return CuckooGraph(config)
        if scheme == SHARDED:
            return ShardedCuckooGraph(num_shards=DEFAULT_SHARDS, config=config)
        if scheme == MULTICORE:
            return ShardedCuckooGraph(num_shards=DEFAULT_SHARDS, config=config,
                                      executor="processes")
        if scheme == SERVICE:
            return GraphClient.local(num_shards=DEFAULT_SHARDS, config=config)
        if scheme == DURABLE:
            return _durable_store(config)
        if scheme == REPLICATED:
            return _replicated_client(config)
        if scheme == TIERED:
            return TieredStore(num_shards=DEFAULT_TIERED_SHARDS,
                               hot_shards=DEFAULT_HOT_SHARDS, config=config)
    return SCHEMES[scheme]()


def build_cuckoograph_for_stream(
    stream: EdgeStream, config: Optional[CuckooGraphConfig] = None
) -> DynamicGraphStore:
    """CuckooGraph variant matching the stream: weighted when duplicates exist.

    Mirrors the paper's setup note: "whether the basic or extended version of
    CuckooGraph is used depends on whether the dataset has repeated edges".
    """
    if stream.statistics().has_duplicates:
        return WeightedCuckooGraph(config) if config is not None else WeightedCuckooGraph()
    return CuckooGraph(config) if config is not None else CuckooGraph()


# --------------------------------------------------------------------- #
# Result records
# --------------------------------------------------------------------- #


@dataclass(frozen=True)
class ThroughputResult:
    """Throughput of one (scheme, dataset, operation) cell of Figures 6-8.

    Two views are reported for every cell:

    * ``mops`` -- wall-clock million operations per second of the pure-Python
      implementation (absolute values are not comparable to the paper's C++
      numbers);
    * ``accesses_per_op`` -- modelled memory accesses per operation, the
      quantity the paper's own analysis argues about.  The figure *shape*
      (which scheme wins, roughly by how much) is read from this column; see
      EXPERIMENTS.md.
    """

    scheme: str
    dataset: str
    operation: str
    operations: int
    seconds: float
    accesses: int = 0

    @property
    def mops(self) -> float:
        """Million operations per second (wall clock)."""
        if self.seconds <= 0:
            return float("inf")
        return self.operations / self.seconds / 1e6

    @property
    def accesses_per_op(self) -> float:
        """Modelled memory accesses per operation."""
        if self.operations == 0:
            return 0.0
        return self.accesses / self.operations

    @property
    def modelled_mops(self) -> float:
        """Throughput of an access-bound execution (operations per access unit).

        Expressed in "million operations per million accesses" so that
        relative factors between schemes mirror the paper's throughput plots.
        """
        if self.accesses == 0:
            return float("inf")
        return self.operations / self.accesses

    def as_row(self) -> dict[str, object]:
        return {
            "scheme": self.scheme,
            "dataset": self.dataset,
            "operation": self.operation,
            "operations": self.operations,
            "seconds": round(self.seconds, 6),
            "mops": round(self.mops, 6),
            "accesses_per_op": round(self.accesses_per_op, 3),
            "modelled_mops": round(self.modelled_mops, 4),
        }


@dataclass(frozen=True)
class RunningTimeResult:
    """Running time of one (scheme, dataset) cell of Figures 10-16.

    Alongside the paper's wall-clock seconds, every cell reports how the
    frontier-batch engine drove the store during the timed kernel phase:

    * ``batch_calls`` -- batched store round-trips issued (``successors_many``
      expansions plus ``has_edges`` probe batches); the whole point of the
      engine is that this number is tiny compared to the node/edge count;
    * ``accesses`` -- modelled memory accesses the store performed, the
      quantity the paper's own analysis argues about.
    """

    scheme: str
    dataset: str
    task: str
    seconds: float
    detail: str = ""
    batch_calls: int = 0
    accesses: int = 0

    def as_row(self) -> dict[str, object]:
        return {
            "scheme": self.scheme,
            "dataset": self.dataset,
            "task": self.task,
            "seconds": round(self.seconds, 6),
            "batch_calls": self.batch_calls,
            "accesses": self.accesses,
            "detail": self.detail,
        }


@dataclass(frozen=True)
class MemoryPoint:
    """One sample of a Figure 9 memory-versus-insertions curve."""

    scheme: str
    dataset: str
    inserted: int
    memory_bytes: int

    def as_row(self) -> dict[str, object]:
        return {
            "scheme": self.scheme,
            "dataset": self.dataset,
            "inserted": self.inserted,
            "memory_bytes": self.memory_bytes,
        }


# --------------------------------------------------------------------- #
# Basic-task drivers (Figures 6, 7, 8)
# --------------------------------------------------------------------- #


def _timed(operation: Callable[[], None]) -> float:
    start = time.perf_counter()
    operation()
    return time.perf_counter() - start


def _accesses_of(store: DynamicGraphStore) -> int:
    return getattr(store, "accesses", 0)


def _dispose(store: DynamicGraphStore) -> None:
    """Release a store built for one benchmark cell.

    The sharded front-end and the service client hold executor threads; a
    full figure run builds dozens of stores, so each driver closes what it
    created instead of leaking dispatchers until interpreter exit.
    """
    close = getattr(store, "close", None)
    if callable(close):
        close()


def run_insertion(store: DynamicGraphStore, stream: Sequence[tuple[int, int]],
                  scheme: str, dataset: str) -> ThroughputResult:
    """Insert every stream arrival and report the average insertion throughput."""
    edges = list(stream)
    before = _accesses_of(store)
    seconds = _timed(lambda: [store.insert_edge(u, v) for u, v in edges])
    return ThroughputResult(scheme, dataset, "insert", len(edges), seconds,
                            _accesses_of(store) - before)


def run_query(store: DynamicGraphStore, stream: Sequence[tuple[int, int]],
              scheme: str, dataset: str) -> ThroughputResult:
    """Query every stream edge and report the average query throughput."""
    edges = list(stream)
    before = _accesses_of(store)
    seconds = _timed(lambda: [store.has_edge(u, v) for u, v in edges])
    return ThroughputResult(scheme, dataset, "query", len(edges), seconds,
                            _accesses_of(store) - before)


def run_deletion(store: DynamicGraphStore, stream: Sequence[tuple[int, int]],
                 scheme: str, dataset: str) -> ThroughputResult:
    """Delete every stream edge one by one and report the deletion throughput."""
    edges = list(stream)
    before = _accesses_of(store)
    seconds = _timed(lambda: [store.delete_edge(u, v) for u, v in edges])
    return ThroughputResult(scheme, dataset, "delete", len(edges), seconds,
                            _accesses_of(store) - before)


def run_basic_tasks(
    scheme: str,
    dataset: str,
    stream: EdgeStream,
    config: Optional[CuckooGraphConfig] = None,
) -> dict[str, ThroughputResult]:
    """Figure 6/7/8 cell for one scheme on one dataset.

    Follows the paper's methodology: insert the full (possibly duplicated)
    stream, query every inserted edge, then delete edges one by one.
    """
    if scheme == OURS:
        store = build_cuckoograph_for_stream(stream, config)
    else:
        store = build_store(scheme)
    insertion = run_insertion(store, stream.edges, scheme, dataset)
    distinct = stream.deduplicated()
    query = run_query(store, distinct.edges, scheme, dataset)
    deletion = run_deletion(store, distinct.edges, scheme, dataset)
    _dispose(store)
    return {"insert": insertion, "query": query, "delete": deletion}


# --------------------------------------------------------------------- #
# Memory-curve driver (Figure 9)
# --------------------------------------------------------------------- #


def run_memory_curve(
    scheme: str,
    dataset: str,
    stream: EdgeStream,
    samples: int = 8,
    config: Optional[CuckooGraphConfig] = None,
) -> list[MemoryPoint]:
    """Insert the de-duplicated stream and sample the modelled memory footprint."""
    distinct = stream.deduplicated().edges
    store = build_store(scheme, config)
    sample_every = max(1, len(distinct) // samples)
    points: list[MemoryPoint] = []
    for index, (u, v) in enumerate(distinct, start=1):
        store.insert_edge(u, v)
        if index % sample_every == 0 or index == len(distinct):
            points.append(MemoryPoint(scheme, dataset, index, store.memory_bytes()))
    _dispose(store)
    return points


# --------------------------------------------------------------------- #
# Analytics drivers (Figures 10-16)
# --------------------------------------------------------------------- #


def _load_full_graph(scheme: str, stream: EdgeStream,
                     config: Optional[CuckooGraphConfig] = None) -> DynamicGraphStore:
    store = (
        build_cuckoograph_for_stream(stream, config) if scheme == OURS else build_store(scheme)
    )
    store.insert_edges(stream)
    return store


def _engine_result(scheme: str, dataset: str, task: str, seconds: float, detail: str,
                   engine: TraversalEngine, accesses_before: int) -> RunningTimeResult:
    """Assemble a Figures 10-16 cell with the engine's batch accounting."""
    return RunningTimeResult(
        scheme, dataset, task, seconds, detail,
        batch_calls=engine.batch_calls,
        accesses=_accesses_of(engine.store) - accesses_before,
    )


def run_bfs_task(scheme: str, dataset: str, stream: EdgeStream,
                 root_count: int = 5) -> RunningTimeResult:
    """Figure 10: average BFS time from the highest-total-degree roots.

    The traversals run through the frontier-batch engine, so the cell also
    reports how many batched store calls the BFS sweeps needed.
    """
    store = _load_full_graph(scheme, stream)
    roots = top_degree_nodes(store, root_count)
    engine = TraversalEngine(store)
    accesses_before = _accesses_of(store)
    start = time.perf_counter()
    visited_total = sum(len(bfs(store, root, engine=engine)) for root in roots)
    seconds = (time.perf_counter() - start) / max(1, len(roots))
    result = _engine_result(scheme, dataset, "BFS", seconds, f"visited={visited_total}",
                            engine, accesses_before)
    _dispose(store)
    return result


def run_sssp_task(scheme: str, dataset: str, stream: EdgeStream,
                  subgraph_nodes: int = 200, source_count: int = 10) -> RunningTimeResult:
    """Figure 11: average Dijkstra time from the 10 highest-degree sources."""
    store = _load_full_graph(scheme, stream)
    subgraph, top_nodes = top_degree_subgraph(store, subgraph_nodes)
    sources = top_nodes[:source_count]
    engine = TraversalEngine(subgraph)
    accesses_before = _accesses_of(subgraph)
    start = time.perf_counter()
    reached = 0
    for source in sources:
        reached += len(dijkstra(subgraph, source, engine=engine))
    seconds = (time.perf_counter() - start) / max(1, len(sources))
    result = _engine_result(scheme, dataset, "SSSP", seconds, f"reached={reached}",
                            engine, accesses_before)
    _dispose(subgraph)
    _dispose(store)
    return result


def run_triangle_task(scheme: str, dataset: str, stream: EdgeStream,
                      node_count: int = 5) -> RunningTimeResult:
    """Figure 12: triangle counting around the highest-degree nodes."""
    store = _load_full_graph(scheme, stream)
    nodes = top_degree_nodes(store, node_count)
    engine = TraversalEngine(store)
    accesses_before = _accesses_of(store)
    start = time.perf_counter()
    triangles = sum(count_triangles_of_node(store, node, engine=engine) for node in nodes)
    seconds = time.perf_counter() - start
    result = _engine_result(scheme, dataset, "TC", seconds, f"triangles={triangles}",
                            engine, accesses_before)
    _dispose(store)
    return result


def run_cc_task(scheme: str, dataset: str, stream: EdgeStream,
                subgraph_nodes: int = 200) -> RunningTimeResult:
    """Figure 13: Tarjan connected components on the top-degree subgraph."""
    store = _load_full_graph(scheme, stream)
    subgraph, _ = top_degree_subgraph(store, subgraph_nodes)
    engine = TraversalEngine(subgraph)
    accesses_before = _accesses_of(subgraph)
    start = time.perf_counter()
    components = strongly_connected_components(subgraph, engine=engine)
    seconds = time.perf_counter() - start
    result = _engine_result(scheme, dataset, "CC", seconds,
                            f"components={len(components)}", engine, accesses_before)
    _dispose(subgraph)
    _dispose(store)
    return result


def run_pagerank_task(scheme: str, dataset: str, stream: EdgeStream,
                      subgraph_nodes: int = 200, iterations: int = 100) -> RunningTimeResult:
    """Figure 14: 100 PageRank iterations on the top-degree subgraph."""
    store = _load_full_graph(scheme, stream)
    subgraph, _ = top_degree_subgraph(store, subgraph_nodes)
    engine = TraversalEngine(subgraph)
    accesses_before = _accesses_of(subgraph)
    start = time.perf_counter()
    scores = pagerank(subgraph, iterations=iterations, engine=engine)
    seconds = time.perf_counter() - start
    result = _engine_result(scheme, dataset, "PR", seconds, f"nodes={len(scores)}",
                            engine, accesses_before)
    _dispose(subgraph)
    _dispose(store)
    return result


def run_bc_task(scheme: str, dataset: str, stream: EdgeStream,
                subgraph_nodes: int = 120) -> RunningTimeResult:
    """Figure 15: Brandes betweenness centrality on the top-degree subgraph."""
    store = _load_full_graph(scheme, stream)
    subgraph, _ = top_degree_subgraph(store, subgraph_nodes)
    engine = TraversalEngine(subgraph)
    accesses_before = _accesses_of(subgraph)
    start = time.perf_counter()
    scores = betweenness_centrality(subgraph, engine=engine)
    seconds = time.perf_counter() - start
    result = _engine_result(scheme, dataset, "BC", seconds, f"nodes={len(scores)}",
                            engine, accesses_before)
    _dispose(subgraph)
    _dispose(store)
    return result


def run_lcc_task(scheme: str, dataset: str, stream: EdgeStream,
                 subgraph_nodes: int = 150) -> RunningTimeResult:
    """Figure 16: local clustering coefficient on the top-degree subgraph."""
    store = _load_full_graph(scheme, stream)
    subgraph, _ = top_degree_subgraph(store, subgraph_nodes)
    engine = TraversalEngine(subgraph)
    accesses_before = _accesses_of(subgraph)
    start = time.perf_counter()
    coefficients = all_local_clustering_coefficients(subgraph, engine=engine)
    seconds = time.perf_counter() - start
    result = _engine_result(scheme, dataset, "LCC", seconds,
                            f"nodes={len(coefficients)}", engine, accesses_before)
    _dispose(subgraph)
    _dispose(store)
    return result


#: Task name -> driver, used by the analytics benchmarks and examples.
ANALYTICS_TASKS: dict[str, Callable[..., RunningTimeResult]] = {
    "BFS": run_bfs_task,
    "SSSP": run_sssp_task,
    "TC": run_triangle_task,
    "CC": run_cc_task,
    "PR": run_pagerank_task,
    "BC": run_bc_task,
    "LCC": run_lcc_task,
}


# --------------------------------------------------------------------- #
# Parameter sweeps and ablation (Figures 2-5)
# --------------------------------------------------------------------- #


def run_parameter_point(
    config: CuckooGraphConfig,
    stream: EdgeStream,
    dataset: str = "CAIDA",
    checkpoints: int = 5,
) -> dict[str, object]:
    """Throughput and memory for one CuckooGraph configuration (Figures 2-4).

    The paper reports insertion/query throughput at increasing numbers of
    inserted items plus the memory-usage curve; this driver returns the same
    series for one parameter value.
    """
    edges = list(stream)
    store = build_cuckoograph_for_stream(stream, config)
    checkpoint_size = max(1, len(edges) // checkpoints)
    insert_series: list[tuple[int, float]] = []
    memory_series: list[tuple[int, int]] = []
    inserted = 0
    for chunk_start in range(0, len(edges), checkpoint_size):
        chunk = edges[chunk_start:chunk_start + checkpoint_size]
        seconds = _timed(lambda: [store.insert_edge(u, v) for u, v in chunk])
        inserted += len(chunk)
        mops = len(chunk) / seconds / 1e6 if seconds > 0 else float("inf")
        insert_series.append((inserted, mops))
        memory_series.append((inserted, store.memory_bytes()))
    distinct = stream.deduplicated().edges
    query_seconds = _timed(lambda: [store.has_edge(u, v) for u, v in distinct])
    query_mops = len(distinct) / query_seconds / 1e6 if query_seconds > 0 else float("inf")
    return {
        "config": config,
        "dataset": dataset,
        "insert_series": insert_series,
        "query_mops": query_mops,
        "memory_series": memory_series,
        "final_memory_bytes": store.memory_bytes(),
    }


def run_denylist_ablation(stream: EdgeStream, dataset: str = "CAIDA") -> dict[str, dict]:
    """Figure 5: CuckooGraph with the DENYLIST versus expand-on-failure."""
    results: dict[str, dict] = {}
    for label, use_denylist in (("DL", True), ("DL-free", False)):
        config = CuckooGraphConfig(use_denylist=use_denylist)
        results[label] = run_parameter_point(config, stream, dataset)
    return results


# --------------------------------------------------------------------- #
# Convenience wrappers used by benchmarks
# --------------------------------------------------------------------- #


def dataset_stream(name: str, scale: Optional[int] = None, seed: int = 1) -> EdgeStream:
    """Load the scaled synthetic stand-in for a named dataset."""
    return load_dataset(name, scale=scale, seed=seed)
