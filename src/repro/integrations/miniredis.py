"""An in-process Redis-like command server with a CuckooGraph module.

Section V-F deploys CuckooGraph inside Redis through the Redis Module API,
exposing ``insert`` / ``del`` / ``query`` / ``getneighbors`` commands and the
persistence hooks (``save_rdb`` / ``load_rdb`` / ``aof_rewrite``).  The real
Redis server is out of scope for an offline pure-Python reproduction, so this
module provides the closest structural equivalent:

* :class:`MiniRedisServer` -- a keyspace plus a command dispatcher that
  parses textual commands (simulating the protocol/dispatch overhead that
  dominates the measured throughput in the paper: native Redis peaks at
  ~0.16 Mops on the authors' server, and CuckooGraph-on-Redis reaches
  0.04-0.05 Mops);
* :class:`CuckooGraphModule` -- a loadable module registering the graph
  commands and the persistence callbacks on top of a
  :class:`~repro.core.weighted.WeightedCuckooGraph`;
* RDB-style snapshots (a serialisable dict of the whole keyspace) and an
  append-only file (AOF) log with replay and rewrite.

The substitution preserves what the experiment measures: every graph
operation pays command parsing, dispatch and reply formatting on top of the
data-structure cost, so the relative drop from raw CuckooGraph throughput to
"CuckooGraph on Redis" throughput has the same cause as in the paper.
"""

from __future__ import annotations

import json
from typing import Callable, Iterator, Optional, Sequence

from ..core.errors import IntegrationError
from ..core.weighted import WeightedCuckooGraph
from ..interfaces import DynamicGraphStore

#: Signature of a command handler: (server, args) -> reply.
CommandHandler = Callable[["MiniRedisServer", Sequence[str]], object]


class RedisModule:
    """Base class for loadable modules (mirrors the Redis Module API surface)."""

    #: Module name reported by ``MODULE LIST``.
    name = "module"

    def commands(self) -> dict[str, CommandHandler]:
        """Mapping from command name (upper case) to handler."""
        return {}

    def save_rdb(self) -> dict:
        """Serialisable snapshot of the module's data (RDB hook)."""
        return {}

    def load_rdb(self, payload: dict) -> None:
        """Restore the module's data from a snapshot (RDB hook)."""

    def aof_rewrite(self) -> list[list[str]]:
        """Minimal command sequence that reconstructs the module's data (AOF hook)."""
        return []


class CuckooGraphModule(RedisModule):
    """Redis module exposing a weighted CuckooGraph as ``G*`` commands.

    Commands (case-insensitive):

    * ``GINSERT u v``      -- insert the edge (or bump its weight); replies ``:w``
    * ``GDEL u v``         -- decrement / delete the edge; replies ``:1`` or ``:0``
    * ``GQUERY u v``       -- reply the weight of the edge (``:0`` if absent)
    * ``GNEIGHBORS u``     -- reply the successor list of ``u``
    * ``GSIZE``            -- reply the number of distinct edges
    """

    name = "cuckoograph"

    def __init__(self, graph: Optional[WeightedCuckooGraph] = None):
        self.graph = graph if graph is not None else WeightedCuckooGraph()

    # -- command handlers ------------------------------------------------ #

    def commands(self) -> dict[str, CommandHandler]:
        return {
            "GINSERT": self._cmd_insert,
            "GDEL": self._cmd_delete,
            "GQUERY": self._cmd_query,
            "GNEIGHBORS": self._cmd_neighbors,
            "GSIZE": self._cmd_size,
        }

    def _cmd_insert(self, server: "MiniRedisServer", args: Sequence[str]) -> int:
        u, v = _parse_edge(args, "GINSERT")
        return self.graph.insert_weighted_edge(u, v)

    def _cmd_delete(self, server: "MiniRedisServer", args: Sequence[str]) -> int:
        u, v = _parse_edge(args, "GDEL")
        return 1 if self.graph.delete_edge(u, v) else 0

    def _cmd_query(self, server: "MiniRedisServer", args: Sequence[str]) -> int:
        u, v = _parse_edge(args, "GQUERY")
        return self.graph.edge_weight(u, v)

    def _cmd_neighbors(self, server: "MiniRedisServer", args: Sequence[str]) -> list[int]:
        if len(args) != 1:
            raise IntegrationError("GNEIGHBORS expects exactly one argument")
        return sorted(self.graph.successors(int(args[0])))

    def _cmd_size(self, server: "MiniRedisServer", args: Sequence[str]) -> int:
        return self.graph.num_edges

    # -- persistence hooks ------------------------------------------------ #

    def save_rdb(self) -> dict:
        return {"edges": [[u, v, w] for u, v, w in self.graph.weighted_edges()]}

    def load_rdb(self, payload: dict) -> None:
        self.graph = WeightedCuckooGraph()
        for u, v, w in payload.get("edges", []):
            self.graph.insert_weighted_edge(int(u), int(v), int(w))

    def aof_rewrite(self) -> list[list[str]]:
        commands: list[list[str]] = []
        for u, v, w in self.graph.weighted_edges():
            for _ in range(w):
                commands.append(["GINSERT", str(u), str(v)])
        return commands


class MiniRedisServer:
    """A tiny single-threaded command server with module support.

    Built-in commands cover the handful needed by the examples and tests
    (``SET``, ``GET``, ``DEL``, ``EXISTS``, ``PING``, ``MODULE``); everything
    else must come from a loaded module.  Every call goes through textual
    parsing and dispatch, which is deliberately the dominant cost.
    """

    def __init__(self):
        self._keyspace: dict[str, str] = {}
        self._modules: dict[str, RedisModule] = {}
        self._commands: dict[str, CommandHandler] = {
            "PING": lambda server, args: "PONG",
            "SET": self._cmd_set,
            "GET": self._cmd_get,
            "DEL": self._cmd_del,
            "EXISTS": self._cmd_exists,
            "DBSIZE": lambda server, args: len(self._keyspace),
        }
        self._aof: list[list[str]] = []
        self.commands_processed = 0

    # ------------------------------------------------------------------ #
    # Module management (--loadmodule equivalent)
    # ------------------------------------------------------------------ #

    def load_module(self, module: RedisModule) -> None:
        """Register a module and its commands (``--loadmodule`` equivalent)."""
        if module.name in self._modules:
            raise IntegrationError(f"module {module.name!r} already loaded")
        for command, handler in module.commands().items():
            upper = command.upper()
            if upper in self._commands:
                raise IntegrationError(f"command {upper} already registered")
            self._commands[upper] = handler
        self._modules[module.name] = module

    def loaded_modules(self) -> list[str]:
        """Names of the loaded modules."""
        return sorted(self._modules)

    # ------------------------------------------------------------------ #
    # Command execution
    # ------------------------------------------------------------------ #

    def execute(self, command_line: str | Sequence[str]):
        """Parse and execute one command; return its reply.

        Accepts either a raw command line (``"GINSERT 1 2"``) or a
        pre-tokenised argument sequence.
        """
        if isinstance(command_line, str):
            tokens = command_line.split()
        else:
            tokens = [str(token) for token in command_line]
        if not tokens:
            raise IntegrationError("empty command")
        name, args = tokens[0].upper(), tokens[1:]
        handler = self._commands.get(name)
        if handler is None:
            raise IntegrationError(f"unknown command {name!r}")
        self.commands_processed += 1
        if name in _WRITE_COMMANDS:
            self._aof.append(tokens)
        return handler(self, args)

    def execute_many(self, command_lines: Sequence[str | Sequence[str]]) -> list:
        """Execute a batch of commands; return the list of replies."""
        return [self.execute(line) for line in command_lines]

    # ------------------------------------------------------------------ #
    # Built-in commands
    # ------------------------------------------------------------------ #

    def _cmd_set(self, server: "MiniRedisServer", args: Sequence[str]) -> str:
        if len(args) != 2:
            raise IntegrationError("SET expects key and value")
        self._keyspace[args[0]] = args[1]
        return "OK"

    def _cmd_get(self, server: "MiniRedisServer", args: Sequence[str]) -> Optional[str]:
        if len(args) != 1:
            raise IntegrationError("GET expects a key")
        return self._keyspace.get(args[0])

    def _cmd_del(self, server: "MiniRedisServer", args: Sequence[str]) -> int:
        removed = 0
        for key in args:
            if key in self._keyspace:
                del self._keyspace[key]
                removed += 1
        return removed

    def _cmd_exists(self, server: "MiniRedisServer", args: Sequence[str]) -> int:
        return sum(1 for key in args if key in self._keyspace)

    # ------------------------------------------------------------------ #
    # Persistence
    # ------------------------------------------------------------------ #

    def save_rdb(self) -> str:
        """Serialise the keyspace and every module's data to a JSON snapshot."""
        snapshot = {
            "keyspace": dict(self._keyspace),
            "modules": {name: module.save_rdb() for name, module in self._modules.items()},
        }
        return json.dumps(snapshot)

    def load_rdb(self, snapshot: str) -> None:
        """Restore the keyspace and module data from a JSON snapshot."""
        payload = json.loads(snapshot)
        self._keyspace = dict(payload.get("keyspace", {}))
        for name, module_payload in payload.get("modules", {}).items():
            module = self._modules.get(name)
            if module is None:
                raise IntegrationError(f"snapshot references unloaded module {name!r}")
            module.load_rdb(module_payload)

    def aof_log(self) -> list[list[str]]:
        """The append-only command log accumulated so far."""
        return list(self._aof)

    def aof_rewrite(self) -> list[list[str]]:
        """Compact AOF: built-in writes plus each module's minimal command set."""
        rewritten: list[list[str]] = [
            ["SET", key, value] for key, value in self._keyspace.items()
        ]
        for module in self._modules.values():
            rewritten.extend(module.aof_rewrite())
        self._aof = list(rewritten)
        return rewritten

    def replay_aof(self, log: Sequence[Sequence[str]]) -> None:
        """Replay an AOF log (used after loading an empty server)."""
        for tokens in log:
            self.execute(list(tokens))


class RedisGraphStore(DynamicGraphStore):
    """Distinct-edge :class:`DynamicGraphStore` facade over mini-Redis.

    Every operation travels the full command path -- textual parsing,
    dispatch, reply formatting -- through a :class:`MiniRedisServer` with a
    loaded :class:`CuckooGraphModule`, so the scheme keeps paying exactly
    the overhead the Figure 17 experiment measures while still speaking the
    store contract.  That is what lets the integration participate in the
    store-contract matrix, the differential fuzzer and subgraph extraction
    (via :meth:`spawn_empty`) like every other scheme.

    The module's graph is weighted (duplicate ``GINSERT`` bumps a weight);
    this facade enforces the contract's distinct-edge semantics with a
    membership probe before every mutation, the same way the paper's Redis
    module client would guard a set-like API.
    """

    name = "MiniRedis"

    def __init__(self, server: Optional[MiniRedisServer] = None):
        if server is None:
            server = MiniRedisServer()
            server.load_module(CuckooGraphModule())
        module = server._modules.get("cuckoograph")
        if not isinstance(module, CuckooGraphModule):
            raise IntegrationError(
                "RedisGraphStore needs a server with the cuckoograph module loaded"
            )
        self._server = server
        self._module = module

    @property
    def server(self) -> MiniRedisServer:
        """The underlying command server (for AOF/RDB experiments)."""
        return self._server

    def spawn_empty(self) -> "RedisGraphStore":
        """Fresh empty server + module, mirroring this configuration."""
        return RedisGraphStore()

    # -- store contract, one command round-trip per probe/mutation ------- #

    def insert_edge(self, u: int, v: int) -> bool:
        if self._server.execute(("GQUERY", u, v)) > 0:
            return False
        self._server.execute(("GINSERT", u, v))
        return True

    def has_edge(self, u: int, v: int) -> bool:
        return self._server.execute(("GQUERY", u, v)) > 0

    def delete_edge(self, u: int, v: int) -> bool:
        if self._server.execute(("GQUERY", u, v)) == 0:
            return False
        # GDEL decrements the module graph's weight and only replies 1 once
        # the edge is actually gone; a wrapped pre-loaded server may hold
        # weights above 1, so drain until removal to keep the facade's
        # distinct-edge contract (delete_edge True => edge removed).
        while not self._server.execute(("GDEL", u, v)):
            pass
        return True

    def successors(self, u: int) -> list[int]:
        return self._server.execute(("GNEIGHBORS", u))

    def edges(self) -> Iterator[tuple[int, int]]:
        # Quiesced introspection reads the module's graph directly, the way
        # the service client reads its store: enumeration is a diagnostic
        # scan, not part of the measured command traffic.
        return self._module.graph.edges()

    @property
    def num_edges(self) -> int:
        return self._server.execute("GSIZE")

    def memory_bytes(self) -> int:
        return self._module.graph.memory_bytes()

    @property
    def accesses(self) -> int:
        return self._module.graph.accesses

    def reset_accesses(self) -> None:
        self._module.graph.reset_accesses()


#: Commands appended to the AOF (write commands only).
_WRITE_COMMANDS = {"SET", "DEL", "GINSERT", "GDEL"}


def _parse_edge(args: Sequence[str], command: str) -> tuple[int, int]:
    if len(args) != 2:
        raise IntegrationError(f"{command} expects exactly two arguments (u, v)")
    try:
        return int(args[0]), int(args[1])
    except ValueError as error:
        raise IntegrationError(f"{command} arguments must be integers") from error
