"""A property-graph store in the style of Neo4j, with a CuckooGraph edge index.

Section V-G describes how edge queries work in Neo4j: every node keeps an
adjacency list of the relationships incident to it, so finding the edges
between ``u`` and ``v`` means traversing ``u``'s whole list and comparing
endpoints one by one -- expensive for high-degree nodes.  The paper layers a
multi-edge CuckooGraph on top: every inserted relationship is also recorded
in the CuckooGraph, whose query interface returns an iterator over the
relationship identifiers connecting ``u`` and ``v`` in O(1).

:class:`MiniNeo4j` reproduces that setup in-process:

* nodes and relationships carry labels / types and property maps;
* each node stores an adjacency list of relationship identifiers (the
  baseline query path traverses it);
* with ``use_cuckoo_index=True`` every relationship is mirrored into a
  :class:`~repro.core.multiedge.MultiEdgeCuckooGraph` and
  :meth:`find_relationships` uses its iterator instead of the traversal.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Iterator, Optional

from ..core.errors import IntegrationError, NotFoundError
from ..core.multiedge import MultiEdgeCuckooGraph
from ..interfaces import DynamicGraphStore


@dataclass
class NodeRecord:
    """One stored node: identifier, labels and properties."""

    node_id: int
    labels: tuple[str, ...] = ()
    properties: dict = field(default_factory=dict)
    #: Relationship identifiers incident to this node (both directions).
    adjacency: list[int] = field(default_factory=list)


@dataclass
class RelationshipRecord:
    """One stored relationship: endpoints, type and properties."""

    rel_id: int
    start: int
    end: int
    rel_type: str = "RELATED"
    properties: dict = field(default_factory=dict)


class MiniNeo4j:
    """Minimal property-graph database with optional CuckooGraph edge index.

    Args:
        use_cuckoo_index: When ``True`` (the "Ours+Neo4j" configuration of
            Figure 18), every relationship is also inserted into a multi-edge
            CuckooGraph and edge lookups use its O(1) iterator; when ``False``
            (plain Neo4j), lookups traverse the start node's adjacency list.
    """

    def __init__(self, use_cuckoo_index: bool = False):
        self.use_cuckoo_index = use_cuckoo_index
        self._nodes: dict[int, NodeRecord] = {}
        self._relationships: dict[int, RelationshipRecord] = {}
        self._rel_ids = itertools.count(1)
        self._node_ids = itertools.count(1)
        self._index: Optional[MultiEdgeCuckooGraph] = (
            MultiEdgeCuckooGraph() if use_cuckoo_index else None
        )

    # ------------------------------------------------------------------ #
    # Node operations
    # ------------------------------------------------------------------ #

    def create_node(
        self,
        node_id: Optional[int] = None,
        labels: tuple[str, ...] = (),
        **properties,
    ) -> int:
        """Create a node (auto-assigning an id when none is given)."""
        if node_id is None:
            node_id = next(self._node_ids)
            while node_id in self._nodes:
                node_id = next(self._node_ids)
        if node_id in self._nodes:
            raise IntegrationError(f"node {node_id} already exists")
        self._nodes[node_id] = NodeRecord(node_id, tuple(labels), dict(properties))
        return node_id

    def get_node(self, node_id: int) -> NodeRecord:
        """Fetch a node record (raises :class:`NotFoundError` if absent)."""
        try:
            return self._nodes[node_id]
        except KeyError:
            raise NotFoundError(f"node {node_id} does not exist") from None

    def has_node(self, node_id: int) -> bool:
        return node_id in self._nodes

    @property
    def node_count(self) -> int:
        return len(self._nodes)

    # ------------------------------------------------------------------ #
    # Relationship operations
    # ------------------------------------------------------------------ #

    def create_relationship(
        self,
        start: int,
        end: int,
        rel_type: str = "RELATED",
        **properties,
    ) -> int:
        """Create a relationship from ``start`` to ``end``; return its id.

        Missing endpoint nodes are created implicitly, which keeps bulk edge
        loading close to how the paper's insertion experiment drives Neo4j.
        """
        if start not in self._nodes:
            self.create_node(start)
        if end not in self._nodes:
            self.create_node(end)
        rel_id = next(self._rel_ids)
        record = RelationshipRecord(rel_id, start, end, rel_type, dict(properties))
        self._relationships[rel_id] = record
        self._nodes[start].adjacency.append(rel_id)
        if end != start:
            self._nodes[end].adjacency.append(rel_id)
        if self._index is not None:
            self._index.add_edge(start, end, rel_id)
        return rel_id

    def get_relationship(self, rel_id: int) -> RelationshipRecord:
        """Fetch a relationship record by identifier."""
        try:
            return self._relationships[rel_id]
        except KeyError:
            raise NotFoundError(f"relationship {rel_id} does not exist") from None

    @property
    def relationship_count(self) -> int:
        return len(self._relationships)

    def relationships(self) -> Iterator[RelationshipRecord]:
        """Iterate over every stored relationship record."""
        return iter(list(self._relationships.values()))

    def find_relationships(self, start: int, end: int) -> Iterator[RelationshipRecord]:
        """Every relationship from ``start`` to ``end``.

        With the CuckooGraph index this asks the multi-edge structure for the
        identifier iterator (O(1) to obtain); without it, it traverses the
        start node's adjacency list and compares endpoints one by one, which
        is the redundancy the paper measures in pure Neo4j.
        """
        if start not in self._nodes:
            return iter(())
        if self._index is not None:
            rel_ids = list(self._index.find_edges(start, end))
            return (self._relationships[rel_id] for rel_id in rel_ids)
        return (
            self._relationships[rel_id]
            for rel_id in self._nodes[start].adjacency
            if self._relationships[rel_id].start == start
            and self._relationships[rel_id].end == end
        )

    def has_relationship(self, start: int, end: int) -> bool:
        """Whether at least one relationship connects ``start`` to ``end``."""
        return next(self.find_relationships(start, end), None) is not None

    def delete_relationship(self, rel_id: int) -> bool:
        """Delete one relationship by identifier; return ``True`` if it existed."""
        record = self._relationships.pop(rel_id, None)
        if record is None:
            return False
        self._nodes[record.start].adjacency.remove(rel_id)
        if record.end != record.start:
            self._nodes[record.end].adjacency.remove(rel_id)
        if self._index is not None:
            self._index.remove_edge_id(record.start, record.end, rel_id)
        return True

    def neighbours(self, node_id: int) -> list[int]:
        """Distinct end nodes of outgoing relationships of ``node_id``."""
        if node_id not in self._nodes:
            return []
        if self._index is not None:
            return self._index.successors(node_id)
        seen: list[int] = []
        for rel_id in self._nodes[node_id].adjacency:
            record = self._relationships[rel_id]
            if record.start == node_id and record.end not in seen:
                seen.append(record.end)
        return seen

    # ------------------------------------------------------------------ #
    # Bulk loading used by the Figure 18 experiment
    # ------------------------------------------------------------------ #

    def load_edge_stream(self, edges, rel_type: str = "RELATED") -> int:
        """Create one relationship per ``(u, v)`` arrival; return how many."""
        created = 0
        for u, v in edges:
            self.create_relationship(u, v, rel_type)
            created += 1
        return created


#: Modelled bytes per stored node / relationship record (id + labels/type
#: pointer + property-map header + adjacency slot), used by the facade's
#: memory model so Figure 9-style comparisons can include the integration.
_NODE_RECORD_BYTES = 64
_REL_RECORD_BYTES = 96


class Neo4jGraphStore(DynamicGraphStore):
    """Distinct-edge :class:`DynamicGraphStore` facade over :class:`MiniNeo4j`.

    Every contract operation is expressed as property-graph traffic --
    relationship creation, indexed edge lookup, adjacency traversal -- so
    the scheme keeps the cost profile the Figure 18 experiment measures
    (including the CuckooGraph edge index on the lookup path) while
    participating in the store-contract matrix, the differential fuzzer and
    subgraph extraction (via :meth:`spawn_empty`) like every other scheme.

    The contract stores each distinct edge at most once, so the facade
    keeps at most one relationship per ``(u, v)`` pair; ``delete_edge``
    removes that relationship.
    """

    name = "MiniNeo4j"

    def __init__(self, db: Optional[MiniNeo4j] = None, use_cuckoo_index: bool = True):
        self._db = db if db is not None else MiniNeo4j(use_cuckoo_index=use_cuckoo_index)

    @property
    def db(self) -> MiniNeo4j:
        """The underlying property-graph database."""
        return self._db

    def spawn_empty(self) -> "Neo4jGraphStore":
        """Fresh empty database with the same index configuration."""
        return Neo4jGraphStore(use_cuckoo_index=self._db.use_cuckoo_index)

    # -- store contract over property-graph operations ------------------- #

    def insert_edge(self, u: int, v: int) -> bool:
        if self._db.has_relationship(u, v):
            return False
        self._db.create_relationship(u, v)
        return True

    def has_edge(self, u: int, v: int) -> bool:
        return self._db.has_relationship(u, v)

    def delete_edge(self, u: int, v: int) -> bool:
        # A wrapped pre-populated database may hold parallel relationships
        # between the pair; the distinct-edge contract (delete_edge True =>
        # edge removed) means deleting them all.
        records = list(self._db.find_relationships(u, v))
        if not records:
            return False
        for record in records:
            self._db.delete_relationship(record.rel_id)
        return True

    def successors(self, u: int) -> list[int]:
        return self._db.neighbours(u)

    def edges(self) -> Iterator[tuple[int, int]]:
        return iter(dict.fromkeys(
            (record.start, record.end) for record in self._db.relationships()
        ))

    @property
    def num_edges(self) -> int:
        # Count distinct pairs: the facade inserts one relationship per pair,
        # but a wrapped pre-populated database may hold parallel ones.
        return len({(r.start, r.end) for r in self._db.relationships()})

    def memory_bytes(self) -> int:
        index = self._db._index
        index_bytes = index.memory_bytes() if index is not None else 0
        return (
            self._db.node_count * _NODE_RECORD_BYTES
            + self._db.relationship_count * _REL_RECORD_BYTES
            + index_bytes
        )

    @property
    def accesses(self) -> int:
        index = self._db._index
        return index.accesses if index is not None else 0

    def reset_accesses(self) -> None:
        index = self._db._index
        if index is not None:
            index.reset_accesses()
