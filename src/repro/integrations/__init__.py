"""Database integrations: the Redis and Neo4j use cases of Sections V-F / V-G.

Both integrations are in-process simulations of the respective systems (see
DESIGN.md for the substitution rationale): :class:`MiniRedisServer` exposes a
command-dispatch keyspace with a loadable :class:`CuckooGraphModule`, and
:class:`MiniNeo4j` is a property-graph store whose edge lookups can be
accelerated by a multi-edge CuckooGraph index.
"""

from .minineo4j import MiniNeo4j, Neo4jGraphStore, NodeRecord, RelationshipRecord
from .miniredis import CuckooGraphModule, MiniRedisServer, RedisGraphStore, RedisModule

__all__ = [
    "CuckooGraphModule",
    "MiniNeo4j",
    "MiniRedisServer",
    "Neo4jGraphStore",
    "NodeRecord",
    "RedisGraphStore",
    "RedisModule",
    "RelationshipRecord",
]
