"""Seeded workload generation: arrivals, zipfian keys, tenant schedules.

Everything here is a pure function of a :class:`~repro.traffic.config.ScenarioConfig`
(plus, for the shard-major key layout, the target store's routing function):
the same config always produces the same arrival times, the same request
kinds and the same key sequence, which is what makes a scenario replayable
and what the determinism property tests pin down.
"""

from __future__ import annotations

import math
import random
from bisect import bisect_right
from dataclasses import dataclass
from typing import Callable, List, Optional, Sequence

from ..core.errors import ConfigurationError
from .config import ScenarioConfig

#: Windows the bursty arrival process slices the run into.
BURST_WINDOWS = 8


def _tenant_rng(seed: int, tenant: int) -> random.Random:
    # Integer mixing, not a string/tuple seed: str hashing is salted per
    # process, which would silently break cross-process determinism.
    return random.Random(seed * 1_000_003 + tenant * 7919)


# --------------------------------------------------------------------- #
# Arrival processes
# --------------------------------------------------------------------- #

def poisson_arrivals(rng: random.Random, rate: float,
                     duration_s: float) -> List[float]:
    """Open-loop Poisson arrivals: exponential gaps at ``rate`` ops/s."""
    times: List[float] = []
    at = rng.expovariate(rate)
    while at < duration_s:
        times.append(at)
        at += rng.expovariate(rate)
    return times


def uniform_arrivals(rate: float, duration_s: float) -> List[float]:
    """Evenly spaced arrivals at ``rate`` ops/s (no randomness)."""
    count = int(rate * duration_s)
    if count <= 0:
        return []
    gap = duration_s / count
    return [index * gap for index in range(count)]


def bursty_arrivals(rng: random.Random, rate: float, duration_s: float,
                    burst_factor: float, burst_fraction: float) -> List[float]:
    """On/off modulated Poisson arrivals with mean rate ``rate``.

    The run is sliced into :data:`BURST_WINDOWS` windows; each window bursts
    with probability ``burst_fraction`` at ``burst_factor`` times the base
    rate, and quiet windows are throttled so the *expected* total arrival
    count still matches ``rate * duration_s``.
    """
    if burst_factor < 1:
        raise ConfigurationError(
            f"burst_factor must be >= 1, got {burst_factor}"
        )
    if not 0 < burst_fraction < 1:
        raise ConfigurationError(
            f"burst_fraction must be in (0, 1), got {burst_fraction}"
        )
    quiet_rate = max(0.0, (1.0 - burst_factor * burst_fraction)
                     / (1.0 - burst_fraction))
    window = duration_s / BURST_WINDOWS
    times: List[float] = []
    for index in range(BURST_WINDOWS):
        multiplier = burst_factor if rng.random() < burst_fraction else quiet_rate
        window_rate = rate * multiplier
        if window_rate <= 0:
            continue
        start = index * window
        at = start + rng.expovariate(window_rate)
        while at < start + window:
            times.append(at)
            at += rng.expovariate(window_rate)
    return times


# --------------------------------------------------------------------- #
# Zipfian key popularity
# --------------------------------------------------------------------- #

class ZipfRanks:
    """Zipf(``exponent``) sampler over ranks ``0 .. count-1`` (0 = hottest).

    Precomputes the cumulative mass once; sampling is one uniform draw plus
    a binary search, so a generator can draw tens of thousands of keys
    without re-deriving the distribution.
    """

    def __init__(self, count: int, exponent: float):
        if count < 1:
            raise ConfigurationError(f"count must be >= 1, got {count}")
        if exponent <= 0:
            raise ConfigurationError(f"exponent must be > 0, got {exponent}")
        self.count = count
        self.exponent = exponent
        masses = [1.0 / (rank + 1) ** exponent for rank in range(count)]
        total = math.fsum(masses)
        self._cumulative: List[float] = []
        running = 0.0
        for mass in masses:
            running += mass / total
            self._cumulative.append(running)
        self._cumulative[-1] = 1.0  # guard against float drift

    def sample(self, rng: random.Random) -> int:
        """Draw one rank (0 is the most popular)."""
        return bisect_right(self._cumulative, rng.random())

    def top_fraction_mass(self, fraction: float) -> float:
        """Analytic probability mass of the hottest ``fraction`` of ranks."""
        if not 0 < fraction <= 1:
            raise ConfigurationError(
                f"fraction must be in (0, 1], got {fraction}"
            )
        top = max(1, math.ceil(self.count * fraction))
        return self._cumulative[min(top, self.count) - 1]


# --------------------------------------------------------------------- #
# Key layout
# --------------------------------------------------------------------- #

def ranked_keys(
    config: ScenarioConfig,
    shard_of: Optional[Callable[[int], int]] = None,
    num_shards: Optional[int] = None,
) -> List[int]:
    """The node-id universe ordered by popularity rank (index 0 hottest).

    ``"hashed"`` layout ranks plain integer ids, so popular keys stripe
    across shards (the routing hash decorrelates id from shard).
    ``"shard_major"`` groups the ranked sequence by owning shard -- the
    hottest ranks all live on a few shards, modeling tenant data locality --
    with the shard order itself seeded-shuffled so the hot shards are *not*
    the tiered store's initial hot set and the admission policy has to
    discover them.
    """
    total = config.total_keys
    if config.key_layout == "hashed":
        return list(range(total))
    if shard_of is None or num_shards is None:
        raise ConfigurationError(
            'key_layout="shard_major" needs the target store\'s shard '
            "routing (shard_of + num_shards)"
        )
    per_shard = math.ceil(total / num_shards)
    buckets: List[List[int]] = [[] for _ in range(num_shards)]
    filled = 0
    candidate = 0
    # Walk candidate ids until every shard bucket can contribute its quota.
    while filled < total:
        shard = shard_of(candidate)
        bucket = buckets[shard]
        if len(bucket) < per_shard:
            bucket.append(candidate)
            filled += 1
        candidate += 1
    order = list(range(num_shards))
    _tenant_rng(config.seed, tenant=num_shards).shuffle(order)
    ranked: List[int] = []
    for shard in order:
        ranked.extend(buckets[shard])
    return ranked[:total]


def tenant_keys(config: ScenarioConfig, ranked: Sequence[int],
                tenant: int) -> Sequence[int]:
    """The rank-ordered key list tenant ``tenant`` draws from."""
    if config.tenant_layout == "shared":
        return ranked
    start = tenant * config.keys_per_tenant
    return ranked[start:start + config.keys_per_tenant]


# --------------------------------------------------------------------- #
# Schedules
# --------------------------------------------------------------------- #

@dataclass(frozen=True)
class TrafficEvent:
    """One scheduled request: when, who, what kind, which key ranks.

    Ranks, not node ids: the schedule is layout-independent, and the driver
    maps ranks through the tenant's ranked key list at submit time.
    """

    at_s: float
    tenant: int
    kind: str
    rank_u: int
    rank_v: int


def tenant_schedule(config: ScenarioConfig, tenant: int) -> List[TrafficEvent]:
    """Deterministic event list for one tenant (sorted by arrival time)."""
    rng = _tenant_rng(config.seed, tenant)
    rate = config.target_ops_s / config.tenants
    if config.arrival == "poisson":
        times = poisson_arrivals(rng, rate, config.duration_s)
    elif config.arrival == "bursty":
        times = bursty_arrivals(rng, rate, config.duration_s,
                                config.burst_factor, config.burst_fraction)
    else:
        times = uniform_arrivals(rate, config.duration_s)
    mix = config.normalized_mix
    kinds = list(mix)
    weights = [mix[kind] for kind in kinds]
    zipf = ZipfRanks(config.keys_per_tenant
                     if config.tenant_layout == "disjoint"
                     else config.total_keys,
                     config.zipf_exponent)
    events: List[TrafficEvent] = []
    for at in times:
        kind = rng.choices(kinds, weights=weights)[0]
        rank_u = zipf.sample(rng)
        rank_v = zipf.sample(rng)
        if rank_v == rank_u:  # no self-loops; nudge to the neighbouring rank
            rank_v = (rank_u + 1) % zipf.count
        events.append(TrafficEvent(at, tenant, kind, rank_u, rank_v))
    return events


def build_schedule(config: ScenarioConfig) -> List[TrafficEvent]:
    """The whole scenario's event list, merged across tenants, time-sorted."""
    events: List[TrafficEvent] = []
    for tenant in range(config.tenants):
        events.extend(tenant_schedule(config, tenant))
    events.sort(key=lambda event: (event.at_s, event.tenant))
    return events
