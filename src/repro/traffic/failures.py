"""Failure injection against a live service: the PR 8 chaos seams, scripted.

Each injector breaks one seam the replication/durability stack already
treats as a first-class failure mode, and returns a recovery callable that
performs the matching repair:

* ``kill_replica`` -- close a follower's replication channel (the moral
  equivalent of ``kill -9`` on the replica process).  The primary evicts
  the dead channel mid-broadcast (``Primary._broadcast`` never raises), and
  reads routed to the orphaned follower fail fast with
  :class:`~repro.core.errors.ReplicationError` -- the error rate the SLO
  report measures.  Recovery detaches the corpse and attaches a *fresh*
  follower in the same rotation slot (attach = backfill + subscribe), which
  is exactly the documented crash-recovery path.
* ``drop_channel`` -- same transport cut, but recovery re-attaches a new
  follower without closing the old store first (a transient network drop
  rather than a process death).  Operationally the repair is the same
  attach path; the distinction is what the report labels it.
* ``stall_fsync`` -- wrap the service's group-commit sync in a sleep, so
  every dispatched mutation run pays the stall: queue depth and tail
  latency climb, which is the backpressure signal the report captures.
  Recovery unwraps the original sync.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Callable, List

from ..core.errors import ReplicationError
from ..replicate import Follower
from .config import FailureSpec


@dataclass
class InjectedFailure:
    """What the injector actually did, as the SLO report records it."""

    at_s: float
    kind: str
    target: int
    injected: bool = False
    recovered: bool = False
    detail: str = ""

    def as_row(self) -> dict:
        return {
            "at_s": round(self.at_s, 3),
            "kind": self.kind,
            "target": self.target,
            "injected": self.injected,
            "recovered": self.recovered,
            "detail": self.detail,
        }


@dataclass
class _Injection:
    record: InjectedFailure
    recover: Callable[[], str] = field(default=lambda: "")


def _replica_slot(service, target: int):
    group = service.replication
    if group is None or not group.followers:
        raise ReplicationError("scenario has no replicas to break")
    index = target % len(group.followers)
    return group, index


def _kill_replica(service, spec: FailureSpec, close_store: bool) -> _Injection:
    group, index = _replica_slot(service, spec.target)
    victim = group.followers[index]
    # The transport cut: the channel dies underneath the follower, exactly
    # like a crashed process.  The primary notices on its next broadcast.
    victim._channel.close()
    record = InjectedFailure(
        at_s=spec.at_s, kind=spec.kind, target=index, injected=True,
        detail=f"closed replication channel of follower {index}",
    )

    def recover() -> str:
        primary = group.primary
        primary.detach(victim)  # idempotent; broadcast may have evicted it
        if close_store:
            victim.close()
        fresh = Follower(store=primary.store.store.spawn_empty(),
                         own_store=True)
        primary.attach(fresh)  # backfill + subscribe: converged on arrival
        group.followers[index] = fresh
        return (f"re-attached fresh follower in slot {index} at commit "
                f"{fresh.commit_index}")

    return _Injection(record=record, recover=recover)


def _stall_fsync(service, spec: FailureSpec) -> _Injection:
    original = service._durable_sync
    if original is None:
        # Replicated but not batch-durable: stall the primary's explicit
        # sync path instead (refresh() calls sync_and_pump per read).
        store = service.store
        inner_sync = store.sync
        stall_s = min(0.05, spec.duration_s / 4) or 0.01

        def stalled_store_sync() -> None:
            time.sleep(stall_s)
            inner_sync()

        store.sync = stalled_store_sync
        record = InjectedFailure(
            at_s=spec.at_s, kind=spec.kind, target=spec.target, injected=True,
            detail=f"wrapped store.sync with a {stall_s * 1000:.0f}ms stall",
        )

        def recover() -> str:
            del store.sync  # fall back to the class attribute
            return "removed the store.sync stall wrapper"

        return _Injection(record=record, recover=recover)

    stall_s = min(0.05, spec.duration_s / 4) or 0.01

    def stalled_sync() -> None:
        time.sleep(stall_s)
        original()

    service._durable_sync = stalled_sync
    record = InjectedFailure(
        at_s=spec.at_s, kind=spec.kind, target=spec.target, injected=True,
        detail=f"wrapped group-commit sync with a {stall_s * 1000:.0f}ms stall",
    )

    def recover() -> str:
        service._durable_sync = original
        return "restored the original group-commit sync"

    return _Injection(record=record, recover=recover)


def inject(service, spec: FailureSpec) -> _Injection:
    """Apply ``spec`` to the running service; never raises.

    On an injection error the returned record has ``injected=False`` and the
    exception text in ``detail`` -- a scenario keeps serving traffic even
    when a fault cannot be placed.
    """
    try:
        if spec.kind == "kill_replica":
            return _kill_replica(service, spec, close_store=True)
        if spec.kind == "drop_channel":
            return _kill_replica(service, spec, close_store=False)
        if spec.kind == "stall_fsync":
            return _stall_fsync(service, spec)
        raise ReplicationError(f"unknown failure kind {spec.kind!r}")
    except Exception as exc:
        record = InjectedFailure(
            at_s=spec.at_s, kind=spec.kind, target=spec.target,
            injected=False, detail=f"injection failed: {exc}",
        )
        return _Injection(record=record, recover=lambda: "nothing to recover")


def run_failure_timeline(service, specs, start_monotonic: float,
                         stop) -> List[InjectedFailure]:
    """Drive the failure schedule against the running service.

    Blocking helper meant for the injector thread: sleeps to each spec's
    ``at_s``, injects, holds the fault for ``duration_s``, then runs the
    recovery and stamps ``recovered``.  ``stop`` is an ``Event``; a set stop
    flag short-circuits remaining waits (recoveries still run, so a scenario
    never leaks a stalled sync or a dead replica slot past its end).
    """
    records: List[InjectedFailure] = []
    for spec in sorted(specs, key=lambda item: item.at_s):
        delay = start_monotonic + spec.at_s - time.monotonic()
        if delay > 0 and not stop.wait(delay):
            pass  # reached injection time with the scenario still running
        injection = inject(service, spec)
        records.append(injection.record)
        if injection.record.injected:
            stop.wait(spec.duration_s)
            try:
                outcome = injection.recover()
                injection.record.recovered = True
                if outcome:
                    injection.record.detail += f"; recovered: {outcome}"
            except Exception as exc:
                injection.record.detail += f"; recovery failed: {exc}"
    return records
