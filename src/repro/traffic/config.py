"""Declarative scenario configuration for the production-traffic harness.

A :class:`ScenarioConfig` is the whole experiment in one JSON-serialisable
dataclass, the shape SNIPPETS' declarative ``ExperimentConfig`` exemplifies:
open-loop load (arrival process + target rate), the request-class mix,
multi-tenant keyspaces with zipfian popularity, the deployment scheme the
driver builds (service over sharded or tiered storage, optional durability
and replicas), and the failure-injection timeline.  Everything is seeded, so
one config is one reproducible run.
"""

from __future__ import annotations

import json
from dataclasses import asdict, dataclass, field, replace
from pathlib import Path
from typing import Dict, Tuple, Union

from ..core.errors import ConfigurationError

#: Request classes a scenario can mix (the service-layer request kinds).
REQUEST_CLASSES = ("insert", "delete", "has", "successors", "analytics")

#: Arrival processes the generator understands.
ARRIVALS = ("poisson", "bursty", "uniform")

#: Deployment schemes the driver can build.
SCHEMES = ("service", "tiered")

#: Tenant keyspace layouts: each tenant owns a disjoint key range, or all
#: tenants share one range (contended keys).
TENANT_LAYOUTS = ("disjoint", "shared")

#: Key-popularity layouts: ``"hashed"`` ranks keys by plain integer id (the
#: popular ranks then hash-stripe across shards); ``"shard_major"`` groups
#: the ranked keys by owning shard (popular ranks share few shards -- the
#: data-locality layout the tiered hit-rate experiment models).
KEY_LAYOUTS = ("hashed", "shard_major")

#: Failure kinds the injector implements (the PR 8 chaos seams).
FAILURE_KINDS = ("kill_replica", "stall_fsync", "drop_channel")

#: Default request mix: mutation-heavy with a read and analytics tail.
DEFAULT_MIX: Dict[str, float] = {
    "insert": 0.45,
    "delete": 0.10,
    "has": 0.25,
    "successors": 0.15,
    "analytics": 0.05,
}


@dataclass(frozen=True)
class FailureSpec:
    """One scheduled fault: what to break, when, and for how long.

    ``target`` picks the replica (``kill_replica`` / ``drop_channel``);
    ``duration_s`` is how long the fault stands before the injector runs the
    matching recovery (re-attach a fresh follower, unstall the fsync).
    """

    at_s: float
    kind: str
    target: int = 0
    duration_s: float = 0.5

    def __post_init__(self):
        if self.kind not in FAILURE_KINDS:
            raise ConfigurationError(
                f"failure kind must be one of {FAILURE_KINDS}, got {self.kind!r}"
            )
        if self.at_s < 0:
            raise ConfigurationError(f"at_s must be >= 0, got {self.at_s}")
        if self.duration_s < 0:
            raise ConfigurationError(
                f"duration_s must be >= 0, got {self.duration_s}"
            )


@dataclass(frozen=True)
class ScenarioConfig:
    """One reproducible open-loop traffic scenario (see the module docstring).

    Rates are per scenario, not per tenant: ``target_ops_s`` is split evenly
    across the ``tenants`` driver threads.  ``warmup_edges`` are inserted
    through the service *before* the clock starts (and before the tier-stats
    baseline snapshot is taken), so the measured window starts from a
    populated graph.
    """

    name: str = "scenario"
    seed: int = 20240515
    duration_s: float = 2.0
    target_ops_s: float = 400.0
    arrival: str = "poisson"
    burst_factor: float = 6.0
    burst_fraction: float = 0.25
    tenants: int = 2
    tenant_layout: str = "disjoint"
    keys_per_tenant: int = 256
    zipf_exponent: float = 1.1
    key_layout: str = "hashed"
    mix: Dict[str, float] = field(default_factory=lambda: dict(DEFAULT_MIX))
    analytics_task: str = "top_degree_nodes"
    analytics_arg: int = 8
    scheme: str = "service"
    num_shards: int = 8
    hot_shards: int = 2
    replicas: int = 0
    durability: str = "none"
    max_batch: int = 64
    queue_capacity: int = 4096
    policy: str = "block"
    warmup_edges: int = 0
    p99_bound_s: float = 1.0
    failures: Tuple[FailureSpec, ...] = ()

    def __post_init__(self):
        if self.arrival not in ARRIVALS:
            raise ConfigurationError(
                f"arrival must be one of {ARRIVALS}, got {self.arrival!r}"
            )
        if self.scheme not in SCHEMES:
            raise ConfigurationError(
                f"scheme must be one of {SCHEMES}, got {self.scheme!r}"
            )
        if self.tenant_layout not in TENANT_LAYOUTS:
            raise ConfigurationError(
                f"tenant_layout must be one of {TENANT_LAYOUTS}, "
                f"got {self.tenant_layout!r}"
            )
        if self.key_layout not in KEY_LAYOUTS:
            raise ConfigurationError(
                f"key_layout must be one of {KEY_LAYOUTS}, got {self.key_layout!r}"
            )
        if self.duration_s <= 0:
            raise ConfigurationError(
                f"duration_s must be > 0, got {self.duration_s}"
            )
        if self.target_ops_s <= 0:
            raise ConfigurationError(
                f"target_ops_s must be > 0, got {self.target_ops_s}"
            )
        if self.tenants < 1:
            raise ConfigurationError(f"tenants must be >= 1, got {self.tenants}")
        if self.keys_per_tenant < 2:
            raise ConfigurationError(
                f"keys_per_tenant must be >= 2, got {self.keys_per_tenant}"
            )
        if self.zipf_exponent <= 0:
            raise ConfigurationError(
                f"zipf_exponent must be > 0, got {self.zipf_exponent}"
            )
        if not self.mix:
            raise ConfigurationError("mix must name at least one request class")
        for kind, weight in self.mix.items():
            if kind not in REQUEST_CLASSES:
                raise ConfigurationError(
                    f"mix class must be one of {REQUEST_CLASSES}, got {kind!r}"
                )
            if weight < 0:
                raise ConfigurationError(
                    f"mix weight for {kind!r} must be >= 0, got {weight}"
                )
        if sum(self.mix.values()) <= 0:
            raise ConfigurationError("mix weights must sum to > 0")
        if self.replicas < 0:
            raise ConfigurationError(f"replicas must be >= 0, got {self.replicas}")
        if self.durability not in ("none", "batch"):
            raise ConfigurationError(
                f'durability must be "none" or "batch", got {self.durability!r}'
            )
        if self.warmup_edges < 0:
            raise ConfigurationError(
                f"warmup_edges must be >= 0, got {self.warmup_edges}"
            )
        for spec in self.failures:
            if spec.kind in ("kill_replica", "drop_channel") and self.replicas < 1:
                raise ConfigurationError(
                    f"failure {spec.kind!r} needs replicas >= 1"
                )
            if spec.kind == "stall_fsync" and self.durability != "batch" \
                    and self.replicas < 1:
                raise ConfigurationError(
                    'failure "stall_fsync" needs durability="batch" or replicas'
                )

    # ------------------------------------------------------------------ #
    # Derived quantities
    # ------------------------------------------------------------------ #

    @property
    def total_keys(self) -> int:
        """Size of the whole ranked key universe across tenants."""
        if self.tenant_layout == "shared":
            return self.keys_per_tenant
        return self.keys_per_tenant * self.tenants

    @property
    def normalized_mix(self) -> Dict[str, float]:
        total = sum(self.mix.values())
        return {kind: weight / total for kind, weight in self.mix.items()
                if weight > 0}

    def with_overrides(self, **changes) -> "ScenarioConfig":
        """A copy with the given fields replaced (validation re-runs)."""
        return replace(self, **changes)

    # ------------------------------------------------------------------ #
    # JSON round-trip
    # ------------------------------------------------------------------ #

    def to_dict(self) -> Dict[str, object]:
        payload = asdict(self)
        payload["failures"] = [asdict(spec) for spec in self.failures]
        return payload

    def to_json(self) -> str:
        return json.dumps(self.to_dict(), indent=2, sort_keys=True) + "\n"

    @classmethod
    def from_dict(cls, payload: Dict[str, object]) -> "ScenarioConfig":
        data = dict(payload)
        failures = tuple(
            spec if isinstance(spec, FailureSpec) else FailureSpec(**spec)
            for spec in data.pop("failures", ())
        )
        unknown = set(data) - {f for f in cls.__dataclass_fields__}
        if unknown:
            raise ConfigurationError(
                f"unknown ScenarioConfig fields: {sorted(unknown)}"
            )
        return cls(failures=failures, **data)

    @classmethod
    def from_json(cls, source: Union[str, Path]) -> "ScenarioConfig":
        """Load a config from a JSON file path or a JSON string."""
        text = source
        if isinstance(source, Path) or (
            isinstance(source, str) and not source.lstrip().startswith("{")
        ):
            text = Path(source).read_text()
        return cls.from_dict(json.loads(text))


# --------------------------------------------------------------------- #
# Presets (the CLI's --preset values; tests and CI use them too)
# --------------------------------------------------------------------- #

def preset(name: str) -> ScenarioConfig:
    """A named ready-to-run scenario.

    * ``"smoke"`` -- tiny bounded run for CI: two tenants, a second of
      mixed traffic, no failures.
    * ``"skewed"`` -- the tiered-locality shape: shared zipf(1.1) keyspace
      laid out shard-major over a 25%-hot tiered store.
    * ``"failover"`` -- replicated durable service with a replica kill and
      re-attach mid-run.
    """
    if name == "smoke":
        return ScenarioConfig(
            name="smoke", duration_s=1.0, target_ops_s=300.0, tenants=2,
            keys_per_tenant=128, warmup_edges=200,
        )
    if name == "skewed":
        # Point-op mix: an analytics run scans every node (all shards), which
        # drowns the locality signal this scenario exists to show.
        return ScenarioConfig(
            name="skewed", duration_s=2.0, target_ops_s=600.0, tenants=4,
            tenant_layout="shared", keys_per_tenant=1024,
            zipf_exponent=1.1, key_layout="shard_major",
            scheme="tiered", num_shards=8, hot_shards=2,
            mix={"insert": 0.5, "delete": 0.1, "has": 0.25,
                 "successors": 0.15},
            warmup_edges=600,
        )
    if name == "failover":
        return ScenarioConfig(
            name="failover", duration_s=2.0, target_ops_s=400.0, tenants=2,
            keys_per_tenant=256, replicas=2, durability="batch",
            warmup_edges=300,
            failures=(FailureSpec(at_s=0.8, kind="kill_replica", target=0,
                                  duration_s=0.4),),
        )
    raise ConfigurationError(
        f'unknown preset {name!r}; expected "smoke", "skewed" or "failover"'
    )
