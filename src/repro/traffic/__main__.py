"""``python -m repro.traffic``: run one scenario and emit its SLO report.

Examples::

    python -m repro.traffic --preset smoke
    python -m repro.traffic --preset skewed --duration 2.5 --rate 800
    python -m repro.traffic --config scenario.json --out benchmarks/results
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path

from ..bench import write_bench_json
from .config import ScenarioConfig, preset
from .driver import run_scenario, validate_slo_report


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.traffic",
        description="Run a production-traffic scenario against the graph "
                    "service and emit an SLO report.",
    )
    source = parser.add_mutually_exclusive_group()
    source.add_argument("--config", type=Path,
                        help="path to a ScenarioConfig JSON file")
    source.add_argument("--preset", default="smoke",
                        choices=("smoke", "skewed", "failover"),
                        help="named built-in scenario (default: smoke)")
    parser.add_argument("--name", help="override the scenario name")
    parser.add_argument("--seed", type=int, help="override the seed")
    parser.add_argument("--duration", type=float, metavar="S",
                        help="override duration_s")
    parser.add_argument("--rate", type=float, metavar="OPS",
                        help="override target_ops_s")
    parser.add_argument("--tenants", type=int, help="override tenant count")
    parser.add_argument("--scheme", choices=("service", "tiered"),
                        help="override the deployment scheme")
    parser.add_argument("--out", type=Path, default=Path("benchmarks/results"),
                        help="directory for BENCH_traffic_<name>.json "
                             "(default: benchmarks/results)")
    parser.add_argument("--no-json", action="store_true",
                        help="print the summary without writing the report")
    return parser


def _apply_overrides(config: ScenarioConfig,
                     args: argparse.Namespace) -> ScenarioConfig:
    overrides = {}
    for field, attr in (("name", "name"), ("seed", "seed"),
                        ("duration_s", "duration"), ("target_ops_s", "rate"),
                        ("tenants", "tenants"), ("scheme", "scheme")):
        value = getattr(args, attr)
        if value is not None:
            overrides[field] = value
    return config.with_overrides(**overrides) if overrides else config


def _print_summary(report: dict) -> None:
    totals = report["totals"]
    print(f"scenario    : {report['scenario']['name']} "
          f"(seed {report['scenario']['seed']})")
    print(f"throughput  : {totals['throughput_ops_s']:.1f} ops/s "
          f"(target {totals['target_ops_s']:.1f}, "
          f"completed {totals['completed']}/{totals['submitted']})")
    print(f"errors      : {totals['errors']} "
          f"(rejected {totals['rejected']}, "
          f"behind schedule {totals['behind_schedule']})")
    slo = report["slo"]
    print(f"slo         : p99 bound {slo['p99_bound_s'] * 1000:.0f}ms -> "
          f"{'MET' if slo['met'] else 'MISSED'}")
    for kind, entry in sorted(report["classes"].items()):
        latency = entry["latency"]
        if not latency["count"]:
            continue
        print(f"  {kind:<11}: n={latency['count']:<6} "
              f"p50={latency['p50_s'] * 1000:7.2f}ms "
              f"p99={latency['p99_s'] * 1000:7.2f}ms "
              f"errors={entry['errors']}")
    tiered = report.get("tiered") or {}
    if tiered:
        window = tiered["window"]
        print(f"tiered      : hit_rate={window['hit_rate']:.3f} "
              f"(hits {window['hits']}/{window['touches']}, "
              f"promotions {window['promotions']}, "
              f"demotions {window['demotions']})")
    for record in report["failures"]:
        state = "recovered" if record["recovered"] else (
            "injected" if record["injected"] else "FAILED TO INJECT")
        print(f"failure     : t={record['at_s']}s {record['kind']} "
              f"[{state}] {record['detail']}")


def main(argv=None) -> int:
    args = _build_parser().parse_args(argv)
    config = (ScenarioConfig.from_json(args.config) if args.config
              else preset(args.preset))
    config = _apply_overrides(config, args)
    report = run_scenario(config)
    try:
        validate_slo_report(report)
    except ValueError as exc:
        print(f"malformed SLO report: {exc}", file=sys.stderr)
        return 1
    _print_summary(report)
    if not args.no_json:
        path = write_bench_json(f"traffic_{config.name}", report,
                                directory=args.out)
        print(f"report      : {path}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
