"""Production-traffic scenario harness (config-driven, seeded, open-loop).

See :mod:`.config` for the declarative scenario shape, :mod:`.workload` for
the seeded generators, :mod:`.failures` for the chaos seams and
:mod:`.driver` for the open-loop driver and SLO reporting.  Run scenarios
from the command line with ``python -m repro.traffic``.
"""

from .config import (
    ARRIVALS,
    DEFAULT_MIX,
    FAILURE_KINDS,
    KEY_LAYOUTS,
    REQUEST_CLASSES,
    FailureSpec,
    ScenarioConfig,
    preset,
)
from .driver import build_service, run_scenario, validate_slo_report
from .failures import InjectedFailure, inject
from .workload import (
    TrafficEvent,
    ZipfRanks,
    build_schedule,
    bursty_arrivals,
    poisson_arrivals,
    ranked_keys,
    tenant_keys,
    tenant_schedule,
    uniform_arrivals,
)

__all__ = [
    "ARRIVALS",
    "DEFAULT_MIX",
    "FAILURE_KINDS",
    "FailureSpec",
    "InjectedFailure",
    "KEY_LAYOUTS",
    "REQUEST_CLASSES",
    "ScenarioConfig",
    "TrafficEvent",
    "ZipfRanks",
    "build_schedule",
    "build_service",
    "bursty_arrivals",
    "inject",
    "poisson_arrivals",
    "preset",
    "ranked_keys",
    "run_scenario",
    "tenant_keys",
    "tenant_schedule",
    "uniform_arrivals",
    "validate_slo_report",
]
