"""Open-loop multi-threaded scenario driver and SLO reporting.

:func:`run_scenario` is the harness entrypoint: build the deployment a
:class:`~repro.traffic.config.ScenarioConfig` describes (service over the
sharded or tiered store, optional durability and replicas), warm it up,
then replay the seeded schedule open-loop -- one driver thread per tenant,
each submitting at its scheduled arrival times regardless of completion
(lateness is recorded, not absorbed), with the failure timeline running on
its own injector thread.  The result is an SLO report: per-class latency
percentiles, throughput against the target, error/backpressure/lateness
rates, replication lag, tier hit rates over the measured window, and the
failure log -- written as ``BENCH_traffic_<name>.json`` via
:func:`repro.bench.write_bench_json` when asked.
"""

from __future__ import annotations

import threading
import time
from collections import defaultdict
from concurrent.futures import wait as wait_futures
from typing import Dict, List, Optional, Sequence

from ..core.sharded import ShardedCuckooGraph
from ..persist import PersistentStore
from ..service import GraphService
from ..service.metrics import LatencyRecorder
from ..tiered import TieredStore
from .config import ScenarioConfig
from .failures import run_failure_timeline
from .workload import TrafficEvent, ranked_keys, tenant_keys, tenant_schedule

#: How long the driver waits for in-flight futures after the last arrival.
DRAIN_TIMEOUT_S = 30.0


class _ClassRecorder:
    """Thread-safe per-request-class latency/error accounting."""

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._latency: Dict[str, LatencyRecorder] = defaultdict(LatencyRecorder)
        self._errors: Dict[str, int] = defaultdict(int)
        self._error_samples: List[str] = []
        self.submitted: Dict[str, int] = defaultdict(int)
        self.rejected = 0
        self.behind_schedule = 0

    def record_submit(self, kind: str) -> None:
        with self._lock:
            self.submitted[kind] += 1

    def record_rejected(self) -> None:
        with self._lock:
            self.rejected += 1

    def record_behind(self) -> None:
        with self._lock:
            self.behind_schedule += 1

    def record_done(self, kind: str, latency_s: float,
                    error: Optional[BaseException]) -> None:
        with self._lock:
            self._latency[kind].record(latency_s)
            if error is not None:
                self._errors[kind] += 1
                if len(self._error_samples) < 5:
                    self._error_samples.append(
                        f"{kind}: {type(error).__name__}: {error}"
                    )

    def classes(self) -> Dict[str, Dict[str, object]]:
        with self._lock:
            out: Dict[str, Dict[str, object]] = {}
            for kind in sorted(set(self.submitted) | set(self._latency)):
                out[kind] = {
                    "submitted": self.submitted.get(kind, 0),
                    "errors": self._errors.get(kind, 0),
                    "latency": self._latency[kind].summary(),
                }
            return out

    @property
    def error_samples(self) -> List[str]:
        with self._lock:
            return list(self._error_samples)


def build_service(config: ScenarioConfig):
    """The deployment a scenario runs against: ``(service, routing_store)``.

    ``routing_store`` is the sharded/tiered structure itself (unwrapped from
    any durability layer) -- the object that owns ``shard_of`` routing and,
    for the tiered scheme, the tier counters.
    """
    if config.scheme == "tiered":
        inner = TieredStore(num_shards=config.num_shards,
                            hot_shards=config.hot_shards)
    else:
        inner = ShardedCuckooGraph(num_shards=config.num_shards)
    needs_wal = config.replicas > 0 or config.durability == "batch"
    store = (
        PersistentStore(store=inner, sync_on_commit=False, own_store=True)
        if needs_wal else inner
    )
    service = GraphService(
        store,
        own_store=True,
        durability=config.durability,
        replicas=config.replicas,
        max_batch=config.max_batch,
        queue_capacity=config.queue_capacity,
        policy=config.policy,
    )
    return service, inner


def _submit(service: GraphService, config: ScenarioConfig,
            event: TrafficEvent, keys: Sequence[int]):
    u = keys[event.rank_u]
    v = keys[event.rank_v]
    if event.kind == "insert":
        return service.insert_edge(u, v)
    if event.kind == "delete":
        return service.delete_edge(u, v)
    if event.kind == "has":
        return service.has_edge(u, v)
    if event.kind == "successors":
        return service.successors(u)
    return service.analytics(config.analytics_task, config.analytics_arg)


def _tenant_worker(service: GraphService, config: ScenarioConfig,
                   events: Sequence[TrafficEvent], keys: Sequence[int],
                   recorder: _ClassRecorder, start_monotonic: float,
                   futures: List, futures_lock: threading.Lock) -> None:
    for event in events:
        delay = start_monotonic + event.at_s - time.monotonic()
        if delay > 0:
            time.sleep(delay)
        else:
            recorder.record_behind()
        submitted_at = time.monotonic()
        try:
            future = _submit(service, config, event, keys)
        except Exception:
            # Queue full under policy="reject", or the service fail-stopped:
            # open-loop backpressure, not a crash of the driver.
            recorder.record_rejected()
            continue
        recorder.record_submit(event.kind)

        def on_done(f, kind=event.kind, t0=submitted_at):
            recorder.record_done(kind, time.monotonic() - t0, f.exception())

        future.add_done_callback(on_done)
        with futures_lock:
            futures.append(future)


def _warmup(service: GraphService, config: ScenarioConfig,
            ranked: Sequence[int]) -> int:
    """Seed the graph before the clock starts; returns edges submitted."""
    if config.warmup_edges <= 0:
        return 0
    # A seeded round-robin over tenants with the same zipf popularity the
    # traffic uses, so the warm graph matches the workload's shape.
    from .workload import ZipfRanks, _tenant_rng

    rng = _tenant_rng(config.seed, tenant=-1)
    zipf = ZipfRanks(len(ranked), config.zipf_exponent)
    futures = []
    for _ in range(config.warmup_edges):
        u = ranked[zipf.sample(rng)]
        v = ranked[zipf.sample(rng)]
        if u == v:
            v = ranked[(ranked.index(u) + 1) % len(ranked)]
        futures.append(service.insert_edge(u, v))
    wait_futures(futures, timeout=DRAIN_TIMEOUT_S)
    return len(futures)


def run_scenario(config: ScenarioConfig, *,
                 service: Optional[GraphService] = None,
                 routing_store=None) -> Dict[str, object]:
    """Execute one scenario and return its SLO report (a JSON-safe dict).

    Builds (and closes) the deployment described by ``config`` unless a
    running ``service`` is supplied, in which case ``routing_store`` must be
    the structure that owns shard routing and the caller keeps ownership.
    """
    own_service = service is None
    if own_service:
        service, routing_store = build_service(config)
        service.start()
    elif routing_store is None:
        raise ValueError("an external service needs its routing_store")
    try:
        ranked = ranked_keys(
            config,
            shard_of=getattr(routing_store, "shard_of", None),
            num_shards=getattr(routing_store, "num_shards", None),
        )
        schedules = [tenant_schedule(config, tenant)
                     for tenant in range(config.tenants)]
        keys = [tenant_keys(config, ranked, tenant)
                for tenant in range(config.tenants)]
        warmed = _warmup(service, config, ranked)
        tier_stats = getattr(routing_store, "tier_stats", None)
        tier_before = tier_stats() if callable(tier_stats) else None

        recorder = _ClassRecorder()
        futures: List = []
        futures_lock = threading.Lock()
        stop = threading.Event()
        start_monotonic = time.monotonic()
        workers = [
            threading.Thread(
                target=_tenant_worker,
                args=(service, config, schedules[tenant], keys[tenant],
                      recorder, start_monotonic, futures, futures_lock),
                name=f"tenant-{tenant}",
                daemon=True,
            )
            for tenant in range(config.tenants)
        ]
        failure_records: List = []
        injector = threading.Thread(
            target=lambda: failure_records.extend(
                run_failure_timeline(service, config.failures,
                                     start_monotonic, stop)),
            name="failure-injector",
            daemon=True,
        )
        for worker in workers:
            worker.start()
        injector.start()
        for worker in workers:
            worker.join()
        with futures_lock:
            pending = list(futures)
        wait_futures(pending, timeout=DRAIN_TIMEOUT_S)
        measured_s = time.monotonic() - start_monotonic
        stop.set()
        injector.join(timeout=DRAIN_TIMEOUT_S)

        tier_after = tier_stats() if callable(tier_stats) else None
        metrics = service.metrics_summary()
        return _assemble_report(config, recorder, failure_records, metrics,
                                measured_s, warmed, tier_before, tier_after)
    finally:
        if own_service:
            service.close()


def _tier_window(before, after) -> Dict[str, object]:
    """Tier telemetry restricted to the measured window (post-warmup)."""
    touches = after["touches"] - before["touches"]
    hits = after["hits"] - before["hits"]
    return {
        "touches": touches,
        "hits": hits,
        "misses": after["misses"] - before["misses"],
        "hit_rate": (hits / touches) if touches else 0.0,
        "promotions": after["promotions"] - before["promotions"],
        "demotions": after["demotions"] - before["demotions"],
    }


def _assemble_report(config, recorder, failure_records, metrics, measured_s,
                     warmed, tier_before, tier_after) -> Dict[str, object]:
    classes = recorder.classes()
    submitted = sum(entry["submitted"] for entry in classes.values())
    errors = sum(entry["errors"] for entry in classes.values())
    completed = sum(entry["latency"]["count"] for entry in classes.values())
    p99_by_class = {kind: entry["latency"]["p99_s"]
                    for kind, entry in classes.items()
                    if entry["latency"]["count"]}
    slo_met = bool(p99_by_class) and all(
        p99 <= config.p99_bound_s for p99 in p99_by_class.values()
    )
    report: Dict[str, object] = {
        "scenario": config.to_dict(),
        "totals": {
            "submitted": submitted,
            "completed": completed,
            "errors": errors,
            "rejected": recorder.rejected,
            "behind_schedule": recorder.behind_schedule,
            "warmup_edges": warmed,
            "measured_s": round(measured_s, 4),
            "throughput_ops_s": round(completed / measured_s, 2)
            if measured_s > 0 else 0.0,
            "target_ops_s": config.target_ops_s,
            "error_rate": round(errors / completed, 6) if completed else 0.0,
        },
        "classes": classes,
        "slo": {
            "p99_bound_s": config.p99_bound_s,
            "p99_by_class": p99_by_class,
            "met": slo_met,
        },
        "failures": [record.as_row() for record in failure_records],
        "replication": metrics.get("replication", {}),
        "tiered": {
            "end": tier_after,
            "window": _tier_window(tier_before, tier_after),
        } if tier_after is not None else {},
        "service": {
            "submitted_total": metrics.get("submitted_total", 0),
            "rejected": metrics.get("rejected", 0),
            "resolved": metrics.get("resolved", 0),
            "failed": metrics.get("failed", 0),
            "batches": metrics.get("batches", 0),
            "mean_batch_size": metrics.get("mean_batch_size", 0.0),
            "group_commits": metrics.get("group_commits", 0),
        },
        "error_samples": recorder.error_samples,
    }
    return report


# --------------------------------------------------------------------- #
# SLO report schema
# --------------------------------------------------------------------- #

#: Required top-level keys of a well-formed SLO report.
REPORT_KEYS = ("scenario", "totals", "classes", "slo", "failures",
               "replication", "tiered", "service", "error_samples")


def validate_slo_report(report: Dict[str, object]) -> Dict[str, object]:
    """Raise ``ValueError`` unless ``report`` is a well-formed SLO report.

    Schema, not thresholds: the report must carry every section, non-zero
    completed throughput, a numeric p99 for every class that saw traffic,
    and a failure log whose entries are fully stamped.  Threshold gates
    (hit rate, p99 bounds) belong to the benchmarks that assert them.
    """
    for key in REPORT_KEYS:
        if key not in report:
            raise ValueError(f"SLO report is missing section {key!r}")
    totals = report["totals"]
    for key in ("submitted", "completed", "errors", "rejected",
                "behind_schedule", "measured_s", "throughput_ops_s"):
        if not isinstance(totals.get(key), (int, float)):
            raise ValueError(f"totals.{key} must be numeric, got "
                             f"{totals.get(key)!r}")
    if totals["completed"] <= 0 or totals["throughput_ops_s"] <= 0:
        raise ValueError("SLO report has no completed traffic")
    for kind, entry in report["classes"].items():
        latency = entry.get("latency", {})
        if entry.get("submitted", 0) and not isinstance(
                latency.get("p99_s"), (int, float)):
            raise ValueError(f"class {kind!r} lacks a numeric p99_s")
    slo = report["slo"]
    if not isinstance(slo.get("met"), bool) or "p99_bound_s" not in slo:
        raise ValueError("slo section must carry met + p99_bound_s")
    for record in report["failures"]:
        for key in ("at_s", "kind", "injected", "recovered", "detail"):
            if key not in record:
                raise ValueError(f"failure record is missing {key!r}")
    return report
