"""Local Clustering Coefficient (Section V-E7).

Following the LDBC Graphalytics definition the paper references, the local
clustering coefficient of a node is the number of edges among its neighbours
divided by the number of possible ordered neighbour pairs.  The paper's
methodology "pre-computes all neighbours of each node and runs the LCC
algorithm": the pre-computation is one batched ``successors_many``
materialization over all nodes of interest, and the pair-checking phase is
one ``has_edges`` batch per node, both through the
:class:`~repro.analytics.engine.TraversalEngine`, so the kernel cost is
governed by the same two store operations as triangle counting.
"""

from __future__ import annotations

from typing import Iterable, Optional

from ..interfaces import DynamicGraphStore
from .engine import TraversalEngine, ensure_engine


def local_clustering_coefficient(store: DynamicGraphStore, node: int,
                                 neighbours: Optional[list[int]] = None, *,
                                 engine: Optional[TraversalEngine] = None) -> float:
    """LCC of a single node over its out-neighbourhood.

    Args:
        store: Graph to analyse.
        node: Node whose coefficient is wanted.
        neighbours: Optional pre-computed neighbour list (the paper's
            methodology pre-computes these once for all nodes).
        engine: Optional shared traversal engine (batch accounting).
    """
    engine = ensure_engine(store, engine)
    if neighbours is None:
        neighbours = engine.expand([node])[node]
    degree = len(neighbours)
    if degree < 2:
        return 0.0
    # degree^2 ordered pairs: stream them through the chunked counter so a
    # hub's neighbourhood never materialises the whole probe list.
    probes = (
        (first, second)
        for first in neighbours
        for second in neighbours
        if first != second
    )
    linked_pairs = engine.count_edges(probes)
    return linked_pairs / (degree * (degree - 1))


def all_local_clustering_coefficients(
    store: DynamicGraphStore, nodes: Optional[Iterable[int]] = None, *,
    engine: Optional[TraversalEngine] = None,
) -> dict[int, float]:
    """LCC of every node (or of ``nodes`` when given).

    Pre-computes every node's neighbour list first, exactly as the paper's
    methodology describes -- one batched materialization -- then evaluates
    the coefficients.
    """
    engine = ensure_engine(store, engine)
    selected = list(nodes) if nodes is not None else list(store.nodes())
    neighbour_map = engine.expand(selected)
    return {
        node: local_clustering_coefficient(
            store, node, neighbour_map[node], engine=engine
        )
        for node in selected
    }


def average_clustering(store: DynamicGraphStore, *,
                       engine: Optional[TraversalEngine] = None) -> float:
    """Mean LCC over all nodes (0 for an empty graph)."""
    coefficients = all_local_clustering_coefficients(store, engine=engine)
    if not coefficients:
        return 0.0
    return sum(coefficients.values()) / len(coefficients)
