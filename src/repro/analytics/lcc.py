"""Local Clustering Coefficient (Section V-E7).

Following the LDBC Graphalytics definition the paper references, the local
clustering coefficient of a node is the number of edges among its neighbours
divided by the number of possible ordered neighbour pairs.  The paper's
methodology "pre-computes all neighbours of each node and runs the LCC
algorithm": the pre-computation is one successor query per node, and the
pair-checking phase is one edge query per ordered neighbour pair, so the
kernel cost is governed by the same two store operations as triangle
counting.
"""

from __future__ import annotations

from typing import Iterable, Optional

from ..interfaces import DynamicGraphStore


def local_clustering_coefficient(store: DynamicGraphStore, node: int,
                                 neighbours: Optional[list[int]] = None) -> float:
    """LCC of a single node over its out-neighbourhood.

    Args:
        store: Graph to analyse.
        node: Node whose coefficient is wanted.
        neighbours: Optional pre-computed neighbour list (the paper's
            methodology pre-computes these once for all nodes).
    """
    if neighbours is None:
        neighbours = store.successors(node)
    degree = len(neighbours)
    if degree < 2:
        return 0.0
    linked_pairs = 0
    for first in neighbours:
        for second in neighbours:
            if first != second and store.has_edge(first, second):
                linked_pairs += 1
    return linked_pairs / (degree * (degree - 1))


def all_local_clustering_coefficients(
    store: DynamicGraphStore, nodes: Optional[Iterable[int]] = None
) -> dict[int, float]:
    """LCC of every node (or of ``nodes`` when given).

    Pre-computes every node's neighbour list first, exactly as the paper's
    methodology describes, then evaluates the coefficients.
    """
    selected = list(nodes) if nodes is not None else list(store.nodes())
    neighbour_map = {node: store.successors(node) for node in selected}
    return {
        node: local_clustering_coefficient(store, node, neighbour_map[node])
        for node in selected
    }


def average_clustering(store: DynamicGraphStore) -> float:
    """Mean LCC over all nodes (0 for an empty graph)."""
    coefficients = all_local_clustering_coefficients(store)
    if not coefficients:
        return 0.0
    return sum(coefficients.values()) / len(coefficients)
