"""Incremental analytics replicas: delta-maintained kernels over the change feed.

Every analytics run used to re-materialize the graph from scratch --
:meth:`TraversalEngine.materialize` walks the full store even when only a
handful of edges changed since the last run.  This module treats the
replication stream as a **change feed**: an :class:`AnalyticsFollower`
attaches to a :class:`~repro.replicate.Primary` like any
:class:`~repro.replicate.Follower`, and in addition to applying shipped ops
to its replica store it maintains

* a persistent adjacency **materialization cache** with dirty-node
  invalidation (:class:`MaterializationCache`): shipped ops mark exactly
  the touched source nodes; a refresh re-fetches only those in **one**
  batched ``successors_many`` call and serves everything else from cache;
* **delta-maintained kernels**: incremental PageRank, incremental weakly
  connected components and degree/top-k maintenance, each updated from the
  per-source adjacency diffs the cache refresh produces, and each falling
  back to a full recompute when the delta exceeds a configurable fraction
  of the graph.

So repeated analytics on a slowly-mutating graph cost O(changes) instead of
O(graph) -- the "millions of users watching live dashboards" scenario.

Correctness contract (enforced by the unit suite and the replication fuzz
lane): at every commit index, each incremental kernel's output is
**byte-identical** -- exact ints and bit-exact floats, no tolerance -- to
the matching *canonical* kernel recomputed from scratch through a fresh
:class:`~repro.analytics.engine.TraversalEngine` on the same replica store:

* :func:`canonical_pagerank` -- the deterministic PageRank formulation the
  incremental engine maintains.  Unlike the legacy
  :func:`~repro.analytics.pagerank.pagerank` (whose float accumulation
  order follows ``store.nodes()`` iteration order and therefore the
  scheme), it iterates nodes in **sorted order** and accumulates each
  node's score by folding its in-neighbours in sorted order, which makes
  the result a store-independent, bit-reproducible function of the edge
  set -- and makes exact incremental maintenance possible at all.
* :func:`canonical_components` -- weakly connected components in canonical
  form (members sorted, components sorted by first member).
* :func:`~repro.analytics.subgraph.total_degrees` /
  :func:`~repro.analytics.subgraph.top_degree_nodes` -- already
  deterministic; reused as-is.

How exact incremental PageRank works: the state keeps the full **per-sweep
rank history** of its last computation.  A structural delta marks the
directly affected nodes dirty; every sweep then re-evaluates only dirty
nodes (reading clean in-neighbours straight from the history) and a node
whose recomputed value is **bitwise equal** to its historical value stops
propagating -- the residual threshold is machine precision, so the dirty
frontier collapses exactly where the perturbation dies out and the result
is provably identical to a from-scratch run.  Node-set changes and dirty
frontiers beyond ``recompute_fraction`` fall back to a full rebuild (still
served from the cache, so the store phase stays one batched refetch).
"""

from __future__ import annotations

from bisect import insort
from typing import Callable, Dict, Iterable, List, Optional, Sequence, Set, Tuple, Union

from ..interfaces import DynamicGraphStore
from ..replicate.follower import DEFAULT_POLL_SLICE_S, Follower
from .engine import TraversalEngine, ensure_engine
from .pagerank import DEFAULT_DAMPING, DEFAULT_ITERATIONS

#: Default fraction of the graph's edges a delta may touch before the
#: kernels fall back to a full recompute (still cache-served).
DEFAULT_RECOMPUTE_FRACTION = 0.25


# --------------------------------------------------------------------- #
# Canonical reference kernels (the recompute the parity suites run)
# --------------------------------------------------------------------- #


def materialize_adjacency(
    store: DynamicGraphStore, *, engine: Optional[TraversalEngine] = None,
) -> Dict[int, List[int]]:
    """Adjacency of every source node in one batched ``successors_many``.

    Empty successor lists are dropped, so the keys are exactly the nodes
    with at least one outgoing edge -- the canonical adjacency form every
    kernel in this module consumes.
    """
    engine = ensure_engine(store, engine)
    fetched = engine.expand(store.source_nodes())
    return {u: targets for u, targets in fetched.items() if targets}


def adjacency_universe(adjacency: Dict[int, List[int]]) -> List[int]:
    """Sorted list of every node incident to an edge of ``adjacency``."""
    seen: Set[int] = set()
    for source, targets in adjacency.items():
        seen.add(source)
        seen.update(targets)
    return sorted(seen)


def canonical_pagerank(
    store: DynamicGraphStore,
    iterations: int = DEFAULT_ITERATIONS,
    damping: float = DEFAULT_DAMPING,
    *,
    engine: Optional[TraversalEngine] = None,
) -> Dict[int, float]:
    """Deterministic PageRank: sorted-order sweeps, bit-reproducible floats.

    Same formulation as :func:`~repro.analytics.pagerank.pagerank` (uniform
    start, fixed sweep count, dangling mass redistributed each sweep) but
    with a canonical evaluation order, so two stores holding the same edge
    set produce bit-identical scores.  This is the full-recompute reference
    the incremental engine is held byte-identical to.
    """
    adjacency = materialize_adjacency(store, engine=engine)
    state = _PageRankState(adjacency, iterations=iterations, damping=damping)
    return state.ranks()


def canonical_components(
    store: DynamicGraphStore, *, engine: Optional[TraversalEngine] = None,
) -> List[List[int]]:
    """Weakly connected components in canonical form.

    Members of each component are sorted ascending and the components are
    sorted by their first (smallest) member, so the output is a pure
    function of the edge set -- comparable across schemes, runs and the
    incremental engine with plain ``==``.
    """
    adjacency = materialize_adjacency(store, engine=engine)
    state = _ComponentState(adjacency)
    return state.components(adjacency_universe(adjacency))


# --------------------------------------------------------------------- #
# Materialization cache
# --------------------------------------------------------------------- #


class MaterializationCache:
    """Persistent adjacency cache with dirty-source invalidation.

    The change feed marks the source node of every shipped op dirty
    (:meth:`mark_dirty`); :meth:`refresh` then re-fetches exactly the dirty
    sources in **one** batched ``successors_many`` call and returns the
    per-source ``(old, new)`` successor-list diffs the delta kernels feed
    on.  Clean nodes are never re-fetched: :meth:`serve` answers them from
    the cache.
    """

    def __init__(self) -> None:
        self._adjacency: Dict[int, List[int]] = {}
        self._dirty: Set[int] = set()
        self._primed = False
        #: Frontier nodes answered from the cache (no store round-trip).
        self.hits = 0
        #: Frontier nodes that had to go to the store (dirty or unprimed).
        self.misses = 0
        #: Dirty sources re-fetched by :meth:`refresh`.
        self.refetched = 0
        #: Full materializations (:meth:`prime` calls).
        self.primes = 0
        #: :meth:`refresh` invocations.
        self.refreshes = 0

    # -- introspection -------------------------------------------------- #

    @property
    def primed(self) -> bool:
        """Whether the cache holds a full materialization."""
        return self._primed

    @property
    def dirty_count(self) -> int:
        """Sources marked dirty and not yet refreshed."""
        return len(self._dirty)

    @property
    def cached_sources(self) -> int:
        return len(self._adjacency)

    @property
    def hit_rate(self) -> float:
        """Fraction of node lookups served without touching the store."""
        total = self.hits + self.misses + self.refetched
        return self.hits / total if total else 0.0

    def adjacency(self) -> Dict[int, List[int]]:
        """The cached adjacency (internal; treat as read-only)."""
        return self._adjacency

    def stats(self) -> Dict[str, object]:
        return {
            "hits": self.hits,
            "misses": self.misses,
            "refetched": self.refetched,
            "primes": self.primes,
            "refreshes": self.refreshes,
            "hit_rate": self.hit_rate,
            "cached_sources": self.cached_sources,
            "dirty": self.dirty_count,
        }

    # -- maintenance ---------------------------------------------------- #

    def mark_dirty(self, source: int) -> None:
        """Invalidate one source node (its successor list may have changed)."""
        if self._primed:
            self._dirty.add(source)

    def invalidate(self) -> None:
        """Drop everything; the next refresh is a full materialization."""
        self._adjacency = {}
        self._dirty.clear()
        self._primed = False

    def prime(self, store: DynamicGraphStore,
              engine: TraversalEngine) -> Dict[int, List[int]]:
        """Full one-batch materialization of ``store``'s adjacency."""
        fetched = engine.expand(store.source_nodes())
        self._adjacency = {u: list(t) for u, t in fetched.items() if t}
        self._dirty.clear()
        self._primed = True
        self.primes += 1
        return self._adjacency

    def refresh(self, store: DynamicGraphStore, engine: TraversalEngine,
                ) -> Dict[int, Tuple[List[int], List[int]]]:
        """Re-fetch the dirty sources; return their real ``(old, new)`` diffs.

        One ``successors_many`` batch over the dirty set, however many ops
        produced it.  Sources whose successor *set* did not actually change
        (a duplicate insert, an insert+delete pair between refreshes) are
        healed silently and excluded from the returned diffs, so the delta
        kernels only ever see true structural change.
        """
        if not self._primed:
            raise RuntimeError("refresh() before prime(): no cache to refresh")
        self.refreshes += 1
        if not self._dirty:
            return {}
        dirty = sorted(self._dirty)
        fetched = engine.expand(dirty)
        diffs: Dict[int, Tuple[List[int], List[int]]] = {}
        for source in dirty:
            old = self._adjacency.get(source, [])
            new = list(fetched.get(source, ()))
            if new:
                self._adjacency[source] = new
            else:
                self._adjacency.pop(source, None)
            if set(old) != set(new):
                diffs[source] = (old, new)
        self.refetched += len(dirty)
        self._dirty.clear()
        return diffs

    def serve(self, store: DynamicGraphStore,
              nodes: Sequence[int]) -> Tuple[Dict[int, List[int]], int]:
        """Successor lists for ``nodes``: clean from cache, rest in one batch.

        Returns ``(result, fetched_count)``.  Dirty (or unprimed) nodes are
        answered straight from the store *without* healing the cache --
        healing happens only through :meth:`refresh`, which is what keeps
        the delta kernels' view of "old" intact.
        """
        pending = [
            u for u in nodes
            if not self._primed or u in self._dirty
        ]
        fetched = store.successors_many(pending) if pending else {}
        result: Dict[int, List[int]] = {}
        for u in nodes:
            if u in fetched:
                result[u] = list(fetched[u])
            else:
                result[u] = list(self._adjacency.get(u, ()))
        self.hits += len(nodes) - len(pending)
        self.misses += len(pending)
        return result, len(pending)


class CachedTraversalEngine(TraversalEngine):
    """A :class:`TraversalEngine` whose expansions are served by the cache.

    Drop-in for any kernel's ``engine`` keyword: clean frontier nodes cost
    no store round-trip at all; dirty ones are fetched in one batch.  The
    inherited batch counters keep their meaning -- ``expand_calls`` counts
    *store* batches actually issued -- and :attr:`cache_served` counts the
    frontier nodes the cache answered, so a fresh engine per run yields
    honest per-run accounting.
    """

    def __init__(self, store: DynamicGraphStore, cache: MaterializationCache):
        super().__init__(store)
        self._cache = cache
        #: Frontier nodes answered from the cache by this engine.
        self.cache_served = 0

    def expand(self, frontier: Iterable[int]) -> Dict[int, List[int]]:
        nodes = list(dict.fromkeys(frontier))
        if not nodes:
            return {}
        result, fetched = self._cache.serve(self.store, nodes)
        if fetched:
            self.expand_calls += 1
            self.nodes_expanded += fetched
        self.cache_served += len(nodes) - fetched
        return result


# --------------------------------------------------------------------- #
# Delta-maintained kernel states
# --------------------------------------------------------------------- #

#: One source's structural change: ``source -> (old_targets, new_targets)``.
Diffs = Dict[int, Tuple[List[int], List[int]]]


class _DegreeState:
    """Exact total-degree maintenance (matches ``total_degrees`` output)."""

    def __init__(self, adjacency: Dict[int, List[int]]):
        degrees: Dict[int, int] = {}
        for source, targets in adjacency.items():
            degrees[source] = degrees.get(source, 0) + len(targets)
            for target in targets:
                degrees[target] = degrees.get(target, 0) + 1
        self.degrees = degrees

    def apply(self, source: int, added: Set[int], removed: Set[int],
              ) -> Tuple[Set[int], Set[int]]:
        """Apply one source diff; return ``(nodes_appeared, nodes_vanished)``."""
        degrees = self.degrees
        touched = {source} | added | removed
        before = {node for node in touched if node in degrees}
        delta = len(added) - len(removed)
        if delta:
            degrees[source] = degrees.get(source, 0) + delta
        for target in added:
            degrees[target] = degrees.get(target, 0) + 1
        for target in removed:
            degrees[target] -= 1
        for node in touched:
            if degrees.get(node) == 0:
                del degrees[node]
        after = {node for node in touched if node in degrees}
        return after - before, before - after

    def top(self, count: int) -> List[int]:
        """Same ranking rule as ``top_degree_nodes``: by (-degree, node)."""
        ranked = sorted(self.degrees.items(), key=lambda item: (-item[1], item[0]))
        return [node for node, _ in ranked[:count]]


class _ComponentState:
    """Weakly connected components: union on insert, bounded recompute on delete.

    Inserts are pure union-find unions (near-O(1)).  A delete can split its
    component, so the affected endpoints are *tainted* and :meth:`settle`
    rebuilds exactly the tainted components' member sets from the current
    adjacency -- every neighbour of a member is in the same (stale, hence
    superset) component, so the rebuild never needs to look outside them.
    """

    def __init__(self, adjacency: Dict[int, List[int]]):
        self._parent: Dict[int, int] = {}
        self._members: Dict[int, Set[int]] = {}
        self._tainted: Set[int] = set()
        #: Member-set sizes re-unioned by settle() (the "bounded" in
        #: bounded recompute); read by the follower's stats.
        self.nodes_recomputed = 0
        for source, targets in adjacency.items():
            self._ensure(source)
            for target in targets:
                self._ensure(target)
                self._union(source, target)

    def _ensure(self, node: int) -> None:
        if node not in self._parent:
            self._parent[node] = node
            self._members[node] = {node}

    def _find(self, node: int) -> int:
        parent = self._parent
        root = node
        while parent[root] != root:
            root = parent[root]
        while parent[node] != root:
            parent[node], node = root, parent[node]
        return root

    def _union(self, a: int, b: int) -> None:
        root_a, root_b = self._find(a), self._find(b)
        if root_a == root_b:
            return
        if len(self._members[root_a]) < len(self._members[root_b]):
            root_a, root_b = root_b, root_a
        self._parent[root_b] = root_a
        self._members[root_a].update(self._members.pop(root_b))

    @property
    def tainted(self) -> bool:
        return bool(self._tainted)

    def apply(self, source: int, added: Set[int], removed: Set[int]) -> None:
        self._ensure(source)
        for target in added:
            self._ensure(target)
            self._union(source, target)
        if removed:
            self._tainted.add(source)
            self._tainted.update(removed)

    def settle(self, adjacency: Dict[int, List[int]]) -> int:
        """Re-derive the tainted components from the current adjacency.

        Returns the number of nodes re-unioned (0 when nothing is tainted).
        Every tainted node's *stale* component is a superset of whatever it
        split into, so resetting exactly those members and re-unioning their
        current edges is a complete recompute of the affected region.
        """
        if not self._tainted:
            return 0
        pool: Set[int] = set()
        for node in self._tainted:
            if node in self._parent:
                pool.update(self._members[self._find(node)])
        self._tainted.clear()
        for node in pool:
            self._parent[node] = node
            self._members[node] = {node}
        for source in pool:
            for target in adjacency.get(source, ()):
                self._union(source, target)
        self.nodes_recomputed += len(pool)
        return len(pool)

    def components(self, universe: Sequence[int]) -> List[List[int]]:
        """Canonical component list restricted to ``universe`` (sorted)."""
        groups: Dict[int, List[int]] = {}
        for node in universe:
            groups.setdefault(self._find(node), []).append(node)
        return sorted(groups.values())


class _PageRankState:
    """Exact incremental PageRank via memoized sweep history.

    Keeps the per-sweep rank vector of its last full evaluation.  A
    structural delta dirties the directly affected nodes; each sweep then
    re-evaluates only nodes whose inputs changed, reading clean
    in-neighbours from the history, and stops propagating wherever the
    recomputed value is bitwise equal to the historical one (residual
    threshold = machine precision).  The result is byte-identical to a
    from-scratch evaluation because every recomputed value is produced by
    the *same* fold, in the same order, over operands that are themselves
    identical-by-induction.
    """

    def __init__(self, adjacency: Dict[int, List[int]],
                 iterations: int, damping: float):
        self.iterations = iterations
        self.damping = damping
        #: Nodes re-evaluated across incremental sweeps (stats).
        self.nodes_recomputed = 0
        self._build(adjacency)

    # -- full evaluation ------------------------------------------------ #

    def _build(self, adjacency: Dict[int, List[int]]) -> None:
        self.nodes: List[int] = adjacency_universe(adjacency)
        self._node_set: Set[int] = set(self.nodes)
        in_lists: Dict[int, List[int]] = {node: [] for node in self.nodes}
        for source in sorted(adjacency):
            for target in adjacency[source]:
                in_lists[target].append(source)  # sorted: sources ascend
        self._in = in_lists
        self._dangling: List[int] = [n for n in self.nodes if n not in adjacency]
        self._dangling_set: Set[int] = set(self._dangling)
        self._dangling_changed = False
        count = len(self.nodes)
        if not count:
            self._hist: List[Dict[int, float]] = [{}] * (self.iterations + 1)
            self._dm: List[float] = [0.0] * (self.iterations + 1)
            return
        base = (1.0 - self.damping) / count
        hist = [{node: 1.0 / count for node in self.nodes}]
        dm_hist = [0.0]
        for _ in range(self.iterations):
            prev = hist[-1]
            dm = 0.0
            for node in self._dangling:
                dm += prev[node]
            redistributed = self.damping * dm / count if dm else 0.0
            hist.append({
                node: self._value(node, prev, base, redistributed, adjacency)
                for node in self.nodes
            })
            dm_hist.append(dm)
        self._hist = hist
        self._dm = dm_hist

    def _value(self, node: int, prev: Dict[int, float], base: float,
               redistributed: float, adjacency: Dict[int, List[int]]) -> float:
        """The canonical per-node fold (shared by full and incremental)."""
        value = base
        for source in self._in[node]:
            value += self.damping * prev[source] / len(adjacency[source])
        if redistributed:
            value += redistributed
        return value

    # -- incremental maintenance ---------------------------------------- #

    def update(self, diffs: Diffs, adjacency: Dict[int, List[int]],
               node_churn: bool, recompute_fraction: float) -> str:
        """Fold a structural delta into the history.

        Returns ``"clean"`` (no change), ``"incremental"`` or
        ``"recompute"`` (full rebuild: the node set changed -- every term
        carries 1/n -- or the dirty frontier blew past
        ``recompute_fraction`` of the graph).
        """
        if not diffs and not node_churn:
            return "clean"
        if node_churn:
            self._build(adjacency)
            return "recompute"
        base_dirty: Set[int] = set()
        for source, (old, new) in diffs.items():
            old_set, new_set = set(old), set(new)
            added = new_set - old_set
            removed = old_set - new_set
            for target in added:
                insort(self._in[target], source)
            for target in removed:
                self._in[target].remove(source)
            if len(old) != len(new):
                # Out-degree changed: every share this source pushes moved.
                base_dirty |= old_set | new_set
            else:
                base_dirty |= added | removed
            was_dangling = not old
            is_dangling = not new
            if was_dangling != is_dangling:
                self._dangling_changed = True
                if is_dangling:
                    insort(self._dangling, source)
                    self._dangling_set.add(source)
                else:
                    self._dangling.remove(source)
                    self._dangling_set.discard(source)
        count = len(self.nodes)
        budget = max(1, int(recompute_fraction * count))
        if len(base_dirty) > budget:
            self._build(adjacency)
            return "recompute"
        base = (1.0 - self.damping) / count
        changed_prev: Set[int] = set()
        for sweep in range(1, self.iterations + 1):
            prev = self._hist[sweep - 1]
            dm = self._dm[sweep]
            if self._dangling_changed or \
                    not changed_prev.isdisjoint(self._dangling_set):
                dm = 0.0
                for node in self._dangling:
                    dm += prev[node]
            if dm != self._dm[sweep]:
                dirty: Set[int] = self._node_set
            else:
                dirty = set(base_dirty)
                for source in changed_prev:
                    dirty.update(adjacency.get(source, ()))
            if len(dirty) > budget:
                self._build(adjacency)
                return "recompute"
            redistributed = self.damping * dm / count if dm else 0.0
            current = self._hist[sweep]
            changed: Set[int] = set()
            for node in dirty:
                value = self._value(node, prev, base, redistributed, adjacency)
                if value != current[node]:
                    current[node] = value
                    changed.add(node)
            self._dm[sweep] = dm
            self.nodes_recomputed += len(dirty)
            changed_prev = changed
        self._dangling_changed = False
        return "incremental"

    def ranks(self) -> Dict[int, float]:
        """The maintained score vector, keyed in sorted node order."""
        final = self._hist[-1]
        return {node: final[node] for node in self.nodes}


# --------------------------------------------------------------------- #
# The analytics follower
# --------------------------------------------------------------------- #


class AnalyticsFollower(Follower):
    """A read replica that keeps analytics state fresh from the change feed.

    Attach it to a :class:`~repro.replicate.Primary` like any follower; it
    applies shipped ops to its replica store *and* marks the touched source
    nodes dirty in its :class:`MaterializationCache`.  Analytics queries
    (:meth:`pagerank`, :meth:`components`, :meth:`top_degree_nodes`,
    :meth:`total_degrees`) first :meth:`refresh_analytics` -- one batched
    refetch of exactly the dirty sources, then O(delta) kernel maintenance
    -- and are byte-identical to the canonical kernels recomputed from
    scratch on the replica at the same commit index.

    ``engine()`` hands out a fresh :class:`CachedTraversalEngine` per call,
    so kernels without an incremental formulation (BFS, SSSP, Tarjan SCC,
    ...) still skip the store's materialization phase while keeping
    per-run batch counters.

    Args:
        store / scheme / own_store / poll_slice_s: as for
            :class:`~repro.replicate.Follower`.
        iterations: Sweep count of the maintained PageRank.
        damping: Damping factor of the maintained PageRank.
        recompute_fraction: Delta size (touched edges vs stored edges, and
            dirty-frontier nodes vs graph nodes) beyond which a kernel
            falls back to full recompute instead of incremental repair.
    """

    def __init__(
        self,
        store: Optional[DynamicGraphStore] = None,
        scheme: Union[str, Callable[[], DynamicGraphStore]] = "sharded",
        *,
        own_store: Optional[bool] = None,
        poll_slice_s: float = DEFAULT_POLL_SLICE_S,
        iterations: int = DEFAULT_ITERATIONS,
        damping: float = DEFAULT_DAMPING,
        recompute_fraction: float = DEFAULT_RECOMPUTE_FRACTION,
    ):
        if iterations < 1:
            raise ValueError(f"iterations must be >= 1, got {iterations}")
        if not 0.0 < damping < 1.0:
            raise ValueError(f"damping must be in (0, 1), got {damping}")
        if not 0.0 < recompute_fraction <= 1.0:
            raise ValueError(
                f"recompute_fraction must be in (0, 1], got {recompute_fraction}"
            )
        super().__init__(store, scheme, own_store=own_store,
                         poll_slice_s=poll_slice_s)
        self.iterations = iterations
        self.damping = damping
        self.recompute_fraction = recompute_fraction
        self.cache = MaterializationCache()
        self._degrees: Optional[_DegreeState] = None
        self._components: Optional[_ComponentState] = None
        self._pagerank: Optional[_PageRankState] = None
        self._decisions = {"primed": 0, "clean": 0, "incremental": 0,
                           "recompute": 0}
        self._kernel_decisions = {
            "pagerank": {"incremental": 0, "recompute": 0},
            "components": {"incremental": 0, "recompute": 0},
        }
        self._ops_seen = 0

    # -- change-feed hooks ---------------------------------------------- #

    def _apply_ops(self, ops) -> None:
        super()._apply_ops(ops)
        mark = self.cache.mark_dirty
        for op in ops:
            mark(op[1])
        self._ops_seen += len(ops)

    def _connect(self, primary, channel, *, commit_index, generation,
                 offsets) -> None:
        super()._connect(primary, channel, commit_index=commit_index,
                         generation=generation, offsets=offsets)
        # attach() backfilled the store directly (snapshot + directory
        # replay, not the channel), so everything cached is suspect.
        self.invalidate_analytics()

    def promote(self, *args, **kwargs):
        promoted = super().promote(*args, **kwargs)
        # The promoted wrapper takes writes that bypass the feed.
        self.invalidate_analytics()
        return promoted

    def invalidate_analytics(self) -> None:
        """Drop cache and kernel state; the next query re-primes in full."""
        self.cache.invalidate()
        self._degrees = None
        self._components = None
        self._pagerank = None

    # -- maintenance ----------------------------------------------------- #

    def refresh_analytics(self) -> str:
        """Bring cache and kernels up to date with the replica store.

        Returns the decision taken: ``"primed"`` (first run / after
        invalidation: one full materialization), ``"clean"`` (nothing
        dirty), ``"incremental"`` (dirty sources refetched in one batch,
        kernels delta-repaired) or ``"recompute"`` (delta exceeded
        ``recompute_fraction``: kernels rebuilt from the refreshed cache).
        """
        if not self.cache.primed or self._degrees is None:
            adjacency = self.cache.prime(self.store, TraversalEngine(self.store))
            self._rebuild_kernels(adjacency)
            self._decisions["primed"] += 1
            return "primed"
        if not self.cache.dirty_count:
            self._decisions["clean"] += 1
            return "clean"
        changed_budget = self.recompute_fraction * max(1, self.store.num_edges)
        diffs = self.cache.refresh(self.store, TraversalEngine(self.store))
        adjacency = self.cache.adjacency()
        if not diffs:
            self._decisions["clean"] += 1
            return "clean"
        changed_edges = sum(
            len(set(old) ^ set(new)) for old, new in diffs.values()
        )
        if changed_edges > changed_budget:
            self._rebuild_kernels(adjacency)
            self._decisions["recompute"] += 1
            return "recompute"
        # Degrees first: their transitions tell us whether the node set
        # changed, which decides the PageRank path.
        node_churn = False
        for source, (old, new) in diffs.items():
            old_set, new_set = set(old), set(new)
            added = new_set - old_set
            removed = old_set - new_set
            appeared, vanished = self._degrees.apply(source, added, removed)
            node_churn = node_churn or bool(appeared) or bool(vanished)
            self._components.apply(source, added, removed)
        if self._components.tainted:
            self._components.settle(adjacency)
            self._kernel_decisions["components"]["incremental"] += 1
        pagerank_path = self._pagerank.update(
            diffs, adjacency, node_churn, self.recompute_fraction)
        if pagerank_path in ("incremental", "recompute"):
            self._kernel_decisions["pagerank"][pagerank_path] += 1
        self._decisions["incremental"] += 1
        return "incremental"

    def _rebuild_kernels(self, adjacency: Dict[int, List[int]]) -> None:
        self._degrees = _DegreeState(adjacency)
        self._components = _ComponentState(adjacency)
        self._pagerank = _PageRankState(adjacency, iterations=self.iterations,
                                        damping=self.damping)
        self._kernel_decisions["pagerank"]["recompute"] += 1
        self._kernel_decisions["components"]["recompute"] += 1

    # -- queries --------------------------------------------------------- #

    def pagerank(self) -> Dict[int, float]:
        """Maintained PageRank; byte-identical to :func:`canonical_pagerank`."""
        self.refresh_analytics()
        return self._pagerank.ranks()

    def components(self) -> List[List[int]]:
        """Maintained weakly connected components in canonical form."""
        self.refresh_analytics()
        return self._components.components(sorted(self._degrees.degrees))

    def total_degrees(self) -> Dict[int, int]:
        """Maintained total degrees; equals ``total_degrees(store)``."""
        self.refresh_analytics()
        return dict(self._degrees.degrees)

    def top_degree_nodes(self, count: int) -> List[int]:
        """Maintained top-k by total degree; equals ``top_degree_nodes``."""
        self.refresh_analytics()
        return self._degrees.top(count)

    def engine(self) -> CachedTraversalEngine:
        """A fresh cache-backed engine (per-run counters start at zero)."""
        self.refresh_analytics()
        return CachedTraversalEngine(self._store, self.cache)

    def analytics_stats(self) -> Dict[str, object]:
        """Cache and decision counters (see ServiceMetrics "analytics")."""
        return {
            "cache": self.cache.stats(),
            "decisions": dict(self._decisions),
            "kernels": {
                "pagerank": dict(self._kernel_decisions["pagerank"]),
                "components": dict(self._kernel_decisions["components"]),
            },
            "pagerank_nodes_recomputed": (
                self._pagerank.nodes_recomputed if self._pagerank else 0
            ),
            "components_nodes_recomputed": (
                self._components.nodes_recomputed if self._components else 0
            ),
            "ops_seen": self._ops_seen,
        }
