"""Triangle Counting (Section V-E3).

The paper's TC task is node-centric: "given a node, return the number of
triangles in the graph that contain that node".  Its methodology performs a
successor query to reach all 2-hop successors of the node, then issues an
edge query ``⟨2-hop successor, node⟩`` for every such candidate; the number
of successful edge queries is the triangle count.  The kernel therefore
exercises exactly the two store operations (successor query and edge query)
whose cost the experiment compares -- both in batched form: the 1-hop and
2-hop neighbourhoods are fetched with one ``successors_many`` call each, and
the closing edge queries are answered by one ``has_edges`` batch, via the
:class:`~repro.analytics.engine.TraversalEngine`.
"""

from __future__ import annotations

from typing import Iterable, Optional

from ..interfaces import DynamicGraphStore
from .engine import TraversalEngine, ensure_engine
from .subgraph import top_degree_nodes


def count_triangles_of_node(store: DynamicGraphStore, node: int, *,
                            engine: Optional[TraversalEngine] = None) -> int:
    """Number of directed triangles ``node -> x -> y -> node`` through ``node``.

    Follows the paper's methodology literally -- enumerate 2-hop successors
    via successor queries, then count the edge queries
    ``⟨2-hop successor, node⟩`` that succeed -- with each phase batched: one
    expansion for the 1-hop frontier, one for the 2-hop frontier, one edge
    probe batch for the closures (duplicates probed per occurrence, exactly
    as the per-call methodology counts them).
    """
    engine = ensure_engine(store, engine)
    first_hops = engine.expand([node]).get(node, [])
    second_adjacency = engine.expand(first_hops)
    # The probe universe is quadratic in degree, so stream it through the
    # chunked counter instead of materialising it.
    probes = (
        (second_hop, node)
        for first_hop in first_hops
        for second_hop in second_adjacency[first_hop]
        if second_hop != node
    )
    return engine.count_edges(probes)


def count_triangles(store: DynamicGraphStore, nodes: Iterable[int] | None = None,
                    node_count: int = 10, *,
                    engine: Optional[TraversalEngine] = None) -> dict[int, int]:
    """Triangle counts for a set of nodes (top-total-degree nodes by default)."""
    engine = ensure_engine(store, engine)
    if nodes is not None:
        selected = list(nodes)
    else:
        selected = top_degree_nodes(store, node_count, engine=engine)
    return {
        node: count_triangles_of_node(store, node, engine=engine) for node in selected
    }


def total_directed_triangles(store: DynamicGraphStore, *,
                             engine: Optional[TraversalEngine] = None) -> int:
    """Total number of directed 3-cycles in the graph (each counted once).

    This whole-graph variant is used by tests to cross-check the node-centric
    kernel against a reference implementation.  The adjacency of every source
    node is materialised in one batch and the closing edges are probed in one
    ``has_edges`` batch.
    """
    engine = ensure_engine(store, engine)
    sources = list(store.source_nodes())
    adjacency = engine.expand(sources)
    # One probe per directed wedge of the whole graph: stream, don't build.
    probes = (
        (w, u)
        for u in sources
        for v in adjacency[u]
        for w in adjacency.get(v, ())
        if w != u
    )
    return engine.count_edges(probes) // 3
