"""Triangle Counting (Section V-E3).

The paper's TC task is node-centric: "given a node, return the number of
triangles in the graph that contain that node".  Its methodology performs a
successor query to reach all 2-hop successors of the node, then issues an
edge query ``⟨2-hop successor, node⟩`` for every such candidate; the number
of successful edge queries is the triangle count.  The kernel therefore
exercises exactly the two store operations (successor query and edge query)
whose cost the experiment compares.
"""

from __future__ import annotations

from typing import Iterable

from ..interfaces import DynamicGraphStore
from .subgraph import top_degree_nodes


def count_triangles_of_node(store: DynamicGraphStore, node: int) -> int:
    """Number of directed triangles ``node -> x -> y -> node`` through ``node``.

    Follows the paper's methodology literally: enumerate 2-hop successors via
    successor queries, then count the edge queries ``⟨2-hop successor, node⟩``
    that succeed.
    """
    triangles = 0
    for first_hop in store.successors(node):
        for second_hop in store.successors(first_hop):
            if second_hop == node:
                continue
            if store.has_edge(second_hop, node):
                triangles += 1
    return triangles


def count_triangles(store: DynamicGraphStore, nodes: Iterable[int] | None = None,
                    node_count: int = 10) -> dict[int, int]:
    """Triangle counts for a set of nodes (top-total-degree nodes by default)."""
    selected = list(nodes) if nodes is not None else top_degree_nodes(store, node_count)
    return {node: count_triangles_of_node(store, node) for node in selected}


def total_directed_triangles(store: DynamicGraphStore) -> int:
    """Total number of directed 3-cycles in the graph (each counted once).

    This whole-graph variant is used by tests to cross-check the node-centric
    kernel against a reference implementation.
    """
    total = 0
    for u in list(store.source_nodes()):
        for v in store.successors(u):
            for w in store.successors(v):
                if w != u and store.has_edge(w, u):
                    total += 1
    return total // 3
