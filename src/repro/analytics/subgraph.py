"""Degree statistics and top-degree subgraph extraction.

Several of the paper's analytics experiments (Sections V-E1 to V-E7) start by
"selecting a specific number of nodes with the largest total degree" -- the
sum of out-degree and in-degree on the *original* graph -- and, for the
heavier kernels, extracting the subgraph induced by those nodes.  This module
provides those shared preprocessing steps for any
:class:`~repro.interfaces.DynamicGraphStore`.

All of them are batched: the degree pass and the induced-edge enumeration
each issue **one** ``successors_many`` fan-out over the relevant nodes via
the :class:`~repro.analytics.engine.TraversalEngine` instead of scanning
successors node by node.
"""

from __future__ import annotations

from collections import Counter
from typing import Iterable, Optional, Sequence, Type

from ..interfaces import DynamicGraphStore
from .engine import TraversalEngine, ensure_engine


def total_degrees(store: DynamicGraphStore, *,
                  engine: Optional[TraversalEngine] = None) -> dict[int, int]:
    """Total (in + out) degree of every node incident to a stored edge.

    Methodology note: computed in **one batched pass** -- a single
    ``successors_many`` call over the store's source nodes materialises every
    adjacency list, out-degrees are the list lengths and in-degrees are
    tallied from the list contents.  No per-node successor scan is issued, so
    the cost is one batch plus one pass over the edges, matching how the
    paper's "largest total degree" selection is charged to the store.
    """
    engine = ensure_engine(store, engine)
    adjacency = engine.expand(store.source_nodes())
    degrees: Counter[int] = Counter()
    for u, targets in adjacency.items():
        if not targets:
            continue
        degrees[u] += len(targets)
        for v in targets:
            degrees[v] += 1
    return dict(degrees)


def top_degree_nodes(store: DynamicGraphStore, count: int, *,
                     engine: Optional[TraversalEngine] = None) -> list[int]:
    """The ``count`` nodes with the largest total degree (ties broken by id).

    Degrees come from the one-batch pass of :func:`total_degrees`; see the
    methodology note there.
    """
    degrees = total_degrees(store, engine=engine)
    ranked = sorted(degrees.items(), key=lambda item: (-item[1], item[0]))
    return [node for node, _ in ranked[:count]]


def induced_edges(
    store: DynamicGraphStore, nodes: Iterable[int], *,
    engine: Optional[TraversalEngine] = None,
) -> list[tuple[int, int]]:
    """Edges of the subgraph induced by ``nodes``.

    One ``successors_many`` batch over the selected nodes supplies every
    candidate edge; the result lists edges grouped by source node in
    selection order, each group in successor-list order.
    """
    engine = ensure_engine(store, engine)
    selected_order = list(dict.fromkeys(nodes))
    selected = set(selected_order)
    adjacency = engine.expand(selected_order)
    return [
        (u, v)
        for u in selected_order
        for v in adjacency[u]
        if v in selected
    ]


def extract_subgraph(
    store: DynamicGraphStore,
    nodes: Sequence[int],
    store_class: Type[DynamicGraphStore] | None = None,
    *,
    engine: Optional[TraversalEngine] = None,
) -> DynamicGraphStore:
    """Build a new store containing only the subgraph induced by ``nodes``.

    Args:
        store: The source graph.
        nodes: Nodes whose induced subgraph is wanted.
        store_class: Class of the store to build; defaults to
            ``store.spawn_empty()`` so each scheme is benchmarked against
            itself (with its own construction parameters), exactly as the
            paper's methodology prescribes ("insert the subgraphs into each
            scheme").
        engine: Optional shared traversal engine (batch accounting).
    """
    subgraph = store_class() if store_class is not None else store.spawn_empty()
    subgraph.insert_edges(induced_edges(store, nodes, engine=engine))
    return subgraph


def top_degree_subgraph(
    store: DynamicGraphStore,
    node_count: int,
    store_class: Type[DynamicGraphStore] | None = None,
    *,
    engine: Optional[TraversalEngine] = None,
) -> tuple[DynamicGraphStore, list[int]]:
    """Extract the subgraph induced by the ``node_count`` highest-degree nodes.

    Returns the subgraph store and the selected nodes (ordered by total
    degree, highest first).
    """
    engine = ensure_engine(store, engine)
    nodes = top_degree_nodes(store, node_count, engine=engine)
    return extract_subgraph(store, nodes, store_class, engine=engine), nodes
