"""Degree statistics and top-degree subgraph extraction.

Several of the paper's analytics experiments (Sections V-E1 to V-E7) start by
"selecting a specific number of nodes with the largest total degree" -- the
sum of out-degree and in-degree on the *original* graph -- and, for the
heavier kernels, extracting the subgraph induced by those nodes.  This module
provides those shared preprocessing steps for any
:class:`~repro.interfaces.DynamicGraphStore`.
"""

from __future__ import annotations

from collections import Counter
from typing import Iterable, Sequence, Type

from ..interfaces import DynamicGraphStore


def total_degrees(store: DynamicGraphStore) -> dict[int, int]:
    """Total (in + out) degree of every node incident to a stored edge."""
    degrees: Counter[int] = Counter()
    for u, v in store.edges():
        degrees[u] += 1
        degrees[v] += 1
    return dict(degrees)


def top_degree_nodes(store: DynamicGraphStore, count: int) -> list[int]:
    """The ``count`` nodes with the largest total degree (ties broken by id)."""
    degrees = total_degrees(store)
    ranked = sorted(degrees.items(), key=lambda item: (-item[1], item[0]))
    return [node for node, _ in ranked[:count]]


def induced_edges(
    store: DynamicGraphStore, nodes: Iterable[int]
) -> list[tuple[int, int]]:
    """Edges of the subgraph induced by ``nodes``."""
    selected = set(nodes)
    return [(u, v) for u, v in store.edges() if u in selected and v in selected]


def extract_subgraph(
    store: DynamicGraphStore,
    nodes: Sequence[int],
    store_class: Type[DynamicGraphStore] | None = None,
) -> DynamicGraphStore:
    """Build a new store containing only the subgraph induced by ``nodes``.

    Args:
        store: The source graph.
        nodes: Nodes whose induced subgraph is wanted.
        store_class: Class of the store to build; defaults to the class of
            ``store`` so each scheme is benchmarked against itself, exactly as
            the paper's methodology prescribes ("insert the subgraphs into
            each scheme").
    """
    target_class = store_class if store_class is not None else type(store)
    subgraph = target_class()
    for u, v in induced_edges(store, nodes):
        subgraph.insert_edge(u, v)
    return subgraph


def top_degree_subgraph(
    store: DynamicGraphStore,
    node_count: int,
    store_class: Type[DynamicGraphStore] | None = None,
) -> tuple[DynamicGraphStore, list[int]]:
    """Extract the subgraph induced by the ``node_count`` highest-degree nodes.

    Returns the subgraph store and the selected nodes (ordered by total
    degree, highest first).
    """
    nodes = top_degree_nodes(store, node_count)
    return extract_subgraph(store, nodes, store_class), nodes
