"""Betweenness Centrality via Brandes' algorithm (Section V-E6).

The paper runs the Brandes algorithm on the subgraph induced by the
highest-total-degree nodes.  Brandes performs one BFS (for unweighted graphs)
per source and accumulates pair dependencies on the way back, so the store is
exercised exclusively through successor queries -- here a single batched
materialization: the whole adjacency is fetched with one ``successors_many``
call through the :class:`~repro.analytics.engine.TraversalEngine` and every
per-source BFS runs on the resulting dictionary.
"""

from __future__ import annotations

from collections import deque
from typing import Iterable, Optional

from ..interfaces import DynamicGraphStore
from .engine import TraversalEngine, ensure_engine

#: Adjacency fallback for sources the store has never seen.
_NO_SUCCESSORS: list[int] = []


def betweenness_centrality(
    store: DynamicGraphStore,
    sources: Optional[Iterable[int]] = None,
    normalized: bool = True,
    *,
    engine: Optional[TraversalEngine] = None,
) -> dict[int, float]:
    """Betweenness centrality of every node (Brandes, unweighted).

    Args:
        store: Graph to analyse.
        sources: Optional subset of source nodes to accumulate from; ``None``
            uses every node (the exact algorithm).  Passing a subset gives the
            standard sampled approximation.
        normalized: Whether to scale scores by ``1 / ((n-1)(n-2))`` for
            directed graphs with ``n > 2`` nodes.
        engine: Optional shared traversal engine (batch accounting).
    """
    engine = ensure_engine(store, engine)
    nodes = list(store.nodes())
    adjacency = engine.materialize(nodes)
    centrality = {node: 0.0 for node in nodes}
    source_nodes = list(sources) if sources is not None else nodes

    for source in source_nodes:
        # Single-source shortest-path DAG (unweighted: BFS).
        predecessors: dict[int, list[int]] = {node: [] for node in nodes}
        sigma: dict[int, float] = {node: 0.0 for node in nodes}
        distance: dict[int, int] = {node: -1 for node in nodes}
        sigma[source] = 1.0
        distance[source] = 0
        order: list[int] = []
        queue: deque[int] = deque([source])
        while queue:
            node = queue.popleft()
            order.append(node)
            for neighbour in adjacency.get(node, _NO_SUCCESSORS):
                if neighbour not in distance:
                    # Neighbour outside the node universe (possible when the
                    # caller restricted sources to a subgraph); skip it.
                    continue
                if distance[neighbour] < 0:
                    distance[neighbour] = distance[node] + 1
                    queue.append(neighbour)
                if distance[neighbour] == distance[node] + 1:
                    sigma[neighbour] += sigma[node]
                    predecessors[neighbour].append(node)
        # Back-propagation of dependencies.
        dependency = {node: 0.0 for node in nodes}
        for node in reversed(order):
            for predecessor in predecessors[node]:
                if sigma[node] > 0:
                    share = (sigma[predecessor] / sigma[node]) * (1.0 + dependency[node])
                    dependency[predecessor] += share
            if node != source:
                centrality[node] += dependency[node]

    if normalized:
        count = len(nodes)
        if count > 2:
            scale = 1.0 / ((count - 1) * (count - 2))
            centrality = {node: value * scale for node, value in centrality.items()}
    return centrality


def top_betweenness(store: DynamicGraphStore, count: int = 10, **kwargs) -> list[tuple[int, float]]:
    """The ``count`` nodes with the highest betweenness centrality.

    Keyword arguments (including ``engine``) pass to
    :func:`betweenness_centrality`.
    """
    scores = betweenness_centrality(store, **kwargs)
    return sorted(scores.items(), key=lambda item: (-item[1], item[0]))[:count]
