"""PageRank (Section V-E5).

The paper builds the transition structure from successor queries against each
store and then iterates the PageRank update 100 times on the extracted
subgraph.  The kernel below mirrors that: one *batched* materialization pass
(a single ``successors_many`` call through the
:class:`~repro.analytics.engine.TraversalEngine`) builds the adjacency needed
for the iteration, and the iteration itself is plain Python so every scheme
pays the same arithmetic cost -- the difference between schemes is exactly
the successor-query phase the paper analyses.
"""

from __future__ import annotations

from typing import Optional

from ..interfaces import DynamicGraphStore
from .engine import TraversalEngine, ensure_engine

#: Damping factor used by the standard PageRank formulation.
DEFAULT_DAMPING = 0.85
#: Iteration count used by the paper's methodology.
DEFAULT_ITERATIONS = 100


def pagerank(
    store: DynamicGraphStore,
    iterations: int = DEFAULT_ITERATIONS,
    damping: float = DEFAULT_DAMPING,
    tolerance: Optional[float] = None,
    *,
    engine: Optional[TraversalEngine] = None,
) -> dict[int, float]:
    """PageRank scores of every node in the store.

    Args:
        store: Graph to rank.
        iterations: Maximum number of power iterations (the paper uses 100).
        damping: Damping factor ``d`` of the PageRank formulation.
        tolerance: Optional L1 early-exit threshold; ``None`` reproduces the
            paper's fixed-iteration behaviour.
        engine: Optional shared traversal engine (batch accounting).

    Returns:
        Mapping from node to score; scores sum to 1 over all nodes.
    """
    engine = ensure_engine(store, engine)
    nodes = list(store.nodes())
    if not nodes:
        return {}
    # Successor-query phase: this is the part whose cost depends on the
    # store -- one batched materialization instead of a call per node.
    successors = engine.materialize(nodes)

    count = len(nodes)
    rank = {node: 1.0 / count for node in nodes}
    for _ in range(iterations):
        next_rank = {node: (1.0 - damping) / count for node in nodes}
        dangling_mass = 0.0
        for node in nodes:
            targets = successors[node]
            if not targets:
                dangling_mass += rank[node]
                continue
            share = damping * rank[node] / len(targets)
            for target in targets:
                next_rank[target] += share
        if dangling_mass:
            redistributed = damping * dangling_mass / count
            for node in nodes:
                next_rank[node] += redistributed
        if tolerance is not None:
            delta = sum(abs(next_rank[node] - rank[node]) for node in nodes)
            rank = next_rank
            if delta < tolerance:
                break
        else:
            rank = next_rank
    return rank


def top_ranked(store: DynamicGraphStore, count: int = 10, **kwargs) -> list[tuple[int, float]]:
    """The ``count`` highest-ranked nodes as ``(node, score)`` pairs.

    Keyword arguments (including ``engine``) pass straight to :func:`pagerank`.
    """
    scores = pagerank(store, **kwargs)
    return sorted(scores.items(), key=lambda item: (-item[1], item[0]))[:count]
