"""Single-Source Shortest Paths via Dijkstra's algorithm (Section V-E2).

The paper runs Dijkstra from the ten highest-total-degree nodes of the
original graph over the subgraph induced by the top-degree nodes.  The
datasets are unweighted, so every edge has unit length unless the caller
supplies a weight function; the kernel's cost is dominated by edge/successor
queries against the store, which is what the experiment compares.
"""

from __future__ import annotations

import heapq
from typing import Callable, Iterable, Optional

from ..interfaces import DynamicGraphStore

#: Edge-weight callback type: ``weight(u, v) -> float``.
WeightFunction = Callable[[int, int], float]


def dijkstra(
    store: DynamicGraphStore,
    source: int,
    weight: Optional[WeightFunction] = None,
) -> dict[int, float]:
    """Shortest-path distances from ``source`` to every reachable node."""
    weight_of = weight if weight is not None else (lambda u, v: 1.0)
    distances: dict[int, float] = {source: 0.0}
    settled: set[int] = set()
    frontier: list[tuple[float, int]] = [(0.0, source)]
    while frontier:
        distance, node = heapq.heappop(frontier)
        if node in settled:
            continue
        settled.add(node)
        for neighbour in store.successors(node):
            candidate = distance + weight_of(node, neighbour)
            if candidate < distances.get(neighbour, float("inf")):
                distances[neighbour] = candidate
                heapq.heappush(frontier, (candidate, neighbour))
    return distances


def shortest_path(
    store: DynamicGraphStore,
    source: int,
    target: int,
    weight: Optional[WeightFunction] = None,
) -> Optional[list[int]]:
    """One shortest path from ``source`` to ``target`` (``None`` if unreachable)."""
    weight_of = weight if weight is not None else (lambda u, v: 1.0)
    distances: dict[int, float] = {source: 0.0}
    parents: dict[int, int] = {}
    settled: set[int] = set()
    frontier: list[tuple[float, int]] = [(0.0, source)]
    while frontier:
        distance, node = heapq.heappop(frontier)
        if node in settled:
            continue
        if node == target:
            break
        settled.add(node)
        for neighbour in store.successors(node):
            candidate = distance + weight_of(node, neighbour)
            if candidate < distances.get(neighbour, float("inf")):
                distances[neighbour] = candidate
                parents[neighbour] = node
                heapq.heappush(frontier, (candidate, neighbour))
    if target not in distances:
        return None
    path = [target]
    while path[-1] != source:
        path.append(parents[path[-1]])
    path.reverse()
    return path


def sssp_from_sources(
    store: DynamicGraphStore, sources: Iterable[int], weight: Optional[WeightFunction] = None
) -> dict[int, dict[int, float]]:
    """Run Dijkstra from every source; return ``source -> distances`` maps.

    The paper uses the 10 nodes with the largest total degree on the original
    graph as sources and averages the per-source running time.
    """
    return {source: dijkstra(store, source, weight) for source in sources}
