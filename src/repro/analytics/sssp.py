"""Single-Source Shortest Paths via Dijkstra's algorithm (Section V-E2).

The paper runs Dijkstra from the ten highest-total-degree nodes of the
original graph over the subgraph induced by the top-degree nodes.  The
datasets are unweighted, so every edge has unit length unless the caller
supplies a weight function; the kernel's cost is dominated by edge/successor
queries against the store, which is what the experiment compares.

Dijkstra's settle order is priority-driven, so unlike BFS it cannot be made
level-synchronous without changing its semantics.  Instead the kernel keeps
the exact textbook loop and *prefetches*: whenever a settled node's adjacency
is missing from the local cache, one batched ``successors_many`` call fetches
it together with every other unsettled node currently waiting in the heap.
The relaxation order -- and therefore every distance and parent -- is
byte-identical to the per-node version, but the store sees a few frontier-
sized batches instead of one successor query per settled node.
"""

from __future__ import annotations

import heapq
from typing import Callable, Iterable, Optional

from ..interfaces import DynamicGraphStore
from .engine import TraversalEngine, ensure_engine

#: Edge-weight callback type: ``weight(u, v) -> float``.
WeightFunction = Callable[[int, int], float]


def _prefetch(engine: TraversalEngine, adjacency: dict[int, list[int]],
              node: int, frontier: list[tuple[float, int]], settled: set[int]) -> None:
    """Fetch ``node``'s successors plus those of every pending heap entry.

    One batched expansion covers the node being settled and all unsettled,
    not-yet-cached nodes in the heap -- the nodes most likely to be settled
    next -- so subsequent iterations are usually answered from the cache.
    """
    pending = dict.fromkeys([node] + [
        entry for _, entry in frontier
        if entry not in settled and entry not in adjacency
    ])
    adjacency.update(engine.expand(pending))


def dijkstra(
    store: DynamicGraphStore,
    source: int,
    weight: Optional[WeightFunction] = None,
    *,
    engine: Optional[TraversalEngine] = None,
) -> dict[int, float]:
    """Shortest-path distances from ``source`` to every reachable node."""
    engine = ensure_engine(store, engine)
    weight_of = weight if weight is not None else (lambda u, v: 1.0)
    distances: dict[int, float] = {source: 0.0}
    settled: set[int] = set()
    frontier: list[tuple[float, int]] = [(0.0, source)]
    adjacency: dict[int, list[int]] = {}
    while frontier:
        distance, node = heapq.heappop(frontier)
        if node in settled:
            continue
        settled.add(node)
        if node not in adjacency:
            _prefetch(engine, adjacency, node, frontier, settled)
        for neighbour in adjacency[node]:
            candidate = distance + weight_of(node, neighbour)
            if candidate < distances.get(neighbour, float("inf")):
                distances[neighbour] = candidate
                heapq.heappush(frontier, (candidate, neighbour))
    return distances


def shortest_path(
    store: DynamicGraphStore,
    source: int,
    target: int,
    weight: Optional[WeightFunction] = None,
    *,
    engine: Optional[TraversalEngine] = None,
) -> Optional[list[int]]:
    """One shortest path from ``source`` to ``target`` (``None`` if unreachable)."""
    engine = ensure_engine(store, engine)
    weight_of = weight if weight is not None else (lambda u, v: 1.0)
    distances: dict[int, float] = {source: 0.0}
    parents: dict[int, int] = {}
    settled: set[int] = set()
    frontier: list[tuple[float, int]] = [(0.0, source)]
    adjacency: dict[int, list[int]] = {}
    while frontier:
        distance, node = heapq.heappop(frontier)
        if node in settled:
            continue
        if node == target:
            break
        settled.add(node)
        if node not in adjacency:
            _prefetch(engine, adjacency, node, frontier, settled)
        for neighbour in adjacency[node]:
            candidate = distance + weight_of(node, neighbour)
            if candidate < distances.get(neighbour, float("inf")):
                distances[neighbour] = candidate
                parents[neighbour] = node
                heapq.heappush(frontier, (candidate, neighbour))
    if target not in distances:
        return None
    path = [target]
    while path[-1] != source:
        path.append(parents[path[-1]])
    path.reverse()
    return path


def sssp_from_sources(
    store: DynamicGraphStore, sources: Iterable[int],
    weight: Optional[WeightFunction] = None,
    *,
    engine: Optional[TraversalEngine] = None,
) -> dict[int, dict[int, float]]:
    """Run Dijkstra from every source; return ``source -> distances`` maps.

    The paper uses the 10 nodes with the largest total degree on the original
    graph as sources and averages the per-source running time.  All runs
    share one engine, so the batch accounting covers the whole sweep.
    """
    engine = ensure_engine(store, engine)
    return {
        source: dijkstra(store, source, weight, engine=engine) for source in sources
    }
