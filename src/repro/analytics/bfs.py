"""Breadth-First Search over a dynamic graph store (Section V-E1).

The paper's BFS experiment performs a traversal from each of the
highest-total-degree nodes and returns the visited nodes in traversal order
together with their count.  The kernel only relies on the store's successor
query, which is the operation whose locality the experiment is designed to
stress.

The traversal is *level-synchronous*: each BFS level is expanded with one
batched ``successors_many`` call through the
:class:`~repro.analytics.engine.TraversalEngine`, so a sharded store answers
a whole frontier per round-trip.  Processing the frontier in discovery order
and appending neighbours in successor-list order reproduces the classic
FIFO-queue visitation order exactly.
"""

from __future__ import annotations

from typing import Iterable, Optional

from ..interfaces import DynamicGraphStore
from .engine import TraversalEngine, ensure_engine
from .subgraph import top_degree_nodes


def bfs(store: DynamicGraphStore, source: int, *,
        engine: Optional[TraversalEngine] = None) -> list[int]:
    """Return the nodes reachable from ``source`` in BFS visitation order."""
    engine = ensure_engine(store, engine)
    order: list[int] = [source]
    visited: set[int] = {source}
    frontier: list[int] = [source]
    while frontier:
        adjacency = engine.expand(frontier)
        next_frontier: list[int] = []
        for node in frontier:
            for neighbour in adjacency[node]:
                if neighbour not in visited:
                    visited.add(neighbour)
                    order.append(neighbour)
                    next_frontier.append(neighbour)
        frontier = next_frontier
    return order


def bfs_levels(store: DynamicGraphStore, source: int, *,
               engine: Optional[TraversalEngine] = None) -> dict[int, int]:
    """Return the BFS depth of every node reachable from ``source``."""
    engine = ensure_engine(store, engine)
    levels: dict[int, int] = {source: 0}
    frontier: list[int] = [source]
    depth = 0
    while frontier:
        adjacency = engine.expand(frontier)
        depth += 1
        next_frontier: list[int] = []
        for node in frontier:
            for neighbour in adjacency[node]:
                if neighbour not in levels:
                    levels[neighbour] = depth
                    next_frontier.append(neighbour)
        frontier = next_frontier
    return levels


def bfs_from_top_nodes(
    store: DynamicGraphStore, roots: Iterable[int] | None = None, root_count: int = 10, *,
    engine: Optional[TraversalEngine] = None,
) -> list[tuple[int, int]]:
    """Run BFS from each root and report ``(root, reachable_count)`` pairs.

    When ``roots`` is not given, the ``root_count`` nodes with the largest
    total degree are used, matching the paper's methodology.

    Methodology note: the root-selection degrees are computed with **one**
    batched pass -- a single ``successors_many`` fan-out over the store's
    source nodes (see :func:`~repro.analytics.subgraph.total_degrees`) --
    rather than a per-node successor scan, so picking the roots costs one
    batch regardless of graph size.  The traversals themselves share this
    function's engine, one batched expansion per BFS level.
    """
    engine = ensure_engine(store, engine)
    if roots is not None:
        selected = list(roots)
    else:
        selected = top_degree_nodes(store, root_count, engine=engine)
    return [(root, len(bfs(store, root, engine=engine))) for root in selected]
