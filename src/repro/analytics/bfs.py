"""Breadth-First Search over a dynamic graph store (Section V-E1).

The paper's BFS experiment performs a traversal from each of the
highest-total-degree nodes and returns the visited nodes in traversal order
together with their count.  The kernel only relies on the store's successor
query, which is the operation whose locality the experiment is designed to
stress.
"""

from __future__ import annotations

from collections import deque
from typing import Iterable

from ..interfaces import DynamicGraphStore
from .subgraph import top_degree_nodes


def bfs(store: DynamicGraphStore, source: int) -> list[int]:
    """Return the nodes reachable from ``source`` in BFS visitation order."""
    order: list[int] = [source]
    visited: set[int] = {source}
    queue: deque[int] = deque([source])
    while queue:
        node = queue.popleft()
        for neighbour in store.successors(node):
            if neighbour not in visited:
                visited.add(neighbour)
                order.append(neighbour)
                queue.append(neighbour)
    return order


def bfs_levels(store: DynamicGraphStore, source: int) -> dict[int, int]:
    """Return the BFS depth of every node reachable from ``source``."""
    levels: dict[int, int] = {source: 0}
    queue: deque[int] = deque([source])
    while queue:
        node = queue.popleft()
        depth = levels[node]
        for neighbour in store.successors(node):
            if neighbour not in levels:
                levels[neighbour] = depth + 1
                queue.append(neighbour)
    return levels


def bfs_from_top_nodes(
    store: DynamicGraphStore, roots: Iterable[int] | None = None, root_count: int = 10
) -> list[tuple[int, int]]:
    """Run BFS from each root and report ``(root, reachable_count)`` pairs.

    When ``roots`` is not given, the ``root_count`` nodes with the largest
    total degree are used, matching the paper's methodology.
    """
    selected = list(roots) if roots is not None else top_degree_nodes(store, root_count)
    return [(root, len(bfs(store, root))) for root in selected]
