"""Connected components (Section V-E4).

The paper extracts the subgraph induced by the highest-total-degree nodes and
"runs the Tarjan algorithm ... and returns the connected components and their
number".  Two kernels are provided:

* :func:`strongly_connected_components` -- an iterative Tarjan SCC over the
  directed subgraph (the algorithm the paper names);
* :func:`weakly_connected_components` -- union-find over the undirected view,
  handy for tests and for datasets where weak connectivity is the more
  natural notion.

Both materialise the adjacency with **one** batched ``successors_many`` call
through the :class:`~repro.analytics.engine.TraversalEngine` and run the
graph algorithm on the resulting dictionaries, so the store-dependent phase
is a single batch instead of a successor query per node visit (Tarjan's
iterative form previously re-queried a node's successors at every resume).
"""

from __future__ import annotations

from typing import Optional

from ..interfaces import DynamicGraphStore
from .engine import TraversalEngine, ensure_engine


def strongly_connected_components(
    store: DynamicGraphStore, *, engine: Optional[TraversalEngine] = None,
) -> list[list[int]]:
    """Tarjan's strongly connected components, implemented iteratively."""
    engine = ensure_engine(store, engine)
    index_of: dict[int, int] = {}
    lowlink: dict[int, int] = {}
    on_stack: set[int] = set()
    stack: list[int] = []
    components: list[list[int]] = []
    next_index = 0

    all_nodes = list(store.nodes())
    adjacency = engine.materialize(all_nodes)
    for root in all_nodes:
        if root in index_of:
            continue
        # Each work item is (node, iterator position over its successors).
        work: list[tuple[int, int]] = [(root, 0)]
        while work:
            node, position = work.pop()
            if position == 0:
                index_of[node] = next_index
                lowlink[node] = next_index
                next_index += 1
                stack.append(node)
                on_stack.add(node)
            successors = adjacency[node]
            advanced = False
            for offset in range(position, len(successors)):
                neighbour = successors[offset]
                if neighbour not in index_of:
                    work.append((node, offset + 1))
                    work.append((neighbour, 0))
                    advanced = True
                    break
                if neighbour in on_stack:
                    lowlink[node] = min(lowlink[node], index_of[neighbour])
            if advanced:
                continue
            if lowlink[node] == index_of[node]:
                component: list[int] = []
                while True:
                    member = stack.pop()
                    on_stack.discard(member)
                    component.append(member)
                    if member == node:
                        break
                components.append(component)
            if work:
                parent = work[-1][0]
                lowlink[parent] = min(lowlink[parent], lowlink[node])
    return components


def weakly_connected_components(
    store: DynamicGraphStore, *, engine: Optional[TraversalEngine] = None,
) -> list[list[int]]:
    """Connected components of the undirected view, via union-find."""
    engine = ensure_engine(store, engine)
    parent: dict[int, int] = {}

    def find(node: int) -> int:
        root = node
        while parent[root] != root:
            root = parent[root]
        while parent[node] != root:
            parent[node], node = root, parent[node]
        return root

    def union(a: int, b: int) -> None:
        root_a, root_b = find(a), find(b)
        if root_a != root_b:
            parent[root_b] = root_a

    all_nodes = list(store.nodes())
    adjacency = engine.materialize(all_nodes)
    for node in all_nodes:
        parent.setdefault(node, node)
    for u in all_nodes:
        for v in adjacency[u]:
            union(u, v)

    groups: dict[int, list[int]] = {}
    for node in parent:
        groups.setdefault(find(node), []).append(node)
    return list(groups.values())


def count_components(
    store: DynamicGraphStore, strongly: bool = True, *,
    engine: Optional[TraversalEngine] = None,
) -> int:
    """Number of (strongly or weakly) connected components."""
    if strongly:
        return len(strongly_connected_components(store, engine=engine))
    return len(weakly_connected_components(store, engine=engine))
