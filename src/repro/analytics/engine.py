"""Frontier-batch traversal engine shared by every analytics kernel.

The paper's Section V-E kernels exercise a store through two operations:
successor queries (frontier expansion) and edge queries (closure checks).
Driving those one call per node -- ``store.successors(u)`` inside the hot
loop -- forfeits the batch layer that every :class:`~repro.interfaces.\
DynamicGraphStore` now exposes and keeps the sharded front-end serialized,
because a single-node call can only ever touch one shard.

:class:`TraversalEngine` is the single place the analytics layer talks to a
store in bulk:

* :meth:`expand` turns a *frontier* (any iterable of nodes) into a
  ``{node: successors}`` map with **one** ``successors_many`` call, so a
  sharded store sees whole per-shard groups and a threaded executor can fan
  the groups out concurrently.
* :meth:`materialize` is the one-pass batched adjacency materializer used by
  the iterate-on-extracted-subgraph kernels (PageRank, betweenness
  centrality, triangles, LCC): it fetches the successor lists of every node
  of interest in a single batch and lets the iteration phase run on plain
  dictionaries.
* :meth:`probe_edges` answers a batch of edge-membership probes with one
  ``has_edges`` call (triangle counting and LCC pair checks).

The engine also keeps *batch-call accounting* (:attr:`expand_calls`,
:attr:`probe_calls`, :attr:`nodes_expanded`, :attr:`edges_probed`), which the
benchmark harness reports alongside the modelled memory accesses: the paper's
figures argue about accesses per operation, and the batch counts show how few
store round-trips the same traversal now needs.

Every kernel accepts an optional ``engine`` keyword so callers (the harness,
multi-root drivers) can share one engine across invocations and read a single
set of counters; when omitted, the kernel builds a private engine around the
store it was given.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Sequence, Tuple

from ..interfaces import DynamicGraphStore


class TraversalEngine:
    """Batch-first view of a :class:`~repro.interfaces.DynamicGraphStore`.

    Args:
        store: The store every batch is issued against.

    Attributes:
        expand_calls: Number of ``successors_many`` batches issued.
        nodes_expanded: Total distinct nodes across those batches.
        probe_calls: Number of ``has_edges`` batches issued.
        edges_probed: Total edge probes across those batches.

    Example:
        >>> from repro import CuckooGraph
        >>> graph = CuckooGraph()
        >>> graph.insert_edges([(1, 2), (1, 3), (2, 3)])
        3
        >>> engine = TraversalEngine(graph)
        >>> {u: sorted(vs) for u, vs in engine.expand([1, 2]).items()}
        {1: [2, 3], 2: [3]}
        >>> engine.expand_calls
        1
    """

    def __init__(self, store: DynamicGraphStore):
        self.store = store
        self.expand_calls = 0
        self.nodes_expanded = 0
        self.probe_calls = 0
        self.edges_probed = 0

    # ------------------------------------------------------------------ #
    # Batched store operations
    # ------------------------------------------------------------------ #

    def expand(self, frontier: Iterable[int]) -> Dict[int, List[int]]:
        """Successor lists of a whole frontier in one batched store call.

        The result maps each distinct frontier node (first-occurrence order)
        to its successor list -- empty for nodes the store does not know --
        exactly as ``successors_many`` guarantees.  An empty frontier costs
        nothing and returns ``{}``.
        """
        nodes = list(dict.fromkeys(frontier))
        if not nodes:
            return {}
        self.expand_calls += 1
        self.nodes_expanded += len(nodes)
        return self.store.successors_many(nodes)

    def materialize(self, nodes: Optional[Iterable[int]] = None) -> Dict[int, List[int]]:
        """One-pass batched adjacency for the iteration-heavy kernels.

        Fetches the successor lists of ``nodes`` (default: every node of the
        store) in a single ``successors_many`` batch.  PageRank, betweenness
        centrality, triangle counting and LCC call this once and then iterate
        on the returned dictionary, so the store-dependent phase of those
        kernels is exactly one batch.
        """
        if nodes is None:
            nodes = self.store.nodes()
        return self.expand(nodes)

    #: Probe-batch chunk size: large enough to amortize the batch round-trip,
    #: small enough that a chunk of (u, v) tuples stays a few hundred KB even
    #: on hub-heavy graphs (the probe universe is quadratic in degree).
    PROBE_CHUNK = 8192

    def probe_edges(self, pairs: Sequence[Tuple[int, int]]) -> List[bool]:
        """Edge membership of a batch of ``(u, v)`` probes, in input order.

        Duplicates are answered per position (the triangle methodology counts
        every probe).  An empty batch costs nothing.  For probe universes
        that are quadratic in degree (triangles, LCC) use
        :meth:`count_edges`, which never materialises the whole batch.
        """
        if not pairs:
            return []
        self.probe_calls += 1
        self.edges_probed += len(pairs)
        return self.store.has_edges(pairs)

    def count_edges(self, pairs: Iterable[Tuple[int, int]],
                    chunk_size: int = PROBE_CHUNK) -> int:
        """Number of probes in ``pairs`` that hit a stored edge.

        Consumes the probe stream lazily in chunks of ``chunk_size``, so the
        memory high-water mark is one chunk regardless of how many probes a
        hub's neighbourhood generates, while the store still sees large
        batches.  Duplicates count per occurrence, exactly like a streamed
        per-probe ``has_edge`` loop.
        """
        hits = 0
        chunk: list[Tuple[int, int]] = []
        append = chunk.append
        for pair in pairs:
            append(pair)
            if len(chunk) >= chunk_size:
                hits += sum(self.probe_edges(chunk))
                chunk = []
                append = chunk.append
        if chunk:
            hits += sum(self.probe_edges(chunk))
        return hits

    # ------------------------------------------------------------------ #
    # Accounting
    # ------------------------------------------------------------------ #

    @property
    def batch_calls(self) -> int:
        """Total batched store calls issued (expansions plus edge probes)."""
        return self.expand_calls + self.probe_calls

    def reset_batch_counters(self) -> None:
        """Zero every batch counter in place."""
        self.expand_calls = 0
        self.nodes_expanded = 0
        self.probe_calls = 0
        self.edges_probed = 0

    def snapshot(self) -> Dict[str, int]:
        """Plain-dict copy of the batch counters (for reports and tests)."""
        return {
            "expand_calls": self.expand_calls,
            "nodes_expanded": self.nodes_expanded,
            "probe_calls": self.probe_calls,
            "edges_probed": self.edges_probed,
            "batch_calls": self.batch_calls,
        }


def ensure_engine(store: DynamicGraphStore,
                  engine: Optional[TraversalEngine]) -> TraversalEngine:
    """The engine a kernel should use: the caller's, or a private one.

    Kernels call this with their ``engine`` keyword; a supplied engine must
    wrap the same store the kernel was handed, otherwise batches would be
    answered by a different graph than the one being analysed.
    """
    if engine is None:
        return TraversalEngine(store)
    if engine.store is not store:
        raise ValueError("engine wraps a different store than the kernel was given")
    return engine
