"""Graph analytics kernels used by the paper's evaluation (Section V-E).

Every kernel operates on any :class:`~repro.interfaces.DynamicGraphStore`
through its successor / edge queries, so the same code path is timed for
CuckooGraph and for every baseline -- exactly the paper's methodology.

All kernels are *frontier-batched*: they drive the store through the shared
:class:`~repro.analytics.engine.TraversalEngine`, which expands whole
frontiers with one ``successors_many`` call and answers edge probes with one
``has_edges`` call, so batch-capable stores (notably the sharded front-end)
see per-shard groups instead of single-node round-trips.  Outputs are
byte-identical to the historical per-node implementations (see
``tests/analytics/test_engine_parity.py``).
"""

from .betweenness import betweenness_centrality, top_betweenness
from .bfs import bfs, bfs_from_top_nodes, bfs_levels
from .engine import TraversalEngine, ensure_engine
from .incremental import (
    AnalyticsFollower,
    CachedTraversalEngine,
    MaterializationCache,
    canonical_components,
    canonical_pagerank,
    materialize_adjacency,
)
from .components import (
    count_components,
    strongly_connected_components,
    weakly_connected_components,
)
from .lcc import (
    all_local_clustering_coefficients,
    average_clustering,
    local_clustering_coefficient,
)
from .pagerank import pagerank, top_ranked
from .sssp import dijkstra, shortest_path, sssp_from_sources
from .subgraph import (
    extract_subgraph,
    induced_edges,
    top_degree_nodes,
    top_degree_subgraph,
    total_degrees,
)
from .triangles import count_triangles, count_triangles_of_node, total_directed_triangles

__all__ = [
    "AnalyticsFollower",
    "CachedTraversalEngine",
    "MaterializationCache",
    "TraversalEngine",
    "all_local_clustering_coefficients",
    "average_clustering",
    "betweenness_centrality",
    "bfs",
    "ensure_engine",
    "bfs_from_top_nodes",
    "bfs_levels",
    "canonical_components",
    "canonical_pagerank",
    "materialize_adjacency",
    "count_components",
    "count_triangles",
    "count_triangles_of_node",
    "dijkstra",
    "extract_subgraph",
    "induced_edges",
    "local_clustering_coefficient",
    "pagerank",
    "shortest_path",
    "sssp_from_sources",
    "strongly_connected_components",
    "top_betweenness",
    "top_degree_nodes",
    "top_degree_subgraph",
    "top_ranked",
    "total_degrees",
    "total_directed_triangles",
    "weakly_connected_components",
]
