"""Packed Memory Array (PMA).

The PMA is the substrate behind PCSR/VCSR/Teseo: a sorted array with empty
slots interspersed so that insertions and deletions only shift a small
window of elements.  The array is viewed as a full binary tree of segments;
when a segment's density leaves the allowed range, the smallest enclosing
window whose density is acceptable is rebalanced (its elements are spread out
evenly), and the whole array doubles or halves when even the root window is
out of range.

This implementation follows the classic design of Bender & Hu ("An adaptive
packed-memory array") with the standard density thresholds, storing arbitrary
comparable keys.
"""

from __future__ import annotations

import math
from typing import Iterator, Optional

#: Marker for an empty PMA slot.
_EMPTY = None


class PackedMemoryArray:
    """A sorted dynamic array with interspersed gaps.

    Args:
        segment_capacity: Number of slots per leaf segment (power of two).
        root_density_range: (lower, upper) density bounds at the root.
        leaf_density_range: (lower, upper) density bounds at the leaves.
    """

    def __init__(
        self,
        segment_capacity: int = 8,
        root_density_range: tuple[float, float] = (0.3, 0.7),
        leaf_density_range: tuple[float, float] = (0.1, 0.9),
    ):
        if segment_capacity < 2 or segment_capacity & (segment_capacity - 1):
            raise ValueError("segment_capacity must be a power of two >= 2")
        self.segment_capacity = segment_capacity
        self.root_density_range = root_density_range
        self.leaf_density_range = leaf_density_range
        self._slots: list = [_EMPTY] * segment_capacity
        self._size = 0
        self.rebalances = 0
        self.resizes = 0

    # ------------------------------------------------------------------ #
    # Introspection
    # ------------------------------------------------------------------ #

    def __len__(self) -> int:
        return self._size

    @property
    def capacity(self) -> int:
        """Total number of slots currently allocated."""
        return len(self._slots)

    @property
    def density(self) -> float:
        """Overall fill fraction."""
        return self._size / len(self._slots)

    def __contains__(self, key) -> bool:
        return self._find_slot(key) is not None

    def __iter__(self) -> Iterator:
        for value in self._slots:
            if value is not _EMPTY:
                yield value

    def items(self) -> list:
        """Return the stored keys in sorted order."""
        return list(self)

    # ------------------------------------------------------------------ #
    # Core operations
    # ------------------------------------------------------------------ #

    def insert(self, key) -> bool:
        """Insert ``key`` keeping sorted order; return ``False`` if present."""
        if key in self:
            return False
        position = self._position_for(key)
        self._insert_at(position, key)
        self._size += 1
        self._rebalance_around(position)
        return True

    def delete(self, key) -> bool:
        """Remove ``key``; return ``True`` if it was present."""
        slot = self._find_slot(key)
        if slot is None:
            return False
        self._slots[slot] = _EMPTY
        self._size -= 1
        self._rebalance_around(slot)
        return True

    def range(self, low, high) -> Iterator:
        """Iterate over stored keys with ``low <= key < high``."""
        for value in self:
            if value >= high:
                break
            if value >= low:
                yield value

    # ------------------------------------------------------------------ #
    # Memory model
    # ------------------------------------------------------------------ #

    def modelled_bytes(self, bytes_per_slot: int) -> int:
        """Every allocated slot costs ``bytes_per_slot`` (gaps included)."""
        return len(self._slots) * bytes_per_slot

    # ------------------------------------------------------------------ #
    # Internals
    # ------------------------------------------------------------------ #

    def _num_segments(self) -> int:
        return len(self._slots) // self.segment_capacity

    def _tree_height(self) -> int:
        return max(1, int(math.log2(self._num_segments())) + 1)

    def _density_bounds(self, level: int, height: int) -> tuple[float, float]:
        """Interpolate leaf and root density bounds for a window at ``level``."""
        leaf_low, leaf_high = self.leaf_density_range
        root_low, root_high = self.root_density_range
        if height <= 1:
            return root_low, root_high
        fraction = level / (height - 1)
        low = leaf_low + (root_low - leaf_low) * fraction
        high = leaf_high + (root_high - leaf_high) * fraction
        return low, high

    def _position_for(self, key) -> int:
        """Slot index before which ``key`` should be placed to keep order."""
        best = len(self._slots)
        for index, value in enumerate(self._slots):
            if value is not _EMPTY and value >= key:
                best = index
                break
        return best

    def _find_slot(self, key) -> Optional[int]:
        for index, value in enumerate(self._slots):
            if value is not _EMPTY and value == key:
                return index
        return None

    def _insert_at(self, position: int, key) -> None:
        """Place ``key`` at ``position``, shifting towards the nearest gap."""
        # Look right for a gap, then left.
        right_gap = None
        for index in range(position, len(self._slots)):
            if self._slots[index] is _EMPTY:
                right_gap = index
                break
        if right_gap is not None:
            for index in range(right_gap, position, -1):
                self._slots[index] = self._slots[index - 1]
            self._slots[position] = key
            return
        left_gap = None
        for index in range(min(position, len(self._slots) - 1), -1, -1):
            if self._slots[index] is _EMPTY:
                left_gap = index
                break
        if left_gap is None:
            # Completely full; grow and retry.
            self._resize(len(self._slots) * 2)
            self._insert_at(self._position_for(key), key)
            return
        for index in range(left_gap, position - 1):
            self._slots[index] = self._slots[index + 1]
        self._slots[position - 1] = key

    def _rebalance_around(self, position: int) -> None:
        """Rebalance the smallest window around ``position`` within density bounds."""
        height = self._tree_height()
        window = self.segment_capacity
        start = (position // window) * window
        level = 0
        while True:
            occupied = sum(
                1 for value in self._slots[start:start + window] if value is not _EMPTY
            )
            low, high = self._density_bounds(level, height)
            density = occupied / window
            if low <= density <= high:
                return
            if window >= len(self._slots):
                break
            window *= 2
            start = (start // window) * window
            level += 1
        # Root window out of bounds: resize the whole array.
        if self.density > self.root_density_range[1]:
            self._resize(len(self._slots) * 2)
        elif self.density < self.root_density_range[0] and len(self._slots) > self.segment_capacity:
            self._resize(max(self.segment_capacity, len(self._slots) // 2))
        else:
            self._spread(0, len(self._slots))

    def _resize(self, new_capacity: int) -> None:
        values = list(self)
        new_capacity = max(new_capacity, self.segment_capacity)
        while new_capacity < len(values):
            new_capacity *= 2
        self._slots = [_EMPTY] * new_capacity
        self._size = 0
        self._spread_values(values, 0, new_capacity)
        self._size = len(values)
        self.resizes += 1

    def _spread(self, start: int, length: int) -> None:
        values = [v for v in self._slots[start:start + length] if v is not _EMPTY]
        self._spread_values(values, start, length)
        self.rebalances += 1

    def _spread_values(self, values: list, start: int, length: int) -> None:
        for index in range(start, start + length):
            self._slots[index] = _EMPTY
        if not values:
            return
        step = length / len(values)
        for rank, value in enumerate(values):
            self._slots[start + min(length - 1, int(rank * step))] = value
