"""LiveGraph-style store (Zhu et al., PVLDB 2020) -- simplified re-implementation.

LiveGraph stores each node's edges in a *Transactional Edge Log* (TEL): an
append-only log of versioned entries living in a per-node block, with nodes
tracked by *Vertex Blocks*.  Insertions and deletions append log entries in
order; readers scan the log and keep the newest entry per neighbour.  When a
log grows past its block capacity it is compacted (dead entries dropped) and,
if still too large, the block doubles -- mirroring LiveGraph's block upgrade.

The re-implementation keeps the structural costs that matter for the paper's
comparison: O(1) amortized appends for insertion, O(degree) scans for edge
queries, and a memory footprint dominated by pre-allocated blocks plus
per-entry version metadata.
"""

from __future__ import annotations

from typing import Iterator, Optional

from ..interfaces import DynamicGraphStore
from ..memmodel.layout import ALLOC_OVERHEAD_BYTES, ID_BYTES, POINTER_BYTES, WORD_BYTES

#: Log-entry operation tags.
_OP_INSERT = 1
_OP_DELETE = 0

#: Initial TEL block capacity (log entries) for a new node.
_INITIAL_BLOCK_CAPACITY = 8


class _TransactionalEdgeLog:
    """Append-only edge log for a single source node."""

    __slots__ = ("capacity", "entries", "live_count")

    def __init__(self, capacity: int = _INITIAL_BLOCK_CAPACITY):
        self.capacity = capacity
        self.entries: list[tuple[int, int, int]] = []  # (neighbour, op, version)
        self.live_count = 0

    def append(self, neighbour: int, op: int, version: int) -> None:
        self.entries.append((neighbour, op, version))
        if len(self.entries) > self.capacity:
            self.compact()

    def compact(self) -> None:
        """Drop superseded entries; double the block if still over capacity."""
        latest: dict[int, tuple[int, int, int]] = {}
        for entry in self.entries:
            latest[entry[0]] = entry
        self.entries = sorted(
            (entry for entry in latest.values() if entry[1] == _OP_INSERT),
            key=lambda entry: entry[2],
        )
        while len(self.entries) > self.capacity:
            self.capacity *= 2

    def latest_op(self, neighbour: int) -> Optional[int]:
        """Newest operation recorded for ``neighbour`` (scan from the tail)."""
        for recorded, op, _ in reversed(self.entries):
            if recorded == neighbour:
                return op
        return None

    def live_neighbours(self) -> list[int]:
        latest: dict[int, int] = {}
        for neighbour, op, _ in self.entries:
            latest[neighbour] = op
        return [neighbour for neighbour, op in latest.items() if op == _OP_INSERT]


class LiveGraphStore(DynamicGraphStore):
    """Directed graph stored as per-node Transactional Edge Logs."""

    name = "LiveGraph"

    def __init__(self):
        self._vertex_blocks: dict[int, _TransactionalEdgeLog] = {}
        self._version = 0
        self._num_edges = 0
        self.accesses = 0

    # ------------------------------------------------------------------ #
    # Modelled memory accesses
    # ------------------------------------------------------------------ #

    def _scan_cost(self, log: _TransactionalEdgeLog) -> int:
        """Cache lines touched by a tail-to-head TEL scan (entries are contiguous)."""
        return 1 + (len(log.entries) + 3) // 4

    # ------------------------------------------------------------------ #
    # DynamicGraphStore API
    # ------------------------------------------------------------------ #

    def insert_edge(self, u: int, v: int) -> bool:
        log = self._vertex_blocks.get(u)
        self.accesses += 1  # vertex block lookup
        if log is None:
            log = _TransactionalEdgeLog()
            self._vertex_blocks[u] = log
        else:
            self.accesses += self._scan_cost(log)
            if log.latest_op(v) == _OP_INSERT:
                return False
        self._version += 1
        log.append(v, _OP_INSERT, self._version)
        self._num_edges += 1
        self.accesses += 1
        return True

    def has_edge(self, u: int, v: int) -> bool:
        log = self._vertex_blocks.get(u)
        self.accesses += 1
        if log is None:
            return False
        self.accesses += self._scan_cost(log)
        return log.latest_op(v) == _OP_INSERT

    def delete_edge(self, u: int, v: int) -> bool:
        log = self._vertex_blocks.get(u)
        self.accesses += 1
        if log is None:
            return False
        self.accesses += self._scan_cost(log)
        if log.latest_op(v) != _OP_INSERT:
            return False
        self._version += 1
        log.append(v, _OP_DELETE, self._version)
        self._num_edges -= 1
        self.accesses += 1
        return True

    def successors(self, u: int) -> list[int]:
        log = self._vertex_blocks.get(u)
        self.accesses += 1
        if log is None:
            return []
        self.accesses += self._scan_cost(log)
        return log.live_neighbours()

    def has_node(self, u: int) -> bool:
        return u in self._vertex_blocks

    def source_nodes(self) -> Iterator[int]:
        yield from self._vertex_blocks.keys()

    def edges(self) -> Iterator[tuple[int, int]]:
        for u, log in self._vertex_blocks.items():
            for v in log.live_neighbours():
                yield (u, v)

    @property
    def num_edges(self) -> int:
        return self._num_edges

    # ------------------------------------------------------------------ #
    # Memory model
    # ------------------------------------------------------------------ #

    def memory_bytes(self) -> int:
        """Vertex blocks plus pre-allocated TEL blocks with per-entry versions."""
        entry_bytes = ID_BYTES + WORD_BYTES + WORD_BYTES  # neighbour, op/flags, version
        total = 0
        for log in self._vertex_blocks.values():
            block_bytes = log.capacity * entry_bytes
            total += ALLOC_OVERHEAD_BYTES + POINTER_BYTES + ID_BYTES + block_bytes
        return total

    # ------------------------------------------------------------------ #
    # Maintenance
    # ------------------------------------------------------------------ #

    def compact_all(self) -> None:
        """Force-compact every TEL (the paper's periodic background step)."""
        for log in self._vertex_blocks.values():
            log.compact()
