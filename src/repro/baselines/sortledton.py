"""Sortledton-style store (Fuchs, Margan & Giceva, PVLDB 2022) -- simplified.

Sortledton keeps, for every node, a *sorted adjacency set* organised as a
sequence of fixed-capacity sorted blocks (an unrolled skip list in the
original), reachable through an *adjacency index* that maps the node to its
set.  Small neighbourhoods stay in a single block; large neighbourhoods span
several blocks that are located by binary search on their separator keys.

The re-implementation keeps the costs the paper's Table III attributes to
Sortledton: O(log |E|) edge queries (binary search inside the block run) and
O(log |E|) insertions (locate the block, insert in sorted order, split when
full), with a memory footprint of pre-allocated blocks plus per-block
pointers.
"""

from __future__ import annotations

from bisect import bisect_left, insort
from typing import Iterator

from ..interfaces import DynamicGraphStore
from ..memmodel.layout import ALLOC_OVERHEAD_BYTES, ID_BYTES, POINTER_BYTES

#: Capacity of one adjacency-set block.
_BLOCK_CAPACITY = 64


class _SortedAdjacencySet:
    """Sorted neighbour container made of fixed-capacity sorted blocks."""

    __slots__ = ("blocks",)

    def __init__(self):
        self.blocks: list[list[int]] = [[]]

    def __len__(self) -> int:
        return sum(len(block) for block in self.blocks)

    def _locate_block(self, v: int) -> int:
        """Index of the block whose key range should contain ``v``."""
        low, high = 0, len(self.blocks) - 1
        while low < high:
            mid = (low + high) // 2
            block = self.blocks[mid]
            if block and block[-1] < v:
                low = mid + 1
            else:
                high = mid
        return low

    def insert(self, v: int) -> bool:
        index = self._locate_block(v)
        block = self.blocks[index]
        position = bisect_left(block, v)
        if position < len(block) and block[position] == v:
            return False
        insort(block, v)
        if len(block) > _BLOCK_CAPACITY:
            half = len(block) // 2
            self.blocks[index:index + 1] = [block[:half], block[half:]]
        return True

    def contains(self, v: int) -> bool:
        block = self.blocks[self._locate_block(v)]
        position = bisect_left(block, v)
        return position < len(block) and block[position] == v

    def delete(self, v: int) -> bool:
        index = self._locate_block(v)
        block = self.blocks[index]
        position = bisect_left(block, v)
        if position >= len(block) or block[position] != v:
            return False
        del block[position]
        if not block and len(self.blocks) > 1:
            del self.blocks[index]
        return True

    def neighbours(self) -> list[int]:
        result: list[int] = []
        for block in self.blocks:
            result.extend(block)
        return result


class SortledtonStore(DynamicGraphStore):
    """Directed graph stored as sorted adjacency sets behind an adjacency index."""

    name = "Sortledton"

    def __init__(self):
        self._index: dict[int, _SortedAdjacencySet] = {}
        self._num_edges = 0
        self.accesses = 0

    # ------------------------------------------------------------------ #
    # Modelled memory accesses
    # ------------------------------------------------------------------ #

    def _locate_cost(self, adjacency: _SortedAdjacencySet) -> int:
        """Index lookup + block-run binary search + touching one sorted block."""
        block_search = max(1, len(adjacency.blocks).bit_length())
        within_block = 2  # binary search inside a 512-byte block (few cache lines)
        return 1 + block_search + within_block

    # ------------------------------------------------------------------ #
    # DynamicGraphStore API
    # ------------------------------------------------------------------ #

    def insert_edge(self, u: int, v: int) -> bool:
        adjacency = self._index.get(u)
        self.accesses += 1
        if adjacency is None:
            adjacency = _SortedAdjacencySet()
            self._index[u] = adjacency
        self.accesses += self._locate_cost(adjacency)
        if not adjacency.insert(v):
            return False
        # Sorted insert shifts about half of one block (64 ids, 8 cache lines).
        self.accesses += (_BLOCK_CAPACITY * 8 // 64) // 2
        self._num_edges += 1
        return True

    def has_edge(self, u: int, v: int) -> bool:
        adjacency = self._index.get(u)
        self.accesses += 1
        if adjacency is None:
            return False
        self.accesses += self._locate_cost(adjacency)
        return adjacency.contains(v)

    def delete_edge(self, u: int, v: int) -> bool:
        adjacency = self._index.get(u)
        self.accesses += 1
        if adjacency is None:
            return False
        self.accesses += self._locate_cost(adjacency)
        if not adjacency.delete(v):
            return False
        self.accesses += (_BLOCK_CAPACITY * 8 // 64) // 2
        self._num_edges -= 1
        if len(adjacency) == 0:
            del self._index[u]
        return True

    def successors(self, u: int) -> list[int]:
        adjacency = self._index.get(u)
        self.accesses += 1
        if adjacency is None:
            return []
        # One access per block plus the index entry; blocks are contiguous runs.
        self.accesses += len(adjacency.blocks) * ((_BLOCK_CAPACITY * 8) // 64)
        return adjacency.neighbours()

    def out_degree(self, u: int) -> int:
        adjacency = self._index.get(u)
        return len(adjacency) if adjacency is not None else 0

    def has_node(self, u: int) -> bool:
        return u in self._index

    def source_nodes(self) -> Iterator[int]:
        yield from self._index.keys()

    def edges(self) -> Iterator[tuple[int, int]]:
        for u, adjacency in self._index.items():
            for v in adjacency.neighbours():
                yield (u, v)

    @property
    def num_edges(self) -> int:
        return self._num_edges

    # ------------------------------------------------------------------ #
    # Memory model
    # ------------------------------------------------------------------ #

    def memory_bytes(self) -> int:
        """Adjacency index entries plus pre-allocated sorted blocks."""
        total = 0
        for adjacency in self._index.values():
            total += ID_BYTES + POINTER_BYTES + POINTER_BYTES  # index entry + set header
            for _ in adjacency.blocks:
                total += ALLOC_OVERHEAD_BYTES + POINTER_BYTES + _BLOCK_CAPACITY * ID_BYTES
        return total
