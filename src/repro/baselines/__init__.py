"""Competitor and substrate graph stores used by the paper's evaluation.

The benchmarked competitors (Figures 6-16) are :class:`LiveGraphStore`,
:class:`SortledtonStore`, :class:`WindBellIndex` and :class:`SpruceStore`;
:class:`AdjacencyListGraph`, :class:`CSRGraph`, :class:`PackedMemoryArray`
and :class:`PCSRGraph` are the classical substrates the related-work section
builds on, kept here both as motivation examples and as reference models for
the tests.
"""

from .adjacency import AdjacencyListGraph
from .csr import CSRGraph
from .livegraph import LiveGraphStore
from .pcsr import PCSRGraph
from .pma import PackedMemoryArray
from .sortledton import SortledtonStore
from .spruce import SpruceStore
from .wbi import WindBellIndex

#: The schemes compared against CuckooGraph in the paper's evaluation section.
COMPETITORS = {
    "LiveGraph": LiveGraphStore,
    "Spruce": SpruceStore,
    "Sortledton": SortledtonStore,
    "WBI": WindBellIndex,
}

__all__ = [
    "AdjacencyListGraph",
    "COMPETITORS",
    "CSRGraph",
    "LiveGraphStore",
    "PCSRGraph",
    "PackedMemoryArray",
    "SortledtonStore",
    "SpruceStore",
    "WindBellIndex",
]
