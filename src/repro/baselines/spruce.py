"""Spruce-style store (Shi, Wang & Xu, PACMMOD 2024) -- simplified.

Spruce, the paper's most competitive baseline, has two parts:

* a **node-indexing part** shaped like a van Emde Boas tree over the 8-byte
  node identifier: the identifier is split 4 / 2 / 2 -- the high 4 bytes key a
  hash table of "super blocks", the middle 2 bytes select a bit in the super
  block's bit vector (plus a pointer to a middle block), and the low 2 bytes
  select a bit in the middle block's bit vector (plus a pointer into the edge
  storage);
* an **edge-storage part** based on adjacency lists: each indexed node points
  to a sorted neighbour vector that grows by doubling.

The re-implementation keeps that layout and its costs: edge queries are a
vEB descent plus a binary search (O(log(|E|/|V|)) per Table III), insertions
append into the per-node vector (amortized O(|E|/|V|) because of the sorted
insert), and memory is dominated by bit vectors, block pointers and the
doubling neighbour vectors.
"""

from __future__ import annotations

from bisect import bisect_left, insort
from typing import Iterator

from ..interfaces import DynamicGraphStore
from ..memmodel.layout import ALLOC_OVERHEAD_BYTES, ID_BYTES, POINTER_BYTES

#: Number of bits addressed by each 2-byte identifier chunk.
_CHUNK_BITS = 1 << 16


def _split_identifier(node: int) -> tuple[int, int, int]:
    """Split an 8-byte identifier into Spruce's 4 / 2 / 2 byte pieces."""
    high = (node >> 32) & 0xFFFFFFFF
    middle = (node >> 16) & 0xFFFF
    low = node & 0xFFFF
    return high, middle, low


class _MiddleBlock:
    """Second-level vEB block: bit vector over the low 2 bytes + edge pointers."""

    __slots__ = ("bits", "vectors")

    def __init__(self):
        self.bits: set[int] = set()
        self.vectors: dict[int, list[int]] = {}


class _SuperBlock:
    """First-level vEB block: bit vector over the middle 2 bytes + child pointers."""

    __slots__ = ("bits", "children")

    def __init__(self):
        self.bits: set[int] = set()
        self.children: dict[int, _MiddleBlock] = {}


class SpruceStore(DynamicGraphStore):
    """Directed graph with a vEB-style node index over sorted neighbour vectors."""

    name = "Spruce"

    def __init__(self):
        self._super_blocks: dict[int, _SuperBlock] = {}
        self._num_edges = 0
        self._num_nodes_indexed = 0
        self.accesses = 0

    # ------------------------------------------------------------------ #
    # Modelled memory accesses
    # ------------------------------------------------------------------ #

    @staticmethod
    def _search_cost(vector_length: int) -> int:
        """Cache lines touched by a binary search over a sorted neighbour run.

        The first few probe levels land in distinct cache lines; the last
        three levels (8 ids) share one line.
        """
        if vector_length <= 8:
            return 1
        return max(1, vector_length.bit_length() - 3)

    def _descent_cost(self) -> int:
        """vEB descent: super-block hash entry, bit vector, middle block."""
        return 3

    # ------------------------------------------------------------------ #
    # Index descent helpers
    # ------------------------------------------------------------------ #

    def _vector_for(self, u: int, create: bool) -> list[int] | None:
        high, middle, low = _split_identifier(u)
        super_block = self._super_blocks.get(high)
        if super_block is None:
            if not create:
                return None
            super_block = _SuperBlock()
            self._super_blocks[high] = super_block
        middle_block = super_block.children.get(middle)
        if middle_block is None:
            if not create:
                return None
            middle_block = _MiddleBlock()
            super_block.children[middle] = middle_block
            super_block.bits.add(middle)
        vector = middle_block.vectors.get(low)
        if vector is None:
            if not create:
                return None
            vector = []
            middle_block.vectors[low] = vector
            middle_block.bits.add(low)
            self._num_nodes_indexed += 1
        return vector

    def _drop_node(self, u: int) -> None:
        high, middle, low = _split_identifier(u)
        super_block = self._super_blocks.get(high)
        if super_block is None:
            return
        middle_block = super_block.children.get(middle)
        if middle_block is None:
            return
        if low in middle_block.vectors:
            del middle_block.vectors[low]
            middle_block.bits.discard(low)
            self._num_nodes_indexed -= 1
        if not middle_block.vectors:
            del super_block.children[middle]
            super_block.bits.discard(middle)
        if not super_block.children:
            del self._super_blocks[high]

    # ------------------------------------------------------------------ #
    # DynamicGraphStore API
    # ------------------------------------------------------------------ #

    def insert_edge(self, u: int, v: int) -> bool:
        vector = self._vector_for(u, create=True)
        self.accesses += self._descent_cost() + self._search_cost(len(vector))
        position = bisect_left(vector, v)
        if position < len(vector) and vector[position] == v:
            return False
        insort(vector, v)
        # Sorted insert shifts the tail of the run: one access per 8 ids moved.
        self.accesses += 1 + (len(vector) - position) // 8
        self._num_edges += 1
        return True

    def has_edge(self, u: int, v: int) -> bool:
        vector = self._vector_for(u, create=False)
        self.accesses += self._descent_cost()
        if vector is None:
            return False
        self.accesses += self._search_cost(len(vector))
        position = bisect_left(vector, v)
        return position < len(vector) and vector[position] == v

    def delete_edge(self, u: int, v: int) -> bool:
        vector = self._vector_for(u, create=False)
        self.accesses += self._descent_cost()
        if vector is None:
            return False
        self.accesses += self._search_cost(len(vector))
        position = bisect_left(vector, v)
        if position >= len(vector) or vector[position] != v:
            return False
        del vector[position]
        self.accesses += 1 + (len(vector) - position) // 8
        if not vector:
            self._drop_node(u)
        self._num_edges -= 1
        return True

    def successors(self, u: int) -> list[int]:
        vector = self._vector_for(u, create=False)
        self.accesses += self._descent_cost()
        if vector is None:
            return []
        # The run is contiguous: one access per cache line of neighbours.
        self.accesses += max(1, (len(vector) * 8) // 64)
        return list(vector)

    def out_degree(self, u: int) -> int:
        vector = self._vector_for(u, create=False)
        return len(vector) if vector is not None else 0

    def has_node(self, u: int) -> bool:
        return self._vector_for(u, create=False) is not None

    def source_nodes(self) -> Iterator[int]:
        for high, super_block in self._super_blocks.items():
            for middle, middle_block in super_block.children.items():
                for low in middle_block.vectors:
                    yield (high << 32) | (middle << 16) | low

    def edges(self) -> Iterator[tuple[int, int]]:
        for u in self.source_nodes():
            vector = self._vector_for(u, create=False)
            for v in vector or ():
                yield (u, v)

    @property
    def num_edges(self) -> int:
        return self._num_edges

    # ------------------------------------------------------------------ #
    # Memory model
    # ------------------------------------------------------------------ #

    def memory_bytes(self) -> int:
        """Bit vectors and pointers of the vEB index plus adjacency-list edge storage.

        The published Spruce keeps its edge-storage part "based on the
        adjacency list", so every stored edge pays a neighbour identifier plus
        a link pointer, and every indexed node pays a list head in addition to
        its index entry -- the "quite a few pointers" the paper attributes to
        the scheme.  The in-memory Python representation uses sorted vectors
        purely for query speed; the modelled footprint follows the published
        layout.
        """
        total = 0
        for super_block in self._super_blocks.values():
            # Hash-table entry for the high 4 bytes plus the middle bit vector.
            total += ID_BYTES + POINTER_BYTES + _CHUNK_BITS // 8
            for middle_block in super_block.children.values():
                total += ALLOC_OVERHEAD_BYTES + POINTER_BYTES + _CHUNK_BITS // 8
                for vector in middle_block.vectors.values():
                    # Index entry + list head for the node, id + pointer per edge.
                    total += POINTER_BYTES + ALLOC_OVERHEAD_BYTES + POINTER_BYTES
                    total += len(vector) * (ID_BYTES + POINTER_BYTES)
        return total
