"""Classic adjacency-list graph store.

This is the textbook baseline the paper's introduction motivates against: a
per-node linked list of neighbours.  It is easy to update but pointer
intensive -- every edge pays a ``next`` pointer, every node pays a list head
allocation -- and edge queries must scan the source node's whole list.
"""

from __future__ import annotations

from typing import Iterator

from ..interfaces import DynamicGraphStore
from ..memmodel.layout import (
    ALLOC_OVERHEAD_BYTES,
    adjacency_entry_bytes,
    adjacency_node_bytes,
)


class AdjacencyListGraph(DynamicGraphStore):
    """Directed graph stored as one neighbour list per source node.

    The Python representation uses a list per node, but the memory model
    charges the linked-list layout the paper describes (neighbour id plus a
    next pointer per edge, one allocated head per node), and edge queries
    deliberately perform the linear scan a linked list would.
    """

    name = "AdjacencyList"

    def __init__(self):
        self._adjacency: dict[int, list[int]] = {}
        self._num_edges = 0
        self.accesses = 0

    # ------------------------------------------------------------------ #
    # DynamicGraphStore API
    # ------------------------------------------------------------------ #

    def insert_edge(self, u: int, v: int) -> bool:
        neighbours = self._adjacency.get(u)
        self.accesses += 1  # list head lookup
        if neighbours is None:
            self._adjacency[u] = [v]
            self._num_edges += 1
            self.accesses += 1
            return True
        # Linear duplicate check, as a raw adjacency list has no index; every
        # linked node touched is one (non-contiguous) memory access.
        self.accesses += len(neighbours)
        if v in neighbours:
            return False
        neighbours.append(v)
        self._num_edges += 1
        self.accesses += 1
        return True

    def has_edge(self, u: int, v: int) -> bool:
        neighbours = self._adjacency.get(u)
        self.accesses += 1
        if neighbours is None:
            return False
        try:
            position = neighbours.index(v)
        except ValueError:
            self.accesses += len(neighbours)
            return False
        self.accesses += position + 1
        return True

    def delete_edge(self, u: int, v: int) -> bool:
        neighbours = self._adjacency.get(u)
        self.accesses += 1
        if neighbours is None:
            return False
        try:
            position = neighbours.index(v)
        except ValueError:
            self.accesses += len(neighbours)
            return False
        self.accesses += position + 1
        del neighbours[position]
        if not neighbours:
            del self._adjacency[u]
        self._num_edges -= 1
        return True

    def successors(self, u: int) -> list[int]:
        neighbours = self._adjacency.get(u, ())
        self.accesses += 1 + len(neighbours)
        return list(neighbours)

    def out_degree(self, u: int) -> int:
        return len(self._adjacency.get(u, ()))

    def has_node(self, u: int) -> bool:
        return u in self._adjacency

    def source_nodes(self) -> Iterator[int]:
        yield from self._adjacency.keys()

    def edges(self) -> Iterator[tuple[int, int]]:
        for u, neighbours in self._adjacency.items():
            for v in neighbours:
                yield (u, v)

    @property
    def num_edges(self) -> int:
        return self._num_edges

    # ------------------------------------------------------------------ #
    # Memory model
    # ------------------------------------------------------------------ #

    def memory_bytes(self) -> int:
        """Linked-list layout: a head per node plus (id, next) per edge."""
        node_cost = len(self._adjacency) * (adjacency_node_bytes() + ALLOC_OVERHEAD_BYTES)
        edge_cost = self._num_edges * adjacency_entry_bytes()
        return node_cost + edge_cost
