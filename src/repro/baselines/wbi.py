"""Wind-Bell Index (Qiu et al., ICDE 2023) -- simplified re-implementation.

WBI combines a K x K adjacency matrix of buckets with hanging adjacency
lists: an edge ``⟨u, v⟩`` is hashed by several independent hash-function
pairs to candidate matrix buckets ``(h_i(u), g_i(v))``, and the edge is
appended to the shortest of the candidate hanging lists (the "wind bells").
Edge queries probe every candidate bucket and scan its list; successor
queries must sweep an entire matrix row per hash function, touching many
buckets whose lists mostly contain unrelated edges -- exactly the redundancy
the paper blames for WBI's slow successor-driven analytics.

Memory is dominated by the K^2 bucket headers plus one list node per edge.
"""

from __future__ import annotations

from typing import Iterator

from ..interfaces import DynamicGraphStore
from ..memmodel.layout import ID_BYTES, POINTER_BYTES, WORD_BYTES
from ..core.hashing import HashFamily


class WindBellIndex(DynamicGraphStore):
    """Adjacency-matrix-of-buckets store with multi-hash shortest-list insertion.

    Args:
        matrix_size: ``K``, the number of rows/columns of the bucket matrix.
        num_hashes: Number of independent (row, column) hash pairs per edge.
        seed: Seed for the hash family.
    """

    name = "WBI"

    def __init__(self, matrix_size: int = 64, num_hashes: int = 2, seed: int = 1):
        if matrix_size < 1:
            raise ValueError("matrix_size must be >= 1")
        if num_hashes < 1:
            raise ValueError("num_hashes must be >= 1")
        self.matrix_size = matrix_size
        self.num_hashes = num_hashes
        family = HashFamily("mult", seed)
        self._row_hashes = [family.make() for _ in range(num_hashes)]
        self._col_hashes = [family.make() for _ in range(num_hashes)]
        self._buckets: list[list[tuple[int, int]]] = [
            [] for _ in range(matrix_size * matrix_size)
        ]
        self._num_edges = 0
        self.accesses = 0

    # ------------------------------------------------------------------ #
    # Hashing helpers
    # ------------------------------------------------------------------ #

    def _candidate_buckets(self, u: int, v: int) -> list[int]:
        """Flat indices of every candidate matrix bucket for edge ``⟨u, v⟩``."""
        candidates = []
        for row_hash, col_hash in zip(self._row_hashes, self._col_hashes):
            row = row_hash(u) % self.matrix_size
            col = col_hash(v) % self.matrix_size
            candidates.append(row * self.matrix_size + col)
        return candidates

    def _row_buckets(self, u: int) -> Iterator[int]:
        """Flat indices of every bucket a successor query for ``u`` must sweep."""
        for row_hash in self._row_hashes:
            row = row_hash(u) % self.matrix_size
            start = row * self.matrix_size
            yield from range(start, start + self.matrix_size)

    # ------------------------------------------------------------------ #
    # DynamicGraphStore API
    # ------------------------------------------------------------------ #

    def insert_edge(self, u: int, v: int) -> bool:
        candidates = self._candidate_buckets(u, v)
        for index in candidates:
            # Bucket header plus every hanging list node scanned for duplicates.
            self.accesses += 1 + len(self._buckets[index])
            if (u, v) in self._buckets[index]:
                return False
        shortest = min(candidates, key=lambda index: len(self._buckets[index]))
        self._buckets[shortest].append((u, v))
        self._num_edges += 1
        self.accesses += 1
        return True

    def has_edge(self, u: int, v: int) -> bool:
        for index in self._candidate_buckets(u, v):
            bucket = self._buckets[index]
            self.accesses += 1 + len(bucket)
            if (u, v) in bucket:
                return True
        return False

    def delete_edge(self, u: int, v: int) -> bool:
        for index in self._candidate_buckets(u, v):
            bucket = self._buckets[index]
            self.accesses += 1 + len(bucket)
            if (u, v) in bucket:
                bucket.remove((u, v))
                self._num_edges -= 1
                return True
        return False

    def successors(self, u: int) -> list[int]:
        result: list[int] = []
        seen: set[int] = set()
        for index in self._row_buckets(u):
            bucket = self._buckets[index]
            # Every bucket of the row is touched, plus every (mostly
            # unrelated) edge hanging off it -- WBI's redundancy.
            self.accesses += 1 + len(bucket)
            for source, v in bucket:
                if source == u and v not in seen:
                    seen.add(v)
                    result.append(v)
        return result

    def edges(self) -> Iterator[tuple[int, int]]:
        seen: set[tuple[int, int]] = set()
        for bucket in self._buckets:
            for edge in bucket:
                if edge not in seen:
                    seen.add(edge)
                    yield edge

    @property
    def num_edges(self) -> int:
        return self._num_edges

    # ------------------------------------------------------------------ #
    # Memory model
    # ------------------------------------------------------------------ #

    def memory_bytes(self) -> int:
        """K^2 bucket headers plus one linked node per stored edge."""
        header_bytes = self.matrix_size * self.matrix_size * (POINTER_BYTES + WORD_BYTES)
        edge_bytes = self._num_edges * (2 * ID_BYTES + POINTER_BYTES)
        return header_bytes + edge_bytes

    # ------------------------------------------------------------------ #
    # Introspection
    # ------------------------------------------------------------------ #

    def bucket_load_profile(self) -> dict[str, float]:
        """Summary of hanging-list lengths (used by tests and ablations)."""
        lengths = [len(bucket) for bucket in self._buckets]
        occupied = [length for length in lengths if length]
        return {
            "max": float(max(lengths) if lengths else 0),
            "mean_nonempty": (sum(occupied) / len(occupied)) if occupied else 0.0,
            "occupied_buckets": float(len(occupied)),
        }
