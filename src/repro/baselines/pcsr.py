"""PCSR: Packed Compressed Sparse Row (Wheatman & Xu, HPEC 2018).

PCSR replaces CSR's static neighbour array with a Packed Memory Array so the
structure stays updatable: all ``(u, v)`` pairs live in one PMA ordered by
``(u, v)``, and a per-node index records where each node's run begins.  The
run boundaries are implicit here (range scans over the PMA), which keeps the
implementation close to the published idea while reusing the
:class:`~repro.baselines.pma.PackedMemoryArray` substrate directly.
"""

from __future__ import annotations

from typing import Iterator

from ..interfaces import DynamicGraphStore
from ..memmodel.layout import ID_BYTES, POINTER_BYTES
from .pma import PackedMemoryArray


class PCSRGraph(DynamicGraphStore):
    """Dynamic CSR whose edge storage is a Packed Memory Array.

    Edges are stored as ``(u, v)`` tuples in a single PMA sorted
    lexicographically; ``successors(u)`` is a range scan over ``(u, *)``.
    """

    name = "PCSR"

    def __init__(self, segment_capacity: int = 8):
        self._pma = PackedMemoryArray(segment_capacity=segment_capacity)
        self._degrees: dict[int, int] = {}
        self._num_edges = 0

    # ------------------------------------------------------------------ #
    # DynamicGraphStore API
    # ------------------------------------------------------------------ #

    def insert_edge(self, u: int, v: int) -> bool:
        if not self._pma.insert((u, v)):
            return False
        self._degrees[u] = self._degrees.get(u, 0) + 1
        self._num_edges += 1
        return True

    def has_edge(self, u: int, v: int) -> bool:
        return (u, v) in self._pma

    def delete_edge(self, u: int, v: int) -> bool:
        if not self._pma.delete((u, v)):
            return False
        remaining = self._degrees.get(u, 0) - 1
        if remaining <= 0:
            self._degrees.pop(u, None)
        else:
            self._degrees[u] = remaining
        self._num_edges -= 1
        return True

    def successors(self, u: int) -> list[int]:
        return [v for (_, v) in self._pma.range((u, -1), (u + 1, -1))]

    def out_degree(self, u: int) -> int:
        return self._degrees.get(u, 0)

    def has_node(self, u: int) -> bool:
        return u in self._degrees

    def source_nodes(self) -> Iterator[int]:
        yield from self._degrees.keys()

    def edges(self) -> Iterator[tuple[int, int]]:
        yield from self._pma

    @property
    def num_edges(self) -> int:
        return self._num_edges

    # ------------------------------------------------------------------ #
    # Memory model
    # ------------------------------------------------------------------ #

    def memory_bytes(self) -> int:
        """PMA slots (gaps included, two ids per slot) plus the vertex index."""
        slot_bytes = 2 * ID_BYTES
        index_bytes = len(self._degrees) * (ID_BYTES + POINTER_BYTES)
        return self._pma.modelled_bytes(slot_bytes) + index_bytes

    # ------------------------------------------------------------------ #
    # Introspection
    # ------------------------------------------------------------------ #

    @property
    def pma(self) -> PackedMemoryArray:
        """The underlying Packed Memory Array (exposed for tests)."""
        return self._pma
