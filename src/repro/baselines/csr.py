"""Compressed Sparse Row (CSR) graph storage.

CSR packs all neighbour lists into one contiguous array indexed by a per-node
offset array.  It is the most compact and traversal-friendly classical layout
but, as the paper stresses, it is *inherently static*: updating it generally
means rebuilding the whole structure.  This implementation makes that cost
explicit -- dynamic updates are buffered in a small delta and folded into the
arrays by a full rebuild, either when the delta grows past a threshold or
when a read needs a consistent view.
"""

from __future__ import annotations

from bisect import bisect_left
from typing import Iterable, Iterator, Sequence

from ..interfaces import DynamicGraphStore
from ..memmodel.layout import ID_BYTES, WORD_BYTES, vector_entry_bytes


class CSRGraph(DynamicGraphStore):
    """CSR store with rebuild-on-update semantics.

    Args:
        rebuild_threshold: Number of buffered updates tolerated before a full
            rebuild is triggered.  The default of 1 reproduces the "every
            update rebuilds" behaviour the paper attributes to plain CSR;
            larger values emulate batched rebuilds.
    """

    name = "CSR"

    def __init__(self, rebuild_threshold: int = 1):
        if rebuild_threshold < 1:
            raise ValueError("rebuild_threshold must be >= 1")
        self.rebuild_threshold = rebuild_threshold
        self._node_index: dict[int, int] = {}
        self._node_ids: list[int] = []
        self._offsets: list[int] = [0]
        self._neighbours: list[int] = []
        self._pending_inserts: list[tuple[int, int]] = []
        self._pending_deletes: list[tuple[int, int]] = []
        self._num_edges = 0
        self.rebuild_count = 0

    # ------------------------------------------------------------------ #
    # Construction helpers
    # ------------------------------------------------------------------ #

    @classmethod
    def from_edges(cls, edges: Iterable[tuple[int, int]]) -> "CSRGraph":
        """Build a CSR directly from an edge collection (the static use case)."""
        graph = cls(rebuild_threshold=1 << 30)
        for u, v in edges:
            graph.insert_edge(u, v)
        graph._rebuild()
        return graph

    # ------------------------------------------------------------------ #
    # DynamicGraphStore API
    # ------------------------------------------------------------------ #

    def insert_edge(self, u: int, v: int) -> bool:
        if self.has_edge(u, v):
            return False
        self._pending_inserts.append((u, v))
        self._num_edges += 1
        self._maybe_rebuild()
        return True

    def has_edge(self, u: int, v: int) -> bool:
        if (u, v) in _as_set(self._pending_deletes):
            return False
        if (u, v) in _as_set(self._pending_inserts):
            return True
        return self._in_arrays(u, v)

    def delete_edge(self, u: int, v: int) -> bool:
        if not self.has_edge(u, v):
            return False
        if (u, v) in _as_set(self._pending_inserts):
            self._pending_inserts.remove((u, v))
        else:
            self._pending_deletes.append((u, v))
        self._num_edges -= 1
        self._maybe_rebuild()
        return True

    def successors(self, u: int) -> list[int]:
        result = list(self._array_successors(u))
        deletions = {v for (src, v) in self._pending_deletes if src == u}
        if deletions:
            result = [v for v in result if v not in deletions]
        result.extend(v for (src, v) in self._pending_inserts if src == u)
        return result

    def source_nodes(self) -> Iterator[int]:
        seen = set(self._node_ids)
        yield from self._node_ids
        for u, _ in self._pending_inserts:
            if u not in seen:
                seen.add(u)
                yield u

    def edges(self) -> Iterator[tuple[int, int]]:
        deletions = _as_set(self._pending_deletes)
        for index, u in enumerate(self._node_ids):
            start, stop = self._offsets[index], self._offsets[index + 1]
            for v in self._neighbours[start:stop]:
                if (u, v) not in deletions:
                    yield (u, v)
        yield from self._pending_inserts

    @property
    def num_edges(self) -> int:
        return self._num_edges

    # ------------------------------------------------------------------ #
    # Memory model
    # ------------------------------------------------------------------ #

    def memory_bytes(self) -> int:
        """Offset array + neighbour array + node-id map + pending delta."""
        offsets_cost = len(self._offsets) * WORD_BYTES
        neighbours_cost = len(self._neighbours) * vector_entry_bytes()
        node_map_cost = len(self._node_ids) * ID_BYTES
        delta_cost = (len(self._pending_inserts) + len(self._pending_deletes)) * 2 * ID_BYTES
        return offsets_cost + neighbours_cost + node_map_cost + delta_cost

    # ------------------------------------------------------------------ #
    # Internals
    # ------------------------------------------------------------------ #

    def _maybe_rebuild(self) -> None:
        pending = len(self._pending_inserts) + len(self._pending_deletes)
        if pending >= self.rebuild_threshold:
            self._rebuild()

    def _rebuild(self) -> None:
        """Rebuild the offset and neighbour arrays from scratch."""
        adjacency: dict[int, list[int]] = {}
        deletions = _as_set(self._pending_deletes)
        for index, u in enumerate(self._node_ids):
            start, stop = self._offsets[index], self._offsets[index + 1]
            kept = [v for v in self._neighbours[start:stop] if (u, v) not in deletions]
            if kept:
                adjacency[u] = kept
        for u, v in self._pending_inserts:
            adjacency.setdefault(u, []).append(v)

        self._node_ids = sorted(adjacency)
        self._node_index = {u: index for index, u in enumerate(self._node_ids)}
        self._offsets = [0]
        self._neighbours = []
        for u in self._node_ids:
            self._neighbours.extend(sorted(adjacency[u]))
            self._offsets.append(len(self._neighbours))
        self._pending_inserts = []
        self._pending_deletes = []
        self.rebuild_count += 1

    def _array_successors(self, u: int) -> Sequence[int]:
        index = self._node_index.get(u)
        if index is None:
            return ()
        return self._neighbours[self._offsets[index]: self._offsets[index + 1]]

    def _in_arrays(self, u: int, v: int) -> bool:
        row = self._array_successors(u)
        position = bisect_left(row, v)
        return position < len(row) and row[position] == v


def _as_set(pairs: list[tuple[int, int]]) -> set[tuple[int, int]]:
    return set(pairs)
