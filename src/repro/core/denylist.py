"""The DENYLIST optimisation (Section III-A2).

CuckooGraph equips its cuckoo tables with two bounded vectors that absorb the
items an insertion could not place within ``T`` kick-outs:

* the **S-DL** records complete graph items, i.e. ``⟨u, v⟩`` pairs (plus the
  payload attached to ``v`` in the weighted variants), for values that failed
  to enter an S-CHT;
* the **L-DL** records whole L-CHT cells -- the node ``u`` together with its
  Part 2 -- so that a node evicted out of the L-CHT keeps its S-CHT chain
  attached and nothing needs to be copied or moved.

Whenever a chain expands, the entries that belong to it are drained back into
the freshly grown tables.  Both vectors have a configurable capacity; the
paper's analysis assumes they never fill up, and the implementation raises
:class:`~repro.core.errors.CapacityError` if that assumption is violated.
"""

from __future__ import annotations

from typing import Iterator, Optional

from .counters import Counters
from .errors import CapacityError


class SmallDenylist:
    """Bounded vector of ``⟨u, v⟩ -> payload`` entries (the S-DL).

    Entries are keyed by the full edge so that membership queries (Step 2 of
    the Query operation) are a single probe, mirroring the fixed-size vector
    scan of the paper's implementation.
    """

    __slots__ = ("capacity", "_entries", "_counters")

    def __init__(self, capacity: int, counters: Optional[Counters] = None):
        self.capacity = capacity
        self._entries: dict[tuple[int, int], object] = {}
        self._counters = counters if counters is not None else Counters()

    def __len__(self) -> int:
        return len(self._entries)

    @property
    def is_full(self) -> bool:
        return len(self._entries) >= self.capacity

    def add(self, u: int, v: int, payload=None) -> None:
        """Park the edge ``⟨u, v⟩`` (with its payload) in the denylist."""
        if (u, v) not in self._entries and self.is_full:
            raise CapacityError(
                f"S-DL overflow: capacity {self.capacity} exhausted while parking "
                f"edge ({u}, {v}); increase small_denylist_capacity"
            )
        self._entries[(u, v)] = payload

    def contains(self, u: int, v: int) -> bool:
        """Whether ``⟨u, v⟩`` is parked here."""
        found = (u, v) in self._entries
        if found:
            self._counters.denylist_hits += 1
        return found

    def get(self, u: int, v: int, default=None):
        """Return the payload parked for ``⟨u, v⟩`` or ``default``."""
        return self._entries.get((u, v), default)

    def set(self, u: int, v: int, payload) -> None:
        """Update the payload of an already-parked edge."""
        self._entries[(u, v)] = payload

    def remove(self, u: int, v: int) -> bool:
        """Remove ``⟨u, v⟩``; return ``True`` if it was present."""
        return self._entries.pop((u, v), _MISSING) is not _MISSING

    def drain_for_source(self, u: int) -> list[tuple[int, object]]:
        """Remove and return every ``(v, payload)`` parked for source node ``u``.

        This implements the expansion hook: "we insert those v in S-DL whose u
        exactly match the u present in the current S-CHT into the new S-CHT".
        """
        matched = [(v, payload) for (src, v), payload in self._entries.items() if src == u]
        for v, _ in matched:
            del self._entries[(u, v)]
        return matched

    def successors_of(self, u: int) -> list[tuple[int, object]]:
        """Return (without removing) every ``(v, payload)`` parked for ``u``."""
        return [(v, payload) for (src, v), payload in self._entries.items() if src == u]

    def items(self) -> Iterator[tuple[tuple[int, int], object]]:
        """Iterate over ``((u, v), payload)`` entries."""
        yield from self._entries.items()

    def modelled_bytes(self, bytes_per_entry: int) -> int:
        """Modelled footprint: the vector is sized by its capacity high-water mark."""
        return len(self._entries) * bytes_per_entry


class LargeDenylist:
    """Bounded vector of whole L-CHT cells (the L-DL).

    Each unit has the same layout as an L-CHT cell, so an evicted node keeps
    the pointer(s) to its S-CHT chain and nothing is copied.
    """

    __slots__ = ("capacity", "_cells", "_counters")

    def __init__(self, capacity: int, counters: Optional[Counters] = None):
        self.capacity = capacity
        self._cells: dict[int, object] = {}
        self._counters = counters if counters is not None else Counters()

    def __len__(self) -> int:
        return len(self._cells)

    @property
    def is_full(self) -> bool:
        return len(self._cells) >= self.capacity

    def add(self, u: int, part2) -> None:
        """Park node ``u`` together with its Part 2."""
        if u not in self._cells and self.is_full:
            raise CapacityError(
                f"L-DL overflow: capacity {self.capacity} exhausted while parking "
                f"node {u}; increase large_denylist_capacity"
            )
        self._cells[u] = part2

    def contains(self, u: int) -> bool:
        """Whether node ``u`` is parked here."""
        found = u in self._cells
        if found:
            self._counters.denylist_hits += 1
        return found

    def get(self, u: int, default=None):
        """Return the Part 2 parked for ``u`` or ``default``."""
        return self._cells.get(u, default)

    def remove(self, u: int) -> bool:
        """Remove node ``u``; return ``True`` if it was present."""
        return self._cells.pop(u, _MISSING) is not _MISSING

    def drain(self) -> list[tuple[int, object]]:
        """Remove and return every parked ``(u, part2)`` cell."""
        drained = list(self._cells.items())
        self._cells.clear()
        return drained

    def items(self) -> Iterator[tuple[int, object]]:
        """Iterate over parked ``(u, part2)`` cells."""
        yield from self._cells.items()

    def keys(self) -> Iterator[int]:
        """Iterate over parked node identifiers."""
        yield from self._cells.keys()

    def modelled_bytes(self, bytes_per_cell: int) -> int:
        """Modelled footprint of the parked cells."""
        return len(self._cells) * bytes_per_cell


_MISSING = object()
