"""Hash-function families used by the cuckoo hash tables.

The paper uses 32-bit Bob Jenkins hashes ("Bob Hash") with random initial
seeds for both the large and the small cuckoo hash tables.  This module
provides:

* :class:`BobHash` -- a faithful pure-Python port of Bob Jenkins' ``lookup2``
  style mixing for 8-byte integer keys, matching the reference used by the
  paper's C++ implementation in spirit (32-bit output, seedable).
* :class:`MultiplyShiftHash` -- a fast multiply-shift (Dietzfelbinger) hash.
  Pure-Python Bob hashing is roughly an order of magnitude slower than a
  single multiply; both families are high quality for the integer keys used
  here, and which one is active does not change any structural behaviour
  (loading rates, kick statistics, memory layout).  Benchmarks default to the
  fast family; tests exercise both.
* :class:`ModularHash` -- the simple modular hash assumed by the Theorem 2
  analysis (same hash for both arrays, bucket index taken modulo the array
  length), used by the amortized-cost experiments.
* :class:`HashFamily` -- a factory that deals out independent, deterministic
  hash functions from a master seed, so that every table in a graph gets its
  own pair of functions while the whole structure stays reproducible.
"""

from __future__ import annotations

import random
from typing import Callable, Protocol

_MASK32 = 0xFFFFFFFF
_MASK64 = 0xFFFFFFFFFFFFFFFF

#: Golden-ratio constant used by Bob Jenkins' hash.
_GOLDEN = 0x9E3779B9


class HashFunction(Protocol):
    """A seeded hash function mapping an integer key to a 32-bit value."""

    def __call__(self, key: int) -> int:  # pragma: no cover - protocol
        ...


def _mix(a: int, b: int, c: int) -> tuple[int, int, int]:
    """Bob Jenkins' 96-bit mix function (lookup2), on 32-bit lanes."""
    a = (a - b - c) & _MASK32
    a ^= c >> 13
    b = (b - c - a) & _MASK32
    b ^= (a << 8) & _MASK32
    c = (c - a - b) & _MASK32
    c ^= b >> 13
    a = (a - b - c) & _MASK32
    a ^= c >> 12
    b = (b - c - a) & _MASK32
    b ^= (a << 16) & _MASK32
    c = (c - a - b) & _MASK32
    c ^= b >> 5
    a = (a - b - c) & _MASK32
    a ^= c >> 3
    b = (b - c - a) & _MASK32
    b ^= (a << 10) & _MASK32
    c = (c - a - b) & _MASK32
    c ^= b >> 15
    return a, b, c


class BobHash:
    """32-bit Bob Jenkins hash over an 8-byte integer key.

    The key is treated as two 32-bit words (low, high), mirroring how the
    paper's C++ implementation hashes 8-byte node identifiers.
    """

    __slots__ = ("seed",)

    def __init__(self, seed: int = 0):
        self.seed = seed & _MASK32

    def __call__(self, key: int) -> int:
        key &= _MASK64
        lo = key & _MASK32
        hi = (key >> 32) & _MASK32
        a = (_GOLDEN + lo) & _MASK32
        b = (_GOLDEN + hi) & _MASK32
        c = (self.seed + 8) & _MASK32
        _, _, c = _mix(a, b, c)
        return c

    def __repr__(self) -> str:
        return f"BobHash(seed={self.seed:#010x})"


class MultiplyShiftHash:
    """Fast multiply-shift hash (64-bit multiply, 32-bit output)."""

    __slots__ = ("multiplier", "addend")

    def __init__(self, seed: int = 0):
        rng = random.Random(seed)
        # Odd multiplier per Dietzfelbinger's multiply-shift scheme.
        self.multiplier = rng.getrandbits(64) | 1
        self.addend = rng.getrandbits(64)

    def __call__(self, key: int) -> int:
        return (((key * self.multiplier) + self.addend) & _MASK64) >> 32

    def __repr__(self) -> str:
        return f"MultiplyShiftHash(multiplier={self.multiplier:#x})"


class ModularHash:
    """The "same modular hash" assumed in the Theorem 2 analysis.

    Both candidate buckets of a key are derived from the *same* value; the
    table maps it into its own bucket range.  A light xor-fold keeps distinct
    keys from colliding trivially while preserving the modular structure the
    proof relies on (a key's bucket only changes when the table length does).
    """

    __slots__ = ("seed",)

    def __init__(self, seed: int = 0):
        self.seed = seed & _MASK32

    def __call__(self, key: int) -> int:
        return (key ^ self.seed) & _MASK32

    def __repr__(self) -> str:
        return f"ModularHash(seed={self.seed:#010x})"


#: Registry of hash family names understood by :class:`HashFamily`.
_FAMILIES: dict[str, Callable[[int], HashFunction]] = {
    "bob": BobHash,
    "mult": MultiplyShiftHash,
    "modular": ModularHash,
}


class HashFamily:
    """Deals out independent deterministic hash functions from a master seed.

    Every cuckoo table in a graph asks the family for a pair of functions; the
    family hands back functions whose seeds are derived from the master seed
    and a monotonically increasing counter, so two graphs built with the same
    configuration hash identically.
    """

    def __init__(self, family: str = "mult", seed: int = 1):
        if family not in _FAMILIES:
            raise ValueError(
                f"unknown hash family {family!r}; expected one of {sorted(_FAMILIES)}"
            )
        self.family = family
        self.seed = seed
        self._rng = random.Random(seed)
        self._count = 0

    def make(self) -> HashFunction:
        """Return the next independent hash function in the family."""
        self._count += 1
        derived_seed = self._rng.getrandbits(32)
        return _FAMILIES[self.family](derived_seed)

    def make_pair(self) -> tuple[HashFunction, HashFunction]:
        """Return two independent hash functions (H1, H2) / (h1, h2)."""
        return self.make(), self.make()

    @property
    def functions_created(self) -> int:
        """Number of hash functions dealt out so far."""
        return self._count

    def __repr__(self) -> str:
        return f"HashFamily(family={self.family!r}, seed={self.seed})"
