"""Operation counters shared across the CuckooGraph data structures.

The paper's analysis (Section IV and Table III) argues about the number of
bucket probes, kick-outs and expansions rather than wall-clock time.  A
:class:`Counters` instance is threaded through every table so those quantities
can be reported directly, which is how the complexity table and the
Theorem 1/2 verification experiments are reproduced.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass
class Counters:
    """Mutable counters for probes, kicks and structural events.

    Attributes:
        bucket_probes: Number of buckets examined (lookup or insert).
        cell_probes: Number of individual cells examined.
        kicks: Number of cuckoo evictions performed.
        insert_attempts: Number of placement attempts (initial + re-insertions
            caused by kicks); dividing by ``edges_inserted`` gives the
            "average number of insertions per item" quantity the paper reports
            (≈1.017 for L-CHT and ≈1.006 for S-CHT on NotreDame).
        insert_failures: Insertions that exhausted ``T`` kicks and fell back
            to a denylist (or forced an expansion when the denylist is off).
        expansions: Table-chain expansions (enable or merge-and-grow).
        contractions: Table-chain contractions (delete or compress).
        rehashed_items: Items moved during expansions/contractions.
        denylist_hits: Lookups answered from a denylist.
        edges_inserted / edges_deleted / edges_queried: Graph-level tallies.
    """

    bucket_probes: int = 0
    cell_probes: int = 0
    kicks: int = 0
    insert_attempts: int = 0
    insert_failures: int = 0
    expansions: int = 0
    contractions: int = 0
    rehashed_items: int = 0
    denylist_hits: int = 0
    edges_inserted: int = 0
    edges_deleted: int = 0
    edges_queried: int = 0

    def reset(self) -> None:
        """Zero every counter in place."""
        for name in self.__dataclass_fields__:
            setattr(self, name, 0)

    def snapshot(self) -> dict[str, int]:
        """Return a plain-dict copy of the current counter values."""
        return {name: getattr(self, name) for name in self.__dataclass_fields__}

    def diff(self, earlier: dict[str, int]) -> dict[str, int]:
        """Return the per-counter difference since an earlier :meth:`snapshot`."""
        return {
            name: getattr(self, name) - earlier.get(name, 0)
            for name in self.__dataclass_fields__
        }

    @property
    def average_insert_attempts_per_edge(self) -> float:
        """Average placement attempts per inserted edge (Theorem 1 check)."""
        if self.edges_inserted == 0:
            return 0.0
        return self.insert_attempts / self.edges_inserted

    def __add__(self, other: "Counters") -> "Counters":
        result = Counters()
        for name in self.__dataclass_fields__:
            setattr(result, name, getattr(self, name) + getattr(other, name))
        return result
