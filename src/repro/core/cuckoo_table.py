"""A multi-cell cuckoo hash table with two bucket arrays.

This is the building block behind both the large cuckoo hash table (L-CHT)
and the small cuckoo hash tables (S-CHT) of CuckooGraph.  Structurally it
follows Section II-C and III-A1 of the paper:

* two bucket arrays ``B1`` and ``B2`` whose bucket counts are in a 2:1 ratio,
  each associated with an independent hash function;
* every bucket holds ``d`` cells;
* an insertion probes the two candidate buckets, uses an empty cell if one
  exists, and otherwise kicks a random resident to its alternate bucket,
  repeating up to ``T`` kicks before declaring failure;
* the *length* of the table is the bucket count of the larger array, and the
  loading rate is ``items / (d * total_buckets)``.

The table is a generic ``key -> value`` map: S-CHTs store neighbour ids
(value ``None`` in the basic version, a weight or edge list in the extended
versions) and the L-CHT stores whole cells (``u -> Part 2``).
"""

from __future__ import annotations

import random
from typing import Iterable, Iterator, Optional

from .counters import Counters
from .hashing import HashFunction


class CuckooHashTable:
    """Bounded cuckoo hash map with ``d``-cell buckets and two arrays.

    Args:
        length: Number of buckets in the larger (first) array.
        d: Cells per bucket.
        hash_pair: The two hash functions associated with the table.
        max_kicks: Maximum number of evictions before an insert fails (``T``).
        array_ratio: Divisor giving the second array's bucket count
            (2 reproduces the paper's 2:1 layout).
        counters: Shared operation counters (probes, kicks, attempts).
        rng: Random source used to pick eviction victims; pass a seeded
            instance for deterministic behaviour.
    """

    __slots__ = (
        "length",
        "d",
        "max_kicks",
        "array_ratio",
        "_hashes",
        "_arrays",
        "_size",
        "_counters",
        "_rng",
        # Hot-path caches: the arrays never resize after construction (growth
        # happens by chaining whole new tables), so the per-array references,
        # bucket counts, hash callables and the total cell count are bound
        # once here instead of being re-derived on every probe.
        "_array0",
        "_array1",
        "_len0",
        "_len1",
        "_hash0",
        "_hash1",
        "_cells_total",
    )

    def __init__(
        self,
        length: int,
        d: int,
        hash_pair: tuple[HashFunction, HashFunction],
        max_kicks: int,
        array_ratio: int = 2,
        counters: Optional[Counters] = None,
        rng: Optional[random.Random] = None,
    ):
        if length < 1:
            raise ValueError(f"table length must be >= 1, got {length}")
        self.length = length
        self.d = d
        self.max_kicks = max_kicks
        self.array_ratio = array_ratio
        self._hashes = hash_pair
        second = max(1, length // array_ratio)
        # Each array is a list of buckets; each bucket is a dict key -> value
        # capped at d entries.  A dict keeps lookups O(1) within the bucket
        # while preserving the d-cell capacity semantics.
        self._arrays: list[list[dict]] = [
            [dict() for _ in range(length)],
            [dict() for _ in range(second)],
        ]
        self._size = 0
        self._counters = counters if counters is not None else Counters()
        self._rng = rng if rng is not None else random.Random(0xC0FFEE)
        self._array0, self._array1 = self._arrays
        self._len0, self._len1 = length, second
        self._hash0, self._hash1 = hash_pair
        self._cells_total = (length + second) * d

    # ------------------------------------------------------------------ #
    # Introspection
    # ------------------------------------------------------------------ #

    def __len__(self) -> int:
        return self._size

    @property
    def num_buckets(self) -> int:
        """Total number of buckets across both arrays."""
        return self._len0 + self._len1

    @property
    def num_cells(self) -> int:
        """Total number of cells (bucket count times ``d``)."""
        return self._cells_total

    @property
    def loading_rate(self) -> float:
        """Fraction of cells currently occupied (``LR`` in the paper)."""
        return self._size / self._cells_total if self._cells_total else 0.0

    def __contains__(self, key: int) -> bool:
        return self.get(key, _MISSING) is not _MISSING

    def items(self) -> Iterator[tuple[int, object]]:
        """Iterate over all ``(key, value)`` pairs in the table."""
        for array in self._arrays:
            for bucket in array:
                yield from bucket.items()

    def keys(self) -> Iterator[int]:
        """Iterate over all keys in the table."""
        for key, _ in self.items():
            yield key

    # ------------------------------------------------------------------ #
    # Core operations
    # ------------------------------------------------------------------ #

    def get(self, key: int, default=None):
        """Return the value stored for ``key`` or ``default`` if absent."""
        counters = self._counters
        bucket = self._array0[self._hash0(key) % self._len0]
        counters.bucket_probes += 1
        counters.cell_probes += len(bucket)
        if key in bucket:
            return bucket[key]
        bucket = self._array1[self._hash1(key) % self._len1]
        counters.bucket_probes += 1
        counters.cell_probes += len(bucket)
        if key in bucket:
            return bucket[key]
        return default

    def update(self, key: int, value) -> bool:
        """Overwrite the value of an existing key in place.

        Returns ``True`` when the key was found (and updated); a missing key
        is left untouched.  This is the single-probe-pass path the weighted
        version uses to bump an edge weight.
        """
        counters = self._counters
        bucket = self._array0[self._hash0(key) % self._len0]
        counters.bucket_probes += 1
        if key in bucket:
            bucket[key] = value
            return True
        bucket = self._array1[self._hash1(key) % self._len1]
        counters.bucket_probes += 1
        if key in bucket:
            bucket[key] = value
            return True
        return False

    def insert(self, key: int, value=None) -> Optional[tuple[int, object]]:
        """Insert ``key -> value``; return an evicted pair on failure.

        Returns ``None`` when the item (and every item displaced along the
        way) found a home.  If the kick-out budget ``T`` is exhausted the
        final homeless pair is returned so the caller can route it to a
        denylist or trigger an expansion.  If ``key`` is already present its
        value is overwritten in place.
        """
        counters = self._counters
        array0, array1 = self._array0, self._array1
        hash0, hash1 = self._hash0, self._hash1
        len0, len1 = self._len0, self._len1
        d = self.d
        current_key, current_value = key, value
        # A random-walk longer than the table has cells cannot make progress,
        # so the effective kick budget of a small table is capped by its size;
        # T remains the budget for tables big enough to use it.
        kick_budget = min(self.max_kicks, self._cells_total)
        for kick in range(kick_budget + 1):
            counters.insert_attempts += 1
            bucket0 = array0[hash0(current_key) % len0]
            bucket1 = array1[hash1(current_key) % len1]
            counters.bucket_probes += 2
            if kick == 0:
                # Overwrite in place if the key already resides in the table;
                # the presence check reuses the buckets just probed so it
                # costs no extra memory accesses.
                if current_key in bucket0:
                    bucket0[current_key] = current_value
                    return None
                if current_key in bucket1:
                    bucket1[current_key] = current_value
                    return None
            if len(bucket0) < d:
                bucket0[current_key] = current_value
                self._size += 1
                return None
            if len(bucket1) < d:
                bucket1[current_key] = current_value
                self._size += 1
                return None
            if kick == kick_budget:
                break
            # Both candidate buckets are full: kick a random resident out of a
            # randomly chosen candidate bucket and take its place.
            victim_bucket = bucket0 if self._rng.randrange(2) == 0 else bucket1
            victim_key = self._rng.choice(list(victim_bucket.keys()))
            victim_value = victim_bucket.pop(victim_key)
            victim_bucket[current_key] = current_value
            counters.kicks += 1
            current_key, current_value = victim_key, victim_value
        counters.insert_failures += 1
        return (current_key, current_value)

    def delete(self, key: int) -> bool:
        """Remove ``key`` from the table; return ``True`` if it was present."""
        counters = self._counters
        bucket = self._array0[self._hash0(key) % self._len0]
        counters.bucket_probes += 1
        if key in bucket:
            del bucket[key]
            self._size -= 1
            return True
        bucket = self._array1[self._hash1(key) % self._len1]
        counters.bucket_probes += 1
        if key in bucket:
            del bucket[key]
            self._size -= 1
            return True
        return False

    def pop_all(self) -> list[tuple[int, object]]:
        """Remove and return every ``(key, value)`` pair (used by rebuilds)."""
        drained = list(self.items())
        for array in self._arrays:
            for bucket in array:
                bucket.clear()
        self._size = 0
        return drained

    def would_exceed_threshold(self, threshold: float, extra: int = 1) -> bool:
        """Whether adding ``extra`` items would push the loading rate past ``threshold``."""
        return (self._size + extra) / self.num_cells > threshold

    # ------------------------------------------------------------------ #
    # Memory model
    # ------------------------------------------------------------------ #

    def modelled_bytes(self, bytes_per_cell: int, bucket_overhead: int = 0) -> int:
        """Modelled C++ memory footprint of the table.

        Every allocated cell costs ``bytes_per_cell`` regardless of occupancy
        (the arrays are pre-allocated), plus an optional per-bucket overhead.
        """
        return self.num_cells * bytes_per_cell + self.num_buckets * bucket_overhead


_MISSING = object()


def drain_tables(tables: Iterable[CuckooHashTable]) -> list[tuple[int, object]]:
    """Remove and return all items from a collection of tables."""
    drained: list[tuple[int, object]] = []
    for table in tables:
        drained.extend(table.pop_all())
    return drained
