"""Configuration for CuckooGraph and its constituent cuckoo hash tables.

The symbols follow Table I of the paper:

===========  ==================================================================
Symbol        Meaning
===========  ==================================================================
``d``         Number of cells per bucket in L/S-CHT
``R``         Number of large slots in Part 2 of each cell
``G``         Preset loading-rate threshold for expansion
``lam``       Preset overall loading-rate threshold (Λ) for contraction
``T``         Maximum number of kick-out loops in L/S-CHT
``n``         Length (bucket count of the larger array) of the 1st S-CHT
===========  ==================================================================

The paper's tuned values (Section V-B) are ``d = 8``, ``G = 0.9``, ``T = 250``
and ``R = 3`` with a 2:1 ratio between the two bucket arrays of every table.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace

from .errors import ConfigurationError


@dataclass(frozen=True)
class CuckooGraphConfig:
    """Immutable parameter set for a :class:`~repro.core.graph.CuckooGraph`.

    Attributes:
        d: Cells per bucket in both L-CHT and S-CHT.
        R: Number of large slots per cell (so Part 2 holds ``2 * R`` small
            slots before the first TRANSFORMATION).
        G: Loading-rate threshold triggering expansion of a table chain.
        lam: Overall loading-rate threshold (Λ) below which a chain contracts.
            The memory analysis (Section IV-B) assumes ``lam <= 2 * G / 3``; the
            default of 0.4 additionally keeps ``2 * lam < G`` so that halving a
            single table never pushes it past the expansion threshold.
        T: Maximum number of cuckoo kick-outs before an insertion is declared
            failed and routed to a denylist.
        initial_scht_length: Length ``n`` of the first S-CHT enabled for a
            node (number of buckets in its larger array).
        initial_lcht_length: Length of the first L-CHT.
        array_ratio: Ratio of bucket counts between the two arrays of every
            table; the paper uses 2:1, expressed here as the divisor for the
            second array.
        small_denylist_capacity: Maximum number of ⟨u, v⟩ pairs the global
            S-DL may hold.
        large_denylist_capacity: Maximum number of whole cells the global
            L-DL may hold.
        use_denylist: Whether the DENYLIST optimisation is active.  When it is
            off, every insertion failure immediately expands the affected
            table chain by ``failure_expand_factor`` (the ablation baseline of
            Section V-C).
        failure_expand_factor: Expansion factor applied on insertion failure
            when the denylist is disabled (the paper's ablation uses 1.5x).
        collapse_chain_to_slots: Whether a node whose S-CHT chain shrinks back
            to at most ``2 * R`` neighbours is converted back to direct small
            slots.  The paper only describes S-CHT deletion/compression, so
            the default is ``False``.
        hash_family: Name of the hash family ("mult", "bob" or "modular").
        seed: Master seed from which every hash function seed is derived.
        track_counters: Whether per-operation probe/kick counters are updated.
    """

    d: int = 8
    R: int = 3
    G: float = 0.9
    lam: float = 0.4
    T: int = 250
    initial_scht_length: int = 4
    initial_lcht_length: int = 16
    array_ratio: int = 2
    small_denylist_capacity: int = 4096
    large_denylist_capacity: int = 4096
    use_denylist: bool = True
    failure_expand_factor: float = 1.5
    collapse_chain_to_slots: bool = False
    hash_family: str = "mult"
    seed: int = 1
    track_counters: bool = True

    def __post_init__(self) -> None:
        self.validate()

    def validate(self) -> None:
        """Raise :class:`ConfigurationError` if any parameter is out of range."""
        if self.d < 1:
            raise ConfigurationError(f"d must be >= 1, got {self.d}")
        if self.R < 1:
            raise ConfigurationError(f"R must be >= 1, got {self.R}")
        if not 0.0 < self.G <= 1.0:
            raise ConfigurationError(f"G must be in (0, 1], got {self.G}")
        if not 0.0 <= self.lam < 1.0:
            raise ConfigurationError(f"lam (Λ) must be in [0, 1), got {self.lam}")
        if self.lam > 2.0 * self.G / 3.0 + 1e-12:
            raise ConfigurationError(
                f"the stable-state analysis requires Λ <= 2G/3, "
                f"got Λ={self.lam} with G={self.G}"
            )
        if self.T < 1:
            raise ConfigurationError(f"T must be >= 1, got {self.T}")
        if self.initial_scht_length < 1:
            raise ConfigurationError(
                f"initial_scht_length must be >= 1, got {self.initial_scht_length}"
            )
        if self.initial_lcht_length < 1:
            raise ConfigurationError(
                f"initial_lcht_length must be >= 1, got {self.initial_lcht_length}"
            )
        if self.array_ratio < 1:
            raise ConfigurationError(f"array_ratio must be >= 1, got {self.array_ratio}")
        if self.small_denylist_capacity < 0 or self.large_denylist_capacity < 0:
            raise ConfigurationError("denylist capacities must be non-negative")
        if self.failure_expand_factor <= 1.0:
            raise ConfigurationError(
                f"failure_expand_factor must be > 1, got {self.failure_expand_factor}"
            )

    @property
    def small_slots_per_cell(self) -> int:
        """Number of direct small slots in Part 2 before TRANSFORMATION (2R)."""
        return 2 * self.R

    @property
    def weighted_slots_per_cell(self) -> int:
        """Number of ⟨v, w⟩ slots available in the weighted/extended version (R)."""
        return self.R

    def with_overrides(self, **changes) -> "CuckooGraphConfig":
        """Return a copy of this configuration with selected fields replaced."""
        return replace(self, **changes)


#: The configuration used throughout the paper's evaluation (Section V-A/V-B).
PAPER_CONFIG = CuckooGraphConfig()


def tuning_grid() -> dict[str, list]:
    """Parameter grids explored by the paper's tuning experiments (Figs. 2-4)."""
    return {
        "d": [4, 8, 16, 32],
        "G": [0.8, 0.85, 0.9, 0.95],
        "T": [50, 150, 250, 350],
    }
