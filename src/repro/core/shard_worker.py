"""Worker-process side of ``ShardedCuckooGraph(executor="processes")``.

The threaded executor exercises the sharded front-end's concurrency
*structure*, but under CPython's GIL the pure-Python shards never speed up
wall-clock.  This module is the missing half: a long-lived pool of worker
processes, each **owning** the full ``CuckooGraph`` state of the shards
assigned to it, so N shards really do use N cores.

Design:

* **Ownership.**  Shard ``i`` lives in worker ``i % workers`` for the
  store's whole lifetime.  The parent holds no shard state at all -- it
  routes, serializes and merges.  Workers never share anything, which is
  the same independence property that makes the threaded fan-out lock-free.

* **Wire format.**  A request is ``(method, payload)`` over a
  ``multiprocessing.Pipe``; a response is ``("ok", value)`` or
  ``("err", exception)``.  Mutation payloads reuse the WAL op encoding
  (:func:`repro.persist.wal.encode_ops` / ``decode_ops``) verbatim --
  one opcode byte plus 8-byte signed node ids per operation -- and the
  query payloads use the companion flat codecs
  (:func:`repro.persist.wal.encode_edges` / ``encode_nodes``), so the
  shard RPC serialization *is* the durability serialization; nothing
  bespoke crosses the process boundary.

* **Determinism.**  Each worker builds its shards from the same
  ``CuckooGraphConfig`` (seed ``config.seed + shard index``) and applies
  each shard's operations in the parent's partition order, so shard state,
  per-operation results, counters and modelled accesses are byte-identical
  to the serial and threaded executors (``tests/core/test_differential.py``
  enforces this three ways).

* **Failure.**  A worker that dies mid-conversation (killed, OOMed,
  segfaulted) is detected as a broken pipe; the pool kills its siblings
  and every subsequent operation raises
  :class:`~repro.core.errors.StoreClosedError` -- shard state is gone, so
  the store is gone, loudly.  ``close()`` is the clean path: a shutdown
  message per worker, then join.

The pool keeps exactly **one in-flight request per worker** (a lock per
pipe, acquired in worker order to stay deadlock-free across threads), which
is what lets the service dispatcher run one batch run per shard group
without ever interleaving two conversations on one pipe.
"""

from __future__ import annotations

import multiprocessing
import threading
from typing import Dict, List, Optional, Sequence, Tuple

from .config import CuckooGraphConfig
from .errors import StoreClosedError

#: Single-shard methods the generic "call" request may invoke.  A whitelist,
#: not ``getattr`` free-for-all: the parent is the only client, but a typo'd
#: method name should fail loudly in one place.
CALL_METHODS = frozenset({
    "insert_edge",
    "delete_edge",
    "has_edge",
    "successors",
    "out_degree",
    "has_node",
    "insert_weighted_edge",
    "edge_weight",
})

#: Whole-worker dump requests -> the shard iterator they materialise.
DUMP_METHODS = ("edges", "source_nodes", "weighted_edges")


def _build_shards(shard_indices: Sequence[int], config: CuckooGraphConfig,
                  weighted: bool):
    """Construct this worker's shards, seeded exactly like the in-process path."""
    # Imported here, not at module top: repro.persist imports
    # repro.core.sharded, so a module-level import from persist would cycle
    # during package initialisation.  Workers (and the parent) only need
    # these once a process-backed store is actually built.
    from .graph import CuckooGraph
    from .weighted import WeightedCuckooGraph

    factory = WeightedCuckooGraph if weighted else CuckooGraph
    return {
        index: factory(config.with_overrides(seed=config.seed + index))
        for index in shard_indices
    }


def _dispatch(shards: dict, method: str, payload):
    """Execute one request against this worker's shards."""
    from ..persist.wal import DELETE, INSERT, decode_edges, decode_nodes, decode_ops

    if method == "call":
        index, name, args = payload
        if name not in CALL_METHODS:
            raise ValueError(f"unknown shard-RPC call {name!r}")
        return getattr(shards[index], name)(*args)
    if method == "apply":
        counts: List[int] = []
        for index, ops_payload in payload:
            shard = shards[index]
            changed = 0
            for op in decode_ops(ops_payload):
                tag = op[0]
                if tag == INSERT:
                    if shard.insert_edge(op[1], op[2]):
                        changed += 1
                elif tag == DELETE:
                    if shard.delete_edge(op[1], op[2]):
                        changed += 1
                else:  # INSERT_WEIGHTED: apply; "changed" counts new edges only
                    if shard.edge_weight(op[1], op[2]) == 0:
                        changed += 1
                    shard.insert_weighted_edge(op[1], op[2], op[3])
            counts.append(changed)
        return counts
    if method == "has_edges":
        return [
            [shards[index].has_edge(u, v) for u, v in decode_edges(edges_payload)]
            for index, edges_payload in payload
        ]
    if method == "successors_many":
        return [
            [shards[index].successors(u) for u in decode_nodes(nodes_payload)]
            for index, nodes_payload in payload
        ]
    if method == "dump":
        if payload not in DUMP_METHODS:
            raise ValueError(f"unknown shard-RPC dump {payload!r}")
        return {index: list(getattr(shard, payload)())
                for index, shard in shards.items()}
    if method == "stats":
        return {
            index: {
                "num_edges": shard.num_edges,
                "num_source_nodes": shard.num_source_nodes,
                "accesses": shard.accesses,
                "memory_bytes": shard.memory_bytes(),
            }
            for index, shard in shards.items()
        }
    if method == "counters":
        return {index: shard.counters for index, shard in shards.items()}
    if method == "summaries":
        return {index: shard.structure_summary()
                for index, shard in shards.items()}
    if method == "reset_accesses":
        for shard in shards.values():
            shard.reset_accesses()
        return None
    raise ValueError(f"unknown shard-RPC method {method!r}")


def worker_main(conn, shard_indices: Sequence[int], config: CuckooGraphConfig,
                weighted: bool) -> None:
    """Request loop of one worker process.

    Builds the owned shards, then serves ``(method, payload)`` requests
    until a ``shutdown`` message or a hangup (parent died) arrives.
    Application-level exceptions travel back as ``("err", exc)`` and leave
    the worker alive; only transport failure or shutdown ends the loop.
    """
    shards = _build_shards(shard_indices, config, weighted)
    try:
        while True:
            try:
                method, payload = conn.recv()
            except (EOFError, OSError):
                return  # parent went away; daemon worker just exits
            if method == "shutdown":
                conn.send(("ok", None))
                return
            try:
                result = _dispatch(shards, method, payload)
            except BaseException as exc:  # noqa: BLE001 - relayed to the parent
                try:
                    conn.send(("err", exc))
                except Exception:
                    # The exception itself would not pickle; ship a portable
                    # stand-in (Connection.send pickles before writing, so a
                    # failed send leaves the pipe clean).
                    conn.send(("err", RuntimeError(
                        f"shard worker error: {type(exc).__name__}: {exc}"
                    )))
            else:
                conn.send(("ok", result))
    finally:
        conn.close()


class _Worker:
    """Parent-side handle of one worker process (pipe + in-flight lock)."""

    __slots__ = ("process", "conn", "lock")

    def __init__(self, process, conn):
        self.process = process
        self.conn = conn
        self.lock = threading.Lock()


class ShardWorkerPool:
    """Parent-side pool: routing table, request framing, lifecycle.

    Args:
        num_shards: Total shard count of the owning front-end.
        config: Base configuration shipped (pickled) to every worker.
        weighted: Build weighted shards in the workers.
        max_workers: Upper bound on worker processes; the effective count is
            ``min(max_workers, num_shards)`` and shard ``i`` is owned by
            worker ``i % workers``.
        start_method: ``multiprocessing`` start method override; defaults to
            ``fork`` where available (cheap, no re-import) and ``spawn``
            elsewhere.
    """

    def __init__(self, num_shards: int, config: CuckooGraphConfig,
                 weighted: bool, max_workers: int,
                 start_method: Optional[str] = None):
        if start_method is None:
            methods = multiprocessing.get_all_start_methods()
            start_method = "fork" if "fork" in methods else "spawn"
        context = multiprocessing.get_context(start_method)
        workers = max(1, min(max_workers, num_shards))
        #: Worker id owning each shard index.
        self.worker_of: List[int] = [index % workers for index in range(num_shards)]
        self._closed = False
        self.workers: List[_Worker] = []
        for worker_id in range(workers):
            owned = [index for index in range(num_shards)
                     if index % workers == worker_id]
            parent_conn, child_conn = context.Pipe()
            process = context.Process(
                target=worker_main,
                args=(child_conn, owned, config, weighted),
                name=f"cuckoo-shard-worker-{worker_id}",
                daemon=True,
            )
            process.start()
            child_conn.close()  # the parent keeps only its own end
            self.workers.append(_Worker(process, parent_conn))

    # ------------------------------------------------------------------ #
    # Requests
    # ------------------------------------------------------------------ #

    @property
    def closed(self) -> bool:
        return self._closed

    def _dead(self, cause: BaseException):
        """A worker process died under us: the shard state is gone."""
        self.kill()
        raise StoreClosedError(
            f"shard worker process died ({type(cause).__name__}); the "
            f"process-backed store is closed"
        ) from cause

    def _exchange(self, worker: _Worker, method: str, payload):
        """One send/recv conversation; the caller holds ``worker.lock``."""
        try:
            worker.conn.send((method, payload))
            status, value = worker.conn.recv()
        except (EOFError, BrokenPipeError, OSError) as exc:
            self._dead(exc)
        return status, value

    def request(self, worker_id: int, method: str, payload):
        """Run one request against one worker and return its result."""
        if self._closed:
            raise StoreClosedError(
                "process-backed store is closed; shard workers are gone"
            )
        worker = self.workers[worker_id]
        with worker.lock:
            status, value = self._exchange(worker, method, payload)
        if status == "err":
            raise value
        return value

    def scatter(self, requests: Dict[int, Tuple[str, object]]) -> Dict[int, object]:
        """One request per worker, concurrently; results keyed by worker id.

        Locks are acquired in worker-id order (a global order, so two
        threads scattering concurrently cannot deadlock), every request is
        sent before any response is awaited -- the workers genuinely run in
        parallel -- and **all** responses are drained before an application
        error is re-raised, so a failure in one worker never leaves a stale
        response queued on another's pipe.
        """
        if self._closed:
            raise StoreClosedError(
                "process-backed store is closed; shard workers are gone"
            )
        ordered = sorted(requests)
        acquired: List[_Worker] = []
        responses: Dict[int, Tuple[str, object]] = {}
        try:
            try:
                for worker_id in ordered:
                    worker = self.workers[worker_id]
                    worker.lock.acquire()
                    acquired.append(worker)
                    method, payload = requests[worker_id]
                    worker.conn.send((method, payload))
                for worker_id in ordered:
                    responses[worker_id] = self.workers[worker_id].conn.recv()
            except (EOFError, BrokenPipeError, OSError) as exc:
                self._dead(exc)
        finally:
            for worker in acquired:
                worker.lock.release()
        for worker_id in ordered:
            status, value = responses[worker_id]
            if status == "err":
                raise value
        return {worker_id: value for worker_id, (_, value) in responses.items()}

    def scatter_all(self, method: str, payload=None) -> Dict[int, object]:
        """Broadcast one request to every worker."""
        return self.scatter({worker_id: (method, payload)
                             for worker_id in range(len(self.workers))})

    # ------------------------------------------------------------------ #
    # Lifecycle
    # ------------------------------------------------------------------ #

    def close(self) -> None:
        """Shut every worker down cleanly.  Idempotent and terminal."""
        if self._closed:
            return
        self._closed = True
        for worker in self.workers:
            with worker.lock:
                try:
                    worker.conn.send(("shutdown", None))
                    worker.conn.recv()
                except Exception:
                    pass  # already dead; join/terminate below still runs
                finally:
                    worker.conn.close()
        for worker in self.workers:
            worker.process.join(timeout=5)
            if worker.process.is_alive():
                worker.process.terminate()
                worker.process.join(timeout=5)

    def kill(self) -> None:
        """Terminate every worker immediately (crash path).  Idempotent."""
        if self._closed:
            return
        self._closed = True
        for worker in self.workers:
            try:
                worker.conn.close()
            except Exception:
                pass
            if worker.process.is_alive():
                worker.process.terminate()
        for worker in self.workers:
            worker.process.join(timeout=5)

    def __del__(self):  # best-effort: daemon workers die with the parent too
        try:
            self.kill()
        except Exception:
            pass
