"""CuckooGraph: the basic (distinct-edge) version of the data structure.

This module assembles the pieces defined elsewhere in :mod:`repro.core` --
the L-CHT chain, per-node Part 2 containers that transform into S-CHT chains,
and the two denylists -- into the public directed-graph API described in
Section III-A3 of the paper:

* **Insertion** first queries the edge, then places the source node ``u`` in
  the L-CHT (kicking residents if needed, parking the final homeless cell in
  the L-DL), then places the destination ``v`` in Part 2, transforming small
  slots into an S-CHT chain and parking unplaceable values in the S-DL.
* **Query** probes the L-CHT(s), falls back to the L-DL for the node, then
  probes Part 2 / the S-CHT chain, falling back to the S-DL for the value.
* **Deletion** queries then removes, triggering the reverse transformation
  when a chain's overall loading rate drops below ``Λ``.

The class implements :class:`repro.interfaces.DynamicGraphStore`, so it is a
drop-in peer of the baseline schemes in every benchmark and analytics task.
"""

from __future__ import annotations

import random
from typing import Iterator, Optional

from ..interfaces import DynamicGraphStore
from ..memmodel.layout import CuckooLayout
from .chain import TableChain
from .config import CuckooGraphConfig, PAPER_CONFIG
from .counters import Counters
from .denylist import LargeDenylist, SmallDenylist
from .hashing import HashFamily
from .slots import AdjacencyPart2


class CuckooGraph(DynamicGraphStore):
    """Space-time efficient store for large-scale dynamic directed graphs.

    Args:
        config: Parameter set; defaults to the paper's tuned configuration
            (``d=8``, ``R=3``, ``G=0.9``, ``T=250``).

    Example:
        >>> graph = CuckooGraph()
        >>> graph.insert_edge(1, 2)
        True
        >>> graph.has_edge(1, 2)
        True
        >>> sorted(graph.successors(1))
        [2]
    """

    name = "CuckooGraph"

    def __init__(self, config: Optional[CuckooGraphConfig] = None):
        self.config = config if config is not None else PAPER_CONFIG
        self.counters = Counters()
        self._family = HashFamily(self.config.hash_family, self.config.seed)
        self._rng = random.Random(self.config.seed ^ 0x5EED)
        self._sdl = SmallDenylist(self.config.small_denylist_capacity, self.counters)
        self._ldl = LargeDenylist(self.config.large_denylist_capacity, self.counters)
        self._lcht = TableChain(
            config=self.config,
            hash_family=self._family,
            initial_length=self.config.initial_lcht_length,
            counters=self.counters,
            rng=self._rng,
            drain_source=self._ldl.drain,
        )
        self._num_edges = 0
        self._access_base = 0
        self._layout = CuckooLayout(R=self.config.R, weighted=self._weighted_layout())

    # ------------------------------------------------------------------ #
    # Modelled memory accesses
    # ------------------------------------------------------------------ #

    @property
    def accesses(self) -> int:
        """Modelled memory accesses: one unit per bucket probed.

        With ``d = 8`` and 8-byte slots a bucket is a cache line, so bucket
        probes are the natural cache-line-granularity unit for CuckooGraph --
        the same granularity the baselines count (one unit per list node,
        block or index level touched).
        """
        return self.counters.bucket_probes - self._access_base

    def reset_accesses(self) -> None:
        """Zero the modelled memory-access counter."""
        self._access_base = self.counters.bucket_probes

    # ------------------------------------------------------------------ #
    # Layout hooks overridden by the extended versions
    # ------------------------------------------------------------------ #

    def _weighted_layout(self) -> bool:
        return False

    def _slot_capacity(self) -> int:
        return self.config.small_slots_per_cell

    # ------------------------------------------------------------------ #
    # Node-level plumbing
    # ------------------------------------------------------------------ #

    def _new_part2(self, u: int) -> AdjacencyPart2:
        """Create the Part 2 container for a newly seen source node."""
        return AdjacencyPart2(
            config=self.config,
            hash_family=self._family,
            counters=self.counters,
            rng=self._rng,
            slot_capacity=self._slot_capacity(),
            drain_source=(lambda: self._sdl.drain_for_source(u)),
        )

    def _find_part2(self, u: int) -> Optional[AdjacencyPart2]:
        """Locate the Part 2 of node ``u`` in the L-CHT chain or the L-DL."""
        part2 = self._lcht.get(u)
        if part2 is not None:
            return part2
        return self._ldl.get(u)

    def _park_small(self, u: int, leftovers: list[tuple[int, object]],
                    part2: AdjacencyPart2) -> None:
        """Handle S-CHT insertion failures according to the denylist policy."""
        if not leftovers:
            return
        if self.config.use_denylist:
            for v, payload in leftovers:
                self._sdl.add(u, v, payload)
            return
        # Ablation mode: expand on every failure instead of denylisting.
        pending = list(leftovers)
        while pending:
            pending_next: list[tuple[int, object]] = []
            pending_next.extend(part2.force_expand())
            for v, payload in pending:
                pending_next.extend(part2.insert(v, payload))
            if len(pending_next) >= len(pending) and pending_next == pending:
                # No progress; fall back to the denylist to preserve correctness.
                for v, payload in pending_next:
                    self._sdl.add(u, v, payload)
                return
            pending = pending_next

    def _park_large(self, leftovers: list[tuple[int, object]]) -> None:
        """Handle L-CHT insertion failures according to the denylist policy."""
        if not leftovers:
            return
        if self.config.use_denylist:
            for node, part2 in leftovers:
                self._ldl.add(node, part2)
            return
        pending = list(leftovers)
        while pending:
            pending_next: list[tuple[int, object]] = []
            pending_next.extend(self._lcht.expand())
            for node, part2 in pending:
                pending_next.extend(self._lcht.insert(node, part2))
            if pending_next == pending:
                for node, part2 in pending_next:
                    self._ldl.add(node, part2)
                return
            pending = pending_next

    def _remove_node_if_empty(self, u: int, part2: AdjacencyPart2) -> None:
        """Drop ``u`` from the structure once its last neighbour is deleted."""
        if len(part2) > 0 or self._sdl.successors_of(u):
            return
        if self._ldl.remove(u):
            return
        deleted, leftovers = self._lcht.delete(u)
        if deleted:
            self._park_large(leftovers)

    # ------------------------------------------------------------------ #
    # DynamicGraphStore API
    # ------------------------------------------------------------------ #

    def insert_edge(self, u: int, v: int) -> bool:
        """Insert the directed edge ``⟨u, v⟩``; return ``True`` if it was new.

        Following the paper's Insertion Step 1, the edge is first queried; the
        located cell is reused for the actual placement so the pre-query costs
        no additional bucket probes.
        """
        self.counters.edges_inserted += 1
        part2 = self._find_part2(u)
        if part2 is not None:
            if v in part2 or self._sdl.contains(u, v):
                return False
            self._park_small(u, part2.insert(v, self._default_payload()), part2)
        else:
            if self._sdl.contains(u, v):
                return False
            part2 = self._new_part2(u)
            self._park_small(u, part2.insert(v, self._default_payload()), part2)
            self._park_large(self._lcht.insert(u, part2))
        self._num_edges += 1
        return True

    def has_edge(self, u: int, v: int) -> bool:
        """Whether the directed edge ``⟨u, v⟩`` is stored (Query operation)."""
        self.counters.edges_queried += 1
        return self._edge_present(u, v)

    def delete_edge(self, u: int, v: int) -> bool:
        """Delete ``⟨u, v⟩``; return ``True`` if it was present."""
        self.counters.edges_deleted += 1
        part2 = self._find_part2(u)
        if part2 is not None and v in part2:
            deleted, leftovers = part2.delete(v)
            self._park_small(u, leftovers, part2)
        elif self._sdl.contains(u, v):
            deleted = self._sdl.remove(u, v)
        else:
            return False
        if deleted:
            self._num_edges -= 1
            if part2 is not None:
                self._remove_node_if_empty(u, part2)
        return deleted

    def successors(self, u: int) -> list[int]:
        """Out-neighbours of ``u`` (successor query used by the analytics tasks)."""
        part2 = self._find_part2(u)
        result: list[int] = []
        if part2 is not None:
            result.extend(part2.neighbours())
        result.extend(v for v, _ in self._sdl.successors_of(u))
        return result

    def out_degree(self, u: int) -> int:
        """Out-degree of ``u`` without materialising the successor list twice."""
        part2 = self._find_part2(u)
        degree = len(part2) if part2 is not None else 0
        return degree + len(self._sdl.successors_of(u))

    def has_node(self, u: int) -> bool:
        """Whether ``u`` is currently stored as a source node."""
        return self._find_part2(u) is not None

    def source_nodes(self) -> Iterator[int]:
        """Iterate over source nodes (L-CHT residents first, then the L-DL)."""
        yield from self._lcht.keys()
        yield from self._ldl.keys()

    def edges(self) -> Iterator[tuple[int, int]]:
        """Iterate over every stored directed edge."""
        for u, part2 in self._cells():
            for v in part2.neighbours():
                yield (u, v)
        for (u, v), _ in self._sdl.items():
            yield (u, v)

    @property
    def num_edges(self) -> int:
        """Number of distinct directed edges currently stored."""
        return self._num_edges

    @property
    def num_source_nodes(self) -> int:
        """Number of distinct source nodes currently stored."""
        return len(self._lcht) + len(self._ldl)

    # ------------------------------------------------------------------ #
    # Memory model
    # ------------------------------------------------------------------ #

    def memory_bytes(self) -> int:
        """Modelled C++ footprint: L-CHT cells, S-CHT cells and both denylists."""
        layout = self._layout
        total = self._lcht.modelled_bytes(layout.lcht_cell_bytes)
        for _, part2 in self._cells():
            total += part2.chain_modelled_bytes(layout.scht_cell_bytes)
        total += self._sdl.modelled_bytes(layout.sdl_entry_bytes)
        total += self._ldl.modelled_bytes(layout.ldl_entry_bytes)
        return total

    # ------------------------------------------------------------------ #
    # Introspection helpers used by tests and benchmarks
    # ------------------------------------------------------------------ #

    @property
    def lcht(self) -> TableChain:
        """The L-CHT chain (exposed for tests and the cost-model experiments)."""
        return self._lcht

    @property
    def small_denylist(self) -> SmallDenylist:
        """The global S-DL."""
        return self._sdl

    @property
    def large_denylist(self) -> LargeDenylist:
        """The global L-DL."""
        return self._ldl

    def part2_of(self, u: int) -> Optional[AdjacencyPart2]:
        """Part 2 container of ``u`` (``None`` if ``u`` is not a source node)."""
        return self._find_part2(u)

    def structure_summary(self) -> dict[str, object]:
        """A snapshot of the structural state, handy for debugging and reports."""
        transformed = sum(1 for _, part2 in self._cells() if part2.is_transformed)
        return {
            "num_edges": self._num_edges,
            "num_source_nodes": self.num_source_nodes,
            "lcht_tables": self._lcht.table_lengths,
            "lcht_loading_rate": self._lcht.overall_loading_rate,
            "nodes_with_scht_chain": transformed,
            "small_denylist_entries": len(self._sdl),
            "large_denylist_entries": len(self._ldl),
            "memory_bytes": self.memory_bytes(),
        }

    # ------------------------------------------------------------------ #
    # Internals
    # ------------------------------------------------------------------ #

    def _default_payload(self):
        """Payload stored alongside a neighbour (``None`` in the basic version)."""
        return None

    def _edge_present(self, u: int, v: int) -> bool:
        part2 = self._find_part2(u)
        if part2 is not None and v in part2:
            return True
        return self._sdl.contains(u, v)

    def _cells(self) -> Iterator[tuple[int, AdjacencyPart2]]:
        """Iterate over every (u, Part 2) cell in the L-CHT chain and the L-DL."""
        yield from self._lcht.items()
        yield from self._ldl.items()
