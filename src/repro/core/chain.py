"""The TRANSFORMATION technique: chains of cuckoo hash tables.

A *table chain* is the set of up to ``R`` cuckoo hash tables reachable from
the ``R`` large slots of a cell (an "S-CHT chain" in the paper's terms), or
equivalently the set of L-CHTs a graph maintains.  The chain smoothly expands
and contracts following the rule illustrated by Table II of the paper
(reproduced here for ``R = 3`` with initial length ``n``)::

    step  tables (lengths)
    0     [n]
    1     [n, n/2]
    2     [n, n/2, n/2]
    3     [2n, n]           <- the three tables merge into one of length 2n,
    4     [2n, n, n]           and a fresh table of half that length opens
    5     [4n, 2n]
    6     [4n, 2n, 2n]
    ...

Forward transformation (expansion) triggers when the most recently enabled
table's loading rate reaches ``G`` before a new item arrives.  Reverse
transformation (contraction) triggers when a deletion drops the chain's
*overall* loading rate below ``Λ``: with two or more tables the table that
held the deleted item is dissolved into its siblings; with a single table the
table is compressed to half its length.
"""

from __future__ import annotations

import random
from typing import Callable, Iterator, Optional

from .config import CuckooGraphConfig
from .counters import Counters
from .cuckoo_table import CuckooHashTable
from .hashing import HashFamily

#: Type of the optional hook used to drain denylisted items back into a chain
#: right after it expands.  It must return ``(key, value)`` pairs and remove
#: them from wherever they were parked.
DrainSource = Callable[[], list[tuple[int, object]]]


class TableChain:
    """A chain of cuckoo hash tables governed by the TRANSFORMATION rule.

    The chain behaves as a single ``key -> value`` map whose capacity grows
    and shrinks in the pattern of Table II.  Insertion failures are *not*
    swallowed: the leftover pairs are returned to the caller, which routes
    them to the appropriate denylist (or forces an expansion when running the
    denylist-free ablation).

    Args:
        config: Graph-wide parameter set.
        hash_family: Source of hash-function pairs for newly enabled tables.
        initial_length: Length ``n`` of the first table.
        counters: Shared operation counters.
        rng: Random source for eviction decisions.
        drain_source: Optional hook returning previously denylisted items that
            belong to this chain; called after every expansion, per the
            DENYLIST design ("each time it is the S-CHT's turn to expand ...").
    """

    __slots__ = (
        "config",
        "_family",
        "_initial_length",
        "_counters",
        "_rng",
        "tables",
        "drain_source",
        "transform_step",
    )

    def __init__(
        self,
        config: CuckooGraphConfig,
        hash_family: HashFamily,
        initial_length: int,
        counters: Optional[Counters] = None,
        rng: Optional[random.Random] = None,
        drain_source: Optional[DrainSource] = None,
    ):
        self.config = config
        self._family = hash_family
        self._initial_length = max(1, initial_length)
        self._counters = counters if counters is not None else Counters()
        self._rng = rng if rng is not None else random.Random(config.seed)
        self.drain_source = drain_source
        self.transform_step = 0
        self.tables: list[CuckooHashTable] = [self._new_table(self._initial_length)]

    # ------------------------------------------------------------------ #
    # Construction helpers
    # ------------------------------------------------------------------ #

    def _new_table(self, length: int) -> CuckooHashTable:
        return CuckooHashTable(
            length=max(1, length),
            d=self.config.d,
            hash_pair=self._family.make_pair(),
            max_kicks=self.config.T,
            array_ratio=self.config.array_ratio,
            counters=self._counters,
            rng=self._rng,
        )

    # ------------------------------------------------------------------ #
    # Introspection
    # ------------------------------------------------------------------ #

    def __len__(self) -> int:
        return sum(len(table) for table in self.tables)

    @property
    def num_tables(self) -> int:
        """Number of currently enabled tables in the chain."""
        return len(self.tables)

    @property
    def table_lengths(self) -> list[int]:
        """Lengths of the enabled tables, oldest first (matches Table II rows)."""
        return [table.length for table in self.tables]

    @property
    def total_cells(self) -> int:
        """Total number of allocated cells across the chain."""
        return sum(table.num_cells for table in self.tables)

    @property
    def overall_loading_rate(self) -> float:
        """Items divided by allocated cells across the whole chain."""
        cells = self.total_cells
        return len(self) / cells if cells else 0.0

    def items(self) -> Iterator[tuple[int, object]]:
        """Iterate over every ``(key, value)`` pair stored in the chain."""
        for table in self.tables:
            yield from table.items()

    def keys(self) -> Iterator[int]:
        """Iterate over every key stored in the chain."""
        for table in self.tables:
            yield from table.keys()

    def __contains__(self, key: int) -> bool:
        return self.get(key, _MISSING) is not _MISSING

    # ------------------------------------------------------------------ #
    # Lookup / insert / delete
    # ------------------------------------------------------------------ #

    def get(self, key: int, default=None):
        """Return the value stored for ``key``, searching every table."""
        for table in self.tables:
            value = table.get(key, _MISSING)
            if value is not _MISSING:
                return value
        return default

    def update(self, key: int, value) -> bool:
        """Overwrite the value of an existing key; ``False`` when it is absent."""
        for table in self.tables:
            if table.update(key, value):
                return True
        return False

    def insert(self, key: int, value=None, assume_absent: bool = False) -> list[tuple[int, object]]:
        """Insert ``key -> value`` into the chain.

        Returns the (possibly empty) list of pairs that could not be placed
        anywhere even after kick-outs; the caller is responsible for parking
        them in a denylist or forcing an expansion.

        Args:
            key: Key to insert.
            value: Value to associate with the key.
            assume_absent: Skip the older-table overwrite scan.  Callers that
                have just queried the chain (the graph's Insertion Step 1)
                pass ``True`` so the pre-query is not paid twice.
        """
        # Overwrite in place when the key already lives in an *older* table,
        # so a chain never holds two copies of the same key.  The newest
        # table handles its own overwrite inside ``insert`` at no extra probe
        # cost, so single-table chains (the common case) skip this scan.
        if not assume_absent:
            for table in self.tables[:-1]:
                if key in table:
                    table.insert(key, value)
                    return []

        newest = self.tables[-1]
        leftovers: list[tuple[int, object]] = []
        if newest.would_exceed_threshold(self.config.G, extra=1) or (
            newest.loading_rate >= self.config.G
        ):
            leftovers.extend(self.expand())
            newest = self.tables[-1]

        leftover = newest.insert(key, value)
        if leftover is not None:
            leftovers.append(leftover)
        return leftovers

    def delete(self, key: int) -> tuple[bool, list[tuple[int, object]]]:
        """Delete ``key`` from the chain.

        Returns ``(deleted, leftovers)`` where ``leftovers`` are pairs that
        became homeless during a reverse transformation triggered by this
        deletion.
        """
        holder_index: Optional[int] = None
        for index, table in enumerate(self.tables):
            if table.delete(key):
                holder_index = index
                break
        if holder_index is None:
            return False, []

        leftovers: list[tuple[int, object]] = []
        if len(self) > 0 and self.overall_loading_rate < self.config.lam:
            leftovers = self._reverse_transform(holder_index)
        return True, leftovers

    # ------------------------------------------------------------------ #
    # Forward transformation
    # ------------------------------------------------------------------ #

    def expand(self) -> list[tuple[int, object]]:
        """Advance the chain one step of the transformation rule.

        Either enables a fresh table (half the length of the first one) or,
        when ``R`` tables are already enabled, merges them all into a single
        table of twice the first table's length and opens a fresh half-length
        table next to it.  Returns pairs that could not be re-homed during a
        merge.
        """
        self._counters.expansions += 1
        self.transform_step += 1
        leftovers: list[tuple[int, object]] = []
        if len(self.tables) < self.config.R:
            new_length = max(1, self.tables[0].length // 2)
            self.tables.append(self._new_table(new_length))
        else:
            merged_length = self.tables[0].length * 2
            residents: list[tuple[int, object]] = []
            for table in self.tables:
                residents.extend(table.pop_all())
            merged = self._new_table(merged_length)
            fresh = self._new_table(max(1, merged_length // 2))
            self.tables = [merged, fresh]
            leftovers.extend(self._reinsert(residents, targets=[merged, fresh]))
        leftovers.extend(self._drain_denylist())
        return leftovers

    def expand_on_failure(self, factor: Optional[float] = None) -> list[tuple[int, object]]:
        """Grow the newest table by ``factor`` and rehash it.

        This is the denylist-free fallback evaluated by the ablation study
        (Section V-C): every insertion failure expands the structure to 1.5x
        its original size instead of parking the item in a denylist.
        """
        factor = factor if factor is not None else self.config.failure_expand_factor
        self._counters.expansions += 1
        newest = self.tables[-1]
        residents = newest.pop_all()
        grown = self._new_table(max(newest.length + 1, int(newest.length * factor)))
        self.tables[-1] = grown
        return self._reinsert(residents, targets=[grown])

    # ------------------------------------------------------------------ #
    # Reverse transformation
    # ------------------------------------------------------------------ #

    def _reverse_transform(self, holder_index: int) -> list[tuple[int, object]]:
        """Contract the chain after a deletion dropped its overall LR below Λ.

        The contraction is skipped when the surviving tables would end up
        above the expansion threshold ``G`` -- contracting past that point
        would immediately cause kick storms and re-expansion, which neither
        the paper's design nor its Λ ≤ 2G/3 assumption intends.
        """
        items = len(self)
        if len(self.tables) >= 2:
            victim = self.tables[holder_index]
            remaining_cells = self.total_cells - victim.num_cells
            if remaining_cells <= 0 or items / remaining_cells > self.config.G:
                return []
            self._counters.contractions += 1
            self.tables.pop(holder_index)
            residents = victim.pop_all()
            return self._reinsert(residents, targets=self.tables)
        table = self.tables[0]
        if table.length <= 1:
            return []
        compressed_cells = max(1, table.length // 2) * self.config.d
        compressed_cells += max(1, max(1, table.length // 2) // self.config.array_ratio) * self.config.d
        if items / compressed_cells > self.config.G:
            return []
        self._counters.contractions += 1
        residents = table.pop_all()
        compressed = self._new_table(max(1, table.length // 2))
        self.tables = [compressed]
        return self._reinsert(residents, targets=[compressed])

    # ------------------------------------------------------------------ #
    # Internal helpers
    # ------------------------------------------------------------------ #

    def _reinsert(
        self,
        pairs: list[tuple[int, object]],
        targets: list[CuckooHashTable],
    ) -> list[tuple[int, object]]:
        """Re-home ``pairs`` into ``targets``; return the ones that failed."""
        leftovers: list[tuple[int, object]] = []
        self._counters.rehashed_items += len(pairs)
        for key, value in pairs:
            placed = False
            last_leftover: Optional[tuple[int, object]] = None
            # Fill the least-loaded table first: re-homing into an almost-full
            # table would burn the whole kick budget before giving up.
            for table in sorted(targets, key=lambda candidate: candidate.loading_rate):
                last_leftover = table.insert(key, value)
                if last_leftover is None:
                    placed = True
                    break
                # The insert displaced a different pair; keep chasing it.
                key, value = last_leftover
            if not placed and last_leftover is not None:
                leftovers.append(last_leftover)
        return leftovers

    def _drain_denylist(self) -> list[tuple[int, object]]:
        """Re-insert denylisted items belonging to this chain after an expansion."""
        if self.drain_source is None:
            return []
        pairs = self.drain_source()
        if not pairs:
            return []
        return self._reinsert(pairs, targets=list(self.tables))

    # ------------------------------------------------------------------ #
    # Memory model
    # ------------------------------------------------------------------ #

    def modelled_bytes(self, bytes_per_cell: int, bucket_overhead: int = 0) -> int:
        """Modelled C++ footprint of every table in the chain."""
        return sum(
            table.modelled_bytes(bytes_per_cell, bucket_overhead) for table in self.tables
        )


_MISSING = object()
