"""Exception hierarchy for the CuckooGraph reproduction.

The library prefers returning status values for expected outcomes (for
example, an insertion that lands in a denylist is not an error), and raises
exceptions only for conditions that indicate misuse or genuine capacity
exhaustion.
"""

from __future__ import annotations


class CuckooGraphError(Exception):
    """Base class for all errors raised by :mod:`repro`."""


class ConfigurationError(CuckooGraphError):
    """Raised when a :class:`~repro.core.config.CuckooGraphConfig` is invalid."""


class CapacityError(CuckooGraphError):
    """Raised when an insertion cannot be accommodated anywhere.

    This only happens when both the cuckoo tables *and* the relevant denylist
    are full.  The paper assumes denylists are "never full during insertion";
    this exception is the explicit signal that the assumption was violated for
    the chosen configuration.
    """


class NotFoundError(CuckooGraphError):
    """Raised when an operation references a node or edge that does not exist."""


class StoreClosedError(CuckooGraphError):
    """Raised when a batch operation is issued against a closed store.

    :meth:`repro.core.sharded.ShardedCuckooGraph.close` releases the
    executor resources for good; the batch paths (which are the ones that
    would lazily re-create a thread pool) refuse to run afterwards instead
    of silently resurrecting it.  ``close`` itself is idempotent.
    """


class IntegrationError(CuckooGraphError):
    """Raised by the database integrations (mini-Redis / mini-Neo4j)."""
