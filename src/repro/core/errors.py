"""Exception hierarchy for the CuckooGraph reproduction.

The library prefers returning status values for expected outcomes (for
example, an insertion that lands in a denylist is not an error), and raises
exceptions only for conditions that indicate misuse or genuine capacity
exhaustion.
"""

from __future__ import annotations


class CuckooGraphError(Exception):
    """Base class for all errors raised by :mod:`repro`."""


class ConfigurationError(CuckooGraphError):
    """Raised when a :class:`~repro.core.config.CuckooGraphConfig` is invalid."""


class CapacityError(CuckooGraphError):
    """Raised when an insertion cannot be accommodated anywhere.

    This only happens when both the cuckoo tables *and* the relevant denylist
    are full.  The paper assumes denylists are "never full during insertion";
    this exception is the explicit signal that the assumption was violated for
    the chosen configuration.
    """


class NotFoundError(CuckooGraphError):
    """Raised when an operation references a node or edge that does not exist."""


class StoreClosedError(CuckooGraphError):
    """Raised when a batch operation is issued against a closed store.

    :meth:`repro.core.sharded.ShardedCuckooGraph.close` releases the
    executor resources for good; the batch paths (which are the ones that
    would lazily re-create a thread pool) refuse to run afterwards instead
    of silently resurrecting it.  ``close`` itself is idempotent.
    """


class IntegrationError(CuckooGraphError):
    """Raised by the database integrations (mini-Redis / mini-Neo4j)."""


class PersistenceError(CuckooGraphError):
    """Raised on misuse of the durability subsystem (:mod:`repro.persist`).

    Examples: appending to a closed write-ahead log, initialising a fresh
    :class:`~repro.persist.PersistentStore` over a directory that already
    holds one (use :func:`~repro.persist.recover`), or recovering with a
    store whose sharding does not match the on-disk WAL segmentation.
    """


class WalCorruptError(PersistenceError):
    """Raised when a write-ahead log fails validation *before* its tail.

    The reader treats the first structurally incomplete record as the end
    of the log (the crash signature); damage it can *prove* no crashed
    append produces -- a foreign magic header, a checksum mismatch on a
    record with more data after it, an undecodable opcode inside a
    checksum-valid record -- raises this instead of being skipped.  (A
    corrupted length field claiming past end-of-file is indistinguishable
    from a torn tail and is treated as one.)
    """


class ReplicationError(CuckooGraphError):
    """Raised on misuse of the replication subsystem (:mod:`repro.replicate`).

    Examples: applying through a promoted (or closed) follower, attaching a
    follower whose store scheme cannot hold the primary's records, or a
    read-your-writes barrier that times out before the follower catches up.
    """


class SnapshotCorruptError(PersistenceError):
    """Raised when a snapshot file fails its magic/length/checksum checks.

    Snapshots are written to a temporary file and atomically renamed into
    place, so a crash never leaves a half-written snapshot under the final
    name; corruption therefore always indicates external damage.
    """
