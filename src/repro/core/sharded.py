"""Sharded front-end: hash-partitioning CuckooGraph for scale-out workloads.

The paper evaluates a single CuckooGraph instance; scaling the reproduction
toward "heavy traffic" service means routing operations across *independent*
partitions, the same way clustered/partitioned worker designs split a global
problem into per-cluster sub-problems.  :class:`ShardedCuckooGraph` implements
that front-end:

* **Partitioning.**  Every directed edge ``⟨u, v⟩`` lives on the shard owned
  by its *source* node ``u``.  The shard index is a deterministic
  multiply-shift hash of ``u`` reduced modulo the shard count, so the same
  node always lands on the same shard -- across operations, across instances
  and across processes.  Because all of ``u``'s out-edges share a shard,
  ``successors(u)`` and ``out_degree(u)`` are single-shard operations.

* **Independence.**  Each shard is a complete :class:`~repro.core.graph.CuckooGraph`
  (or :class:`~repro.core.weighted.WeightedCuckooGraph`) with its own hash
  family, denylists and counters; shards never coordinate.  This is exactly
  the property that lets a deployment place shards on separate cores or
  machines.

* **Batching.**  The batch operations (:meth:`insert_edges`,
  :meth:`delete_edges`, :meth:`has_edges`, :meth:`successors_many`) group a
  request stream per shard first and then drain each group with the shard's
  bound method, amortizing routing, attribute lookups and dispatch over the
  whole group instead of paying them per edge.  Results are scattered back in
  input order where order matters (:meth:`has_edges`).

* **Pluggable executor.**  ``executor="serial"`` (default) drains the
  per-shard groups one after another; ``executor="threads"`` submits each
  group to a shared thread pool so independent shards execute concurrently.
  Because a group only ever touches its own shard, no locking is needed, and
  results are merged in the same deterministic per-shard order as the serial
  path, so return values, counters and modelled accesses are identical
  between the executors (``tests/core/test_differential.py`` enforces
  this).  Under CPython's GIL the pure-Python shards do not speed up
  wall-clock under threads; ``executor="processes"`` is the executor that
  does: a long-lived pool of worker processes (see
  :mod:`~repro.core.shard_worker`) each *owns* its shards' state, the
  parent ships per-shard batch groups over the WAL op encoding
  (:func:`repro.persist.wal.encode_ops`) and merges results, counters and
  accesses back deterministically -- N shards on N cores, observably
  identical to the serial executor.

* **Aggregation.**  ``accesses``, ``counters``, ``memory_bytes`` and
  ``structure_summary`` combine the per-shard quantities, so the sharded
  store drops into every benchmark template and memory experiment unchanged.

The class implements :class:`repro.interfaces.DynamicGraphStore` and passes
the same store-contract and differential suites as the single-instance
structures (see ``tests/core/test_sharded.py`` and
``tests/core/test_differential.py``).
"""

from __future__ import annotations

from concurrent.futures import ThreadPoolExecutor
from typing import Callable, Iterable, Iterator, Optional, TypeVar

from ..interfaces import DynamicGraphStore, WeightedGraphStore
from .config import CuckooGraphConfig, PAPER_CONFIG
from .counters import Counters
from .errors import ConfigurationError, StoreClosedError
from .graph import CuckooGraph
from .weighted import WeightedCuckooGraph

_MASK64 = 0xFFFFFFFFFFFFFFFF

#: Executor names accepted by :class:`ShardedCuckooGraph`.
EXECUTORS = ("serial", "threads", "processes")

_T = TypeVar("_T")

#: Fixed odd multiplier for the shard-routing hash (multiply-shift).  It is a
#: constant -- not drawn from a seeded RNG -- so that routing is stable across
#: instances, which the rebalancing-free scale-out story depends on.
_ROUTE_MULTIPLIER = 0x9E3779B97F4A7C15


def shard_index(node: int, num_shards: int) -> int:
    """Deterministic shard index of a source node.

    A multiply-shift hash decorrelates the shard choice from the low bits of
    the node id (sequential ids would otherwise stripe shards), and the high
    32 bits are reduced modulo the shard count.
    """
    return (((node * _ROUTE_MULTIPLIER) & _MASK64) >> 32) % num_shards


class ShardedCuckooGraph(DynamicGraphStore):
    """Hash-partitioned collection of independent CuckooGraph shards.

    Args:
        num_shards: Number of independent partitions (``>= 1``).
        config: Base CuckooGraph configuration; each shard derives its own
            hash seeds from it (``seed + shard index``) so two shards never
            share hash functions.
        weighted: Build :class:`WeightedCuckooGraph` shards (duplicate edges
            increment a weight) instead of the basic distinct-edge version.
        shard_factory: Optional override constructing one shard from its
            :class:`CuckooGraphConfig`; takes precedence over ``weighted``.
            Not supported with ``executor="processes"`` (shards are built
            inside the workers from the picklable config).
        executor: ``"serial"`` drains per-shard batch groups sequentially;
            ``"threads"`` fans them out over a shared thread pool (one worker
            per shard by default); ``"processes"`` routes them to a pool of
            long-lived worker processes that own the shard state (true
            multicore -- see :mod:`~repro.core.shard_worker`).  Results,
            counters and accesses are identical in every case.
        max_workers: Pool size for ``executor="threads"``/``"processes"``;
            defaults to the shard count.  Ignored by the serial executor.

    Example:
        >>> graph = ShardedCuckooGraph(num_shards=4)
        >>> graph.insert_edges([(1, 2), (1, 3), (2, 3)])
        3
        >>> graph.has_edges([(1, 2), (9, 9)])
        [True, False]
        >>> sorted(graph.successors(1))
        [2, 3]
    """

    name = "ShardedCuckooGraph"

    def __init__(
        self,
        num_shards: int = 4,
        config: Optional[CuckooGraphConfig] = None,
        weighted: bool = False,
        shard_factory: Optional[Callable[[CuckooGraphConfig], CuckooGraph]] = None,
        executor: str = "serial",
        max_workers: Optional[int] = None,
    ):
        if num_shards < 1:
            raise ConfigurationError(f"num_shards must be >= 1, got {num_shards}")
        if executor not in EXECUTORS:
            raise ConfigurationError(
                f"executor must be one of {EXECUTORS}, got {executor!r}"
            )
        self.config = config if config is not None else PAPER_CONFIG
        self.num_shards = num_shards
        self.executor = executor
        self._max_workers = max_workers if max_workers is not None else num_shards
        self._pool: Optional[ThreadPoolExecutor] = None
        self._procs = None  # ShardWorkerPool under executor="processes"
        self._closed = False
        if executor == "processes":
            if shard_factory is not None:
                raise ConfigurationError(
                    "shard_factory is not supported with executor='processes': "
                    "shards are built inside the worker processes from the "
                    "picklable config (use weighted=True for weighted shards)"
                )
            # Deferred import: repro.persist (which the worker RPC encoding
            # lives in) imports this module during package initialisation.
            from .shard_worker import ShardWorkerPool

            self.weighted = weighted
            #: Empty under the processes executor: shard state lives in (and
            #: never leaves) the worker processes.
            self.shards: list[CuckooGraph] = []
            self._procs = ShardWorkerPool(
                num_shards=num_shards,
                config=self.config,
                weighted=weighted,
                max_workers=self._max_workers,
            )
            return
        if shard_factory is None:
            shard_factory = WeightedCuckooGraph if weighted else CuckooGraph
        self.shards = [
            shard_factory(self.config.with_overrides(seed=self.config.seed + index))
            for index in range(num_shards)
        ]
        # Weightedness is a property of what the factory actually built (a
        # custom factory takes precedence over the ``weighted`` argument).
        self.weighted = isinstance(self.shards[0], WeightedGraphStore)

    # ------------------------------------------------------------------ #
    # Executor
    # ------------------------------------------------------------------ #

    def _ensure_pool(self) -> ThreadPoolExecutor:
        """The shared thread pool, created on first threaded batch."""
        if self._closed:
            raise StoreClosedError(f"{self.name} is closed")
        if self._pool is None:
            self._pool = ThreadPoolExecutor(
                max_workers=self._max_workers, thread_name_prefix="cuckoo-shard"
            )
        return self._pool

    @property
    def closed(self) -> bool:
        """Whether :meth:`close` has been called."""
        return self._closed

    def close(self) -> None:
        """Release the executor for good.  Idempotent.

        After ``close`` the batch operations raise :class:`StoreClosedError`
        instead of lazily resurrecting the thread pool (double-``close`` and
        close-then-batch used to race exactly there); the single-operation
        read/write paths never involve the executor and keep working, so
        callers can still inspect a closed store.

        Under ``executor="processes"`` close is fully terminal: the shard
        state lives in the worker processes, so once they are shut down
        *every* operation -- single reads included -- raises
        :class:`StoreClosedError`.
        """
        if self._closed:
            return
        self._closed = True
        if self._pool is not None:
            self._pool.shutdown(wait=True)
            self._pool = None
        if self._procs is not None:
            self._procs.close()

    def __enter__(self) -> "ShardedCuckooGraph":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    def _run_per_shard(
        self, groups: dict[int, list], worker: Callable[[int, list], _T]
    ) -> list[tuple[int, _T]]:
        """Run ``worker(shard_index, payloads)`` for every group.

        Returns ``(shard index, worker result)`` pairs in the groups'
        first-seen order -- the same order the serial loop produces -- so
        every caller merges deterministically regardless of executor.  Each
        group touches only its own shard, which is what makes the threaded
        fan-out safe without locks.

        Exception caveat: if a worker raises, the serial path stops before
        later groups run, while the threaded path has already submitted every
        group and lets them finish before re-raising the first failure --
        post-exception shard state is therefore executor-dependent.  The
        stock shard operations never raise on well-formed edges, so this only
        matters for custom ``shard_factory`` stores with failing updates.
        """
        if self._closed:
            raise StoreClosedError(
                f"{self.name} is closed; batch operations are no longer accepted"
            )
        if self.executor == "threads" and len(groups) > 1:
            pool = self._ensure_pool()
            futures = [
                (index, pool.submit(worker, index, group))
                for index, group in groups.items()
            ]
            return [(index, future.result()) for index, future in futures]
        return [(index, worker(index, group)) for index, group in groups.items()]

    # ------------------------------------------------------------------ #
    # Process-executor RPC plumbing
    # ------------------------------------------------------------------ #

    def _proc_single(self, u: int, name: str, args: tuple):
        """One single-shard operation over the worker RPC."""
        procs = self._procs
        index = shard_index(u, self.num_shards)
        return procs.request(procs.worker_of[index], "call", (index, name, args))

    def _proc_groups(self, groups: dict[int, list], method: str,
                     encode: Callable[[list], bytes]) -> dict[int, object]:
        """Scatter per-shard batch groups to their owning workers.

        Each worker receives exactly one request carrying all of its shard
        groups (encoded with the WAL codecs) -- one in-flight run per shard
        group -- and the per-shard results come back keyed by shard index,
        so callers merge in the same first-seen group order as the serial
        executor.
        """
        procs = self._procs
        per_worker: dict[int, list] = {}
        for index, group in groups.items():
            per_worker.setdefault(procs.worker_of[index], []).append(
                (index, encode(group))
            )
        responses = procs.scatter(
            {worker_id: (method, payload)
             for worker_id, payload in per_worker.items()}
        )
        results: dict[int, object] = {}
        for worker_id, payload in per_worker.items():
            for (index, _), result in zip(payload, responses[worker_id]):
                results[index] = result
        return results

    def _proc_merged(self, method: str, payload=None) -> dict[int, object]:
        """Broadcast ``method`` to every worker; merge per-shard responses."""
        merged: dict[int, object] = {}
        for part in self._procs.scatter_all(method, payload).values():
            merged.update(part)
        return merged

    # ------------------------------------------------------------------ #
    # Routing
    # ------------------------------------------------------------------ #

    def spawn_empty(self) -> "ShardedCuckooGraph":
        """Fresh empty front-end with the same shard count, config and executor.

        A custom ``shard_factory`` is not propagated (it may close over
        state); the ``weighted`` flag carries the common case.
        """
        return ShardedCuckooGraph(
            num_shards=self.num_shards,
            config=self.config,
            weighted=self.weighted,
            executor=self.executor,
            max_workers=self._max_workers,
        )

    def shard_of(self, u: int) -> int:
        """Shard index owning source node ``u`` (stable for the graph's lifetime)."""
        return shard_index(u, self.num_shards)

    def _shard(self, u: int) -> CuckooGraph:
        return self.shards[shard_index(u, self.num_shards)]

    def _partition(self, pairs: Iterable[tuple[int, object]]) -> dict[int, list]:
        """Group ``(routing node, payload)`` pairs per owning shard.

        The single place the batch paths route through; the expression is the
        inlined body of :func:`shard_index` (kept inline so the per-item cost
        stays one multiply, not a function call).  Per-shard payload order
        follows input order.
        """
        num_shards = self.num_shards
        groups: dict[int, list] = {}
        for node, payload in pairs:
            index = (((node * _ROUTE_MULTIPLIER) & _MASK64) >> 32) % num_shards
            group = groups.get(index)
            if group is None:
                groups[index] = [payload]
            else:
                group.append(payload)
        return groups

    # ------------------------------------------------------------------ #
    # DynamicGraphStore API (single-operation paths)
    # ------------------------------------------------------------------ #

    def insert_edge(self, u: int, v: int) -> bool:
        """Insert ``⟨u, v⟩`` on the shard owning ``u``."""
        if self._procs is not None:
            return self._proc_single(u, "insert_edge", (u, v))
        return self._shard(u).insert_edge(u, v)

    def has_edge(self, u: int, v: int) -> bool:
        """Whether ``⟨u, v⟩`` is stored (probes exactly one shard)."""
        if self._procs is not None:
            return self._proc_single(u, "has_edge", (u, v))
        return self._shard(u).has_edge(u, v)

    def delete_edge(self, u: int, v: int) -> bool:
        """Delete ``⟨u, v⟩`` from the shard owning ``u``."""
        if self._procs is not None:
            return self._proc_single(u, "delete_edge", (u, v))
        return self._shard(u).delete_edge(u, v)

    def successors(self, u: int) -> list[int]:
        """Out-neighbours of ``u`` -- a single-shard lookup by construction."""
        if self._procs is not None:
            return self._proc_single(u, "successors", (u,))
        return self._shard(u).successors(u)

    def out_degree(self, u: int) -> int:
        """Out-degree of ``u`` without materialising the successor list."""
        if self._procs is not None:
            return self._proc_single(u, "out_degree", (u,))
        return self._shard(u).out_degree(u)

    def has_node(self, u: int) -> bool:
        """Whether ``u`` is currently stored as a source node."""
        if self._procs is not None:
            return self._proc_single(u, "has_node", (u,))
        return self._shard(u).has_node(u)

    def source_nodes(self) -> Iterator[int]:
        """Iterate over source nodes, shard by shard."""
        if self._procs is not None:
            merged = self._proc_merged("dump", "source_nodes")
            for index in range(self.num_shards):
                yield from merged[index]
            return
        for shard in self.shards:
            yield from shard.source_nodes()

    def edges(self) -> Iterator[tuple[int, int]]:
        """Iterate over every stored directed edge, shard by shard."""
        if self._procs is not None:
            merged = self._proc_merged("dump", "edges")
            for index in range(self.num_shards):
                yield from merged[index]
            return
        for shard in self.shards:
            yield from shard.edges()

    @property
    def num_edges(self) -> int:
        """Number of distinct directed edges across all shards."""
        if self._procs is not None:
            return sum(stats["num_edges"]
                       for stats in self._proc_merged("stats").values())
        return sum(shard.num_edges for shard in self.shards)

    @property
    def num_source_nodes(self) -> int:
        """Number of distinct source nodes across all shards."""
        if self._procs is not None:
            return sum(stats["num_source_nodes"]
                       for stats in self._proc_merged("stats").values())
        return sum(shard.num_source_nodes for shard in self.shards)

    # ------------------------------------------------------------------ #
    # Batch operations (the point of the front-end)
    # ------------------------------------------------------------------ #

    def _proc_apply(self, edges: Iterable[tuple[int, int]], tag: str) -> int:
        """Ship a mutation batch to the workers as WAL-encoded op groups."""
        from ..persist.wal import encode_ops

        groups = self._partition((edge[0], edge) for edge in edges)
        results = self._proc_groups(
            groups, "apply",
            lambda group: encode_ops((tag, u, v) for u, v in group),
        )
        return sum(results.values())

    def insert_edges(self, edges: Iterable[tuple[int, int]]) -> int:
        """Insert a batch of edges grouped per shard; return how many were new."""
        if self._procs is not None:
            from ..persist.wal import INSERT

            return self._proc_apply(edges, INSERT)
        shards = self.shards

        def worker(index: int, group: list) -> int:
            insert = shards[index].insert_edge
            inserted = 0
            for u, v in group:
                if insert(u, v):
                    inserted += 1
            return inserted

        groups = self._partition((edge[0], edge) for edge in edges)
        return sum(count for _, count in self._run_per_shard(groups, worker))

    def delete_edges(self, edges: Iterable[tuple[int, int]]) -> int:
        """Delete a batch of edges grouped per shard; return how many were present."""
        if self._procs is not None:
            from ..persist.wal import DELETE

            return self._proc_apply(edges, DELETE)
        shards = self.shards

        def worker(index: int, group: list) -> int:
            delete = shards[index].delete_edge
            deleted = 0
            for u, v in group:
                if delete(u, v):
                    deleted += 1
            return deleted

        groups = self._partition((edge[0], edge) for edge in edges)
        return sum(count for _, count in self._run_per_shard(groups, worker))

    def has_edges(self, edges: Iterable[tuple[int, int]]) -> list[bool]:
        """Membership of a batch of edges, in input order.

        The batch is routed per shard, each group is answered with the
        shard's bound ``has_edge`` (concurrently under the threaded
        executor), and the answers are scattered back to the positions the
        caller supplied.
        """
        edges = list(edges)
        if self._procs is not None:
            from ..persist.wal import encode_edges

            groups = self._partition(
                (edge[0], position) for position, edge in enumerate(edges)
            )
            results = self._proc_groups(
                groups, "has_edges",
                lambda positions: encode_edges(edges[p] for p in positions),
            )
            answers: list[bool] = [False] * len(edges)
            for index, positions in groups.items():
                for position, answer in zip(positions, results[index]):
                    answers[position] = answer
            return answers
        shards = self.shards

        def worker(index: int, positions: list) -> list[bool]:
            query = shards[index].has_edge
            return [query(*edges[position]) for position in positions]

        groups = self._partition(
            (edge[0], position) for position, edge in enumerate(edges)
        )
        answers: list[bool] = [False] * len(edges)
        for index, group_answers in self._run_per_shard(groups, worker):
            for position, answer in zip(groups[index], group_answers):
                answers[position] = answer
        return answers

    def successors_many(self, nodes: Iterable[int]) -> dict[int, list[int]]:
        """Successor lists for a batch of distinct source nodes, per shard.

        Honours the :class:`~repro.interfaces.DynamicGraphStore` batch
        contract: keys are the distinct requested nodes in first-occurrence
        order of the input (the per-shard answers are re-keyed back to that
        order), unknown nodes map to empty lists, and each list equals what
        ``successors`` would return.
        """
        ordered = list(dict.fromkeys(nodes))
        if self._procs is not None:
            from ..persist.wal import encode_nodes

            groups = self._partition((u, u) for u in ordered)
            results = self._proc_groups(groups, "successors_many", encode_nodes)
            gathered: dict[int, list[int]] = {}
            for index, group in groups.items():
                for u, succ in zip(group, results[index]):
                    gathered[u] = succ
            return {u: gathered[u] for u in ordered}
        shards = self.shards

        def worker(index: int, group: list) -> list[list[int]]:
            successors = shards[index].successors
            return [successors(u) for u in group]

        groups = self._partition((u, u) for u in ordered)
        gathered: dict[int, list[int]] = {}
        for index, group_lists in self._run_per_shard(groups, worker):
            for u, succ in zip(groups[index], group_lists):
                gathered[u] = succ
        return {u: gathered[u] for u in ordered}

    # ------------------------------------------------------------------ #
    # Weighted pass-throughs (only valid with weighted shards)
    # ------------------------------------------------------------------ #

    def _require_weighted(self) -> None:
        if not self.weighted:
            raise TypeError(
                "weighted operations need ShardedCuckooGraph(weighted=True)"
            )

    def insert_weighted_edge(self, u: int, v: int, delta: int = 1) -> int:
        """Insert ``⟨u, v⟩`` or bump its weight by ``delta``; return the new weight."""
        self._require_weighted()
        if self._procs is not None:
            return self._proc_single(u, "insert_weighted_edge", (u, v, delta))
        return self._shard(u).insert_weighted_edge(u, v, delta)

    def edge_weight(self, u: int, v: int) -> int:
        """Current weight of ``⟨u, v⟩`` (0 if the edge is absent)."""
        self._require_weighted()
        if self._procs is not None:
            return self._proc_single(u, "edge_weight", (u, v))
        return self._shard(u).edge_weight(u, v)

    def weighted_edges(self) -> Iterator[tuple[int, int, int]]:
        """Iterate over ``(u, v, w)`` triples, shard by shard."""
        self._require_weighted()
        if self._procs is not None:
            merged = self._proc_merged("dump", "weighted_edges")
            for index in range(self.num_shards):
                yield from merged[index]
            return
        for shard in self.shards:
            yield from shard.weighted_edges()

    # ------------------------------------------------------------------ #
    # Aggregated accounting
    # ------------------------------------------------------------------ #

    @property
    def accesses(self) -> int:
        """Modelled memory accesses summed over every shard."""
        if self._procs is not None:
            return sum(stats["accesses"]
                       for stats in self._proc_merged("stats").values())
        return sum(shard.accesses for shard in self.shards)

    def reset_accesses(self) -> None:
        """Zero the modelled memory-access counter of every shard."""
        if self._procs is not None:
            self._procs.scatter_all("reset_accesses")
            return
        for shard in self.shards:
            shard.reset_accesses()

    @property
    def counters(self) -> Counters:
        """Aggregated operation counters (a fresh sum; do not mutate)."""
        total = Counters()
        if self._procs is not None:
            merged = self._proc_merged("counters")
            for index in range(self.num_shards):
                total = total + merged[index]
            return total
        for shard in self.shards:
            total = total + shard.counters
        return total

    def memory_bytes(self) -> int:
        """Modelled memory footprint summed over every shard."""
        if self._procs is not None:
            return sum(stats["memory_bytes"]
                       for stats in self._proc_merged("stats").values())
        return sum(shard.memory_bytes() for shard in self.shards)

    def shard_sizes(self) -> list[int]:
        """Edges per shard, in shard order (balance diagnostic)."""
        if self._procs is not None:
            stats = self._proc_merged("stats")
            return [stats[index]["num_edges"]
                    for index in range(self.num_shards)]
        return [shard.num_edges for shard in self.shards]

    def structure_summary(self) -> dict[str, object]:
        """Aggregate snapshot plus the per-shard summaries."""
        if self._procs is not None:
            stats = self._proc_merged("stats")
            summaries = self._proc_merged("summaries")
            return {
                "num_shards": self.num_shards,
                "num_edges": sum(s["num_edges"] for s in stats.values()),
                "num_source_nodes": sum(s["num_source_nodes"]
                                        for s in stats.values()),
                "shard_edge_counts": [stats[index]["num_edges"]
                                      for index in range(self.num_shards)],
                "memory_bytes": sum(s["memory_bytes"] for s in stats.values()),
                "shards": [summaries[index]
                           for index in range(self.num_shards)],
            }
        return {
            "num_shards": self.num_shards,
            "num_edges": self.num_edges,
            "num_source_nodes": self.num_source_nodes,
            "shard_edge_counts": self.shard_sizes(),
            "memory_bytes": self.memory_bytes(),
            "shards": [shard.structure_summary() for shard in self.shards],
        }
