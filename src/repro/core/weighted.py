"""The extended (streaming) version of CuckooGraph with duplicate-edge support.

Section III-B customises the basic structure for streaming scenarios: each
Part 2 small slot stores a ``⟨v, w⟩`` pair instead of a bare ``v`` (halving
the direct slot count from ``2R`` to ``R``), and the operations change as
follows:

* **Insertion** of an edge that already exists increments its weight instead
  of doing nothing.
* **Query** reports the edge together with its weight.
* **Deletion** decrements the weight and removes the edge only once the
  weight reaches zero.
"""

from __future__ import annotations

from ..interfaces import WeightedGraphStore
from .graph import CuckooGraph


class WeightedCuckooGraph(CuckooGraph, WeightedGraphStore):
    """CuckooGraph variant that counts duplicate edges with per-edge weights.

    Example:
        >>> graph = WeightedCuckooGraph()
        >>> graph.insert_weighted_edge(1, 2)
        1
        >>> graph.insert_weighted_edge(1, 2)
        2
        >>> graph.edge_weight(1, 2)
        2
        >>> graph.delete_edge(1, 2)   # decrements to 1, edge still present
        False
        >>> graph.has_edge(1, 2)
        True
    """

    name = "WeightedCuckooGraph"

    # ------------------------------------------------------------------ #
    # Layout hooks
    # ------------------------------------------------------------------ #

    def _weighted_layout(self) -> bool:
        return True

    def _slot_capacity(self) -> int:
        # Two small slots merge to hold one ⟨v, w⟩ pair, so only R direct slots.
        return self.config.weighted_slots_per_cell

    def _default_payload(self):
        return 1

    # ------------------------------------------------------------------ #
    # Weighted operations
    # ------------------------------------------------------------------ #

    def insert_weighted_edge(self, u: int, v: int, delta: int = 1) -> int:
        """Insert ``⟨u, v⟩`` or bump its weight by ``delta``; return the new weight.

        ``delta`` defaults to 1, matching the paper's "incrementing the
        corresponding w by 1 (or other defined value)".
        """
        if delta <= 0:
            raise ValueError(f"delta must be positive, got {delta}")
        self.counters.edges_inserted += 1
        part2 = self._find_part2(u)
        if part2 is not None:
            current = part2.get(v)
            if current is not None:
                part2.set(v, current + delta)
                return current + delta
            parked = self._sdl.get(u, v)
            if parked is not None:
                self._sdl.set(u, v, parked + delta)
                return parked + delta
            self._park_small(u, part2.insert(v, delta), part2)
        else:
            parked = self._sdl.get(u, v)
            if parked is not None:
                self._sdl.set(u, v, parked + delta)
                return parked + delta
            part2 = self._new_part2(u)
            self._park_small(u, part2.insert(v, delta), part2)
            self._park_large(self._lcht.insert(u, part2))
        self._num_edges += 1
        return delta

    def insert_edge(self, u: int, v: int) -> bool:
        """Insert ``⟨u, v⟩`` with weight 1, or increment an existing weight.

        Returns ``True`` only when the edge was newly created, so that the
        :class:`~repro.interfaces.DynamicGraphStore` contract (and the
        deduplicating benchmarks built on it) keep working.
        """
        return self.insert_weighted_edge(u, v) == 1

    def edge_weight(self, u: int, v: int) -> int:
        """Current weight of ``⟨u, v⟩`` (0 if the edge is absent)."""
        self.counters.edges_queried += 1
        payload = self._edge_payload(u, v)
        return int(payload) if payload is not None else 0

    def delete_edge(self, u: int, v: int) -> bool:
        """Decrement the weight of ``⟨u, v⟩``; delete it once the weight hits zero.

        Returns ``True`` when the edge was actually removed from the
        structure (its weight reached zero), ``False`` otherwise -- including
        the case where only the weight was decremented.
        """
        self.counters.edges_deleted += 1
        part2 = self._find_part2(u)
        if part2 is not None:
            payload = part2.get(v)
            if payload is not None:
                if payload > 1:
                    part2.set(v, payload - 1)
                    return False
                return self._remove_located(u, v, part2)
        parked = self._sdl.get(u, v)
        if parked is None:
            return False
        if parked > 1:
            self._sdl.set(u, v, parked - 1)
            return False
        self._sdl.remove(u, v)
        self._num_edges -= 1
        if part2 is not None:
            self._remove_node_if_empty(u, part2)
        return True

    def remove_edge_completely(self, u: int, v: int) -> bool:
        """Remove ``⟨u, v⟩`` regardless of its weight; return ``True`` if present."""
        self.counters.edges_deleted += 1
        if self._edge_payload(u, v) is None:
            return False
        return self._remove_edge_entry(u, v)

    def weighted_edges(self):
        """Iterate over ``(u, v, w)`` triples."""
        for u, part2 in self._cells():
            for v, w in part2.items():
                yield (u, v, int(w))
        for (u, v), w in self._sdl.items():
            yield (u, v, int(w))

    @property
    def total_weight(self) -> int:
        """Sum of all edge weights (equals the number of streamed insertions)."""
        return sum(w for _, _, w in self.weighted_edges())

    # ------------------------------------------------------------------ #
    # Internals
    # ------------------------------------------------------------------ #

    def _edge_payload(self, u: int, v: int):
        part2 = self._find_part2(u)
        if part2 is not None:
            payload = part2.get(v)
            if payload is not None:
                return payload
        return self._sdl.get(u, v)

    def _set_edge_payload(self, u: int, v: int, payload) -> None:
        part2 = self._find_part2(u)
        if part2 is not None and part2.set(v, payload):
            return
        if self._sdl.contains(u, v):
            self._sdl.set(u, v, payload)
            return
        raise KeyError(f"edge ({u}, {v}) not found while updating its weight")

    def _remove_edge_entry(self, u: int, v: int) -> bool:
        part2 = self._find_part2(u)
        if part2 is not None and v in part2:
            return self._remove_located(u, v, part2)
        deleted = self._sdl.remove(u, v)
        if deleted:
            self._num_edges -= 1
            if part2 is not None:
                self._remove_node_if_empty(u, part2)
        return deleted

    def _remove_located(self, u: int, v: int, part2) -> bool:
        """Remove ``v`` from an already-located Part 2 and fix up bookkeeping."""
        deleted, leftovers = part2.delete(v)
        self._park_small(u, leftovers, part2)
        if deleted:
            self._num_edges -= 1
            self._remove_node_if_empty(u, part2)
        return deleted
