"""Core CuckooGraph data structures (the paper's primary contribution).

The public entry points are:

* :class:`~repro.core.graph.CuckooGraph` -- the basic version storing
  distinct directed edges (Section III-A);
* :class:`~repro.core.weighted.WeightedCuckooGraph` -- the extended version
  that counts duplicate edges with per-edge weights (Section III-B);
* :class:`~repro.core.multiedge.MultiEdgeCuckooGraph` -- the Neo4j-flavoured
  variant keeping a list of parallel-edge identifiers per node pair
  (Section V-G);
* :class:`~repro.core.sharded.ShardedCuckooGraph` -- a batch-capable
  front-end that hash-partitions source nodes across N independent
  CuckooGraph shards (the reproduction's scale-out layer, not part of the
  paper);
* :class:`~repro.core.config.CuckooGraphConfig` -- the parameter set
  (``d``, ``R``, ``G``, ``Λ``, ``T``, ...).
"""

from .chain import TableChain
from .config import CuckooGraphConfig, PAPER_CONFIG, tuning_grid
from .counters import Counters
from .cuckoo_table import CuckooHashTable
from .denylist import LargeDenylist, SmallDenylist
from .errors import (
    CapacityError,
    ConfigurationError,
    CuckooGraphError,
    IntegrationError,
    NotFoundError,
    PersistenceError,
    SnapshotCorruptError,
    StoreClosedError,
    WalCorruptError,
)
from .graph import CuckooGraph
from .hashing import BobHash, HashFamily, ModularHash, MultiplyShiftHash
from .multiedge import MultiEdgeCuckooGraph
from .sharded import ShardedCuckooGraph, shard_index
from .slots import AdjacencyPart2
from .weighted import WeightedCuckooGraph

__all__ = [
    "AdjacencyPart2",
    "BobHash",
    "CapacityError",
    "ConfigurationError",
    "Counters",
    "CuckooGraph",
    "CuckooGraphConfig",
    "CuckooGraphError",
    "CuckooHashTable",
    "HashFamily",
    "IntegrationError",
    "LargeDenylist",
    "ModularHash",
    "MultiEdgeCuckooGraph",
    "MultiplyShiftHash",
    "NotFoundError",
    "PAPER_CONFIG",
    "PersistenceError",
    "ShardedCuckooGraph",
    "SmallDenylist",
    "SnapshotCorruptError",
    "StoreClosedError",
    "WalCorruptError",
    "TableChain",
    "WeightedCuckooGraph",
    "shard_index",
    "tuning_grid",
]
