"""Multi-edge CuckooGraph variant used by the Neo4j integration (Section V-G).

Neo4j allows several distinct edges between the same pair of nodes.  The
paper adapts the weighted version by replacing the weight counter in each
S-CHT small slot with a linked list of the edges sharing the same ``⟨u, v⟩``
endpoints; the query interface then returns an iterator over that list.

Here the linked list is represented as a Python list of opaque edge
identifiers (the mini-Neo4j integration stores relationship ids in it), and
``find_edges`` returns an iterator exactly as the paper describes.
"""

from __future__ import annotations

from typing import Iterable, Iterator

from ..memmodel.layout import ALLOC_OVERHEAD_BYTES, ID_BYTES, POINTER_BYTES
from .graph import CuckooGraph


class MultiEdgeCuckooGraph(CuckooGraph):
    """CuckooGraph variant storing a list of edge identifiers per ⟨u, v⟩ pair.

    Example:
        >>> graph = MultiEdgeCuckooGraph()
        >>> graph.add_edge(1, 2, edge_id=100)
        >>> graph.add_edge(1, 2, edge_id=101)
        >>> sorted(graph.find_edges(1, 2))
        [100, 101]
        >>> graph.edge_multiplicity(1, 2)
        2
    """

    name = "MultiEdgeCuckooGraph"

    def _weighted_layout(self) -> bool:
        return True

    def _slot_capacity(self) -> int:
        return self.config.weighted_slots_per_cell

    # ------------------------------------------------------------------ #
    # Multi-edge operations
    # ------------------------------------------------------------------ #

    def add_edge(self, u: int, v: int, edge_id: int) -> None:
        """Record one more parallel edge between ``u`` and ``v``."""
        self.counters.edges_inserted += 1
        part2 = self._find_part2(u)
        if part2 is not None:
            existing = part2.get(v)
            if existing is not None:
                existing.append(edge_id)
                return
        parked = self._sdl.get(u, v)
        if parked is not None:
            parked.append(edge_id)
            return
        if part2 is None:
            part2 = self._new_part2(u)
            self._park_small(u, part2.insert(v, [edge_id]), part2)
            self._park_large(self._lcht.insert(u, part2))
        else:
            self._park_small(u, part2.insert(v, [edge_id]), part2)
        self._num_edges += 1

    def insert_edge(self, u: int, v: int) -> bool:
        """Insert a parallel edge with an auto-assigned identifier.

        Returns ``True`` when this created the first edge between the pair,
        keeping the :class:`~repro.interfaces.DynamicGraphStore` semantics.
        """
        new_pair = not self.has_edge(u, v)
        self.add_edge(u, v, edge_id=self.counters.edges_inserted)
        return new_pair

    def find_edges(self, u: int, v: int) -> Iterator[int]:
        """Iterate over the identifiers of every edge between ``u`` and ``v``.

        This is the O(1)-to-obtain iterator the Neo4j integration exposes; an
        empty iterator means the pair is not connected.
        """
        self.counters.edges_queried += 1
        edge_ids = self._edge_list(u, v)
        return iter(edge_ids if edge_ids is not None else ())

    def edge_multiplicity(self, u: int, v: int) -> int:
        """Number of parallel edges between ``u`` and ``v``."""
        edge_ids = self._edge_list(u, v)
        return len(edge_ids) if edge_ids is not None else 0

    def remove_edge_id(self, u: int, v: int, edge_id: int) -> bool:
        """Remove one specific parallel edge; drop the pair when none remain."""
        self.counters.edges_deleted += 1
        edge_ids = self._edge_list(u, v)
        if edge_ids is None or edge_id not in edge_ids:
            return False
        edge_ids.remove(edge_id)
        if not edge_ids:
            self._delete_pair(u, v)
        return True

    def delete_edge(self, u: int, v: int) -> bool:
        """Remove the pair ``⟨u, v⟩`` and every parallel edge between them."""
        self.counters.edges_deleted += 1
        if self._edge_list(u, v) is None:
            return False
        self._delete_pair(u, v)
        return True

    def add_edges(self, edges: Iterable[tuple[int, int, int]]) -> None:
        """Bulk-insert ``(u, v, edge_id)`` triples."""
        for u, v, edge_id in edges:
            self.add_edge(u, v, edge_id)

    # ------------------------------------------------------------------ #
    # Memory model
    # ------------------------------------------------------------------ #

    def memory_bytes(self) -> int:
        """Base structure plus the linked lists hanging off each ⟨u, v⟩ slot."""
        total = super().memory_bytes()
        for _, part2 in self._cells():
            for _, edge_ids in part2.items():
                total += ALLOC_OVERHEAD_BYTES + len(edge_ids) * (ID_BYTES + POINTER_BYTES)
        for _, edge_ids in self._sdl.items():
            total += ALLOC_OVERHEAD_BYTES + len(edge_ids) * (ID_BYTES + POINTER_BYTES)
        return total

    # ------------------------------------------------------------------ #
    # Internals
    # ------------------------------------------------------------------ #

    def _edge_list(self, u: int, v: int):
        part2 = self._find_part2(u)
        if part2 is not None:
            edge_ids = part2.get(v)
            if edge_ids is not None:
                return edge_ids
        return self._sdl.get(u, v)

    def _delete_pair(self, u: int, v: int) -> None:
        part2 = self._find_part2(u)
        if part2 is not None and v in part2:
            _, leftovers = part2.delete(v)
            self._park_small(u, leftovers, part2)
        else:
            self._sdl.remove(u, v)
        self._num_edges -= 1
        if part2 is not None:
            self._remove_node_if_empty(u, part2)
