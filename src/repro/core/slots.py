"""Part 2 of an L-CHT cell: small slots that transform into an S-CHT chain.

Every L-CHT cell stores a node ``u`` (Part 1) and an :class:`AdjacencyPart2`
(Part 2).  Part 2 starts life as ``2R`` *small slots* holding neighbour
identifiers directly; once the node's degree exceeds the slot budget, the
small slots merge in pairs into ``R`` *large slots* holding pointers to an
S-CHT chain, and all neighbours migrate into that chain (the first
TRANSFORMATION of Section III-A1).

The extended (weighted / streaming) version stores ``⟨v, w⟩`` pairs, which
halves the number of direct slots from ``2R`` to ``R``; the multi-edge
(Neo4j-flavoured) version stores a list of edge identifiers in place of the
weight.  Both reuse this class through the ``slot_capacity`` argument and the
payload value.
"""

from __future__ import annotations

import random
from typing import Iterator, Optional

from .chain import DrainSource, TableChain
from .config import CuckooGraphConfig
from .counters import Counters
from .hashing import HashFamily

#: Part 2 storage modes.
MODE_SLOTS = "slots"
MODE_CHAIN = "chain"

_MISSING = object()


class AdjacencyPart2:
    """The transformable neighbour container attached to one node.

    Args:
        config: Graph-wide parameter set.
        hash_family: Source of hash functions for S-CHTs enabled later.
        counters: Shared operation counters.
        rng: Random source shared with the rest of the graph.
        slot_capacity: Number of direct slots before the first transformation
            (``2R`` for the basic version, ``R`` for the weighted version).
        drain_source: Hook draining S-DL entries for this node after an
            S-CHT expansion.
    """

    __slots__ = (
        "_config",
        "_family",
        "_counters",
        "_rng",
        "slot_capacity",
        "drain_source",
        "mode",
        "_slots",
        "_chain",
    )

    def __init__(
        self,
        config: CuckooGraphConfig,
        hash_family: HashFamily,
        counters: Counters,
        rng: random.Random,
        slot_capacity: Optional[int] = None,
        drain_source: Optional[DrainSource] = None,
    ):
        self._config = config
        self._family = hash_family
        self._counters = counters
        self._rng = rng
        self.slot_capacity = (
            slot_capacity if slot_capacity is not None else config.small_slots_per_cell
        )
        self.drain_source = drain_source
        self.mode = MODE_SLOTS
        self._slots: dict[int, object] = {}
        self._chain: Optional[TableChain] = None

    # ------------------------------------------------------------------ #
    # Introspection
    # ------------------------------------------------------------------ #

    def __len__(self) -> int:
        if self.mode == MODE_SLOTS:
            return len(self._slots)
        return len(self._chain)

    @property
    def is_transformed(self) -> bool:
        """Whether the small slots have transformed into an S-CHT chain."""
        return self.mode == MODE_CHAIN

    @property
    def chain(self) -> Optional[TableChain]:
        """The S-CHT chain, or ``None`` while still in small-slot mode."""
        return self._chain

    def __contains__(self, v: int) -> bool:
        if self.mode == MODE_SLOTS:
            self._counters.cell_probes += len(self._slots)
            return v in self._slots
        return v in self._chain

    def get(self, v: int, default=None):
        """Return the payload stored for neighbour ``v`` or ``default``."""
        if self.mode == MODE_SLOTS:
            self._counters.cell_probes += len(self._slots)
            return self._slots.get(v, default)
        return self._chain.get(v, default)

    def items(self) -> Iterator[tuple[int, object]]:
        """Iterate over ``(v, payload)`` pairs."""
        if self.mode == MODE_SLOTS:
            yield from self._slots.items()
        else:
            yield from self._chain.items()

    def neighbours(self) -> Iterator[int]:
        """Iterate over neighbour identifiers."""
        for v, _ in self.items():
            yield v

    # ------------------------------------------------------------------ #
    # Mutation
    # ------------------------------------------------------------------ #

    def insert(self, v: int, payload=None) -> list[tuple[int, object]]:
        """Store neighbour ``v`` (with payload), transforming if necessary.

        Returns pairs that could not be placed in the S-CHT chain within the
        kick budget; the caller parks them in the S-DL (or forces an
        expansion when the denylist is disabled).
        """
        if self.mode == MODE_SLOTS:
            if v in self._slots or len(self._slots) < self.slot_capacity:
                self._slots[v] = payload
                return []
            return self._transform_to_chain(extra=(v, payload))
        # The graph queries the edge before inserting (Insertion Step 1), so
        # the chain does not need to repeat the presence scan.
        return self._chain.insert(v, payload, assume_absent=True)

    def set(self, v: int, payload) -> bool:
        """Update the payload of an existing neighbour; return ``False`` if absent."""
        if self.mode == MODE_SLOTS:
            if v not in self._slots:
                return False
            self._slots[v] = payload
            return True
        return self._chain.update(v, payload)

    def delete(self, v: int) -> tuple[bool, list[tuple[int, object]]]:
        """Remove neighbour ``v``.

        Returns ``(deleted, leftovers)`` where ``leftovers`` are pairs
        displaced by a reverse transformation inside the chain.
        """
        if self.mode == MODE_SLOTS:
            return (self._slots.pop(v, _MISSING) is not _MISSING), []
        deleted, leftovers = self._chain.delete(v)
        if deleted and self._config.collapse_chain_to_slots:
            self._maybe_collapse()
        return deleted, leftovers

    def force_expand(self) -> list[tuple[int, object]]:
        """Expand the chain after an insertion failure (denylist-free mode)."""
        if self.mode == MODE_SLOTS:
            return self._transform_to_chain(extra=None)
        return self._chain.expand_on_failure()

    # ------------------------------------------------------------------ #
    # Transformation helpers
    # ------------------------------------------------------------------ #

    def _transform_to_chain(
        self, extra: Optional[tuple[int, object]]
    ) -> list[tuple[int, object]]:
        """Merge the small slots into large slots and open the first S-CHT."""
        chain = TableChain(
            config=self._config,
            hash_family=self._family,
            initial_length=self._config.initial_scht_length,
            counters=self._counters,
            rng=self._rng,
            drain_source=self.drain_source,
        )
        leftovers: list[tuple[int, object]] = []
        for existing_v, existing_payload in self._slots.items():
            leftovers.extend(chain.insert(existing_v, existing_payload))
        if extra is not None:
            leftovers.extend(chain.insert(extra[0], extra[1]))
        self._slots = {}
        self._chain = chain
        self.mode = MODE_CHAIN
        return leftovers

    def _maybe_collapse(self) -> None:
        """Collapse the chain back to direct slots when it has shrunk enough."""
        if self._chain is None or len(self._chain) > self.slot_capacity:
            return
        self._slots = dict(self._chain.items())
        self._chain = None
        self.mode = MODE_SLOTS

    # ------------------------------------------------------------------ #
    # Memory model
    # ------------------------------------------------------------------ #

    def chain_modelled_bytes(self, bytes_per_cell: int, bucket_overhead: int = 0) -> int:
        """Modelled footprint of the S-CHT chain (zero in small-slot mode).

        The fixed Part 2 region inside the L-CHT cell (the ``2R`` small slots
        or the ``R`` large slots they merge into) is accounted for by the cell
        layout itself, not here.
        """
        if self.mode == MODE_SLOTS or self._chain is None:
            return 0
        return self._chain.modelled_bytes(bytes_per_cell, bucket_overhead)
