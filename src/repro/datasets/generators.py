"""Synthetic edge-stream generators.

The paper evaluates on five real traces (CAIDA, NotreDame, StackOverflow,
WikiTalk, Weibo) and two synthetic graphs (DenseGraph, SparseGraph).  The
real traces are not redistributable, so this module provides generators that
reproduce the *characteristics* Table IV reports for each of them: node and
edge counts (scaled), power-law degree skew with a heavy-tailed maximum
degree, duplicate-edge ratios for the weighted traces, a ~0.9-density dense
graph and a constant-degree sparse graph.  The generators are deterministic
given a seed.
"""

from __future__ import annotations

import random
from typing import Optional


def _zipf_weights(count: int, exponent: float) -> list[float]:
    """Unnormalised Zipf weights ``1 / rank**exponent`` for ``count`` ranks."""
    return [1.0 / ((rank + 1) ** exponent) for rank in range(count)]


class _ZipfSampler:
    """Inverse-CDF sampler over Zipf weights (index 0 is the heaviest rank)."""

    def __init__(self, count: int, exponent: float):
        self._cumulative: list[float] = []
        total = 0.0
        for weight in _zipf_weights(count, exponent):
            total += weight
            self._cumulative.append(total)
        self._total = total

    def sample(self, rng: random.Random) -> int:
        """Draw a rank index proportionally to its Zipf weight."""
        needle = rng.random() * self._total
        low, high = 0, len(self._cumulative) - 1
        while low < high:
            mid = (low + high) // 2
            if self._cumulative[mid] < needle:
                low = mid + 1
            else:
                high = mid
        return low


def powerlaw_edge_set(
    num_nodes: int,
    num_edges: int,
    rng: random.Random,
    out_exponent: float = 1.0,
    in_exponent: float = 1.0,
    allow_self_loops: bool = False,
) -> list[tuple[int, int]]:
    """Distinct directed edges whose in/out degrees follow power laws.

    Source nodes are drawn from a Zipf distribution with ``out_exponent``
    (a few heavy hitters get most outgoing edges); destinations are drawn
    from an independent Zipf distribution with ``in_exponent``.  Node ranks
    are shuffled so that the heavy hitters are not simply the smallest ids.
    Exact duplicates are rejected, so the result has exactly ``num_edges``
    distinct edges (or slightly fewer if the requested count exceeds what the
    node budget allows).
    """
    if num_nodes < 2:
        raise ValueError("num_nodes must be >= 2")
    node_ids = list(range(num_nodes))
    rng.shuffle(node_ids)
    out_sampler = _ZipfSampler(num_nodes, out_exponent)
    in_sampler = _ZipfSampler(num_nodes, in_exponent)

    max_possible = num_nodes * (num_nodes - 1)
    target = min(num_edges, max_possible)
    edges: set[tuple[int, int]] = set()
    attempts = 0
    max_attempts = target * 50
    while len(edges) < target and attempts < max_attempts:
        attempts += 1
        source = node_ids[out_sampler.sample(rng)]
        destination = node_ids[in_sampler.sample(rng)]
        if not allow_self_loops and source == destination:
            continue
        edges.add((source, destination))
    if len(edges) < target:
        # Fill the remainder uniformly so the requested size is honoured.
        while len(edges) < target:
            source = rng.choice(node_ids)
            destination = rng.choice(node_ids)
            if source != destination or allow_self_loops:
                edges.add((source, destination))
    ordered = list(edges)
    rng.shuffle(ordered)
    return ordered


def duplicate_stream(
    distinct_edges: list[tuple[int, int]],
    total_edges: int,
    rng: random.Random,
    skew: float = 1.0,
) -> list[tuple[int, int]]:
    """A stream of ``total_edges`` arrivals over ``distinct_edges``.

    Every distinct edge appears at least once; the remaining arrivals repeat
    edges following a Zipf distribution with the given ``skew``, reproducing
    the heavy duplication of flow-level traces such as CAIDA.
    """
    if total_edges < len(distinct_edges):
        raise ValueError("total_edges must be at least the number of distinct edges")
    stream = list(distinct_edges)
    repeats_needed = total_edges - len(distinct_edges)
    if repeats_needed:
        sampler = _ZipfSampler(len(distinct_edges), skew)
        for _ in range(repeats_needed):
            stream.append(distinct_edges[sampler.sample(rng)])
    rng.shuffle(stream)
    return stream


def dense_edge_set(
    num_nodes: int, density: float, rng: random.Random, allow_self_loops: bool = False
) -> list[tuple[int, int]]:
    """Distinct edges of an Erdős–Rényi-style dense graph with the given density."""
    if not 0.0 < density <= 1.0:
        raise ValueError("density must be in (0, 1]")
    edges: list[tuple[int, int]] = []
    for source in range(num_nodes):
        for destination in range(num_nodes):
            if source == destination and not allow_self_loops:
                continue
            if rng.random() < density:
                edges.append((source, destination))
    rng.shuffle(edges)
    return edges


def regular_edge_set(
    num_nodes: int, out_degree: int, rng: random.Random
) -> list[tuple[int, int]]:
    """Distinct edges of a graph where every node has exactly ``out_degree`` successors."""
    if out_degree >= num_nodes:
        raise ValueError("out_degree must be smaller than num_nodes")
    edges: list[tuple[int, int]] = []
    for source in range(num_nodes):
        destinations = rng.sample(
            [node for node in range(num_nodes) if node != source], out_degree
        )
        edges.extend((source, destination) for destination in destinations)
    rng.shuffle(edges)
    return edges


def uniform_edge_set(
    num_nodes: int, num_edges: int, rng: random.Random, seed_hint: Optional[int] = None
) -> list[tuple[int, int]]:
    """Distinct edges drawn uniformly at random (used by property tests)."""
    max_possible = num_nodes * (num_nodes - 1)
    target = min(num_edges, max_possible)
    edges: set[tuple[int, int]] = set()
    while len(edges) < target:
        source = rng.randrange(num_nodes)
        destination = rng.randrange(num_nodes)
        if source != destination:
            edges.add((source, destination))
    ordered = list(edges)
    rng.shuffle(ordered)
    return ordered
