"""Dataset registry: name -> scaled synthetic stream, with caching.

Benchmarks request datasets by name ("CAIDA", "Weibo", ...); the registry
generates each scaled stand-in once per (name, scale, seed) combination and
caches it, so a figure that sweeps all seven datasets does not regenerate
streams repeatedly.
"""

from __future__ import annotations

from typing import Optional

from .stream import EdgeStream
from .table4 import DATASET_ORDER, TABLE4_PROFILES, DatasetProfile

_CACHE: dict[tuple[str, Optional[int], int], EdgeStream] = {}


def available_datasets() -> list[str]:
    """Dataset names in the order the paper's figures use."""
    return list(DATASET_ORDER)


def dataset_profile(name: str) -> DatasetProfile:
    """The Table IV profile for ``name`` (raises ``KeyError`` if unknown)."""
    try:
        return TABLE4_PROFILES[name]
    except KeyError:
        raise KeyError(
            f"unknown dataset {name!r}; expected one of {DATASET_ORDER}"
        ) from None


def load_dataset(name: str, scale: Optional[int] = None, seed: int = 1) -> EdgeStream:
    """Scaled synthetic stand-in stream for the named dataset (cached)."""
    key = (name, scale, seed)
    if key not in _CACHE:
        _CACHE[key] = dataset_profile(name).generate(scale=scale, seed=seed)
    return _CACHE[key]


def load_all_datasets(scale: Optional[int] = None, seed: int = 1) -> dict[str, EdgeStream]:
    """All seven datasets, keyed by name, in figure order."""
    return {name: load_dataset(name, scale, seed) for name in DATASET_ORDER}


def clear_cache() -> None:
    """Drop every cached stream (used by tests that tune scales)."""
    _CACHE.clear()
