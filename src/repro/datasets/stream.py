"""Edge-stream container shared by the dataset generators and benchmarks.

The paper's basic-task experiments drive each scheme with a *stream* of
edges: possibly containing duplicates (CAIDA, StackOverflow, WikiTalk), in
arrival order, and the memory experiments additionally use the de-duplicated
stream.  :class:`EdgeStream` packages a generated stream together with the
statistics Table IV reports, so benchmarks and tests can assert that a
synthetic stand-in actually matches the characteristics it is supposed to
have.
"""

from __future__ import annotations

import random
from collections import Counter
from dataclasses import dataclass
from typing import Iterator, Sequence


@dataclass(frozen=True)
class StreamStatistics:
    """The per-dataset quantities reported in Table IV."""

    num_nodes: int
    num_edges: int
    num_edges_dedup: int
    average_degree: float
    max_degree: int
    edge_density: float
    has_duplicates: bool

    def as_row(self) -> dict[str, object]:
        """Row form used by the Table IV benchmark report."""
        return {
            "nodes": self.num_nodes,
            "edges": self.num_edges,
            "edges_dedup": self.num_edges_dedup,
            "avg_degree": round(self.average_degree, 2),
            "max_degree": self.max_degree,
            "density": self.edge_density,
            "weighted": self.has_duplicates,
        }


class EdgeStream:
    """An ordered stream of directed edges, possibly with duplicates."""

    def __init__(self, name: str, edges: Sequence[tuple[int, int]]):
        self.name = name
        self._edges: list[tuple[int, int]] = list(edges)

    # ------------------------------------------------------------------ #
    # Sequence behaviour
    # ------------------------------------------------------------------ #

    def __len__(self) -> int:
        return len(self._edges)

    def __iter__(self) -> Iterator[tuple[int, int]]:
        return iter(self._edges)

    def __getitem__(self, index):
        if isinstance(index, slice):
            return EdgeStream(self.name, self._edges[index])
        return self._edges[index]

    @property
    def edges(self) -> list[tuple[int, int]]:
        """The underlying edge list (arrival order)."""
        return self._edges

    # ------------------------------------------------------------------ #
    # Derived streams
    # ------------------------------------------------------------------ #

    def deduplicated(self) -> "EdgeStream":
        """Distinct edges in first-arrival order (the paper's dedup step)."""
        seen: set[tuple[int, int]] = set()
        distinct: list[tuple[int, int]] = []
        for edge in self._edges:
            if edge not in seen:
                seen.add(edge)
                distinct.append(edge)
        return EdgeStream(f"{self.name}-dedup", distinct)

    def prefix(self, count: int) -> "EdgeStream":
        """The first ``count`` edges of the stream."""
        return EdgeStream(self.name, self._edges[:count])

    def shuffled(self, seed: int = 0) -> "EdgeStream":
        """A reproducibly shuffled copy (used by deletion-order experiments)."""
        rng = random.Random(seed)
        copy = list(self._edges)
        rng.shuffle(copy)
        return EdgeStream(f"{self.name}-shuffled", copy)

    def sample(self, count: int, seed: int = 0) -> "EdgeStream":
        """A reproducible sample of ``count`` edges (without replacement)."""
        rng = random.Random(seed)
        count = min(count, len(self._edges))
        return EdgeStream(f"{self.name}-sample", rng.sample(self._edges, count))

    # ------------------------------------------------------------------ #
    # Statistics
    # ------------------------------------------------------------------ #

    def statistics(self) -> StreamStatistics:
        """Compute the Table IV statistics for this stream."""
        distinct = set(self._edges)
        nodes: set[int] = set()
        out_degree: Counter[int] = Counter()
        in_degree: Counter[int] = Counter()
        for u, v in distinct:
            nodes.add(u)
            nodes.add(v)
            out_degree[u] += 1
            in_degree[v] += 1
        total_degree = Counter(out_degree)
        total_degree.update(in_degree)
        num_nodes = len(nodes)
        num_dedup = len(distinct)
        density = 0.0
        if num_nodes > 1:
            density = num_dedup / (num_nodes * (num_nodes - 1))
        return StreamStatistics(
            num_nodes=num_nodes,
            num_edges=len(self._edges),
            num_edges_dedup=num_dedup,
            average_degree=(num_dedup / num_nodes) if num_nodes else 0.0,
            max_degree=max(total_degree.values()) if total_degree else 0,
            edge_density=density,
            has_duplicates=len(self._edges) != num_dedup,
        )

    def __repr__(self) -> str:
        return f"EdgeStream(name={self.name!r}, edges={len(self._edges)})"
