"""Synthetic stand-ins for the paper's seven evaluation datasets (Table IV)."""

from .generators import (
    dense_edge_set,
    duplicate_stream,
    powerlaw_edge_set,
    regular_edge_set,
    uniform_edge_set,
)
from .registry import (
    available_datasets,
    clear_cache,
    dataset_profile,
    load_all_datasets,
    load_dataset,
)
from .stream import EdgeStream, StreamStatistics
from .table4 import DATASET_ORDER, TABLE4_PROFILES, DatasetProfile

__all__ = [
    "DATASET_ORDER",
    "DatasetProfile",
    "EdgeStream",
    "StreamStatistics",
    "TABLE4_PROFILES",
    "available_datasets",
    "clear_cache",
    "dataset_profile",
    "dense_edge_set",
    "duplicate_stream",
    "load_all_datasets",
    "load_dataset",
    "powerlaw_edge_set",
    "regular_edge_set",
    "uniform_edge_set",
]
