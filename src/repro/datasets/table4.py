"""Dataset profiles matching Table IV of the paper.

Each :class:`DatasetProfile` records the published statistics of one of the
seven evaluation datasets and knows how to generate a *scaled* synthetic
stand-in whose distributional characteristics (degree skew, duplicate-edge
ratio, density) match the original.  The real traces are large (up to 261 M
edges) and not redistributable; the profiles default to per-dataset scale
factors that keep benchmark runtimes tractable in pure Python while leaving
the scale configurable for larger runs.
"""

from __future__ import annotations

import random
import zlib
from dataclasses import dataclass
from typing import Optional

from .generators import (
    dense_edge_set,
    duplicate_stream,
    powerlaw_edge_set,
    regular_edge_set,
)
from .stream import EdgeStream

#: Generator kinds understood by :meth:`DatasetProfile.generate`.
KIND_POWERLAW = "powerlaw"
KIND_DENSE = "dense"
KIND_REGULAR = "regular"


@dataclass(frozen=True)
class DatasetProfile:
    """Published statistics and scaled-generation recipe for one dataset.

    Attributes:
        name: Dataset name as used throughout the paper's figures.
        weighted: Whether the original trace contains duplicate edges
            (the "Weighted?" column of Table IV).
        num_nodes / num_edges / num_edges_dedup: Published counts.
        avg_degree / max_degree / edge_density: Published statistics.
        kind: Which generator family reproduces the dataset's shape.
        default_scale: Default divisor applied to node/edge counts when
            generating the synthetic stand-in.
        out_exponent / in_exponent: Zipf exponents for the power-law
            generator (larger means more skew / higher maximum degree).
        duplication_skew: Zipf exponent for how arrivals repeat distinct
            edges in the duplicated stream.
        dense_density: Edge density for the dense generator.
        regular_degree: Constant out-degree for the regular generator.
    """

    name: str
    weighted: bool
    num_nodes: int
    num_edges: int
    num_edges_dedup: int
    avg_degree: float
    max_degree: int
    edge_density: float
    kind: str = KIND_POWERLAW
    default_scale: int = 1000
    out_exponent: float = 0.8
    in_exponent: float = 0.8
    duplication_skew: float = 1.1
    dense_density: float = 0.9
    regular_degree: int = 6

    def scaled_counts(self, scale: Optional[int] = None) -> tuple[int, int, int]:
        """Scaled (nodes, total edges, distinct edges) for the synthetic stand-in."""
        divisor = scale if scale is not None else self.default_scale
        nodes = max(16, self.num_nodes // divisor)
        dedup = max(32, self.num_edges_dedup // divisor)
        total = max(dedup, self.num_edges // divisor)
        return nodes, total, dedup

    def generate(self, scale: Optional[int] = None, seed: int = 1) -> EdgeStream:
        """Generate the scaled synthetic stand-in stream for this dataset.

        The per-dataset seed component is a CRC of the name, not ``hash()``:
        string hashing is randomized per process (PYTHONHASHSEED), which
        used to regenerate *different* stand-in streams on every run and
        made the benchmark shape checks flaky.  Streams are now bit-stable
        across processes for a given ``(name, scale, seed)``.
        """
        rng = random.Random(seed * 1_000_003 + zlib.crc32(self.name.encode()) % 1_000_000)
        nodes, total, dedup = self.scaled_counts(scale)
        if self.kind == KIND_DENSE:
            distinct = dense_edge_set(nodes, self.dense_density, rng)
        elif self.kind == KIND_REGULAR:
            degree = min(self.regular_degree, nodes - 1)
            distinct = regular_edge_set(nodes, degree, rng)
        else:
            distinct = powerlaw_edge_set(
                nodes,
                dedup,
                rng,
                out_exponent=self.out_exponent,
                in_exponent=self.in_exponent,
            )
        if self.weighted and total > len(distinct):
            edges = duplicate_stream(distinct, total, rng, skew=self.duplication_skew)
        else:
            edges = distinct
        return EdgeStream(self.name, edges)

    def published_row(self) -> dict[str, object]:
        """The Table IV row for the original (unscaled) dataset."""
        return {
            "dataset": self.name,
            "weighted": self.weighted,
            "nodes": self.num_nodes,
            "edges": self.num_edges,
            "edges_dedup": self.num_edges_dedup,
            "avg_degree": self.avg_degree,
            "max_degree": self.max_degree,
            "density": self.edge_density,
        }


#: The seven evaluation datasets of Table IV, with published statistics.
TABLE4_PROFILES: dict[str, DatasetProfile] = {
    "CAIDA": DatasetProfile(
        name="CAIDA",
        weighted=True,
        num_nodes=510_000,
        num_edges=27_120_000,
        num_edges_dedup=850_000,
        avg_degree=1.66,
        max_degree=17_950,
        edge_density=3.26e-6,
        kind=KIND_POWERLAW,
        default_scale=500,
        out_exponent=1.1,
        in_exponent=1.1,
        duplication_skew=1.2,
    ),
    "NotreDame": DatasetProfile(
        name="NotreDame",
        weighted=False,
        num_nodes=330_000,
        num_edges=1_500_000,
        num_edges_dedup=1_500_000,
        avg_degree=4.60,
        max_degree=10_721,
        edge_density=1.41e-5,
        kind=KIND_POWERLAW,
        default_scale=100,
        out_exponent=0.9,
        in_exponent=0.9,
    ),
    "StackOverflow": DatasetProfile(
        name="StackOverflow",
        weighted=True,
        num_nodes=2_600_000,
        num_edges=63_500_000,
        num_edges_dedup=36_230_000,
        avg_degree=13.92,
        max_degree=60_406,
        edge_density=5.35e-6,
        kind=KIND_POWERLAW,
        default_scale=2000,
        out_exponent=0.9,
        in_exponent=0.9,
        duplication_skew=1.0,
    ),
    "WikiTalk": DatasetProfile(
        name="WikiTalk",
        weighted=True,
        num_nodes=2_990_000,
        num_edges=24_980_000,
        num_edges_dedup=9_380_000,
        avg_degree=3.14,
        max_degree=146_311,
        edge_density=1.05e-6,
        kind=KIND_POWERLAW,
        default_scale=1000,
        out_exponent=1.2,
        in_exponent=1.2,
        duplication_skew=1.0,
    ),
    "Weibo": DatasetProfile(
        name="Weibo",
        weighted=False,
        num_nodes=58_660_000,
        num_edges=261_320_000,
        num_edges_dedup=261_320_000,
        avg_degree=4.46,
        max_degree=278_491,
        edge_density=7.60e-8,
        kind=KIND_POWERLAW,
        default_scale=10_000,
        out_exponent=1.0,
        in_exponent=1.0,
    ),
    "DenseGraph": DatasetProfile(
        name="DenseGraph",
        weighted=False,
        num_nodes=8_000,
        num_edges=57_590_000,
        num_edges_dedup=57_590_000,
        avg_degree=7199.16,
        max_degree=14_537,
        edge_density=0.90,
        kind=KIND_DENSE,
        default_scale=40,
        dense_density=0.90,
    ),
    "SparseGraph": DatasetProfile(
        name="SparseGraph",
        weighted=False,
        num_nodes=5_000_000,
        num_edges=30_000_000,
        num_edges_dedup=30_000_000,
        avg_degree=6.0,
        max_degree=6,
        edge_density=1.20e-6,
        kind=KIND_REGULAR,
        default_scale=1000,
        regular_degree=6,
    ),
}

#: Dataset ordering used on every figure's x-axis.
DATASET_ORDER = [
    "CAIDA",
    "NotreDame",
    "StackOverflow",
    "WikiTalk",
    "Weibo",
    "DenseGraph",
    "SparseGraph",
]
