"""Per-operation cost accounting used by the complexity experiments.

Table III of the paper compares amortized time complexities; Theorem 1/2
argue that CuckooGraph's insertion cost is O(1) amortized with a small
constant (measured as ≈1.017 average placements per item in the L-CHT and
≈1.006 in the S-CHTs on the NotreDame dataset).  This module turns the
counters collected by the data structures into the quantities those
statements are about, and provides a small driver that measures any
:class:`~repro.interfaces.DynamicGraphStore` with a probe-count proxy when
the store exposes counters, falling back to operation timing when it does
not.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Iterable, Sequence

from ..interfaces import DynamicGraphStore


@dataclass(frozen=True)
class OperationCost:
    """Aggregate cost of a batch of operations on one store.

    Attributes:
        operations: Number of operations performed.
        seconds: Wall-clock time for the whole batch.
        bucket_probes: Buckets examined (only for stores exposing counters).
        insert_attempts: Placement attempts (only for counter-aware stores).
    """

    operations: int
    seconds: float
    bucket_probes: int = 0
    insert_attempts: int = 0

    @property
    def throughput_mops(self) -> float:
        """Million operations per second (the paper's throughput metric)."""
        if self.seconds <= 0:
            return float("inf")
        return self.operations / self.seconds / 1e6

    @property
    def probes_per_operation(self) -> float:
        """Average bucket probes per operation (cost-model view of Table III)."""
        if self.operations == 0:
            return 0.0
        return self.bucket_probes / self.operations

    @property
    def attempts_per_operation(self) -> float:
        """Average placement attempts per operation (Theorem 1 verification)."""
        if self.operations == 0:
            return 0.0
        return self.insert_attempts / self.operations


def _counter_snapshot(store: DynamicGraphStore) -> dict[str, int]:
    counters = getattr(store, "counters", None)
    return counters.snapshot() if counters is not None else {}


def _counter_delta(store: DynamicGraphStore, before: dict[str, int]) -> dict[str, int]:
    counters = getattr(store, "counters", None)
    return counters.diff(before) if counters is not None else {}


def measure_insertions(
    store: DynamicGraphStore, edges: Sequence[tuple[int, int]]
) -> OperationCost:
    """Insert ``edges`` into ``store`` and report the aggregate cost."""
    before = _counter_snapshot(store)
    start = time.perf_counter()
    for u, v in edges:
        store.insert_edge(u, v)
    elapsed = time.perf_counter() - start
    delta = _counter_delta(store, before)
    return OperationCost(
        operations=len(edges),
        seconds=elapsed,
        bucket_probes=delta.get("bucket_probes", 0),
        insert_attempts=delta.get("insert_attempts", 0),
    )


def measure_queries(
    store: DynamicGraphStore, edges: Sequence[tuple[int, int]]
) -> OperationCost:
    """Query ``edges`` against ``store`` and report the aggregate cost."""
    before = _counter_snapshot(store)
    start = time.perf_counter()
    for u, v in edges:
        store.has_edge(u, v)
    elapsed = time.perf_counter() - start
    delta = _counter_delta(store, before)
    return OperationCost(
        operations=len(edges),
        seconds=elapsed,
        bucket_probes=delta.get("bucket_probes", 0),
    )


def measure_deletions(
    store: DynamicGraphStore, edges: Sequence[tuple[int, int]]
) -> OperationCost:
    """Delete ``edges`` from ``store`` and report the aggregate cost."""
    before = _counter_snapshot(store)
    start = time.perf_counter()
    for u, v in edges:
        store.delete_edge(u, v)
    elapsed = time.perf_counter() - start
    delta = _counter_delta(store, before)
    return OperationCost(
        operations=len(edges),
        seconds=elapsed,
        bucket_probes=delta.get("bucket_probes", 0),
    )


def memory_curve(
    store: DynamicGraphStore,
    edges: Iterable[tuple[int, int]],
    sample_every: int = 1000,
) -> list[tuple[int, int]]:
    """Insert edges one by one and sample the modelled memory footprint.

    Returns ``(inserted_count, memory_bytes)`` samples, the series plotted by
    Figure 9 for each scheme.
    """
    samples: list[tuple[int, int]] = []
    inserted = 0
    for u, v in edges:
        store.insert_edge(u, v)
        inserted += 1
        if inserted % sample_every == 0:
            samples.append((inserted, store.memory_bytes()))
    samples.append((inserted, store.memory_bytes()))
    return samples
