"""Byte-level layout model shared by every graph store.

The paper's memory figures measure the physical footprint of C++ structures
built around 8-byte node identifiers and 8-byte pointers.  This module pins
those layout constants in one place so that every scheme's ``memory_bytes``
reports a footprint derived from the same assumptions, making Figure 9's
comparison about *structure*, not about the Python runtime.
"""

from __future__ import annotations

from dataclasses import dataclass

#: Size of a node identifier (the paper uses 8-byte identifiers).
ID_BYTES = 8
#: Size of a pointer on the evaluation platform (x86-64).
POINTER_BYTES = 8
#: Size of the weight counter in the extended (streaming) version.
WEIGHT_BYTES = 4
#: Size of a 32-bit hash value / bit-vector word where one is materialised.
WORD_BYTES = 4
#: Per-allocation bookkeeping charged to pointer-chasing structures (malloc
#: header); adjacency-list style schemes pay this for every block they chain.
ALLOC_OVERHEAD_BYTES = 16


@dataclass(frozen=True)
class CuckooLayout:
    """Derived byte costs for CuckooGraph cells, given ``d`` and ``R``.

    Attributes:
        R: Number of large slots per cell.
        weighted: Whether Part 2 slots store ⟨v, w⟩ pairs.
    """

    R: int = 3
    weighted: bool = False

    @property
    def part2_bytes(self) -> int:
        """Fixed Part 2 region: 2R small slots, or the R large slots they merge into."""
        return 2 * self.R * ID_BYTES

    @property
    def lcht_cell_bytes(self) -> int:
        """One L-CHT cell: Part 1 (u) plus the fixed Part 2 region."""
        return ID_BYTES + self.part2_bytes

    @property
    def scht_cell_bytes(self) -> int:
        """One S-CHT cell: a neighbour id, plus a weight in the extended version."""
        if self.weighted:
            return ID_BYTES + WEIGHT_BYTES
        return ID_BYTES

    @property
    def sdl_entry_bytes(self) -> int:
        """One S-DL unit: a complete ⟨u, v⟩ pair (plus weight when extended)."""
        base = 2 * ID_BYTES
        return base + (WEIGHT_BYTES if self.weighted else 0)

    @property
    def ldl_entry_bytes(self) -> int:
        """One L-DL unit: the same layout as an L-CHT cell."""
        return self.lcht_cell_bytes


def adjacency_node_bytes() -> int:
    """Per-node cost of a classic adjacency list head (id + list pointer + size)."""
    return ID_BYTES + POINTER_BYTES + WORD_BYTES


def adjacency_entry_bytes() -> int:
    """Per-edge cost of a linked adjacency entry (neighbour id + next pointer)."""
    return ID_BYTES + POINTER_BYTES


def vector_entry_bytes() -> int:
    """Per-edge cost of a contiguous adjacency vector entry (neighbour id only)."""
    return ID_BYTES
