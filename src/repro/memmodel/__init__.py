"""Memory-layout and operation-cost models shared by every graph store."""

from .costmodel import (
    OperationCost,
    measure_deletions,
    measure_insertions,
    measure_queries,
    memory_curve,
)
from .layout import (
    ALLOC_OVERHEAD_BYTES,
    CuckooLayout,
    ID_BYTES,
    POINTER_BYTES,
    WEIGHT_BYTES,
    WORD_BYTES,
    adjacency_entry_bytes,
    adjacency_node_bytes,
    vector_entry_bytes,
)

__all__ = [
    "ALLOC_OVERHEAD_BYTES",
    "CuckooLayout",
    "ID_BYTES",
    "OperationCost",
    "POINTER_BYTES",
    "WEIGHT_BYTES",
    "WORD_BYTES",
    "adjacency_entry_bytes",
    "adjacency_node_bytes",
    "measure_deletions",
    "measure_insertions",
    "measure_queries",
    "memory_curve",
    "vector_entry_bytes",
]
