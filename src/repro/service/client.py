"""Synchronous client facade over a :class:`GraphService`.

:class:`GraphClient` speaks the full
:class:`~repro.interfaces.DynamicGraphStore` contract, so anything written
against the store interface -- the benchmark harness, the analytics engine,
an example script -- can be pointed at a *service* instead of a raw
structure without changing a line.  Single-edge calls block on their future;
the batch overrides pipeline (submit every request first, then collect), so
even a single client thread hands the dispatcher whole windows to coalesce.

Introspection (``edges``, ``num_edges``, ``memory_bytes``, ``accesses``,
``counters``) reads the underlying store directly.  That is a deliberate
trade: those are snapshot/diagnostic reads used by benchmarks and reports on
a quiesced service; issuing them through the queue would serialize a full
scan behind traffic.  Call them only when no conflicting writes are in
flight.
"""

from __future__ import annotations

from pathlib import Path
from typing import Iterable, Iterator, Optional, Union

from ..core.config import CuckooGraphConfig
from ..core.errors import StoreClosedError
from ..core.sharded import ShardedCuckooGraph
from ..interfaces import DynamicGraphStore
from .service import GraphService


class GraphClient(DynamicGraphStore):
    """Blocking :class:`DynamicGraphStore` view of a :class:`GraphService`.

    Args:
        service: The service to drive.  It is started if it is not running.
        close_service: Close the service when the client is closed / exits
            its context.  Defaults to ``False`` for a shared service.

    Example:
        >>> client = GraphClient.local(num_shards=2)
        >>> client.insert_edge(1, 2)
        True
        >>> client.successors(1)
        [2]
        >>> client.close()
    """

    name = "GraphServiceClient"

    def __init__(self, service: GraphService, *, close_service: bool = False):
        self._service = service
        self._close_service = close_service
        self._closed = False
        if not service.running and not service.closed:
            service.start()

    @classmethod
    def local(
        cls,
        num_shards: int = 4,
        config: Optional[CuckooGraphConfig] = None,
        executor: str = "serial",
        **service_kwargs,
    ) -> "GraphClient":
        """Client over a fresh service owning a fresh ``ShardedCuckooGraph``."""
        store = ShardedCuckooGraph(
            num_shards=num_shards, config=config, executor=executor
        )
        service = GraphService(store, own_store=True, **service_kwargs)
        return cls(service.start(), close_service=True)

    @classmethod
    def durable(
        cls,
        path: Optional[Union[str, Path]] = None,
        num_shards: int = 4,
        config: Optional[CuckooGraphConfig] = None,
        **service_kwargs,
    ) -> "GraphClient":
        """Client over a group-committing durable service.

        The sharded store is wrapped in a
        :class:`~repro.persist.PersistentStore` (one WAL segment per shard)
        with ``sync_on_commit=False``, and the service runs with
        ``durability="batch"``: each dispatched micro-batch becomes one
        group commit -- an fsync per WAL segment the batch touched, at most
        ``num_shards`` -- before its futures resolve.  ``path=None`` keeps the
        store ephemeral (the directory is removed on close); a ``path``
        that already holds a persistent store is **recovered** first, so
        the same call works on the first run and on every restart
        (``num_shards`` must match the on-disk segmentation).
        """
        from ..persist import PersistentStore, open_or_create

        inner = ShardedCuckooGraph(num_shards=num_shards, config=config)
        if path is not None:
            store = open_or_create(path, store=inner, sync_on_commit=False,
                                   own_store=True)
        else:
            store = PersistentStore(
                path=None, store=inner, sync_on_commit=False, own_store=True
            )
        service = GraphService(
            store, own_store=True, durability="batch", **service_kwargs
        )
        return cls(service.start(), close_service=True)

    @property
    def service(self) -> GraphService:
        return self._service

    @property
    def closed(self) -> bool:
        """Whether :meth:`close` has been called on this client."""
        return self._closed

    def close(self) -> None:
        """Terminal close, aligned with the sharded front-end's semantics.

        Idempotent.  The underlying service is closed too when this client
        owns it; either way, further operations through the client raise
        :class:`~repro.core.errors.StoreClosedError` (a non-owning client
        must not keep feeding a service it has declared itself done with).
        Quiesced introspection reads (``edges``, ``num_edges``, ...) keep
        working, exactly like single-operation reads on a closed
        :class:`~repro.core.sharded.ShardedCuckooGraph`.
        """
        if self._closed:
            return
        self._closed = True
        if self._close_service:
            self._service.close()

    def _ensure_open(self) -> None:
        if self._closed:
            raise StoreClosedError(
                f"{self.name} is closed; operations are no longer accepted"
            )

    def __enter__(self) -> "GraphClient":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    # ------------------------------------------------------------------ #
    # Single-operation paths: one request, block on its future
    # ------------------------------------------------------------------ #

    def insert_edge(self, u: int, v: int) -> bool:
        self._ensure_open()
        return self._service.insert_edge(u, v).result()

    def delete_edge(self, u: int, v: int) -> bool:
        self._ensure_open()
        return self._service.delete_edge(u, v).result()

    def has_edge(self, u: int, v: int) -> bool:
        self._ensure_open()
        return self._service.has_edge(u, v).result()

    def successors(self, u: int) -> list[int]:
        self._ensure_open()
        return self._service.successors(u).result()

    # ------------------------------------------------------------------ #
    # Batch paths: pipeline futures so the dispatcher sees whole windows
    # ------------------------------------------------------------------ #

    def insert_edges(self, edges: Iterable[tuple[int, int]]) -> int:
        self._ensure_open()
        futures = [self._service.insert_edge(u, v) for u, v in edges]
        return sum(future.result() for future in futures)

    def delete_edges(self, edges: Iterable[tuple[int, int]]) -> int:
        self._ensure_open()
        futures = [self._service.delete_edge(u, v) for u, v in edges]
        return sum(future.result() for future in futures)

    def has_edges(self, edges: Iterable[tuple[int, int]]) -> list[bool]:
        self._ensure_open()
        futures = [self._service.has_edge(u, v) for u, v in edges]
        return [future.result() for future in futures]

    def successors_many(self, nodes: Iterable[int]) -> dict[int, list[int]]:
        self._ensure_open()
        ordered = list(dict.fromkeys(nodes))
        futures = [self._service.successors(u) for u in ordered]
        return {u: future.result() for u, future in zip(ordered, futures)}

    # ------------------------------------------------------------------ #
    # Analytics jobs (each runs store-side through a TraversalEngine)
    # ------------------------------------------------------------------ #

    def bfs(self, source: int, **kwargs) -> list[int]:
        self._ensure_open()
        return self._service.analytics("bfs", source, **kwargs).result()

    def sssp(self, source: int, **kwargs) -> dict[int, float]:
        self._ensure_open()
        return self._service.analytics("sssp", source, **kwargs).result()

    def pagerank(self, **kwargs) -> dict[int, float]:
        self._ensure_open()
        return self._service.analytics("pagerank", **kwargs).result()

    def components(self, **kwargs) -> list[list[int]]:
        self._ensure_open()
        return self._service.analytics("components", **kwargs).result()

    def wcc(self, **kwargs) -> list[list[int]]:
        """Weakly connected components in canonical form (delta-maintained
        when the service runs ``analytics="incremental"``)."""
        self._ensure_open()
        return self._service.analytics("wcc", **kwargs).result()

    def top_degree_nodes(self, count: int, **kwargs) -> list[int]:
        self._ensure_open()
        return self._service.analytics("top_degree_nodes", count, **kwargs).result()

    # ------------------------------------------------------------------ #
    # Quiesced introspection: direct store reads (see module docstring)
    # ------------------------------------------------------------------ #

    @property
    def _store(self) -> DynamicGraphStore:
        return self._service.store

    def edges(self) -> Iterator[tuple[int, int]]:
        return self._store.edges()

    def source_nodes(self) -> Iterator[int]:
        return self._store.source_nodes()

    @property
    def num_edges(self) -> int:
        return self._store.num_edges

    def memory_bytes(self) -> int:
        return self._store.memory_bytes()

    @property
    def accesses(self) -> int:
        return getattr(self._store, "accesses", 0)

    def reset_accesses(self) -> None:
        self._store.reset_accesses()

    @property
    def counters(self):
        return getattr(self._store, "counters", None)

    def structure_summary(self) -> dict[str, object]:
        summary = getattr(self._store, "structure_summary", None)
        return summary() if callable(summary) else {"num_edges": self.num_edges}

    def spawn_empty(self) -> DynamicGraphStore:
        """Empty store of the *served* scheme, for subgraph extraction.

        Extracting a subgraph should not spin up a nested service (that
        would leak a dispatcher per extraction); analytics on an extracted
        subgraph measure the underlying store, the service front door
        having already carried the traffic that built it.
        """
        return self._store.spawn_empty()
