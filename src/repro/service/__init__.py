"""Request-queue service layer: micro-batched traffic over a graph store.

The "serves heavy traffic" layer of the reproduction.  Client threads submit
single operations to a :class:`GraphService`; the service coalesces them
into micro-batches (size window ``max_batch``, time window ``max_delay_s``),
dispatches each batch through the store's batch APIs / the analytics
traversal engine, and routes per-request results and exceptions back through
futures.  :class:`GraphClient` is the synchronous facade that makes the
whole thing look like a plain :class:`~repro.interfaces.DynamicGraphStore`.

Quickstart::

    from repro.service import GraphClient

    client = GraphClient.local(num_shards=4)
    client.insert_edges([(1, 2), (1, 3)])
    assert client.has_edge(1, 2)
    print(client.service.metrics_summary()["latency"])
    client.close()
"""

from .batcher import KINDS, Request, gather_window, split_runs
from .client import GraphClient
from .errors import QueueFullError, ServiceClosedError, ServiceError
from .metrics import LatencyRecorder, ServiceMetrics, percentile
from .queue import POLICIES, BoundedRequestQueue
from .service import (
    ANALYTICS_HANDLERS,
    ANALYTICS_MODES,
    DURABILITY_MODES,
    FRESHNESS_POLICIES,
    GraphService,
)

__all__ = [
    "ANALYTICS_HANDLERS",
    "ANALYTICS_MODES",
    "BoundedRequestQueue",
    "DURABILITY_MODES",
    "FRESHNESS_POLICIES",
    "GraphClient",
    "GraphService",
    "KINDS",
    "LatencyRecorder",
    "POLICIES",
    "QueueFullError",
    "Request",
    "ServiceClosedError",
    "ServiceError",
    "ServiceMetrics",
    "gather_window",
    "percentile",
    "split_runs",
]
