"""Exception types raised by the request-queue service layer."""

from __future__ import annotations


class ServiceError(RuntimeError):
    """Base class for errors raised by :mod:`repro.service`."""


class QueueFullError(ServiceError):
    """Raised by ``policy="reject"`` submission when the request queue is full.

    This is the service's backpressure signal: the client is expected to
    retry later (or shed the request), not to treat it as a store failure.
    """


class ServiceClosedError(ServiceError):
    """Raised when a request is submitted to a closed service.

    Also delivered to blocked submitters when the service closes underneath
    them, so a ``policy="block"`` caller never hangs across shutdown.
    """
