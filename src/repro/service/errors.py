"""Exception types raised by the request-queue service layer."""

from __future__ import annotations

from ..core.errors import StoreClosedError


class ServiceError(RuntimeError):
    """Base class for errors raised by :mod:`repro.service`."""


class QueueFullError(ServiceError):
    """Raised by ``policy="reject"`` submission when the request queue is full.

    This is the service's backpressure signal: the client is expected to
    retry later (or shed the request), not to treat it as a store failure.
    """


class ServiceClosedError(ServiceError, StoreClosedError):
    """Raised when a request is submitted to a closed service.

    Also delivered to blocked submitters when the service closes underneath
    them, so a ``policy="block"`` caller never hangs across shutdown.

    Subclasses :class:`~repro.core.errors.StoreClosedError` so the whole
    stack signals "terminal close" uniformly: code written against the
    store contract can catch ``StoreClosedError`` whether the closed thing
    is a sharded front-end, a persistent wrapper or a service facade.
    """
