"""Micro-batching: turn a FIFO request stream into store-sized batch calls.

Two pieces, both order-preserving:

* :func:`gather_window` pulls one *window* of requests off the queue --
  blocking for the first request, then filling up to ``max_batch`` items,
  waiting at most ``max_delay_s`` for stragglers.  ``max_delay_s=0`` is the
  latency-first mode: the window closes as soon as the queue momentarily
  runs dry, so a lone synchronous client never pays an artificial delay,
  while concurrent clients still coalesce naturally (requests that arrive
  while a batch is executing pile up for the next window).
* :func:`split_runs` cuts a window into maximal runs of consecutive
  same-kind requests.  Each run becomes exactly one store batch call
  (``insert_edges`` / ``delete_edges`` / ``has_edges`` / ``successors_many``),
  and because runs never reorder requests, the dispatch is a faithful
  serialization of the submission order -- an insert followed by a delete of
  the same edge always lands in that order, which is what lets a
  single-threaded client (and the differential fuzzer) reason about results
  against a sequential oracle.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from concurrent.futures import Future
from typing import Iterator, List, Tuple

from .queue import BoundedRequestQueue

#: Request kinds understood by the dispatcher, in no particular order.
KINDS = ("insert", "delete", "has", "successors", "analytics")

#: The single clock every service timestamp comes from.  ``enqueued_at``
#: stamps, window deadlines, latency samples and the queue's put/get
#: timeouts must all read the same monotonic clock: mixing
#: ``time.perf_counter`` (whose epoch is unrelated) into any one of them
#: silently skews deadlines and latency percentiles.
#: ``tests/service/test_clock_domains.py`` pins this choice.
CLOCK = time.monotonic

#: How long the dispatcher blocks waiting for a first request before
#: re-checking for shutdown (seconds).  Purely an idle-loop heartbeat; it
#: never delays a request.
IDLE_POLL_S = 0.05


@dataclass
class Request:
    """One client operation in flight through the service."""

    kind: str
    payload: object
    future: Future = field(default_factory=Future)
    enqueued_at: float = field(default_factory=CLOCK)


def gather_window(
    queue: BoundedRequestQueue, max_batch: int, max_delay_s: float
) -> List[Request]:
    """Collect the next dispatch window (empty list on an idle poll).

    The first request is awaited for at most :data:`IDLE_POLL_S`; once one
    arrives, the window keeps filling until ``max_batch`` requests are in
    hand, the queue stays empty past the ``max_delay_s`` deadline, or --
    with ``max_delay_s=0`` -- the queue momentarily runs dry.
    """
    first = queue.get(timeout=IDLE_POLL_S)
    if first is None:
        return []
    window = [first]
    deadline = (
        first.enqueued_at + max_delay_s if max_delay_s > 0 else None
    )
    while len(window) < max_batch:
        request = queue.get_nowait()
        if request is not None:
            window.append(request)
            continue
        if deadline is None:
            break
        remaining = deadline - CLOCK()
        if remaining <= 0:
            break
        request = queue.get(timeout=remaining)
        if request is None:
            break  # deadline hit, or the queue closed while waiting
        window.append(request)
    return window


def split_runs(window: List[Request]) -> Iterator[Tuple[str, List[Request]]]:
    """Yield ``(kind, requests)`` for maximal same-kind runs, in order."""
    run: List[Request] = []
    for request in window:
        if run and request.kind != run[0].kind:
            yield run[0].kind, run
            run = []
        run.append(request)
    if run:
        yield run[0].kind, run
